"""Tests for the key-pair abstraction."""

import pytest

from repro.crypto.signing import PUBLIC_KEY_SIZE, SIGNATURE_SIZE, KeyPair, PrivateKey, PublicKey
from repro.errors import SignatureError


class TestKeyPair:
    def test_deterministic_generation_from_seed(self):
        a = KeyPair.generate(b"seed-1")
        b = KeyPair.generate(b"seed-1")
        assert a.public.key_bytes == b.public.key_bytes

    def test_different_seeds_differ(self):
        assert KeyPair.generate(b"a").public != KeyPair.generate(b"b").public

    def test_random_generation_without_seed(self):
        assert KeyPair.generate().public != KeyPair.generate().public

    def test_sign_and_verify(self):
        keys = KeyPair.generate(b"signer")
        signature = keys.sign(b"payload")
        assert len(signature) == SIGNATURE_SIZE
        assert keys.verify(b"payload", signature)
        assert not keys.verify(b"payloaX", signature)

    def test_public_key_size_constant(self):
        keys = KeyPair.generate(b"k")
        assert len(keys.public.key_bytes) == PUBLIC_KEY_SIZE


class TestPublicKey:
    def test_rejects_wrong_length(self):
        with pytest.raises(SignatureError):
            PublicKey(b"\x01" * 16)

    def test_verify_or_raise(self):
        keys = KeyPair.generate(b"k")
        signature = keys.sign(b"m")
        keys.public.verify_or_raise(b"m", signature)
        with pytest.raises(SignatureError):
            keys.public.verify_or_raise(b"other", signature)

    def test_fingerprint_is_short_hex(self):
        fingerprint = KeyPair.generate(b"k").public.fingerprint()
        assert len(fingerprint) == 16
        int(fingerprint, 16)  # must be hex


class TestPrivateKey:
    def test_rejects_wrong_seed_length(self):
        with pytest.raises(SignatureError):
            PrivateKey(b"tiny")

    def test_public_key_derivation_is_stable(self):
        private = PrivateKey.generate(b"stable")
        assert private.public_key() == private.public_key()

    def test_cross_verification(self):
        signer = PrivateKey.generate(b"one")
        other = PrivateKey.generate(b"two")
        signature = signer.sign(b"msg")
        assert signer.public_key().verify(b"msg", signature)
        assert not other.public_key().verify(b"msg", signature)
