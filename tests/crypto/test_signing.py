"""Tests for the key-pair abstraction."""

import pytest

from repro.crypto.signing import (
    PUBLIC_KEY_SIZE,
    SIGNATURE_SIZE,
    KeyPair,
    PrivateKey,
    PublicKey,
    verify_batch,
)
from repro.errors import SignatureError


class TestKeyPair:
    def test_deterministic_generation_from_seed(self):
        a = KeyPair.generate(b"seed-1")
        b = KeyPair.generate(b"seed-1")
        assert a.public.key_bytes == b.public.key_bytes

    def test_different_seeds_differ(self):
        assert KeyPair.generate(b"a").public != KeyPair.generate(b"b").public

    def test_random_generation_without_seed(self):
        assert KeyPair.generate().public != KeyPair.generate().public

    def test_sign_and_verify(self):
        keys = KeyPair.generate(b"signer")
        signature = keys.sign(b"payload")
        assert len(signature) == SIGNATURE_SIZE
        assert keys.verify(b"payload", signature)
        assert not keys.verify(b"payloaX", signature)

    def test_public_key_size_constant(self):
        keys = KeyPair.generate(b"k")
        assert len(keys.public.key_bytes) == PUBLIC_KEY_SIZE


class TestPublicKey:
    def test_rejects_wrong_length(self):
        with pytest.raises(SignatureError):
            PublicKey(b"\x01" * 16)

    def test_verify_or_raise(self):
        keys = KeyPair.generate(b"k")
        signature = keys.sign(b"m")
        keys.public.verify_or_raise(b"m", signature)
        with pytest.raises(SignatureError):
            keys.public.verify_or_raise(b"other", signature)

    def test_fingerprint_is_short_hex(self):
        fingerprint = KeyPair.generate(b"k").public.fingerprint()
        assert len(fingerprint) == 16
        int(fingerprint, 16)  # must be hex


class TestPrivateKey:
    def test_rejects_wrong_seed_length(self):
        with pytest.raises(SignatureError):
            PrivateKey(b"tiny")

    def test_public_key_derivation_is_stable(self):
        private = PrivateKey.generate(b"stable")
        assert private.public_key() == private.public_key()

    def test_cross_verification(self):
        signer = PrivateKey.generate(b"one")
        other = PrivateKey.generate(b"two")
        signature = signer.sign(b"msg")
        assert signer.public_key().verify(b"msg", signature)
        assert not other.public_key().verify(b"msg", signature)


class TestVerifyBatch:
    """Batched verification must match serial verification exactly."""

    def _items(self, count, seed=b"batch"):
        keys = [KeyPair.generate(seed + bytes([index])) for index in range(count)]
        messages = [f"message-{index}".encode() for index in range(count)]
        return [
            (key.public, message, key.sign(message))
            for key, message in zip(keys, messages)
        ]

    def test_empty_batch(self):
        assert verify_batch([]) == []

    def test_single_item(self):
        items = self._items(1)
        assert verify_batch(items) == [True]

    def test_all_valid(self):
        items = self._items(5)
        assert verify_batch(items) == [True] * 5

    def test_tampered_signature_is_pinpointed(self):
        items = self._items(5)
        public, message, signature = items[2]
        corrupted = signature[:40] + bytes([signature[40] ^ 1]) + signature[41:]
        items[2] = (public, message, corrupted)
        assert verify_batch(items) == [True, True, False, True, True]

    def test_tampered_message_is_pinpointed(self):
        items = self._items(4)
        public, message, signature = items[0]
        items[0] = (public, message + b"!", signature)
        assert verify_batch(items) == [False, True, True, True]

    def test_swapped_signatures_fail(self):
        items = self._items(3)
        swapped = [items[0], (items[1][0], items[1][1], items[2][2]),
                   (items[2][0], items[2][1], items[1][2])]
        assert verify_batch(swapped) == [True, False, False]

    def test_malformed_signature_length_is_invalid_not_raised(self):
        items = self._items(2)
        items[1] = (items[1][0], items[1][1], b"short")
        assert verify_batch(items) == [True, False]

    def test_chunking_respects_batch_width(self):
        items = self._items(5)
        for width in (1, 2, 3, 5, 16):
            assert verify_batch(items, batch_width=width) == [True] * 5

    def test_invalid_batch_width_rejected(self):
        with pytest.raises(SignatureError):
            verify_batch(self._items(1), batch_width=0)

    def test_matches_serial_verification_on_random_corruptions(self):
        from hypothesis import given, settings, strategies as st

        base = self._items(4, seed=b"prop")

        @settings(max_examples=20, deadline=None)
        @given(
            corrupt=st.lists(
                st.tuples(st.integers(0, 3), st.sampled_from(["sig", "msg", "none"])),
                max_size=4,
            )
        )
        def run(corrupt):
            items = list(base)
            for index, kind in corrupt:
                public, message, signature = items[index]
                if kind == "sig":
                    mutated = bytes([signature[0] ^ 0x55]) + signature[1:]
                    items[index] = (public, message, mutated)
                elif kind == "msg":
                    items[index] = (public, message + b"x", signature)
            expected = [
                public.verify(message, signature)
                for public, message, signature in items
            ]
            assert verify_batch(items, batch_width=2) == expected
            assert verify_batch(items) == expected

        run()
