"""Tests for the sorted Merkle tree and its presence/absence proofs."""

import pytest

from repro.crypto.merkle import SortedMerkleTree, empty_root
from repro.errors import ProofError


def leaf(value: int, width: int = 3) -> bytes:
    return value.to_bytes(width, "big")


def build_tree(values, tree=None) -> SortedMerkleTree:
    tree = tree if tree is not None else SortedMerkleTree()
    for value in values:
        tree.insert(leaf(value), b"\x00\x00\x00\x01")
    return tree


class TestTreeBasics:
    def test_empty_tree_root_is_sentinel(self):
        tree = SortedMerkleTree()
        assert tree.root() == empty_root()
        assert len(tree) == 0

    def test_insert_returns_sorted_position(self):
        tree = SortedMerkleTree()
        assert tree.insert(leaf(10), b"a") == 0
        assert tree.insert(leaf(5), b"b") == 0
        assert tree.insert(leaf(20), b"c") == 2

    def test_contains_and_get(self):
        tree = build_tree([3, 1, 2])
        assert leaf(2) in tree
        assert leaf(4) not in tree
        assert tree.get(leaf(1)) == b"\x00\x00\x00\x01"
        assert tree.get(leaf(9)) is None

    def test_duplicate_key_rejected(self):
        tree = build_tree([7])
        with pytest.raises(ProofError):
            tree.insert(leaf(7), b"x")

    def test_keys_are_sorted(self):
        tree = build_tree([9, 2, 7, 4])
        assert list(tree.keys()) == [leaf(2), leaf(4), leaf(7), leaf(9)]

    def test_root_changes_on_insert(self):
        tree = build_tree([1, 2, 3])
        before = tree.root()
        tree.insert(leaf(4), b"v")
        assert tree.root() != before

    def test_insertion_order_does_not_matter(self):
        assert build_tree([1, 2, 3, 4, 5]).root() == build_tree([5, 3, 1, 4, 2]).root()

    def test_value_affects_root(self):
        a = SortedMerkleTree()
        a.insert(leaf(1), b"v1")
        b = SortedMerkleTree()
        b.insert(leaf(1), b"v2")
        assert a.root() != b.root()

    def test_insert_batch(self):
        tree = SortedMerkleTree()
        tree.insert_batch((leaf(i), b"v") for i in range(10))
        assert len(tree) == 10


class TestPresenceProofs:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8, 9, 16, 33])
    def test_every_leaf_proves_for_various_sizes(self, size):
        tree = build_tree(range(1, size + 1))
        root = tree.root()
        for value in range(1, size + 1):
            proof = tree.prove_presence(leaf(value))
            assert proof.verify(root)
            assert proof.tree_size == size

    def test_proof_fails_against_wrong_root(self):
        tree = build_tree([1, 2, 3, 4])
        other = build_tree([1, 2, 3, 5])
        proof = tree.prove_presence(leaf(2))
        assert not proof.verify(other.root())

    def test_proof_for_absent_key_raises(self):
        tree = build_tree([1, 2, 3])
        with pytest.raises(ProofError):
            tree.prove_presence(leaf(9))

    def test_tampered_leaf_index_fails(self):
        from dataclasses import replace

        tree = build_tree(range(1, 9))
        proof = tree.prove_presence(leaf(3))
        tampered = replace(proof, leaf_index=proof.leaf_index + 1)
        assert not tampered.verify(tree.root())

    def test_proof_depth_is_logarithmic(self):
        tree = build_tree(range(1, 1025))
        proof = tree.prove_presence(leaf(500))
        assert len(proof.path) == 10

    def test_encoded_size_positive_and_grows_with_depth(self):
        small = build_tree(range(1, 5)).prove_presence(leaf(2))
        large = build_tree(range(1, 257)).prove_presence(leaf(2))
        assert 0 < small.encoded_size() < large.encoded_size()


class TestAbsenceProofs:
    def test_absence_in_empty_tree(self):
        tree = SortedMerkleTree()
        proof = tree.prove_absence(leaf(5))
        assert proof.verify(tree.root())
        assert proof.tree_size == 0

    def test_absence_between_leaves(self):
        tree = build_tree([1, 3, 5, 7])
        proof = tree.prove_absence(leaf(4))
        assert proof.verify(tree.root())
        assert proof.left is not None and proof.right is not None
        assert proof.left.key == leaf(3) and proof.right.key == leaf(5)

    def test_absence_before_first_leaf(self):
        tree = build_tree([10, 20, 30])
        proof = tree.prove_absence(leaf(5))
        assert proof.verify(tree.root())
        assert proof.left is None and proof.right.leaf_index == 0

    def test_absence_after_last_leaf(self):
        tree = build_tree([10, 20, 30])
        proof = tree.prove_absence(leaf(40))
        assert proof.verify(tree.root())
        assert proof.right is None and proof.left.leaf_index == 2

    def test_absence_for_present_key_raises(self):
        tree = build_tree([1, 2, 3])
        with pytest.raises(ProofError):
            tree.prove_absence(leaf(2))

    def test_absence_fails_against_wrong_root(self):
        tree = build_tree([1, 3, 5])
        other = build_tree([1, 3, 6])
        assert not tree.prove_absence(leaf(4)).verify(other.root())

    def test_non_adjacent_neighbours_rejected(self):
        from dataclasses import replace

        tree = build_tree([1, 3, 5, 7])
        proof = tree.prove_absence(leaf(4))
        # Substitute the right neighbour with a leaf further away (index 3).
        far_right = tree.prove_presence(leaf(7))
        forged = replace(proof, right=far_right)
        assert not forged.verify(tree.root())

    def test_key_outside_neighbour_interval_rejected(self):
        from dataclasses import replace

        tree = build_tree([1, 3, 5, 7])
        proof = tree.prove_absence(leaf(4))
        forged = replace(proof, key=leaf(6))
        assert not forged.verify(tree.root())

    def test_prove_dispatches_by_membership(self):
        from repro.crypto.merkle import AbsenceProof, PresenceProof

        tree = build_tree([1, 2, 3])
        assert isinstance(tree.prove(leaf(2)), PresenceProof)
        assert isinstance(tree.prove(leaf(9)), AbsenceProof)

    def test_single_leaf_tree_absence_both_sides(self):
        tree = build_tree([5])
        assert tree.prove_absence(leaf(1)).verify(tree.root())
        assert tree.prove_absence(leaf(9)).verify(tree.root())
