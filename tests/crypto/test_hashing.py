"""Tests for the hash primitives."""

import pytest

from repro.crypto.hashing import (
    DEFAULT_DIGEST_SIZE,
    FULL_DIGEST_SIZE,
    hash_chain_link,
    hash_data,
    hash_leaf,
    hash_node,
    sha256,
)


class TestHashSizes:
    def test_default_truncation_is_20_bytes(self):
        assert len(hash_data(b"hello")) == DEFAULT_DIGEST_SIZE == 20

    def test_full_sha256_is_32_bytes(self):
        assert len(sha256(b"hello")) == FULL_DIGEST_SIZE == 32

    def test_custom_digest_size(self):
        assert len(hash_data(b"hello", digest_size=32)) == 32
        assert len(hash_leaf(b"hello", digest_size=8)) == 8

    @pytest.mark.parametrize("bad_size", [0, -1, 33, 100])
    def test_rejects_out_of_range_digest_size(self, bad_size):
        with pytest.raises(ValueError):
            hash_data(b"x", digest_size=bad_size)

    def test_truncation_is_prefix_of_full_hash(self):
        assert hash_data(b"payload") == sha256(b"payload")[:20]


class TestDeterminismAndSeparation:
    def test_same_input_same_output(self):
        assert hash_data(b"abc") == hash_data(b"abc")
        assert hash_leaf(b"abc") == hash_leaf(b"abc")

    def test_different_inputs_differ(self):
        assert hash_data(b"abc") != hash_data(b"abd")

    def test_leaf_and_node_domains_are_separated(self):
        left = hash_data(b"x")
        right = hash_data(b"y")
        # A leaf containing the concatenation must not equal the interior node.
        assert hash_leaf(left + right) != hash_node(left, right)

    def test_leaf_and_plain_hash_differ(self):
        assert hash_leaf(b"abc") != hash_data(b"abc")

    def test_chain_link_domain_is_separated(self):
        assert hash_chain_link(b"abc") != hash_data(b"abc")
        assert hash_chain_link(b"abc") != hash_leaf(b"abc")

    def test_node_order_matters(self):
        a, b = hash_data(b"a"), hash_data(b"b")
        assert hash_node(a, b) != hash_node(b, a)

    def test_empty_input_is_valid(self):
        assert len(hash_data(b"")) == DEFAULT_DIGEST_SIZE
