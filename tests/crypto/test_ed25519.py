"""Tests for the pure-Python Ed25519 implementation."""

import hashlib

import pytest

from repro.crypto import ed25519
from repro.errors import SignatureError


def seed(label: str) -> bytes:
    return hashlib.sha256(label.encode()).digest()


class TestKeyGeneration:
    def test_public_key_is_32_bytes(self):
        assert len(ed25519.publickey(seed("a"))) == 32

    def test_public_key_is_deterministic(self):
        assert ed25519.publickey(seed("a")) == ed25519.publickey(seed("a"))

    def test_different_seeds_give_different_keys(self):
        assert ed25519.publickey(seed("a")) != ed25519.publickey(seed("b"))

    def test_bad_seed_length_rejected(self):
        with pytest.raises(Exception):
            ed25519.publickey(b"short")


class TestSignVerify:
    def test_signature_is_64_bytes(self):
        signature = ed25519.sign(seed("k"), b"message")
        assert len(signature) == 64

    def test_roundtrip_verifies(self):
        secret = seed("k")
        public = ed25519.publickey(secret)
        message = b"the quick brown fox"
        assert ed25519.verify(public, message, ed25519.sign(secret, message))

    def test_signing_is_deterministic(self):
        secret = seed("k")
        assert ed25519.sign(secret, b"m") == ed25519.sign(secret, b"m")

    def test_modified_message_fails(self):
        secret = seed("k")
        public = ed25519.publickey(secret)
        signature = ed25519.sign(secret, b"message")
        assert not ed25519.verify(public, b"messagX", signature)

    def test_modified_signature_fails(self):
        secret = seed("k")
        public = ed25519.publickey(secret)
        signature = bytearray(ed25519.sign(secret, b"message"))
        signature[3] ^= 0x01
        assert not ed25519.verify(public, b"message", bytes(signature))

    def test_wrong_key_fails(self):
        signature = ed25519.sign(seed("k1"), b"message")
        other_public = ed25519.publickey(seed("k2"))
        assert not ed25519.verify(other_public, b"message", signature)

    def test_empty_message(self):
        secret = seed("k")
        public = ed25519.publickey(secret)
        assert ed25519.verify(public, b"", ed25519.sign(secret, b""))

    def test_long_message(self):
        secret = seed("k")
        public = ed25519.publickey(secret)
        message = b"\xab" * 5000
        assert ed25519.verify(public, message, ed25519.sign(secret, message))

    def test_bad_signature_length_raises(self):
        public = ed25519.publickey(seed("k"))
        with pytest.raises(SignatureError):
            ed25519.verify(public, b"m", b"\x00" * 63)

    def test_bad_public_key_length_raises(self):
        with pytest.raises(SignatureError):
            ed25519.verify(b"\x00" * 31, b"m", b"\x00" * 64)

    def test_scalar_out_of_range_rejected(self):
        secret = seed("k")
        public = ed25519.publickey(secret)
        signature = ed25519.sign(secret, b"m")
        # Force s >= L: set the top bytes of the scalar half to 0xff.
        forged = signature[:32] + b"\xff" * 32
        assert not ed25519.verify(public, b"m", forged)

    def test_rfc8032_test_vector_1(self):
        # RFC 8032 §7.1 TEST 1 (empty message).
        secret = bytes.fromhex(
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"
        )
        expected_public = bytes.fromhex(
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
        )
        expected_signature = bytes.fromhex(
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
        )
        assert ed25519.publickey(secret) == expected_public
        assert ed25519.sign(secret, b"") == expected_signature
        assert ed25519.verify(expected_public, b"", expected_signature)

    def test_rfc8032_test_vector_2(self):
        # RFC 8032 §7.1 TEST 2 (one-byte message 0x72).
        secret = bytes.fromhex(
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb"
        )
        expected_public = bytes.fromhex(
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
        )
        expected_signature = bytes.fromhex(
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
        )
        assert ed25519.publickey(secret) == expected_public
        assert ed25519.sign(secret, b"\x72") == expected_signature
        assert ed25519.verify(expected_public, b"\x72", expected_signature)
