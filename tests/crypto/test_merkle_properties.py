"""Property-based tests (hypothesis) for the sorted Merkle tree.

``SortedMerkleTree`` is the naive full-rebuild store engine; the
differential properties at the bottom additionally pin the incremental
engine to it (byte-identical roots and proofs under randomized
interleavings of single inserts, batches, and proof queries).
"""

from hypothesis import given, settings, strategies as st

from repro.crypto.merkle import SortedMerkleTree
from repro.store import IncrementalMerkleStore, NaiveMerkleStore

serial_values = st.integers(min_value=1, max_value=2**24 - 1)


def to_key(value: int) -> bytes:
    return value.to_bytes(3, "big")


@settings(max_examples=60, deadline=None)
@given(st.sets(serial_values, min_size=1, max_size=120), st.randoms(use_true_random=False))
def test_every_member_has_valid_presence_proof(values, rng):
    """Any inserted key can always be proven present against the root."""
    ordered = list(values)
    rng.shuffle(ordered)
    tree = SortedMerkleTree()
    for value in ordered:
        tree.insert(to_key(value), b"\x00\x00\x00\x01")
    root = tree.root()
    probe = rng.choice(ordered)
    proof = tree.prove_presence(to_key(probe))
    assert proof.verify(root)


@settings(max_examples=60, deadline=None)
@given(
    st.sets(serial_values, min_size=1, max_size=120),
    serial_values,
)
def test_membership_and_proofs_are_mutually_exclusive(values, probe):
    """For any probe key, exactly one of presence/absence can be proven, and it verifies."""
    tree = SortedMerkleTree()
    for value in values:
        tree.insert(to_key(value), b"\x00\x00\x00\x01")
    root = tree.root()
    proof = tree.prove(to_key(probe))
    assert proof.verify(root)
    from repro.crypto.merkle import PresenceProof

    assert isinstance(proof, PresenceProof) == (probe in values)


@settings(max_examples=40, deadline=None)
@given(st.lists(serial_values, unique=True, min_size=2, max_size=80))
def test_root_is_order_independent(values):
    """The tree commits to the *set*, not the insertion order."""
    forward = SortedMerkleTree()
    for value in values:
        forward.insert(to_key(value), b"\x00\x00\x00\x01")
    backward = SortedMerkleTree()
    for value in reversed(values):
        backward.insert(to_key(value), b"\x00\x00\x00\x01")
    assert forward.root() == backward.root()


@settings(max_examples=40, deadline=None)
@given(st.sets(serial_values, min_size=2, max_size=80))
def test_roots_differ_when_any_element_is_removed(values):
    """Removing any single element changes the root (no silent deletions)."""
    values = list(values)
    full = SortedMerkleTree()
    for value in values:
        full.insert(to_key(value), b"\x00\x00\x00\x01")
    partial = SortedMerkleTree()
    for value in values[:-1]:
        partial.insert(to_key(value), b"\x00\x00\x00\x01")
    assert full.root() != partial.root()


@settings(max_examples=60, deadline=None)
@given(st.lists(serial_values, unique=True, min_size=1, max_size=140), st.randoms(use_true_random=False))
def test_incremental_engine_matches_naive_oracle(values, rng):
    """The list-backed engines stay byte-identical under random interleavings."""
    naive = NaiveMerkleStore()
    incremental = IncrementalMerkleStore()
    remaining = list(values)
    rng.shuffle(remaining)
    while remaining:
        if rng.random() < 0.5:
            value = remaining.pop()
            naive.insert(to_key(value), b"\x00\x00\x00\x01")
            incremental.insert(to_key(value), b"\x00\x00\x00\x01")
        else:
            size = min(len(remaining), rng.randrange(1, 8))
            chunk = [remaining.pop() for _ in range(size)]
            items = [(to_key(v), b"\x00\x00\x00\x01") for v in chunk]
            naive.insert_batch(list(items))
            incremental.insert_batch(items)
        assert naive.root() == incremental.root()
        probe = rng.randrange(1, 2**24)
        assert naive.prove(to_key(probe)) == incremental.prove(to_key(probe))


@settings(max_examples=40, deadline=None)
@given(st.sets(serial_values, min_size=1, max_size=140))
def test_engines_agree_on_every_member_proof(values):
    """Every presence proof is identical across engines and verifies."""
    items = [(to_key(v), b"\x00\x00\x00\x01") for v in sorted(values)]
    naive = NaiveMerkleStore()
    naive.insert_batch(list(items))
    incremental = IncrementalMerkleStore()
    incremental.insert_batch(items)
    root = naive.root()
    assert root == incremental.root()
    for value in values:
        proof = incremental.prove_presence(to_key(value))
        assert proof == naive.prove_presence(to_key(value))
        assert proof.verify(root)
