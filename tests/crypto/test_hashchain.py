"""Tests for hash chains and freshness verification."""

import pytest

from repro.crypto.hashchain import HashChain, chain_apply, statement_age, verify_freshness
from repro.crypto.hashing import hash_chain_link
from repro.errors import HashChainError


class TestChainApply:
    def test_zero_applications_is_identity(self):
        assert chain_apply(b"seed", 0) == b"seed"

    def test_one_application_matches_link(self):
        assert chain_apply(b"seed", 1) == hash_chain_link(b"seed")

    def test_composition(self):
        assert chain_apply(chain_apply(b"seed", 2), 3) == chain_apply(b"seed", 5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            chain_apply(b"seed", -1)


class TestHashChain:
    def test_anchor_is_m_applications_of_seed(self):
        chain = HashChain(length=5, seed=b"\x01" * 32)
        assert chain.anchor == chain_apply(b"\x01" * 32, 5)

    def test_statement_zero_is_anchor(self):
        chain = HashChain(length=5)
        assert chain.statement(0) == chain.anchor

    def test_statement_m_is_seed(self):
        chain = HashChain(length=5, seed=b"\x02" * 32)
        assert chain.statement(5) == b"\x02" * 32

    def test_each_statement_hashes_to_previous(self):
        chain = HashChain(length=8)
        for period in range(1, 9):
            assert hash_chain_link(chain.statement(period)) == chain.statement(period - 1)

    def test_out_of_range_statement_rejected(self):
        chain = HashChain(length=3)
        with pytest.raises(HashChainError):
            chain.statement(4)
        with pytest.raises(HashChainError):
            chain.statement(-1)

    def test_remaining(self):
        chain = HashChain(length=10)
        assert chain.remaining(0) == 10
        assert chain.remaining(10) == 0
        assert chain.remaining(15) == 0

    def test_length_must_be_positive(self):
        with pytest.raises(ValueError):
            HashChain(length=0)

    def test_random_seeds_differ(self):
        assert HashChain(length=3).anchor != HashChain(length=3).anchor


class TestVerifyFreshness:
    def test_current_statement_verifies(self):
        chain = HashChain(length=10)
        for period in range(0, 10):
            assert verify_freshness(chain.anchor, chain.statement(period), period)

    def test_tolerance_accepts_one_period_newer(self):
        chain = HashChain(length=10)
        # Verifier believes 3 periods elapsed but CA already released period 4.
        assert verify_freshness(chain.anchor, chain.statement(4), 3, tolerance=1)

    def test_statement_older_than_required_is_rejected(self):
        chain = HashChain(length=10)
        # Only 2 periods released, but verifier expects at least 4.
        assert not verify_freshness(chain.anchor, chain.statement(2), 4, tolerance=1)

    def test_forged_statement_rejected(self):
        chain = HashChain(length=10)
        assert not verify_freshness(chain.anchor, b"\x00" * 20, 3)

    def test_wrong_anchor_rejected(self):
        chain_a = HashChain(length=10)
        chain_b = HashChain(length=10)
        assert not verify_freshness(chain_b.anchor, chain_a.statement(2), 2)

    def test_negative_elapsed_rejected(self):
        chain = HashChain(length=4)
        assert not verify_freshness(chain.anchor, chain.statement(0), -1)


class TestStatementAge:
    def test_age_of_each_statement(self):
        chain = HashChain(length=6)
        for period in range(0, 7):
            assert statement_age(chain.anchor, chain.statement(period), 6) == period

    def test_unlinked_value_returns_none(self):
        chain = HashChain(length=6)
        assert statement_age(chain.anchor, b"\xff" * 20, 6) is None

    def test_age_beyond_max_periods_returns_none(self):
        chain = HashChain(length=6)
        assert statement_age(chain.anchor, chain.statement(6), 3) is None
