"""Tests for the fleet-scale attack-window simulation."""

import pytest

from repro.analysis.attack_window import run_attack_window_simulation


@pytest.fixture(scope="module")
def result():
    return run_attack_window_simulation(delta_seconds=10, ra_count=12, seed=5)


class TestAttackWindowSimulation:
    def test_every_ra_eventually_enforces(self, result):
        assert len(result.lags) == 12

    def test_lags_are_positive_and_bounded_by_two_delta(self, result):
        assert all(0 <= lag <= 20 for lag in result.lags)
        assert result.within_two_delta()

    def test_mean_lag_is_roughly_half_a_delta(self, result):
        # Pull phases are uniform in [0, delta); the expected lag is ~delta/2.
        assert 1.0 < result.mean_lag() < 10.0

    def test_fraction_within_is_monotone(self, result):
        assert result.fraction_within(5) <= result.fraction_within(10) <= result.fraction_within(20)
        assert result.fraction_within(20) == 1.0

    def test_deterministic_for_fixed_seed(self):
        first = run_attack_window_simulation(delta_seconds=10, ra_count=6, seed=9)
        second = run_attack_window_simulation(delta_seconds=10, ra_count=6, seed=9)
        assert first.lags == second.lags

    def test_larger_delta_gives_larger_lags(self):
        small = run_attack_window_simulation(delta_seconds=10, ra_count=8, seed=3)
        large = run_attack_window_simulation(delta_seconds=60, ra_count=8, seed=3)
        assert large.mean_lag() > small.mean_lag()
