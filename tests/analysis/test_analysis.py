"""Tests for the experiment harnesses (Figs. 4-7, Tables II-IV inputs)."""

import pytest

from repro.analysis.cost import CostModelConfig, simulate_costs, table_2
from repro.analysis.dissemination_speed import build_revocation_message, run_figure_5
from repro.analysis.overhead import (
    FIGURE7_DELTAS,
    figure_7,
    live_shard_count,
    sharded_storage_overhead,
    status_size_for_dictionary,
    storage_overhead,
)
from repro.analysis.reporting import (
    cdf_points,
    format_cdf_summary,
    format_series,
    format_table,
    human_bytes,
    human_usd,
)
from repro.analysis.timing import run_table_3, throughput_from_table3, time_dictionary_update
from repro.analysis.trace_figures import figure_4
from repro.workloads.population import generate_population
from repro.workloads.revocation_trace import generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace()


@pytest.fixture(scope="module")
def population():
    # A reduced city count keeps the tests fast; totals are preserved.
    return generate_population(total_cities=2_000)


class TestFigure4:
    def test_monthly_series_and_peak(self, trace):
        result = figure_4(trace)
        assert result.peak_month()[0] == "2014-04"
        assert result.peak_to_baseline_ratio() > 3
        assert result.total_revocations > 1_000_000

    def test_heartbleed_focus_resolution(self, trace):
        result = figure_4(trace, focus_bin_seconds=6 * 3600)
        assert len(result.heartbleed_focus) == 8  # two days at 6-hour bins
        assert max(count for _, count in result.heartbleed_focus) > 5_000


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure_5(message_sizes=(0, 15_000, 60_000), repetitions=2)

    def test_message_sizes_grow_with_revocations(self, result):
        assert result.message_bytes[0] < result.message_bytes[15_000] < result.message_bytes[60_000]

    def test_sample_counts(self, result):
        assert len(result.samples[0]) == result.node_count * result.repetitions

    def test_ninety_percent_below_one_second(self, result):
        """The paper's headline: 90 % of nodes download even the largest
        message in under a second (worst case, no caching)."""
        assert result.fraction_below(60_000, 1.0) >= 0.9

    def test_larger_messages_are_slower(self, result):
        assert result.percentile(0, 0.5) <= result.percentile(60_000, 0.5)

    def test_build_message_zero_is_head_only(self):
        assert len(build_revocation_message(0)) < 400


class TestCostModel:
    @pytest.fixture(scope="class")
    def result(self, trace, population):
        return simulate_costs(trace=trace, population=population)

    def test_nineteen_billing_cycles(self, result):
        assert all(len(cycles) == 19 for cycles in result.monthly.values())

    def test_cost_decreases_with_delta(self, result):
        averages = {label: result.average_cost(label) for label in result.monthly}
        assert averages["10s"] > averages["1m"] > averages["1h"] >= averages["1d"]

    def test_heartbleed_cycle_is_the_peak_for_large_delta(self, result):
        peak = result.peak_cycle("1d")
        assert peak.month == "2014-04"

    def test_ra_count_matches_population_model(self, result, population):
        assert result.total_ras == population.total_ras(10)

    def test_cost_scales_inversely_with_clients_per_ra(self, trace, population):
        dense = simulate_costs(
            config=CostModelConfig(clients_per_ra=10), trace=trace, population=population
        )
        sparse = simulate_costs(
            config=CostModelConfig(clients_per_ra=1_000), trace=trace, population=population
        )
        assert dense.average_cost("1m") == pytest.approx(
            100 * sparse.average_cost("1m"), rel=0.05
        )

    def test_table_2_shape(self, trace, population):
        cells = table_2(clients_per_ra_values=(30, 250), deltas={"1h": 3600, "1d": 86_400},
                        trace=trace, population=population)
        assert len(cells) == 4
        lookup = {(cell.clients_per_ra, cell.delta_label): cell.average_cost_usd for cell in cells}
        assert lookup[(30, "1h")] > lookup[(250, "1h")]
        assert lookup[(30, "1h")] > lookup[(30, "1d")]

    def test_sharded_polling_raises_freshness_traffic(self, trace, population):
        base = simulate_costs(
            config=CostModelConfig(clients_per_ra=1_000),
            trace=trace, population=population,
        )
        sharded = simulate_costs(
            config=CostModelConfig(clients_per_ra=1_000, shards_per_dictionary=14),
            trace=trace, population=population,
        )
        # More head objects per poll → strictly higher bytes and cost, but
        # far less than 14×: serial payloads are unchanged.
        assert sharded.average_cost("1h") > base.average_cost("1h")
        month_base = base.monthly["1h"][0]
        month_sharded = sharded.monthly["1h"][0]
        assert month_sharded.bytes_per_ra > month_base.bytes_per_ra
        assert month_sharded.bytes_per_ra < 14 * month_base.bytes_per_ra

    def test_sharded_polling_charges_per_request_overhead(self, trace, population):
        plain = simulate_costs(
            config=CostModelConfig(clients_per_ra=1_000, shards_per_dictionary=2),
            trace=trace, population=population,
        )
        padded = simulate_costs(
            config=CostModelConfig(
                clients_per_ra=1_000, shards_per_dictionary=2,
                per_request_overhead_bytes=50,
            ),
            trace=trace, population=population,
        )
        month_plain = plain.monthly["1h"][0]
        month_padded = padded.monthly["1h"][0]
        polls = 31 * 86_400 / 3600
        # The index fetch plus each of the 2 head fetches per poll carries
        # the request overhead.
        assert month_padded.bytes_per_ra - month_plain.bytes_per_ra == pytest.approx(
            polls * 3 * 50
        )

    def test_shards_per_dictionary_validated(self):
        with pytest.raises(ValueError):
            CostModelConfig(shards_per_dictionary=0)


class TestShardedStorageModel:
    def test_live_shard_count_quarter_width(self):
        assert live_shard_count(90 * 86_400) == 14

    def test_live_shard_count_validates_width(self):
        with pytest.raises(ValueError):
            live_shard_count(0)

    def test_unsharded_grows_monotonically_sharded_plateaus(self):
        result = sharded_storage_overhead(
            revocations_per_day=100,
            days=360,
            certificate_lifetime_days=90,
            shard_width_days=30,
        )
        assert all(
            earlier < later
            for earlier, later in zip(result.unsharded_bytes, result.unsharded_bytes[1:])
        )
        assert result.plateau_bytes < result.unsharded_bytes[-1]
        # Steady state: the footprint stops growing once shards retire.
        assert result.sharded_bytes[-1] == result.plateau_bytes
        assert result.reclaimed_bytes > 0
        assert result.final_savings_bytes() == result.reclaimed_bytes

    def test_plateau_scales_with_lifetime_not_horizon(self):
        short = sharded_storage_overhead(days=240, certificate_lifetime_days=60)
        long = sharded_storage_overhead(days=720, certificate_lifetime_days=60)
        assert short.plateau_bytes == long.plateau_bytes

    def test_model_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            sharded_storage_overhead(days=0)


class TestOverhead:
    def test_figure7_baseline_is_a_few_kilobytes(self, trace):
        result = figure_7(trace)
        # ~254 dictionaries x 20-byte freshness statements ≈ 5 KB per Δ.
        assert 3_000 < result.baseline_bytes() < 8_000

    def test_figure7_small_delta_stays_near_baseline(self, trace):
        result = figure_7(trace, deltas={"10s": 10})
        series = result.series["10s"]
        assert series.max_bytes() < 2 * result.baseline_bytes()

    def test_figure7_daily_delta_reaches_hundreds_of_kilobytes(self, trace):
        result = figure_7(trace, deltas={"1d": 86_400})
        assert result.series["1d"].max_bytes() > 150_000

    def test_figure7_overhead_grows_with_delta(self, trace):
        result = figure_7(trace)
        means = {label: series.mean_bytes() for label, series in result.series.items()}
        assert means["10s"] <= means["1m"] <= means["1h"] <= means["1d"]

    def test_storage_matches_paper_numbers(self):
        current = storage_overhead(1_381_992)
        assert current.storage_bytes == pytest.approx(4.1e6, rel=0.05)
        assert current.memory_bytes == pytest.approx(36e6, rel=0.10)
        ten_million = storage_overhead(10_000_000)
        assert ten_million.storage_bytes == pytest.approx(30e6, rel=0.05)
        assert ten_million.memory_bytes == pytest.approx(260e6, rel=0.10)

    def test_status_size_in_paper_range(self):
        result = status_size_for_dictionary(20_000)
        assert 400 < result.absent_status_bytes < 1_100
        assert result.proof_depth >= 14


class TestTiming:
    @pytest.fixture(scope="class")
    def table3(self):
        return run_table_3(repetitions=40, dictionary_size=2_000, signature_repetitions=3)

    def test_all_rows_present(self, table3):
        operations = {row.operation for row in table3.rows}
        assert operations == {
            "TLS detection (DPI)",
            "Certificates parsing (DPI)",
            "Proof construction",
            "Proof validation",
            "Sig. and freshness valid.",
        }

    def test_min_avg_max_ordering(self, table3):
        for row in table3.rows:
            assert row.min_us <= row.avg_us <= row.max_us

    def test_detection_is_the_cheapest_ra_operation(self, table3):
        assert table3.row("TLS detection (DPI)").avg_us < table3.row("Proof construction").avg_us
        assert (
            table3.row("TLS detection (DPI)").avg_us
            < table3.row("Certificates parsing (DPI)").avg_us
        )

    def test_throughput_estimates(self, table3):
        throughput = throughput_from_table3(table3)
        assert throughput.non_tls_packets_per_second > 10_000
        assert throughput.handshakes_per_second > 500
        assert throughput.client_validations_per_second > 0

    def test_dictionary_update_timing(self):
        timing = time_dictionary_update(batch_size=200, existing_entries=500)
        assert timing.ca_insert_ms > 0
        assert timing.ra_update_ms > 0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2], ["xx", "yyyy"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_format_series_downsamples(self):
        points = [(i, i * i) for i in range(1_000)]
        text = format_series(points, max_points=10)
        assert len(text.splitlines()) <= 14

    def test_cdf_summary_and_points(self):
        samples = [0.1 * i for i in range(1, 101)]
        summary = format_cdf_summary(samples, "lat")
        assert "p90=" in summary and "<= 1.0s" in summary
        points = cdf_points(samples, points=10)
        assert len(points) == 10
        assert points[-1][1] == 1.0

    def test_cdf_summary_empty(self):
        assert "no samples" in format_cdf_summary([], "x")

    def test_humanizers(self):
        assert human_bytes(1536) == "1.5 KB"
        assert human_bytes(5 * 1024**3) == "5.0 GB"
        assert human_usd(54_321) == "$54.321k"
        assert human_usd(12.5) == "$12.50"
