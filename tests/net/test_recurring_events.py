"""Property tests for :meth:`EventScheduler.schedule_every` and ordering.

The fleet engine (:mod:`repro.scenarios.engine`) leans on two scheduler
guarantees that these tests pin down with hypothesis:

* **deterministic same-time ordering** — events scheduled for the same
  instant fire in the order they were scheduled, which is what lets the
  engine prove that period ``p``'s pulls always precede the CA director's
  period ``p + 1`` duty at equal timestamps;
* **drift-free recurrence** — ``schedule_every`` computes firing ``k``
  multiplicatively as ``base + k * interval`` instead of chaining
  ``now + interval``, so long horizons accumulate no floating-point error.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import NetworkError
from repro.net.clock import SimulatedClock
from repro.net.simulator import EventScheduler


# -- deterministic ordering ------------------------------------------------------


@given(
    times=st.lists(
        st.sampled_from([1.0, 2.0, 5.0, 5.0, 5.0, 9.0]), min_size=1, max_size=12
    )
)
@settings(max_examples=200, deadline=None)
def test_same_time_events_fire_in_scheduling_order(times):
    """At equal timestamps the tie-break is scheduling order, always."""
    scheduler = EventScheduler()
    fired = []
    for index, at_time in enumerate(times):
        scheduler.schedule(at_time, lambda now, i=index: fired.append(i))
    scheduler.run_until(100.0)
    expected = [i for _, i in sorted((t, i) for i, t in enumerate(times))]
    assert fired == expected


@given(
    times=st.lists(
        st.floats(min_value=0.5, max_value=50.0, allow_nan=False), min_size=2, max_size=10
    ),
    cancel_index=st.integers(min_value=0, max_value=9),
)
@settings(max_examples=100, deadline=None)
def test_cancelled_events_never_fire(times, cancel_index):
    """Cancelling any one handle removes exactly that event from the run."""
    cancel_index = cancel_index % len(times)
    scheduler = EventScheduler()
    fired = []
    handles = [
        scheduler.schedule(at_time, lambda now, i=index: fired.append(i))
        for index, at_time in enumerate(times)
    ]
    handles[cancel_index].cancel()
    scheduler.run_until(100.0)
    assert cancel_index not in fired
    assert sorted(fired) == sorted(set(range(len(times))) - {cancel_index})


# -- drift-free recurrence -------------------------------------------------------


@given(
    interval=st.floats(min_value=0.01, max_value=7.0, allow_nan=False),
    count=st.integers(min_value=1, max_value=400),
)
@settings(max_examples=100, deadline=None)
def test_schedule_every_is_drift_free(interval, count):
    """Firing ``k`` lands at exactly ``base + k * interval`` — no chaining."""
    scheduler = EventScheduler(SimulatedClock(0.0))
    fired = []
    scheduler.schedule_every(interval, fired.append, count=count)
    scheduler.run_all()
    base = interval  # default start: one interval from now (now == 0).
    assert fired == [base + k * interval for k in range(count)]


def test_schedule_every_honours_explicit_start():
    scheduler = EventScheduler(SimulatedClock(100.0))
    fired = []
    scheduler.schedule_every(10.0, fired.append, start=123.0, count=3)
    scheduler.run_all()
    assert fired == [123.0, 133.0, 143.0]


def test_schedule_every_unbounded_until_cancelled():
    scheduler = EventScheduler()
    fired = []
    handle = scheduler.schedule_every(5.0, fired.append)
    scheduler.run_until(17.0)
    assert fired == [5.0, 10.0, 15.0]
    handle.cancel()
    scheduler.run_until(60.0)
    assert fired == [5.0, 10.0, 15.0]


@given(
    interval=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    count=st.integers(min_value=2, max_value=30),
    cancel_after=st.integers(min_value=1, max_value=29),
)
@settings(max_examples=100, deadline=None)
def test_schedule_every_cancel_mid_stream(interval, count, cancel_after):
    """Cancelling from inside a firing stops every later firing."""
    cancel_after = min(cancel_after, count - 1)
    scheduler = EventScheduler()
    fired = []
    handle = None

    def fire(now):
        fired.append(now)
        if len(fired) == cancel_after:
            handle.cancel()

    handle = scheduler.schedule_every(interval, fire, count=count)
    scheduler.run_all()
    assert len(fired) == cancel_after


def test_schedule_every_rejects_bad_arguments():
    scheduler = EventScheduler()
    with pytest.raises(NetworkError):
        scheduler.schedule_every(0.0, lambda now: None)
    with pytest.raises(NetworkError):
        scheduler.schedule_every(-1.0, lambda now: None)
    with pytest.raises(NetworkError):
        scheduler.schedule_every(1.0, lambda now: None, count=0)


def test_schedule_every_interleaves_with_one_shot_events():
    """Recurring and one-shot events share the same time-ordered queue."""
    scheduler = EventScheduler()
    fired = []
    scheduler.schedule_every(10.0, lambda now: fired.append(("tick", now)), count=3)
    scheduler.schedule(15.0, lambda now: fired.append(("once", now)))
    scheduler.run_all()
    assert fired == [("tick", 10.0), ("once", 15.0), ("tick", 20.0), ("tick", 30.0)]
