"""Tests for the clock, packet, and link primitives."""

import pytest

from repro.errors import NetworkError
from repro.net.clock import SimulatedClock, SkewedClock
from repro.net.link import Link, lan_link, metro_link, wan_link
from repro.net.packet import Direction, FiveTuple, Packet, make_flow


class TestClock:
    def test_advance(self):
        clock = SimulatedClock(100.0)
        assert clock.now() == 100.0
        clock.advance(5.5)
        assert clock.now() == 105.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)

    def test_advance_to_never_goes_backwards(self):
        clock = SimulatedClock(50.0)
        clock.advance_to(40.0)
        assert clock.now() == 50.0
        clock.advance_to(60.0)
        assert clock.now() == 60.0

    def test_skewed_clock(self):
        reference = SimulatedClock(100.0)
        skewed = SkewedClock(reference, skew_seconds=-3.0)
        assert skewed.now() == 97.0
        reference.advance(10)
        assert skewed.now() == 107.0


class TestFiveTuple:
    def test_reversed(self):
        flow = make_flow("1.1.1.1", 1234, "2.2.2.2", 443)
        reverse = flow.reversed()
        assert reverse.src_ip == "2.2.2.2" and reverse.dst_port == 1234
        assert reverse.reversed() == flow

    def test_canonical_is_direction_independent(self):
        flow = make_flow("1.1.1.1", 1234, "2.2.2.2", 443)
        assert flow.canonical() == flow.reversed().canonical()

    def test_str(self):
        assert "1.1.1.1:1234 -> 2.2.2.2:443" in str(make_flow("1.1.1.1", 1234, "2.2.2.2"))


class TestPacket:
    def test_size_includes_headers(self):
        packet = Packet(flow=make_flow("1.1.1.1", 1, "2.2.2.2"), payload=b"\x00" * 100)
        assert packet.size == 140

    def test_with_payload_preserves_flow(self):
        packet = Packet(flow=make_flow("1.1.1.1", 1, "2.2.2.2"), payload=b"old")
        rewritten = packet.with_payload(b"new-bigger-payload")
        assert rewritten.flow == packet.flow
        assert rewritten.payload == b"new-bigger-payload"
        assert rewritten.packet_id == packet.packet_id

    def test_reply_reverses_flow_and_direction(self):
        packet = Packet(
            flow=make_flow("1.1.1.1", 1, "2.2.2.2"),
            payload=b"req",
            direction=Direction.CLIENT_TO_SERVER,
        )
        reply = packet.reply(b"resp")
        assert reply.flow == packet.flow.reversed()
        assert reply.direction == Direction.SERVER_TO_CLIENT
        assert reply.sequence == packet.sequence + 1

    def test_packet_ids_are_unique(self):
        flow = make_flow("1.1.1.1", 1, "2.2.2.2")
        a = Packet(flow=flow, payload=b"a")
        b = Packet(flow=flow, payload=b"b")
        assert a.packet_id != b.packet_id

    def test_direction_reversed(self):
        assert Direction.CLIENT_TO_SERVER.reversed() == Direction.SERVER_TO_CLIENT
        assert Direction.SERVER_TO_CLIENT.reversed() == Direction.CLIENT_TO_SERVER


class TestLink:
    def test_transfer_time_combines_latency_and_bandwidth(self):
        link = Link(latency_seconds=0.010, bandwidth_bytes_per_second=1_000_000)
        assert link.transfer_time(0) == pytest.approx(0.010)
        assert link.transfer_time(500_000) == pytest.approx(0.510)

    def test_round_trip_time(self):
        link = Link(latency_seconds=0.010, bandwidth_bytes_per_second=1_000_000)
        assert link.round_trip_time(1_000, 9_000) == pytest.approx(0.010 * 2 + 0.010)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(NetworkError):
            Link(latency_seconds=-1)
        with pytest.raises(NetworkError):
            Link(latency_seconds=0.1, bandwidth_bytes_per_second=0)
        with pytest.raises(NetworkError):
            Link(latency_seconds=0.1).transfer_time(-5)

    def test_presets_are_ordered_by_latency(self):
        assert lan_link().latency_seconds < metro_link().latency_seconds < wan_link().latency_seconds
