"""Tests for the path engine, middleboxes, and the event scheduler."""

from typing import List

import pytest

from repro.errors import NetworkError
from repro.net.clock import SimulatedClock
from repro.net.link import Link
from repro.net.node import DroppingMiddlebox, Endpoint, TamperingMiddlebox, TransparentMiddlebox
from repro.net.packet import Packet, make_flow
from repro.net.path import NetworkPath, PathEngine
from repro.net.simulator import EventScheduler


class EchoServer(Endpoint):
    """Responds to every packet with an upper-cased copy of its payload."""

    def handle_packet(self, packet: Packet, now: float) -> List[Packet]:
        return [packet.reply(packet.payload.upper(), created_at=now)]


class SilentClient(Endpoint):
    """Collects packets and never responds."""

    def __init__(self, ip_address: str) -> None:
        super().__init__(ip_address)
        self.received: List[Packet] = []

    def handle_packet(self, packet: Packet, now: float) -> List[Packet]:
        self.received.append(packet)
        return []


@pytest.fixture()
def flow():
    return make_flow("10.0.0.1", 40000, "10.0.0.2", 443)


def build_engine(middleboxes, links=None):
    client = SilentClient("10.0.0.1")
    server = EchoServer("10.0.0.2")
    path = NetworkPath(client=client, server=server, middleboxes=middleboxes, links=links)
    return client, server, PathEngine(path, clock=SimulatedClock())


class TestPathEngine:
    def test_request_response_roundtrip(self, flow):
        client, _, engine = build_engine([TransparentMiddlebox()])
        engine.send_from_client(Packet(flow=flow, payload=b"hello"))
        assert client.received[0].payload == b"HELLO"

    def test_latency_accumulates_over_links(self, flow):
        links = [Link(latency_seconds=0.05, bandwidth_bytes_per_second=1e9)] * 2
        client, _, engine = build_engine([TransparentMiddlebox()], links=links)
        engine.send_from_client(Packet(flow=flow, payload=b"x"))
        # Two links out + two links back: at least 4 * 50 ms.
        assert engine.clock.now() >= 0.2

    def test_delivery_log_tracks_bytes(self, flow):
        _, _, engine = build_engine([])
        engine.send_from_client(Packet(flow=flow, payload=b"12345"))
        assert engine.total_wire_bytes() == 2 * (5 + 40)

    def test_dropping_middlebox_blocks_delivery(self, flow):
        dropper = DroppingMiddlebox(lambda packet: True)
        client, _, engine = build_engine([dropper])
        delivered = engine.send_from_client(Packet(flow=flow, payload=b"x"))
        assert delivered == []
        assert client.received == []
        assert dropper.dropped_count == 1

    def test_tampering_middlebox_rewrites_payload(self, flow):
        tamperer = TamperingMiddlebox(
            should_tamper=lambda packet: packet.payload == b"abc",
            tamper=lambda payload: b"xyz",
        )
        client, _, engine = build_engine([tamperer])
        engine.send_from_client(Packet(flow=flow, payload=b"abc"))
        assert client.received[0].payload == b"XYZ"
        assert tamperer.tampered_count == 1

    def test_mismatched_link_count_rejected(self):
        client = SilentClient("10.0.0.1")
        server = EchoServer("10.0.0.2")
        with pytest.raises(NetworkError):
            NetworkPath(client=client, server=server, middleboxes=[], links=[Link(0.01), Link(0.01)])

    def test_runaway_exchange_detected(self, flow):
        class PingPong(Endpoint):
            def handle_packet(self, packet: Packet, now: float) -> List[Packet]:
                return [packet.reply(packet.payload, created_at=now)]

        path = NetworkPath(client=PingPong("a"), server=PingPong("b"), middleboxes=[])
        engine = PathEngine(path)
        with pytest.raises(NetworkError):
            engine.send_from_client(Packet(flow=flow, payload=b"loop"), max_rounds=5)


class TestEventScheduler:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(5.0, lambda now: fired.append(("b", now)))
        scheduler.schedule(1.0, lambda now: fired.append(("a", now)))
        scheduler.run_until(10.0)
        assert fired == [("a", 1.0), ("b", 5.0)]
        assert scheduler.clock.now() == 10.0

    def test_cancellation(self):
        scheduler = EventScheduler()
        fired = []
        handle = scheduler.schedule(2.0, lambda now: fired.append(now))
        handle.cancel()
        scheduler.run_until(5.0)
        assert fired == []

    def test_cannot_schedule_in_the_past(self):
        scheduler = EventScheduler(SimulatedClock(100.0))
        with pytest.raises(NetworkError):
            scheduler.schedule(50.0, lambda now: None)

    def test_periodic_events(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_periodic(10.0, lambda now: fired.append(now))
        scheduler.run_until(35.0)
        assert fired == [10.0, 20.0, 30.0]

    def test_periodic_cancellation_stops_future_firings(self):
        scheduler = EventScheduler()
        fired = []
        handle = scheduler.schedule_periodic(10.0, lambda now: fired.append(now))
        scheduler.run_until(25.0)
        handle.cancel()
        scheduler.run_until(100.0)
        assert fired == [10.0, 20.0]

    def test_run_until_only_processes_due_events(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda now: fired.append(1))
        scheduler.schedule(50.0, lambda now: fired.append(50))
        processed = scheduler.run_until(10.0)
        assert processed == 1
        assert scheduler.pending() == 1

    def test_periodic_requires_positive_period(self):
        with pytest.raises(NetworkError):
            EventScheduler().schedule_periodic(0, lambda now: None)

    def test_events_scheduled_during_run_are_processed(self):
        scheduler = EventScheduler()
        fired = []

        def first(now):
            fired.append("first")
            scheduler.schedule(now + 1.0, lambda n: fired.append("second"))

        scheduler.schedule(1.0, first)
        scheduler.run_until(5.0)
        assert fired == ["first", "second"]
