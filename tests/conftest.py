"""Shared fixtures for the RITM reproduction test suite."""

from __future__ import annotations

import pytest

from repro.crypto.signing import KeyPair
from repro.pki.ca import CertificationAuthority, TrustStore
from repro.pki.serial import SerialNumber
from repro.ritm.config import RITMConfig
from repro.workloads.certificates import generate_corpus


@pytest.fixture(scope="session")
def ca_keys() -> KeyPair:
    """A deterministic CA key pair (Ed25519 keygen is slow in pure Python)."""
    return KeyPair.generate(b"fixture-ca-keys")


@pytest.fixture(scope="session")
def small_corpus():
    """One root CA, one intermediate, a handful of server chains."""
    return generate_corpus(ca_count=1, domains_per_ca=3, use_intermediates=True)


@pytest.fixture(scope="session")
def flat_corpus():
    """Two root CAs issuing directly (2-certificate chains)."""
    return generate_corpus(ca_count=2, domains_per_ca=2, use_intermediates=False)


@pytest.fixture()
def config() -> RITMConfig:
    """A small-Δ RITM configuration convenient for tests."""
    return RITMConfig(delta_seconds=10, chain_length=64)


@pytest.fixture()
def root_ca() -> CertificationAuthority:
    return CertificationAuthority("Test-Root-CA", key_seed=b"test-root-ca")


@pytest.fixture()
def trust_store(root_ca) -> TrustStore:
    store = TrustStore()
    store.add(root_ca)
    return store


def make_serials(count: int, start: int = 1) -> list[SerialNumber]:
    """Consecutive serial numbers, convenient for dictionary tests."""
    return [SerialNumber(value) for value in range(start, start + count)]
