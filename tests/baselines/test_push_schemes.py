"""Tests for CRLSet, short-lived certificates, log-based schemes, and RevCast."""

import pytest

from repro.baselines.base import CheckContext, GroundTruth
from repro.baselines.crlset import CRLSetScheme
from repro.baselines.logbased import ClientDrivenLogScheme, ServerDrivenLogScheme
from repro.baselines.revcast import BroadcastSchedule, RevCastScheme
from repro.baselines.short_lived import ShortLivedCertificateScheme
from repro.pki.serial import SerialNumber

DAY = 86_400.0


@pytest.fixture()
def truth():
    truth = GroundTruth(ca_name="Baseline-CA")
    for value in range(1, 501):
        truth.revoke(SerialNumber(value), now=1_000.0 + value)
    return truth


def ctx(serial: int, now: float, client: str = "client-1", server: str = "site.example"):
    return CheckContext(client_id=client, server_name=server, serial=SerialNumber(serial), now=now)


class TestCRLSet:
    def test_coverage_limits_what_clients_learn(self, truth):
        scheme = CRLSetScheme(truth, coverage=0.01, mean_client_update_lag=0.0)
        hits = sum(
            1
            for value in range(1, 501)
            if scheme.check(ctx(value, now=10_000 + 3 * DAY)).revoked
        )
        # Roughly 1 % of revocations are covered; certainly not all of them.
        assert 0 < hits < 100

    def test_full_coverage_finds_revocations_after_update(self, truth):
        scheme = CRLSetScheme(truth, coverage=1.0, mean_client_update_lag=0.0)
        result = scheme.check(ctx(42, now=10_000 + 3 * DAY))
        assert result.revoked is True

    def test_no_connection_during_handshake(self, truth):
        scheme = CRLSetScheme(truth, coverage=1.0, mean_client_update_lag=0.0)
        scheme.check(ctx(42, now=10_000))
        result = scheme.check(ctx(43, now=10_001))
        assert result.connections_made == 0
        assert result.privacy_leaked_to == []

    def test_update_lag_delays_coverage(self, truth):
        scheme = CRLSetScheme(truth, coverage=1.0, mean_client_update_lag=30 * DAY, seed=1)
        result = scheme.check(ctx(42, now=10_000))
        # The client has not applied any set yet; the revocation is missed.
        assert result.revoked is False

    def test_invalid_coverage_rejected(self, truth):
        with pytest.raises(ValueError):
            CRLSetScheme(truth, coverage=0.0)


class TestShortLived:
    def test_revocation_invisible_within_lifetime(self, truth):
        scheme = ShortLivedCertificateScheme(truth, lifetime_seconds=4 * DAY)
        scheme.server_refresh("site.example", serial_value=42, now=1_000.0)
        result = scheme.check(ctx(42, now=2_000.0))
        assert result.revoked is False
        assert "undetectable until expiry" in result.notes

    def test_compromise_ends_at_expiry(self, truth):
        scheme = ShortLivedCertificateScheme(truth, lifetime_seconds=4 * DAY)
        scheme.server_refresh("site.example", serial_value=42, now=1_000.0)
        result = scheme.check(ctx(42, now=1_000.0 + 5 * DAY))
        assert result.revoked is True

    def test_staleness_bound_is_lifetime(self, truth):
        scheme = ShortLivedCertificateScheme(truth, lifetime_seconds=4 * DAY)
        assert scheme.check(ctx(9_999, now=1_000.0)).staleness_bound_seconds == 4 * DAY

    def test_requires_server_changes(self, truth):
        assert "S" in ShortLivedCertificateScheme(truth).properties().violated_letters()


class TestLogBased:
    def test_client_driven_costs_a_connection_and_privacy(self, truth):
        scheme = ClientDrivenLogScheme(truth)
        result = scheme.check(ctx(42, now=100_000))
        assert result.revoked is True
        assert result.connections_made == 1
        assert result.privacy_leaked_to == ["revocation log"]

    def test_server_driven_staples_without_client_connection(self, truth):
        scheme = ServerDrivenLogScheme(truth)
        result = scheme.check(ctx(42, now=100_000))
        assert result.revoked is True
        assert result.connections_made == 0
        assert result.privacy_leaked_to == []

    def test_log_mmd_delays_visibility(self, truth):
        scheme = ClientDrivenLogScheme(truth, mmd_seconds=4 * 3600)
        scheme.check(ctx(10_000, now=100_000))  # publishes a tree head
        truth.revoke(SerialNumber(10_000), now=100_500)
        within_mmd = scheme.check(ctx(10_000, now=101_000))
        assert within_mmd.revoked is False
        after_mmd = scheme.check(ctx(10_000, now=100_000 + 5 * 3600))
        assert after_mmd.revoked is True

    def test_server_driven_fetch_period_adds_staleness(self, truth):
        scheme = ServerDrivenLogScheme(truth, mmd_seconds=3600, server_fetch_period=6 * 3600)
        scheme.check(ctx(10_000, now=100_000))
        truth.revoke(SerialNumber(10_000), now=100_100)
        stale = scheme.check(ctx(10_000, now=100_000 + 2 * 3600))
        assert stale.revoked is False

    def test_transparency_provided(self, truth):
        assert "T" not in ClientDrivenLogScheme(truth).properties().violated_letters()
        assert "T" not in ServerDrivenLogScheme(truth).properties().violated_letters()


class TestRevCast:
    def test_broadcast_backlog_scales_with_burst(self, truth):
        schedule = BroadcastSchedule(truth)
        one_hour_burst = schedule.backlog_seconds(5_440)
        heartbleed_burst = schedule.backlog_seconds(80_000)
        assert heartbleed_burst > one_hour_burst
        # 80k revocations at ~280 bits each over 421.8 bit/s takes > 14 hours.
        assert heartbleed_burst > 14 * 3600

    def test_client_receives_revocations_after_airtime(self, truth):
        scheme = RevCastScheme(truth)
        early = scheme.check(ctx(1, now=1_001.5))
        assert early.revoked is False
        assert "queued" in early.notes
        late = scheme.check(ctx(1, now=1_100.0))
        assert late.revoked is True

    def test_no_connection_and_no_privacy_leak(self, truth):
        scheme = RevCastScheme(truth)
        result = scheme.check(ctx(1, now=1_000_000.0))
        assert result.connections_made == 0
        assert result.privacy_leaked_to == []

    def test_unknown_serial_never_revoked(self, truth):
        scheme = RevCastScheme(truth)
        assert scheme.check(ctx(999_999, now=1_000_000.0)).revoked is False
