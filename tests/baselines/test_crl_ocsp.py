"""Tests for the CRL, delta-CRL, OCSP, and OCSP-stapling baselines."""

import pytest

from repro.baselines.base import CheckContext, GroundTruth
from repro.baselines.crl import CRLScheme, DeltaCRLScheme
from repro.baselines.ocsp import OCSPScheme, OCSPStaplingScheme
from repro.pki.serial import SerialNumber

DAY = 86_400.0


@pytest.fixture()
def truth():
    truth = GroundTruth(ca_name="Baseline-CA")
    truth.revoke(SerialNumber(100), now=1_000.0)
    truth.revoke(SerialNumber(200), now=2_000.0)
    return truth


def ctx(serial: int, now: float, client: str = "client-1", server: str = "site.example"):
    return CheckContext(client_id=client, server_name=server, serial=SerialNumber(serial), now=now)


class TestGroundTruth:
    def test_revocation_time_respected(self, truth):
        assert truth.is_revoked(SerialNumber(100), now=1_500)
        assert not truth.is_revoked(SerialNumber(100), now=500)
        assert not truth.is_revoked(SerialNumber(999))
        assert truth.count(now=1_500) == 1


class TestCRL:
    def test_first_check_downloads_full_crl(self, truth):
        scheme = CRLScheme(truth)
        result = scheme.check(ctx(100, now=5_000))
        assert result.revoked is True
        assert result.connections_made == 1
        assert result.bytes_downloaded > 0
        assert "CA distribution point" in result.privacy_leaked_to

    def test_cached_crl_avoids_second_download(self, truth):
        scheme = CRLScheme(truth)
        scheme.check(ctx(100, now=5_000))
        result = scheme.check(ctx(999, now=6_000))
        assert result.connections_made == 0
        assert result.revoked is False

    def test_cache_expires_at_next_update(self, truth):
        scheme = CRLScheme(truth, publication_period=DAY)
        scheme.check(ctx(100, now=5_000))
        result = scheme.check(ctx(100, now=5_000 + 2 * DAY))
        assert result.connections_made == 1

    def test_revocation_invisible_until_next_publication(self, truth):
        """The CRL attack window: a new revocation is not seen by clients that
        hold a still-valid cached CRL."""
        scheme = CRLScheme(truth, publication_period=DAY)
        scheme.check(ctx(300, now=5_000))  # warms the cache (300 not yet revoked)
        truth.revoke(SerialNumber(300), now=6_000)
        result = scheme.check(ctx(300, now=7_000))
        assert result.revoked is False  # missed: cached CRL predates the revocation
        late = scheme.check(ctx(300, now=5_000 + DAY + 1))
        assert late.revoked is True

    def test_unavailable_distribution_point(self, truth):
        scheme = CRLScheme(truth)
        scheme.distribution_point.available = False
        result = scheme.check(ctx(100, now=5_000))
        assert result.revoked is None

    def test_crl_size_grows_with_revocations(self, truth):
        scheme = CRLScheme(truth)
        small = scheme.check(ctx(100, now=5_000, client="cold-1")).bytes_downloaded
        for value in range(1_000, 1_200):
            truth.revoke(SerialNumber(value), now=5_100)
        scheme_fresh = CRLScheme(truth)
        large = scheme_fresh.check(ctx(100, now=6_000, client="cold-2")).bytes_downloaded
        assert large > small

    def test_distribution_point_learns_client_interest(self, truth):
        scheme = CRLScheme(truth)
        scheme.check(ctx(100, now=5_000, client="alice"))
        assert scheme.distribution_point.request_log[0][0] == "alice"


class TestDeltaCRL:
    def test_warm_client_downloads_only_delta(self, truth):
        scheme = DeltaCRLScheme(truth, publication_period=DAY)
        cold = scheme.check(ctx(100, now=5_000))
        truth.revoke(SerialNumber(300), now=6_000)
        warm = scheme.check(ctx(300, now=5_000 + DAY + 1))
        assert warm.revoked is True
        assert 0 < warm.bytes_downloaded < cold.bytes_downloaded

    def test_within_period_no_download(self, truth):
        scheme = DeltaCRLScheme(truth, publication_period=DAY)
        scheme.check(ctx(100, now=5_000))
        result = scheme.check(ctx(200, now=5_500))
        assert result.connections_made == 0
        assert result.revoked is True


class TestOCSP:
    def test_query_returns_current_status(self, truth):
        scheme = OCSPScheme(truth)
        assert scheme.check(ctx(100, now=5_000)).revoked is True
        assert scheme.check(ctx(999, now=5_000)).revoked is False

    def test_every_check_costs_a_connection_and_leaks_privacy(self, truth):
        scheme = OCSPScheme(truth)
        result = scheme.check(ctx(999, now=5_000))
        assert result.connections_made == 1
        assert result.latency_seconds > 0
        assert result.privacy_leaked_to == ["CA OCSP responder"]
        assert scheme.responder.query_log[0][0] == "client-1"

    def test_responder_outage_hard_fail(self, truth):
        scheme = OCSPScheme(truth)
        scheme.responder.available = False
        assert scheme.check(ctx(100, now=5_000)).revoked is None

    def test_responder_outage_soft_fail_accepts_revoked(self, truth):
        """Browsers' soft-fail: an outage silently disables revocation checking."""
        scheme = OCSPScheme(truth, soft_fail=True)
        scheme.responder.available = False
        result = scheme.check(ctx(100, now=5_000))
        assert result.revoked is False  # the revoked certificate is accepted


class TestOCSPStapling:
    def test_staple_served_without_client_connection(self, truth):
        scheme = OCSPStaplingScheme(truth)
        result = scheme.check(ctx(999, now=5_000))
        assert result.revoked is False
        assert result.connections_made == 0
        assert result.privacy_leaked_to == []

    def test_stale_staple_hides_new_revocation(self, truth):
        """The stapling attack window equals the response lifetime."""
        scheme = OCSPStaplingScheme(truth, response_lifetime=4 * DAY)
        scheme.check(ctx(300, now=5_000))  # server obtains a "good" staple
        truth.revoke(SerialNumber(300), now=6_000)
        within_window = scheme.check(ctx(300, now=6_500))
        assert within_window.revoked is False
        after_refresh = scheme.check(ctx(300, now=5_000 + 4 * DAY))
        assert after_refresh.revoked is True

    def test_partial_deployment_leaves_clients_uncovered(self, truth):
        scheme = OCSPStaplingScheme(truth, deployment_rate=0.0001)
        results = [
            scheme.check(ctx(100, now=5_000, server=f"site-{index}.example"))
            for index in range(50)
        ]
        assert any(result.revoked is None for result in results)

    def test_properties_require_server_changes(self, truth):
        assert "S" in OCSPStaplingScheme(truth).properties().violated_letters()
        assert "S" not in OCSPScheme(truth).properties().violated_letters()
