"""Tests for the RITM adapter and the Table IV comparison harness."""

import pytest

from repro.baselines.base import CheckContext, ComparisonParameters, GroundTruth
from repro.baselines.comparison import (
    DEFAULT_PARAMETERS,
    PAPER_FORMULAS,
    build_comparison_table,
    default_scheme_factories,
    evaluate_formula,
)
from repro.baselines.ritm_adapter import RITMAdapterScheme
from repro.pki.serial import SerialNumber


def ctx(serial: int, now: float):
    return CheckContext(
        client_id="client-1", server_name="site.example", serial=SerialNumber(serial), now=now
    )


class TestRITMAdapter:
    def test_clean_and_revoked_serials(self):
        truth = GroundTruth(ca_name="Adapter-CA")
        scheme = RITMAdapterScheme(truth)
        assert scheme.check(ctx(5, now=1_000)).revoked is False
        truth.revoke(SerialNumber(5), now=1_500)
        assert scheme.check(ctx(5, now=2_000)).revoked is True

    def test_no_client_connection_and_no_privacy_leak(self):
        truth = GroundTruth(ca_name="Adapter-CA")
        scheme = RITMAdapterScheme(truth)
        result = scheme.check(ctx(5, now=1_000))
        assert result.connections_made == 0
        assert result.privacy_leaked_to == []
        assert result.staleness_bound_seconds == 2 * scheme.delta_seconds

    def test_revocation_visible_within_two_delta(self):
        truth = GroundTruth(ca_name="Adapter-CA")
        scheme = RITMAdapterScheme(truth, delta_seconds=10)
        scheme.check(ctx(7, now=1_000))
        truth.revoke(SerialNumber(7), now=1_005)
        result = scheme.check(ctx(7, now=1_012))
        assert result.revoked is True

    def test_status_bytes_are_compact(self):
        truth = GroundTruth(ca_name="Adapter-CA")
        for value in range(1, 2_000):
            truth.revoke(SerialNumber(value), now=500)
        scheme = RITMAdapterScheme(truth)
        result = scheme.check(ctx(1_000_000, now=1_000))
        assert result.bytes_downloaded < 1_500

    def test_no_properties_violated(self):
        assert RITMAdapterScheme(GroundTruth()).properties().violated_letters() == "-"


class TestComparisonTable:
    @pytest.fixture(scope="class")
    def rows(self):
        return {row.scheme: row for row in build_comparison_table()}

    def test_all_paper_rows_present(self, rows):
        assert set(rows) == set(PAPER_FORMULAS)

    def test_quantities_match_paper_formulas(self, rows):
        """Every scheme's computed storage/connection counts equal the paper's
        symbolic formulas evaluated at the same parameters."""
        for name, row in rows.items():
            formulas = PAPER_FORMULAS[name]
            assert row.storage_global == evaluate_formula(
                formulas["storage_global"], DEFAULT_PARAMETERS
            ), name
            assert row.storage_client == evaluate_formula(
                formulas["storage_client"], DEFAULT_PARAMETERS
            ), name
            assert row.conn_global == evaluate_formula(
                formulas["conn_global"], DEFAULT_PARAMETERS
            ), name
            assert row.conn_client == evaluate_formula(
                formulas["conn_client"], DEFAULT_PARAMETERS
            ), name

    def test_violated_properties_match_paper(self, rows):
        for name, row in rows.items():
            assert row.violated_properties == PAPER_FORMULAS[name]["violated"], name

    def test_ritm_is_the_only_scheme_without_violations(self, rows):
        clean = [name for name, row in rows.items() if row.violated_properties == "-"]
        assert clean == ["RITM"]

    def test_clients_store_nothing_under_ritm(self, rows):
        assert rows["RITM"].storage_client == 0
        assert rows["RITM"].conn_client == 0

    def test_custom_parameters_scale_formulas(self):
        small = ComparisonParameters(
            n_revocations=1_000, n_clients=10_000, n_servers=100, n_cas=5, n_ras=50
        )
        rows = {row.scheme: row for row in build_comparison_table(parameters=small)}
        assert rows["CRL"].storage_global == 1_000 * (10_000 + 1)
        assert rows["OCSP"].conn_global == 10_000 * 100
        assert rows["RITM"].storage_global == 1_000 * 51
        assert rows["RITM"].conn_global == 5

    def test_default_factories_are_functional(self):
        truth = GroundTruth(ca_name="Func-CA")
        truth.revoke(SerialNumber(11), now=100)
        for name, factory in default_scheme_factories().items():
            scheme = factory(truth)
            result = scheme.check(ctx(11, now=100_000 + 10 * 86_400))
            assert result.scheme == scheme.name

    def test_evaluate_formula_handles_empty(self):
        assert evaluate_formula("-", DEFAULT_PARAMETERS) == 0
        assert evaluate_formula("", DEFAULT_PARAMETERS) == 0
