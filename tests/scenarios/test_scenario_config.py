"""Validation and override behaviour of the scenario config family."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.config import (
    AgentSpec,
    FaultSpec,
    RevocationEvent,
    ScenarioConfig,
    WorkloadSpec,
)


def make_config(**overrides) -> ScenarioConfig:
    defaults = dict(
        name="cfg-test",
        title="t",
        summary="s",
        description="d",
        delta_seconds=10,
        duration_periods=4,
        agents=(AgentSpec("ra-1"),),
        workload=WorkloadSpec(
            kind="scripted", events=(RevocationEvent(at_period=1, count=5),)
        ),
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def test_valid_config_builds():
    config = make_config()
    assert config.attack_window_seconds() == 20
    assert config.effective_chain_length(4) >= 4


@pytest.mark.parametrize(
    "overrides, message",
    [
        (dict(name=""), "name cannot be empty"),
        (dict(delta_seconds=0), "delta_seconds must be positive"),
        (dict(agents=()), "at least one agent"),
        (dict(agents=(AgentSpec("a"), AgentSpec("a"))), "unique"),
        (dict(store_engine="imaginary"), "unknown store engine"),
        (dict(compare_engines=("imaginary",)), "unknown comparison engine"),
        (dict(baseline="crl"), "unknown baseline"),
        (dict(duration_periods=0), "duration_periods must be at least 1"),
        (dict(long_lived_session=True), "requires victim_host"),
        (dict(gossip_audit=True), "requires victim_host"),
        (dict(baseline="ocsp-stapling"), "requires victim_host"),
    ],
)
def test_invalid_configs_rejected(overrides, message):
    with pytest.raises(ConfigurationError, match=message):
        make_config(**overrides)


def test_gossip_audit_needs_two_agents():
    with pytest.raises(ConfigurationError, match="two agents"):
        make_config(gossip_audit=True, victim_host="bank.example")


def test_gossip_audit_forbids_revoke_victim_events():
    with pytest.raises(ConfigurationError, match="audit phase"):
        make_config(
            gossip_audit=True,
            victim_host="bank.example",
            agents=(AgentSpec("a"), AgentSpec("b")),
            workload=WorkloadSpec(
                kind="scripted",
                events=(RevocationEvent(at_period=1, revoke_victim=True),),
            ),
        )


def test_event_after_end_rejected():
    with pytest.raises(ConfigurationError, match="after the scenario ends"):
        make_config(
            workload=WorkloadSpec(
                kind="scripted", events=(RevocationEvent(at_period=9, count=1),)
            )
        )


def test_fault_after_end_rejected():
    with pytest.raises(ConfigurationError, match="starts after the scenario ends"):
        make_config(faults=(FaultSpec(kind="ca-outage", at_period=9),))


def test_unknown_fault_kind_rejected():
    with pytest.raises(ConfigurationError, match="unknown fault kind"):
        FaultSpec(kind="cosmic-rays", at_period=0)


def test_restart_fault_unknown_agent_rejected():
    with pytest.raises(ConfigurationError, match="unknown agent"):
        make_config(faults=(FaultSpec(kind="ra-restart", at_period=0, agent="ghost"),))


def test_empty_event_rejected():
    with pytest.raises(ConfigurationError, match="must revoke"):
        RevocationEvent(at_period=0, count=0)


def test_unknown_region_rejected():
    with pytest.raises(ConfigurationError, match="unknown region"):
        AgentSpec("ra", region="Atlantis")


def test_trace_workload_validation():
    with pytest.raises(ConfigurationError, match="bad trace window date"):
        WorkloadSpec(kind="trace", trace_start="not-a-date", trace_end="2014-04-20")
    with pytest.raises(ConfigurationError, match="not be after"):
        WorkloadSpec(kind="trace", trace_start="2014-04-20", trace_end="2014-04-14")
    with pytest.raises(ConfigurationError, match="cannot carry scripted events"):
        WorkloadSpec(
            kind="trace",
            trace_start="2014-04-14",
            trace_end="2014-04-20",
            events=(RevocationEvent(at_period=0, count=1),),
        )


def test_trace_scenario_requires_zero_duration():
    trace = WorkloadSpec(kind="trace", trace_start="2014-04-14", trace_end="2014-04-20")
    with pytest.raises(ConfigurationError, match="duration_periods=0"):
        make_config(workload=trace, duration_periods=3)


def test_ca_share_bounds():
    with pytest.raises(ConfigurationError, match="ca_share"):
        WorkloadSpec(kind="scripted", ca_share=0.0)
    with pytest.raises(ConfigurationError, match="ca_share"):
        WorkloadSpec(kind="scripted", ca_share=1.5)


def test_with_overrides_revalidates():
    config = make_config()
    with pytest.raises(ConfigurationError):
        config.with_overrides(delta_seconds=-1)


def test_with_overrides_accepts_workload_dict():
    config = make_config()
    updated = config.with_overrides(workload={"serial_seed": 99})
    assert updated.workload.serial_seed == 99
    assert updated.workload.events == config.workload.events
    # the original is untouched (frozen dataclasses)
    assert config.workload.serial_seed != 99 or dataclasses.replace(config) == config


def test_smoke_applies_overrides():
    config = make_config(smoke_overrides={"duration_periods": 2, "workload": {"events": ()}})
    smoked = config.smoke()
    assert smoked.duration_periods == 2
    assert smoked.workload.events == ()
    # no overrides → same config back
    assert make_config().smoke() == make_config()


def test_fault_covers():
    fault = FaultSpec(kind="ca-outage", at_period=2, duration_periods=3)
    assert not fault.covers(1)
    assert fault.covers(2)
    assert fault.covers(4)
    assert not fault.covers(5)


class TestCrashRestartValidation:
    """The crash/durable restart-mode fields on FaultSpec."""

    def test_crash_and_durable_restart_builds(self):
        fault = FaultSpec(
            kind="ra-restart", at_period=1, crash=True, durable=True
        )
        config = make_config(faults=(fault,))
        assert config.faults[0].durable is True

    def test_cold_crash_builds(self):
        fault = FaultSpec(kind="ra-restart", at_period=1, crash=True)
        assert make_config(faults=(fault,)).faults[0].crash is True

    def test_durable_requires_crash(self):
        with pytest.raises(ConfigurationError, match="crash=True"):
            FaultSpec(kind="ra-restart", at_period=1, durable=True)

    @pytest.mark.parametrize("kind", ["ca-outage", "tampered-batch"])
    def test_crash_fields_only_for_ra_restart(self, kind):
        with pytest.raises(ConfigurationError, match="ra-restart"):
            FaultSpec(kind=kind, at_period=1, crash=True)


class TestAdversarialFaultValidation:
    """The replay/rotation/equivocation fault kinds and rotation knobs."""

    def test_replayed_head_builds(self):
        config = make_config(
            duration_periods=6, faults=(FaultSpec(kind="replayed-head", at_period=4),)
        )
        assert config.faults[0].kind == "replayed-head"

    def test_rotation_knobs_build(self):
        config = make_config(
            duration_periods=8, key_rotation_periods=3, key_overlap_periods=1
        )
        assert config.key_rotation_periods == 3

    def test_retired_key_forgery_requires_rotation(self):
        with pytest.raises(ConfigurationError, match="needs key_rotation_periods"):
            make_config(
                duration_periods=8,
                faults=(FaultSpec(kind="retired-key-forgery", at_period=6),),
            )

    def test_retired_key_forgery_must_fire_after_overlap_expiry(self):
        # Rotation at period 3, overlap 1 period → the forgery only means
        # anything from period 5 on (the retired key is still honest before).
        with pytest.raises(ConfigurationError, match="overlap window has expired"):
            make_config(
                duration_periods=8,
                key_rotation_periods=3,
                key_overlap_periods=1,
                faults=(FaultSpec(kind="retired-key-forgery", at_period=4),),
            )

    def test_negative_rotation_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot be negative"):
            make_config(key_rotation_periods=-1)

    def test_overlap_must_be_shorter_than_rotation(self):
        with pytest.raises(ConfigurationError, match="smaller than key_rotation"):
            make_config(
                duration_periods=8, key_rotation_periods=2, key_overlap_periods=2
            )

    def test_rotation_forbidden_for_sharded(self):
        with pytest.raises(ConfigurationError, match="not supported for sharded"):
            make_config(
                sharded=True,
                shard_width_periods=2,
                cert_lifetime_periods=3,
                key_rotation_periods=3,
            )

    def _two_region_agents(self):
        return (AgentSpec("honest", region="Europe"), AgentSpec("target", region="Japan"))

    def test_equivocating_ca_builds_with_split_regions(self):
        config = make_config(
            agents=self._two_region_agents(),
            faults=(FaultSpec(kind="equivocating-ca", at_period=2, agent="target"),),
        )
        assert config.faults[0].agent == "target"

    def test_equivocating_ca_needs_two_agents(self):
        with pytest.raises(ConfigurationError, match="at least two agents"):
            make_config(faults=(FaultSpec(kind="equivocating-ca", at_period=2),))

    def test_equivocating_ca_needs_an_honest_region(self):
        # Both RAs in the targeted region would both swallow the forgery —
        # nobody is left holding the honest view to gossip against.
        with pytest.raises(ConfigurationError, match="different region"):
            make_config(
                agents=(
                    AgentSpec("honest", region="Europe"),
                    AgentSpec("target", region="Europe"),
                ),
                faults=(FaultSpec(kind="equivocating-ca", at_period=2, agent="target"),),
            )

    def test_equivocating_ca_unknown_target_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown agent"):
            make_config(
                agents=self._two_region_agents(),
                faults=(FaultSpec(kind="equivocating-ca", at_period=2, agent="ghost"),),
            )

    def test_equivocating_ca_conflicts_with_gossip_audit(self):
        with pytest.raises(ConfigurationError, match="one or the other"):
            make_config(
                agents=self._two_region_agents(),
                victim_host="bank.example",
                gossip_audit=True,
                faults=(FaultSpec(kind="equivocating-ca", at_period=2, agent="target"),),
            )


class TestShardedValidation:
    """Sharded mode (§VIII) needs a width, a lifetime, and no study phases."""

    def make_sharded(self, **overrides):
        defaults = dict(sharded=True, shard_width_periods=2, cert_lifetime_periods=3)
        defaults.update(overrides)
        return make_config(**defaults)

    def test_valid_sharded_config_builds(self):
        config = self.make_sharded()
        assert config.sharded
        assert config.shard_width_periods == 2

    def test_sharded_requires_width(self):
        with pytest.raises(ConfigurationError, match="shard_width_periods"):
            self.make_sharded(shard_width_periods=0)

    def test_sharded_requires_lifetime(self):
        with pytest.raises(ConfigurationError, match="cert_lifetime_periods"):
            self.make_sharded(cert_lifetime_periods=0)

    def test_sharded_rejects_victim_phases(self):
        with pytest.raises(ConfigurationError, match="study phases"):
            self.make_sharded(victim_host="shop.example")

    def test_sharded_rejects_faults(self):
        with pytest.raises(ConfigurationError, match="fault injection"):
            self.make_sharded(
                faults=(FaultSpec(kind="ca-outage", at_period=1),)
            )

    def test_sharded_requires_scripted_workload(self):
        trace = WorkloadSpec(
            kind="trace", trace_start="2014-04-14", trace_end="2014-04-15"
        )
        with pytest.raises(ConfigurationError, match="scripted"):
            self.make_sharded(workload=trace, duration_periods=0)

    def test_shard_knobs_require_sharded(self):
        with pytest.raises(ConfigurationError, match="require sharded"):
            make_config(shard_width_periods=2)

    def test_prune_cadence_validated(self):
        with pytest.raises(ConfigurationError, match="prune_every_periods"):
            make_config(prune_every_periods=0)
