"""The ``python -m repro`` CLI surface."""

import json

import pytest

from repro.scenarios.cli import main


def test_list_shows_all_scenarios(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("heartbleed", "quickstart", "iot-long-lived", "ca-audit-gossip"):
        assert name in out
    assert "scenarios registered" in out


def test_describe(capsys):
    assert main(["describe", "heartbleed"]) == 0
    out = capsys.readouterr().out
    assert "Heartbleed" in out
    assert "delta_seconds" in out


def test_describe_unknown_scenario(capsys):
    assert main(["describe", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_run_writes_reports(tmp_path, capsys):
    assert main(["run", "quickstart", "--smoke", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "[PASS]" in out and "[FAIL]" not in out
    payload = json.loads((tmp_path / "quickstart.json").read_text())
    assert payload["scenario"] == "quickstart"
    assert (tmp_path / "quickstart.md").read_text().startswith("# Scenario report")


def test_run_with_engine_override(capsys):
    assert main(["run", "quickstart", "--smoke", "--engine", "naive"]) == 0
    assert "[PASS]" in capsys.readouterr().out


def test_run_rejects_unknown_engine_at_parse_time(capsys):
    """--engine validates against the registry before any scenario runs."""
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "quickstart", "--engine", "imaginary"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "invalid choice: 'imaginary'" in err
    # the error names every registered engine, durable included
    for engine in ("naive", "incremental", "durable"):
        assert engine in err


def test_run_with_durable_engine(capsys):
    assert main(["run", "quickstart", "--smoke", "--engine", "durable"]) == 0
    assert "[PASS]" in capsys.readouterr().out


def test_module_entry_point_exists():
    import repro.__main__  # noqa: F401  (importable without executing main)


@pytest.mark.parametrize("argv", [[], ["bogus-verb"]])
def test_bad_invocations_exit_nonzero(argv):
    with pytest.raises(SystemExit):
        main(argv)
