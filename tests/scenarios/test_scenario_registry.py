"""Registry round-trip and error behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import all_scenarios, get, names, register, registry
from repro.scenarios.config import AgentSpec, ScenarioConfig, WorkloadSpec
from repro.scenarios.config import RevocationEvent

EXPECTED_BUILTINS = {
    "quickstart",
    "heartbleed",
    "iot-long-lived",
    "ca-audit-gossip",
    "flash-crowd",
    "degraded-ra",
    "tampered-cdn",
}


def _minimal_config(name: str) -> ScenarioConfig:
    return ScenarioConfig(
        name=name,
        title="t",
        summary="s",
        description="d",
        delta_seconds=10,
        duration_periods=1,
        agents=(AgentSpec("ra"),),
        workload=WorkloadSpec(
            kind="scripted", events=(RevocationEvent(at_period=0, count=1),)
        ),
    )


def test_builtin_scenarios_are_registered():
    assert EXPECTED_BUILTINS <= set(names())
    assert len(names()) >= 6


def test_round_trip_by_name():
    for config in all_scenarios():
        assert get(config.name) is config
        assert config.name in names()


def test_unknown_name_raises_configuration_error():
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        get("no-such-scenario")


def test_duplicate_registration_rejected():
    config = _minimal_config("registry-test-duplicate")
    register(config)
    try:
        with pytest.raises(ConfigurationError, match="already registered"):
            register(_minimal_config("registry-test-duplicate"))
    finally:
        registry.unregister("registry-test-duplicate")
    assert "registry-test-duplicate" not in names()


def test_names_are_sorted():
    assert names() == sorted(names())
