"""Smoke-run every registered scenario and pin the report schema."""

import json

import pytest

from repro.scenarios import (
    CACHE_METRIC_KEYS,
    DISSEMINATION_METRIC_KEYS,
    FLEET_METRIC_KEYS,
    REPLICATION_METRIC_KEYS,
    REPORT_SCHEMA_KEYS,
    all_scenarios,
    get,
    run_scenario,
)

_REPORT_CACHE = {}


def report_for(name: str):
    """Run each scenario's smoke variant once per test session."""
    if name not in _REPORT_CACHE:
        _REPORT_CACHE[name] = run_scenario(get(name), smoke=True)
    return _REPORT_CACHE[name]


def scenario_names():
    return [config.name for config in all_scenarios()]


@pytest.mark.parametrize("name", scenario_names())
def test_report_schema_is_pinned(name):
    report = report_for(name)
    payload = report.to_json_dict()
    assert tuple(sorted(payload)) == tuple(sorted(REPORT_SCHEMA_KEYS))
    dissemination = payload["metrics"]["dissemination"]
    assert tuple(sorted(dissemination)) == tuple(sorted(DISSEMINATION_METRIC_KEYS))
    hot_path = payload["metrics"]["hot_path"]
    assert sorted(hot_path) == ["edge_object_cache", "proof_cache", "root_cache"]
    for section in hot_path.values():
        assert tuple(sorted(section)) == tuple(sorted(CACHE_METRIC_KEYS))
    fleet = payload["metrics"]["fleet"]
    assert tuple(sorted(fleet)) == tuple(sorted(FLEET_METRIC_KEYS))
    # the replication block appears iff the scenario injects a region outage
    # or opts into always-on WAL segment streaming
    if any(
        fault.startswith("region-outage") for fault in payload["config"]["faults"]
    ) or payload["config"].get("segment_streaming"):
        replication = payload["metrics"]["replication"]
        assert tuple(sorted(replication)) == tuple(sorted(REPLICATION_METRIC_KEYS))
    else:
        assert "replication" not in payload["metrics"]
    assert fleet["scheduler_events_processed"] > 0
    assert fleet["fleet_size"] == len(payload["metrics"]["agents"])
    # the whole report must survive a JSON round trip
    assert json.loads(json.dumps(payload)) == payload


@pytest.mark.parametrize("name", scenario_names())
def test_dissemination_metrics_nonzero(name):
    report = report_for(name)
    dissemination = report.metrics["dissemination"]
    assert dissemination["pulls"] > 0
    assert dissemination["bytes_downloaded"] > 0
    assert dissemination["freshness_applied"] > 0


@pytest.mark.parametrize("name", scenario_names())
def test_all_checks_pass(name):
    report = report_for(name)
    assert report.checks, "every scenario must assert something about its outcome"
    failed = [check.name for check in report.failed_checks()]
    assert not failed, f"{name} failed checks: {failed}"


@pytest.mark.parametrize("name", scenario_names())
def test_markdown_rendering(name):
    report = report_for(name)
    markdown = report.to_markdown()
    assert report.title in markdown
    assert "## Metrics" in markdown
    assert "## Checks" in markdown


def test_reports_written_to_disk(tmp_path):
    report = report_for("quickstart")
    json_path, md_path = report.write(tmp_path)
    assert json_path.exists() and md_path.exists()
    payload = json.loads(json_path.read_text())
    assert payload["scenario"] == "quickstart"


def test_quickstart_outcome_details():
    report = report_for("quickstart")
    victim = report.extras["victim"]
    assert victim["initial_handshake_accepted"] is True
    assert victim["final_handshake_accepted"] is False
    assert victim["final_rejection"] == "certificate-revoked"


def test_iot_detects_within_bound():
    report = report_for("iot-long-lived")
    victim = report.extras["victim"]
    bound = report.config["attack_window_bound_seconds"]
    assert victim["detection_lag_seconds"] is not None
    assert victim["detection_lag_seconds"] <= bound
    baseline = report.extras["baseline"]
    assert baseline["reports_revoked_one_hour_after_revocation"] is False
    assert baseline["worst_case_exposure_seconds"] > bound


def test_gossip_audit_produces_valid_evidence():
    report = report_for("ca-audit-gossip")
    audit = report.extras["gossip_audit"]
    assert audit["evidence_valid_under_ca_key"] is True
    assert audit["misbehavior_reports"] >= 1
    assert audit["targeted_believes_victim_revoked"] is False


def test_flash_crowd_engines_agree():
    report = report_for("flash-crowd")
    comparison = report.extras["engine_comparison"]
    assert comparison["roots_agree"] is True
    for engine in ("naive", "incremental", "durable"):
        assert comparison[engine]["serials"] > 0
        assert comparison[engine]["seconds"] >= 0


def test_degraded_ra_attack_window():
    report = report_for("degraded-ra")
    window = report.metrics["attack_window"]
    assert window["per_agent"]["flaky-ra"] > window["bound_seconds"]
    assert window["per_agent"]["healthy-ra"] <= window["bound_seconds"]
    assert report.metrics["agents"]["flaky-ra"]["missed_pulls"] > 0


def test_victim_revoked_during_ca_outage_is_tracked():
    """A revoke_victim event queued by a ca-outage must still mark the victim."""
    from repro.scenarios.config import (
        AgentSpec,
        FaultSpec,
        RevocationEvent,
        ScenarioConfig,
        WorkloadSpec,
    )

    config = ScenarioConfig(
        name="outage-victim-adhoc",
        title="t",
        summary="s",
        description="d",
        delta_seconds=10,
        duration_periods=6,
        agents=(AgentSpec("ra"),),
        workload=WorkloadSpec(
            kind="scripted",
            events=(RevocationEvent(at_period=2, revoke_victim=True),),
        ),
        faults=(FaultSpec(kind="ca-outage", at_period=2, duration_periods=2),),
        victim_host="late.example",
    )
    report = run_scenario(config)
    victim = report.extras["victim"]
    assert victim["revoked_at"] is not None
    assert victim["final_handshake_accepted"] is False
    check_names = {check.name for check in report.checks}
    assert "revoked-handshake-rejected" in check_names
    assert report.all_checks_passed, [c.name for c in report.failed_checks()]


def test_sharded_longrun_reclaims_storage_and_matches_oracle():
    report = report_for("sharded-longrun")
    assert report.all_checks_passed, [c.name for c in report.failed_checks()]
    study = report.extras["sharded_storage"]
    assert study["ra_reclaimed_bytes"] > 0
    assert study["ca_shards_retired"] > 0
    assert study["verdict_mismatches"] == 0
    assert study["live_serials_checked"] > 0
    assert study["read_path_pure"] is True
    assert study["baseline_monotonic"] is True
    assert study["sharded_final_bytes"] < study["baseline_final_bytes"]
    sharding = report.metrics["sharding"]
    assert sharding["ra_reclaimed_bytes"] == study["ra_reclaimed_bytes"]
    assert sharding["ca_shard_count"] > 0
    # every timeline sample reports both series
    for sample in study["timeline"]:
        assert {"ra_storage_bytes", "baseline_storage_bytes"} <= set(sample)


def test_sharded_run_converges_across_window_boundary():
    """Regression: a shard-window boundary inside the final period must not
    fail replicas-converged (the RA prunes at pull time, one Δ before the
    CA's next refresh retires the same shard)."""
    from repro.scenarios.config import RevocationEvent

    config = get("sharded-longrun").with_overrides(
        duration_periods=38,
        workload={
            "events": tuple(
                RevocationEvent(at_period=period, count=5, reason="steady")
                for period in range(38)
            )
        },
    )
    report = run_scenario(config)
    assert report.all_checks_passed, [c.name for c in report.failed_checks()]


def test_region_outage_restores_via_peer_anti_entropy():
    report = report_for("region-outage")
    assert report.all_checks_passed, [c.name for c in report.failed_checks()]
    check_names = {check.name for check in report.checks}
    assert {
        "peers-absorb-within-2delta",
        "ca-egress-less-than-N-cold-syncs",
        "restored-ra-syncs-from-peer",
        "verdicts-match-unsharded-oracle",
    } <= check_names

    study = report.extras["replication"]
    assert study["failed_region"] == "Europe"
    assert study["verdicts_checked"] > 0
    assert study["verdict_mismatches"] == 0
    assert study["recovery_origin_bytes"] < study["cold_sync_bytes_fleet"]
    assert study["restored_agents"]
    for record in study["restored_agents"].values():
        assert record["peer"]  # caught up from a named healthy peer
        assert record["segments_from_peer"] >= 1
        assert record["cold_sync_fallbacks"] == 0
    for survivor in study["survivors"].values():
        assert survivor["region"] != study["failed_region"]

    replication = report.metrics["replication"]
    assert replication["segments_published"] >= 1
    assert replication["segments_from_peer"] >= 1
    assert replication["cold_sync_fallbacks"] == 0
    kinds = {event["kind"] for event in report.events}
    assert {"region-failed", "region-restored", "anti-entropy"} <= kinds


def test_tampered_cdn_recovers_via_resync():
    report = report_for("tampered-cdn")
    assert report.metrics["dissemination"]["resyncs"] >= 1
    kinds = {event["kind"] for event in report.events}
    assert "tampered-batch" in kinds
    assert "backlog-flush" in kinds
    # the replica still converged to the honest dictionary
    sizes = {agent["size"] for agent in report.metrics["agents"].values()}
    assert sizes == {report.metrics["dictionary"]["ca_size"]}
