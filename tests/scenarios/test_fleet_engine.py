"""Fleet-engine behaviour: determinism, parallelism equivalence, knobs.

These tests pin the properties ISSUE.md demands of the discrete-event
engine:

* two runs of the same seeded config produce **byte-identical** report
  JSON (all randomness flows from ``ScenarioConfig.rng_seed``);
* the ``parallelism`` knob changes wall-clock only — verdicts, metrics,
  and events are unchanged between ``serial`` and the pooled modes;
* the concurrency knobs validate strictly and the fleet expansion is
  deterministic.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import get, run_scenario
from repro.scenarios.config import AgentSpec, ScenarioConfig, WorkloadSpec
from repro.scenarios.engine.mailbox import Mailbox, Message
from repro.scenarios.engine.metrics import overlap_factor, peak_concurrency


def _fleet_config(**overrides):
    """A small ad-hoc fleet config for validation tests."""
    base = dict(
        name="fleet-adhoc",
        title="t",
        summary="s",
        description="d",
        delta_seconds=10,
        duration_periods=4,
        agents=(AgentSpec("ra-a"), AgentSpec("ra-b")),
        workload=WorkloadSpec(kind="scripted", events=()),
    )
    base.update(overrides)
    return ScenarioConfig(**base)


# -- determinism -----------------------------------------------------------------


def test_same_seed_runs_are_byte_identical():
    """Two runs of the seeded thundering-herd smoke produce identical JSON."""
    first = run_scenario(get("thundering-herd"), smoke=True)
    second = run_scenario(get("thundering-herd"), smoke=True)
    assert first.to_json() == second.to_json()


def test_different_seed_changes_sampling_not_verdicts():
    config = get("thundering-herd").smoke()
    baseline = run_scenario(config)
    reseeded = run_scenario(config.with_overrides(rng_seed=1234))
    assert reseeded.to_json() != baseline.to_json()
    assert baseline.all_checks_passed and reseeded.all_checks_passed
    # The aggregate load is pinned by config, not by the seed.
    assert (
        reseeded.metrics["fleet"]["handshakes_served"]
        == baseline.metrics["fleet"]["handshakes_served"]
        == config.client_handshakes
    )


# -- parallelism is perf-only ----------------------------------------------------


def _normalised(report):
    """The report JSON with the parallelism mode labels blanked out."""
    payload = json.loads(report.to_json())
    payload["metrics"]["fleet"]["parallelism"] = ""
    if "fleet" in payload["config"]:
        payload["config"]["fleet"]["parallelism"] = ""
    return payload


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_parallelism_modes_pin_the_serial_report(mode):
    """Only the executor changes; every verdict, metric, and event is pinned."""
    config = get("staggered-pulls").smoke()
    serial = run_scenario(config)
    pooled = run_scenario(config.with_overrides(parallelism=mode))
    assert _normalised(serial) == _normalised(pooled)
    assert pooled.metrics["fleet"]["parallelism"] == mode


# -- knob validation -------------------------------------------------------------


def test_fleet_size_cannot_shrink_the_declared_agents():
    with pytest.raises(ConfigurationError, match="fleet_size"):
        _fleet_config(fleet_size=1)


def test_worst_case_pull_offset_must_fit_in_one_period():
    with pytest.raises(ConfigurationError, match="worst-case pull offset"):
        _fleet_config(fleet_size=6, pull_stagger_seconds=2.5)
    with pytest.raises(ConfigurationError, match="worst-case pull offset"):
        _fleet_config(pull_jitter_seconds=10.0)
    # The same shape fits once the offsets shrink.
    _fleet_config(fleet_size=6, pull_stagger_seconds=1.0, pull_jitter_seconds=0.5)


def test_link_profile_and_overrides_validate():
    with pytest.raises(ConfigurationError, match="unknown link profile"):
        _fleet_config(link_profile="carrier-pigeon")
    with pytest.raises(ConfigurationError, match="unknown agent"):
        _fleet_config(link_overrides={"nobody": "wan"})
    with pytest.raises(ConfigurationError, match="expected one of"):
        _fleet_config(link_overrides={"ra-a": "mixed"})
    _fleet_config(link_profile="mixed", link_overrides={"ra-b": "stalled"})


def test_parallelism_mode_validates():
    with pytest.raises(ConfigurationError, match="unknown parallelism"):
        _fleet_config(parallelism="gpu")


def test_client_handshakes_rejected_for_sharded_runs():
    with pytest.raises(ConfigurationError, match="not supported for sharded"):
        get("sharded-longrun").with_overrides(client_handshakes=100)


def test_negative_knobs_rejected():
    with pytest.raises(ConfigurationError):
        _fleet_config(pull_stagger_seconds=-1.0)
    with pytest.raises(ConfigurationError):
        _fleet_config(pull_jitter_seconds=-1.0)
    with pytest.raises(ConfigurationError):
        _fleet_config(client_handshakes=-5)


# -- fleet expansion -------------------------------------------------------------


def test_effective_agents_cycle_templates_deterministically():
    config = _fleet_config(fleet_size=5)
    names = [spec.name for spec in config.effective_agents()]
    assert names == ["ra-a", "ra-b", "ra-a-000", "ra-b-001", "ra-a-002"]
    regions = [spec.region for spec in config.effective_agents()]
    assert regions[2] == regions[0] and regions[3] == regions[1]


def test_effective_agents_is_identity_without_fleet_size():
    config = _fleet_config()
    assert config.effective_agents() == config.agents


# -- contention measures ---------------------------------------------------------


def test_overlap_factor_measures_concurrency():
    assert overlap_factor([]) == 0.0
    assert overlap_factor([(0.0, 1.0), (2.0, 3.0)]) == pytest.approx(1.0)
    # Three perfectly-overlapping unit pulls: 3s of work in a 1s union.
    assert overlap_factor([(0.0, 1.0)] * 3) == pytest.approx(3.0)
    assert overlap_factor([(5.0, 5.0)]) == 0.0


def test_peak_concurrency_sweep_line():
    assert peak_concurrency([]) == 0
    assert peak_concurrency([(0.0, 2.0), (1.0, 3.0), (2.5, 4.0)]) == 2
    # Back-to-back pulls do not overlap: the end sorts before the start.
    assert peak_concurrency([(0.0, 1.0), (1.0, 2.0)]) == 1
    assert peak_concurrency([(0.0, 4.0)] * 5) == 5


# -- mailboxes -------------------------------------------------------------------


def test_mailbox_drains_in_fifo_order_and_tracks_depth():
    box = Mailbox("ra-a")
    assert box.drain() == []
    box.post(Message(kind="client-batch", posted_at=1.0, payload={"count": 3}))
    box.post(Message(kind="head-published", posted_at=2.0))
    assert box.depth() == 2
    assert box.max_depth == 2
    drained = box.drain()
    assert [message.kind for message in drained] == ["client-batch", "head-published"]
    assert box.depth() == 0
    assert box.max_depth == 2  # the high-watermark survives the drain
