"""Streamed client load: soak scenario, legacy parity, config validation.

Three guarantees pinned here:

* **Legacy parity** — refactoring :class:`ClientLoadActor` onto
  :func:`uniform_slot_counts` changed zero bytes of output for the
  pre-existing ``client_handshakes`` scenarios.  A verbatim copy of the
  pre-refactor bespoke-``divmod`` actor is monkeypatched in and the
  thundering-herd smoke report must match byte for byte.
* **Soak pins** — the registered ``soak`` scenario's smoke run passes all
  of its checks (including the three soak verdicts) and is deterministic
  once the wall-clock/RSS observability fields are masked out.
* **Config validation** — the new ``client_stream`` / ``segment_streaming``
  knobs reject the combinations the engine cannot honour.
"""

import dataclasses
import json

import pytest

from repro.scenarios import get, run_scenario
from repro.scenarios.config import (
    AgentSpec,
    ClientStreamSpec,
    ConfigurationError,
    ScenarioConfig,
)
from repro.scenarios.engine.actors import Message
from repro.scenarios.engine import core as engine_core


class LegacyClientLoadActor:
    """Verbatim pre-refactor actor: bespoke divmod spread, bare counts."""

    def __init__(self, engine):
        self.engine = engine
        state = engine.state
        cfg = state.config
        fleet = len(state.runtimes)
        slots = len(state.periods) * fleet
        base, remainder = divmod(cfg.client_handshakes, slots)
        self._counts = [
            base + (1 if slot < remainder else 0) for slot in range(slots)
        ]
        self._fleet = fleet
        self._period = 0

    def start(self):
        state = self.engine.state
        delta = state.config.delta_seconds
        self.engine.scheduler.schedule_every(
            interval=float(delta),
            callback=self._on_tick,
            start=state.periods[0][1] + delta / 2.0,
            count=len(state.periods),
            label="client-load",
        )

    def _on_tick(self, now):
        state = self.engine.state
        period = self._period
        self._period += 1
        for index, runtime in enumerate(state.runtimes):
            count = self._counts[period * self._fleet + index]
            if count:
                runtime.mailbox.post(
                    Message(
                        kind="client-batch",
                        posted_at=now,
                        payload={"period": period, "count": count},
                    )
                )


def masked_payload(report):
    """Report dict with the intentionally nondeterministic fields removed."""
    payload = report.to_json_dict()
    soak = payload.get("extras", {}).get("soak")
    if soak:
        soak["throughput"]["wall_seconds"] = None
        soak["throughput"]["events_per_second"] = None
        for sample in soak["timeline"]:
            sample.pop("wall_seconds", None)
            sample.pop("max_rss_kb", None)
    return payload


def test_refactored_client_load_is_byte_identical_for_legacy_scenarios(
    monkeypatch,
):
    new_report = run_scenario(get("thundering-herd"), smoke=True)
    monkeypatch.setattr(engine_core, "ClientLoadActor", LegacyClientLoadActor)
    old_report = run_scenario(get("thundering-herd"), smoke=True)
    assert json.dumps(new_report.to_json_dict(), sort_keys=True) == json.dumps(
        old_report.to_json_dict(), sort_keys=True
    )


def test_soak_smoke_passes_every_check():
    report = run_scenario(get("soak"), smoke=True)
    failed = [check.name for check in report.failed_checks()]
    assert not failed, f"soak failed checks: {failed}"
    names = {check.name for check in report.checks}
    assert {
        "soak-verdicts-match-oracle",
        "memory-bounded",
        "all-subsystems-exercised",
        "client-load-served",
    } <= names
    soak = report.extras["soak"]
    assert soak["verdict_mismatches"] == 0
    assert soak["memory"]["bounded"] is True
    assert soak["subsystems"]["handshakes_served"] == soak["events_total"]
    assert len(soak["timeline"]) > 0
    # replication metrics surface because the soak opts into segment streaming
    assert report.metrics["replication"]["segments_applied"] > 0


def test_soak_smoke_is_deterministic_modulo_wall_clock():
    first = masked_payload(run_scenario(get("soak"), smoke=True))
    second = masked_payload(run_scenario(get("soak"), smoke=True))
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def _config(**overrides):
    base = dict(
        name="unit",
        title="unit",
        description="unit",
        delta_seconds=3600,
        duration_periods=4,
        agents=(AgentSpec(name="ra", region="us"),),
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def test_client_stream_and_client_handshakes_are_mutually_exclusive():
    stream = ClientStreamSpec(clients=10, sites=5, events_total=20)
    with pytest.raises(ConfigurationError):
        _config(client_stream=stream, client_handshakes=100)


def test_client_stream_rejects_sharded_runs():
    stream = ClientStreamSpec(clients=10, sites=5, events_total=20)
    with pytest.raises(ConfigurationError):
        _config(
            client_stream=stream,
            sharded=True,
            shard_width_periods=2,
            cert_lifetime_periods=2,
        )


def test_segment_streaming_rejects_sharded_runs():
    with pytest.raises(ConfigurationError):
        _config(
            segment_streaming=True,
            sharded=True,
            shard_width_periods=2,
            cert_lifetime_periods=2,
        )


def test_client_stream_spec_validates_positive_fields():
    with pytest.raises(ConfigurationError):
        ClientStreamSpec(clients=0, sites=5, events_total=20)
    with pytest.raises(ConfigurationError):
        ClientStreamSpec(clients=10, sites=5, events_total=20, batch_size=0)


def test_smoke_overrides_reach_the_stream_spec():
    config = get("soak")
    smoke = config.smoke()
    assert smoke.client_stream is not None
    assert smoke.client_stream.clients < config.client_stream.clients
    assert smoke.client_stream.events_total < config.client_stream.events_total
    # non-stream fields survive the partial override
    assert smoke.client_stream.zipf_exponent == config.client_stream.zipf_exponent


def test_with_overrides_replaces_stream_mapping_fields():
    config = get("soak")
    varied = config.with_overrides(client_stream={"events_total": 99})
    assert varied.client_stream.events_total == 99
    assert varied.client_stream.clients == config.client_stream.clients
