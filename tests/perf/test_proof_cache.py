"""Tests for the Merkle proof cache: keying, LRU bound, invalidation."""

import pytest

from repro.perf import ProofCache

ROOT_A = b"\xaa" * 20
ROOT_B = b"\xbb" * 20


class TestProofCache:
    def test_round_trip(self):
        cache = ProofCache()
        assert cache.get("CA", "", ROOT_A, 7) is None
        cache.put("CA", "", ROOT_A, 7, "proof-7")
        assert cache.get("CA", "", ROOT_A, 7) == "proof-7"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_key_includes_root_hash(self):
        cache = ProofCache()
        cache.put("CA", "", ROOT_A, 7, "old-proof")
        assert cache.get("CA", "", ROOT_B, 7) is None

    def test_key_includes_shard(self):
        cache = ProofCache()
        cache.put("CA", "CA#expiry-1", ROOT_A, 7, "shard-proof")
        assert cache.get("CA", "", ROOT_A, 7) is None
        assert cache.get("CA", "CA#expiry-2", ROOT_A, 7) is None
        assert cache.get("CA", "CA#expiry-1", ROOT_A, 7) == "shard-proof"

    def test_invalidate_dictionary_unsharded(self):
        cache = ProofCache()
        cache.put("CA-A", "", ROOT_A, 1, "a1")
        cache.put("CA-A", "", ROOT_A, 2, "a2")
        cache.put("CA-B", "", ROOT_B, 1, "b1")
        assert cache.invalidate_dictionary("CA-A") == 2
        assert len(cache) == 1
        assert cache.get("CA-B", "", ROOT_B, 1) == "b1"
        assert cache.stats.invalidations == 2

    def test_invalidate_dictionary_by_shard_name(self):
        cache = ProofCache()
        cache.put("CA", "CA#expiry-1", ROOT_A, 1, "s1")
        cache.put("CA", "CA#expiry-2", ROOT_A, 1, "s2")
        assert cache.invalidate_dictionary("CA#expiry-1") == 1
        assert cache.get("CA", "CA#expiry-2", ROOT_A, 1) == "s2"

    def test_invalidate_unknown_dictionary_is_noop(self):
        cache = ProofCache()
        assert cache.invalidate_dictionary("nope") == 0

    def test_lru_bound_and_eviction_index_cleanup(self):
        cache = ProofCache(maxsize=2)
        cache.put("CA", "", ROOT_A, 1, "p1")
        cache.put("CA", "", ROOT_A, 2, "p2")
        assert cache.get("CA", "", ROOT_A, 1) == "p1"  # p2 becomes LRU
        cache.put("CA", "", ROOT_A, 3, "p3")
        assert cache.stats.evictions == 1
        assert cache.get("CA", "", ROOT_A, 2) is None
        # The evicted key is gone from the index too: invalidation counts 2.
        assert cache.invalidate_dictionary("CA") == 2

    def test_maxsize_zero_disables(self):
        cache = ProofCache(maxsize=0)
        cache.put("CA", "", ROOT_A, 1, "p1")
        assert len(cache) == 0
        assert cache.get("CA", "", ROOT_A, 1) is None

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            ProofCache(maxsize=-1)

    def test_clear(self):
        cache = ProofCache()
        cache.put("CA", "", ROOT_A, 1, "p1")
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.invalidate_dictionary("CA") == 0
