"""Tests for the verified-root cache: memoization that cannot go stale."""

from repro.crypto.signing import KeyPair
from repro.dictionary.signed_root import SignedRoot
from repro.errors import SignatureError
from repro.perf import VerifiedRootCache

import pytest


def make_root(keys: KeyPair, ca_name="Example CA", size=3, timestamp=1_400_000_000):
    unsigned = SignedRoot(
        ca_name=ca_name,
        root=b"\x11" * 20,
        size=size,
        anchor=b"\x22" * 20,
        timestamp=timestamp,
        chain_length=64,
    )
    return unsigned.sign(keys.private)


@pytest.fixture()
def keys():
    return KeyPair.generate(b"root-cache")


class TestVerifiedRootCache:
    def test_verifies_once_then_hits(self, keys):
        cache = VerifiedRootCache()
        root = make_root(keys)
        assert cache.verify(root, keys.public)
        assert cache.verify(root, keys.public)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_tampered_root_never_served_from_cache(self, keys):
        cache = VerifiedRootCache()
        root = make_root(keys)
        assert cache.verify(root, keys.public)
        # Same CA, same size, different content under the same signature:
        # the cache key covers the exact payload bytes, so this is a miss
        # and the full verification rejects it.
        forged = SignedRoot(
            ca_name=root.ca_name,
            root=b"\x99" * 20,
            size=root.size,
            anchor=root.anchor,
            timestamp=root.timestamp,
            chain_length=root.chain_length,
            signature=root.signature,
        )
        assert not cache.verify(forged, keys.public)
        with pytest.raises(SignatureError):
            cache.verify_or_raise(forged, keys.public)

    def test_failures_are_not_cached(self, keys):
        cache = VerifiedRootCache()
        bad = make_root(keys)
        bad = SignedRoot(
            ca_name=bad.ca_name,
            root=bad.root,
            size=bad.size,
            anchor=bad.anchor,
            timestamp=bad.timestamp,
            chain_length=bad.chain_length,
            signature=b"\x00" * 64,
        )
        assert not cache.verify(bad, keys.public)
        assert not cache.verify(bad, keys.public)
        assert len(cache) == 0
        assert cache.stats.misses == 2

    def test_different_key_is_a_different_entry(self, keys):
        other = KeyPair.generate(b"other")
        cache = VerifiedRootCache()
        root = make_root(keys)
        assert cache.verify(root, keys.public)
        assert not cache.verify(root, other.public)
        assert cache.stats.hits == 0

    def test_rotated_epoch_is_reverified(self, keys):
        cache = VerifiedRootCache()
        assert cache.verify(make_root(keys, timestamp=100), keys.public)
        assert cache.verify(make_root(keys, timestamp=200), keys.public)
        assert cache.stats.misses == 2

    def test_invalidate_ca_drops_only_that_ca(self, keys):
        cache = VerifiedRootCache()
        cache.verify(make_root(keys, ca_name="CA-A"), keys.public)
        cache.verify(make_root(keys, ca_name="CA-B"), keys.public)
        assert cache.invalidate_ca("CA-A") == 1
        assert cache.invalidate_ca("CA-A") == 0
        assert len(cache) == 1
        assert cache.stats.invalidations == 1
        # CA-B's verdict is still warm.
        cache.verify(make_root(keys, ca_name="CA-B"), keys.public)
        assert cache.stats.hits == 1

    def test_verify_many_mixes_hits_and_batch_misses(self, keys):
        cache = VerifiedRootCache()
        roots = [make_root(keys, size=size) for size in range(1, 6)]
        assert cache.verify(roots[0], keys.public)
        verdicts = cache.verify_many(roots, keys.public)
        assert verdicts == [True] * 5
        assert cache.stats.hits == 1
        assert len(cache) == 5

    def test_eviction_keeps_index_consistent(self, keys):
        cache = VerifiedRootCache(maxsize=2)
        for size in range(1, 5):
            cache.verify(make_root(keys, size=size), keys.public)
        assert len(cache) == 2
        assert cache.stats.evictions == 2
        # Index cleanup: invalidating the CA drops exactly the live entries.
        assert cache.invalidate_ca("Example CA") == 2
        assert len(cache) == 0

    def test_maxsize_zero_disables_memoization(self, keys):
        cache = VerifiedRootCache(maxsize=0)
        root = make_root(keys)
        assert cache.verify(root, keys.public)
        assert cache.verify(root, keys.public)
        assert cache.stats.misses == 2
        assert len(cache) == 0

    def test_clear(self, keys):
        cache = VerifiedRootCache()
        cache.verify(make_root(keys), keys.public)
        assert cache.clear() == 1
        assert len(cache) == 0
