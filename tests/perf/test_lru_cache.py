"""Tests for the shared LRU cache primitive and its counters."""

import pytest

from repro.perf import CacheStats, LRUCache


class TestCacheStats:
    def test_hit_rate_without_lookups(self):
        assert CacheStats().hit_rate() == 0.0

    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate() == 0.75

    def test_as_dict_shape(self):
        payload = CacheStats(hits=1, misses=1, evictions=2, invalidations=3).as_dict()
        assert payload == {
            "hits": 1,
            "misses": 1,
            "evictions": 2,
            "invalidations": 3,
            "hit_rate": 0.5,
        }


class TestLRUCache:
    def test_get_put_counts(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.stats.evictions == 1
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_put_existing_key_updates_without_evicting(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert cache.stats.evictions == 0
        assert cache.get("a") == 10

    def test_maxsize_zero_disables(self):
        cache = LRUCache(maxsize=0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.stats.misses == 1

    def test_maxsize_none_is_unbounded(self):
        cache = LRUCache(maxsize=None)
        for index in range(10_000):
            cache.put(index, index)
        assert len(cache) == 10_000
        assert cache.stats.evictions == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=-1)

    def test_peek_does_not_count_or_reorder(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.stats.lookups == 0
        cache.put("c", 3)  # "a" is still LRU because peek did not refresh it
        assert cache.peek("a") is None

    def test_discard_and_clear_count_invalidations(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.discard("a")
        assert not cache.discard("missing")
        assert cache.clear() == 1
        assert cache.stats.invalidations == 2
        assert len(cache) == 0

    def test_get_with_validity_predicate_treats_dead_entry_as_miss(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", {"expires": 10})
        assert cache.get("a", is_valid=lambda entry: entry["expires"] > 5) == {
            "expires": 10
        }
        assert cache.get("a", is_valid=lambda entry: entry["expires"] > 20) is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.invalidations == 1
        assert len(cache) == 0  # the dead entry was dropped
