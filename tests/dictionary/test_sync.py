"""Tests for the replica synchronization protocol."""

import pytest

from repro.crypto.signing import KeyPair
from repro.dictionary.authdict import CADictionary, ReplicaDictionary
from repro.dictionary.sync import SyncRequest, SyncServer, resynchronize
from repro.errors import DesynchronizedError

from tests.conftest import make_serials


@pytest.fixture()
def keys():
    return KeyPair.generate(b"sync-tests")


@pytest.fixture()
def world(keys):
    master = CADictionary("CA-S", keys, delta=10, chain_length=16)
    server = SyncServer(master)
    replica = ReplicaDictionary("CA-S", keys.public)
    return master, server, replica


class TestSyncServer:
    def test_history_tracks_issuances(self, world):
        master, server, _ = world
        issuance = master.insert(make_serials(3), now=100)
        server.record_issuance(issuance)
        assert server.history_length() == 3

    def test_out_of_order_history_rejected(self, world):
        master, server, _ = world
        master.insert(make_serials(2), now=100)
        second = master.insert(make_serials(2, start=10), now=110)
        with pytest.raises(DesynchronizedError):
            server.record_issuance(second)

    def test_serve_returns_missing_suffix(self, world):
        master, server, _ = world
        server.record_issuance(master.insert(make_serials(3), now=100))
        server.record_issuance(master.insert(make_serials(2, start=10), now=110))
        response = server.serve(SyncRequest(ca_name="CA-S", have_count=3))
        assert response.first_number == 4
        assert len(response.serials) == 2
        assert response.signed_root == master.signed_root

    def test_serve_rejects_wrong_ca(self, world):
        master, server, _ = world
        server.record_issuance(master.insert(make_serials(1), now=100))
        with pytest.raises(DesynchronizedError):
            server.serve(SyncRequest(ca_name="CA-T", have_count=0))

    def test_serve_rejects_impossible_have_count(self, world):
        master, server, _ = world
        server.record_issuance(master.insert(make_serials(1), now=100))
        with pytest.raises(DesynchronizedError):
            server.serve(SyncRequest(ca_name="CA-S", have_count=5))

    def test_serve_before_any_root(self, world):
        _, server, _ = world
        with pytest.raises(DesynchronizedError):
            server.serve(SyncRequest(ca_name="CA-S", have_count=0))


class TestResynchronize:
    def test_cold_replica_catches_up_completely(self, world, keys):
        master, server, replica = world
        server.record_issuance(master.insert(make_serials(4), now=100))
        server.record_issuance(master.insert(make_serials(3, start=20), now=110))
        applied = resynchronize(replica, server)
        assert applied == 7
        assert replica.size == master.size
        assert replica.root() == master.root()
        # And the replica can immediately serve verifiable statuses.
        from repro.pki.serial import SerialNumber

        replica.prove(SerialNumber(999)).verify(keys.public, now=112, delta=10)

    def test_partial_replica_fetches_only_missing(self, world):
        master, server, replica = world
        first = master.insert(make_serials(4), now=100)
        server.record_issuance(first)
        replica.update(first)
        server.record_issuance(master.insert(make_serials(3, start=20), now=110))
        applied = resynchronize(replica, server)
        assert applied == 3
        assert replica.size == 7

    def test_current_replica_applies_nothing_but_refreshes_root(self, world):
        master, server, replica = world
        issuance = master.insert(make_serials(2), now=100)
        server.record_issuance(issuance)
        replica.update(issuance)
        applied = resynchronize(replica, server)
        assert applied == 0
        assert replica.signed_root == master.signed_root

    def test_sync_response_encoded_size_grows_with_missing_entries(self, world):
        master, server, _ = world
        server.record_issuance(master.insert(make_serials(10), now=100))
        small = server.serve(SyncRequest(ca_name="CA-S", have_count=9))
        large = server.serve(SyncRequest(ca_name="CA-S", have_count=0))
        assert large.encoded_size() > small.encoded_size()
