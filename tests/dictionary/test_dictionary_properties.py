"""Property-based tests for the authenticated dictionary's core invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.signing import KeyPair
from repro.dictionary.authdict import CADictionary, ReplicaDictionary
from repro.errors import RevokedCertificateError
from repro.pki.serial import SerialNumber

KEYS = KeyPair.generate(b"property-dictionary")

serial_values = st.integers(min_value=1, max_value=2**24 - 1)
batches = st.lists(
    st.sets(serial_values, min_size=1, max_size=15),
    min_size=1,
    max_size=5,
)


def distinct_batches(raw_batches):
    """Make batches pairwise disjoint so no serial is revoked twice."""
    seen = set()
    result = []
    for batch in raw_batches:
        cleaned = sorted(value for value in batch if value not in seen)
        seen.update(cleaned)
        if cleaned:
            result.append(cleaned)
    return result


@settings(max_examples=25, deadline=None)
@given(batches)
def test_replica_always_converges_to_master(raw_batches):
    """Applying every issuance in order always reproduces the master state."""
    cleaned = distinct_batches(raw_batches)
    master = CADictionary("CA-H", KEYS, delta=10, chain_length=8)
    replica = ReplicaDictionary("CA-H", KEYS.public)
    now = 1000
    for batch in cleaned:
        issuance = master.insert([SerialNumber(value) for value in batch], now=now)
        replica.update(issuance)
        now += 10
    assert replica.size == master.size
    assert replica.root() == master.root()


@settings(max_examples=25, deadline=None)
@given(batches, serial_values)
def test_status_verdict_matches_ground_truth(raw_batches, probe):
    """For any serial, the verified status agrees with whether it was revoked."""
    cleaned = distinct_batches(raw_batches)
    master = CADictionary("CA-H", KEYS, delta=10, chain_length=8)
    revoked = set()
    now = 1000
    for batch in cleaned:
        master.insert([SerialNumber(value) for value in batch], now=now)
        revoked.update(batch)
        now += 10
    status = master.prove(SerialNumber(probe))
    assert status.is_revoked == (probe in revoked)
    if probe in revoked:
        with pytest.raises(RevokedCertificateError):
            status.verify(KEYS.public, now=now, delta=10)
    else:
        status.verify(KEYS.public, now=now, delta=10)


@settings(max_examples=20, deadline=None)
@given(st.sets(serial_values, min_size=1, max_size=30))
def test_append_only_roots_never_repeat(values):
    """Every insertion produces a new, distinct signed root (append-only history)."""
    master = CADictionary("CA-H", KEYS, delta=10, chain_length=8)
    roots = set()
    now = 1000
    for value in sorted(values):
        issuance = master.insert([SerialNumber(value)], now=now)
        assert issuance.signed_root.root not in roots
        roots.add(issuance.signed_root.root)
        now += 10
