"""Tests for the CA master dictionary and RA replicas (Fig. 2 interface)."""

import pytest

from repro.crypto.signing import KeyPair
from repro.dictionary.authdict import CADictionary, ReplicaDictionary
from repro.dictionary.freshness import FreshnessStatement
from repro.dictionary.signed_root import SignedRoot
from repro.errors import DesynchronizedError, DictionaryError, SignatureError
from repro.pki.serial import SerialNumber

from tests.conftest import make_serials


@pytest.fixture()
def keys():
    return KeyPair.generate(b"authdict-tests")


@pytest.fixture()
def master(keys):
    return CADictionary("CA-X", keys, delta=10, chain_length=16)


@pytest.fixture()
def replica(keys):
    return ReplicaDictionary("CA-X", keys.public)


class TestInsert:
    def test_insert_numbers_revocations_consecutively(self, master):
        issuance = master.insert(make_serials(3), now=100)
        assert issuance.first_number == 1
        assert [number for number, _ in issuance.numbered_serials()] == [1, 2, 3]
        second = master.insert(make_serials(2, start=10), now=110)
        assert second.first_number == 4

    def test_insert_updates_size_and_root(self, master):
        issuance = master.insert(make_serials(5), now=100)
        assert master.size == 5
        assert issuance.signed_root.size == 5
        assert issuance.signed_root.root == master.root()

    def test_signed_root_verifies(self, master, keys):
        issuance = master.insert(make_serials(1), now=100)
        assert issuance.signed_root.verify(keys.public)

    def test_empty_insert_rejected(self, master):
        with pytest.raises(DictionaryError):
            master.insert([], now=100)

    def test_duplicate_serial_rejected(self, master):
        master.insert(make_serials(3), now=100)
        with pytest.raises(DictionaryError):
            master.insert([SerialNumber(2)], now=110)

    def test_contains_and_revocation_number(self, master):
        master.insert([SerialNumber(7), SerialNumber(3)], now=100)
        assert master.contains(SerialNumber(7))
        assert not master.contains(SerialNumber(8))
        assert master.revocation_number(SerialNumber(7)) == 1
        assert master.revocation_number(SerialNumber(3)) == 2


class TestRefresh:
    def test_bootstrap_refresh_signs_empty_dictionary(self, master, keys):
        result = master.refresh(now=50)
        assert isinstance(result, SignedRoot)
        assert result.size == 0
        assert result.verify(keys.public)

    def test_refresh_returns_freshness_statement_within_chain(self, master):
        master.insert(make_serials(2), now=100)
        statement = master.refresh(now=125)
        assert isinstance(statement, FreshnessStatement)
        assert statement.dictionary_size == 2

    def test_refresh_resigns_root_when_chain_exhausted(self, master):
        master.insert(make_serials(1), now=100)
        old_root = master.signed_root
        # chain_length=16, delta=10: 160 seconds later the chain is exhausted.
        result = master.refresh(now=100 + 16 * 10)
        assert isinstance(result, SignedRoot)
        assert result.timestamp > old_root.timestamp
        assert result.root == old_root.root  # content unchanged

    def test_successive_statements_link_to_anchor(self, master, keys):
        from repro.dictionary.freshness import statement_is_fresh

        master.insert(make_serials(1), now=100)
        for period in range(1, 5):
            statement = master.refresh(now=100 + period * 10)
            assert statement_is_fresh(master.signed_root, statement, now=100 + period * 10, delta=10)


class TestProve:
    def test_prove_requires_signed_root(self, keys):
        fresh = CADictionary("CA-Y", keys, delta=10, chain_length=8)
        with pytest.raises(DictionaryError):
            fresh.prove(SerialNumber(1))

    def test_prove_absent_and_present(self, master):
        master.insert(make_serials(4), now=100)
        absent = master.prove(SerialNumber(99))
        present = master.prove(SerialNumber(2))
        assert not absent.is_revoked
        assert present.is_revoked

    def test_status_sizes_are_compact(self, master):
        master.insert(make_serials(100), now=100)
        status = master.prove(SerialNumber(2000))
        assert status.encoded_size() < 1500


class TestReplicaUpdate:
    def test_update_applies_issuance(self, master, replica):
        issuance = master.insert(make_serials(5), now=100)
        replica.update(issuance)
        assert replica.size == 5
        assert replica.root() == master.root()
        assert replica.signed_root == issuance.signed_root

    def test_update_rejects_wrong_ca(self, master, keys):
        other = ReplicaDictionary("CA-Z", keys.public)
        issuance = master.insert(make_serials(1), now=100)
        with pytest.raises(DictionaryError):
            other.update(issuance)

    def test_update_rejects_bad_signature(self, master, replica):
        from dataclasses import replace

        issuance = master.insert(make_serials(1), now=100)
        forged_root = replace(issuance.signed_root, signature=b"\x00" * 64)
        forged = replace(issuance, signed_root=forged_root)
        with pytest.raises(SignatureError):
            replica.update(forged)

    def test_update_rejects_gap_in_numbering(self, master, replica):
        first = master.insert(make_serials(2), now=100)
        second = master.insert(make_serials(2, start=10), now=110)
        with pytest.raises(DesynchronizedError):
            replica.update(second)  # first batch never applied

    def test_update_rejects_tampered_serials(self, master, replica):
        from dataclasses import replace

        issuance = master.insert(make_serials(3), now=100)
        tampered = replace(issuance, serials=(SerialNumber(100), SerialNumber(101), SerialNumber(102)))
        with pytest.raises(DictionaryError):
            replica.update(tampered)

    def test_sequential_updates_track_master(self, master, replica):
        for batch in range(3):
            issuance = master.insert(make_serials(4, start=1 + batch * 10), now=100 + batch)
            replica.update(issuance)
        assert replica.size == master.size == 12
        assert replica.root() == master.root()


class TestReplicaFreshnessAndRoots:
    def test_apply_freshness(self, master, replica):
        issuance = master.insert(make_serials(2), now=100)
        replica.update(issuance)
        statement = master.refresh(now=120)
        replica.apply_freshness(statement)
        assert replica.latest_freshness == statement

    def test_apply_freshness_requires_root(self, replica, master):
        master.insert(make_serials(1), now=100)
        statement = master.refresh(now=110)
        with pytest.raises(DesynchronizedError):
            replica.apply_freshness(statement)

    def test_apply_freshness_rejects_unlinked_value(self, master, replica):
        issuance = master.insert(make_serials(1), now=100)
        replica.update(issuance)
        bogus = FreshnessStatement(ca_name="CA-X", value=b"\x01" * 20, dictionary_size=1)
        with pytest.raises(DictionaryError):
            replica.apply_freshness(bogus)

    def test_freshness_with_larger_size_flags_desync(self, master, replica):
        issuance = master.insert(make_serials(1), now=100)
        replica.update(issuance)
        master.insert(make_serials(1, start=50), now=105)
        statement = master.refresh(now=115)
        with pytest.raises(DesynchronizedError):
            replica.apply_freshness(statement)

    def test_install_root_requires_matching_content(self, master, replica):
        issuance = master.insert(make_serials(2), now=100)
        replica.update(issuance)
        master.insert(make_serials(1, start=70), now=110)
        with pytest.raises(DesynchronizedError):
            replica.install_root(master.signed_root)

    def test_is_desynchronized(self, master, replica):
        issuance = master.insert(make_serials(2), now=100)
        replica.update(issuance)
        assert not replica.is_desynchronized(2)
        assert replica.is_desynchronized(3)

    def test_replica_prove_matches_master(self, master, replica, keys):
        issuance = master.insert(make_serials(10), now=100)
        replica.update(issuance)
        status = replica.prove(SerialNumber(123456))
        status.verify(keys.public, now=105, delta=10)


class TestStorageEstimates:
    def test_storage_and_memory_scale_with_entries(self, master):
        master.insert(make_serials(100), now=100)
        storage = master.storage_size_bytes()
        memory = master.memory_size_bytes()
        assert storage == 100 * (3 + 4)
        assert memory > storage

    def test_config_validation(self, keys):
        with pytest.raises(DictionaryError):
            CADictionary("CA", keys, delta=0)
        with pytest.raises(DictionaryError):
            CADictionary("CA", keys, delta=10, chain_length=0)


class TestUpdateRollbackAndBatches:
    """The store-transaction semantics added with the repro.store seam."""

    def test_tampered_update_rolls_back_replica_state(self, master, replica):
        from dataclasses import replace

        good = master.insert(make_serials(3), now=100)
        replica.update(good)
        root_before, size_before = replica.root(), replica.size

        honest = master.insert(make_serials(3, start=10), now=110)
        tampered = replace(honest, serials=(SerialNumber(900), SerialNumber(901), SerialNumber(902)))
        with pytest.raises(DesynchronizedError):
            replica.update(tampered)

        # The staged batch must be fully rolled back...
        assert replica.root() == root_before
        assert replica.size == size_before
        assert not replica.contains(SerialNumber(900))
        # ...so the honest message still applies afterwards.
        replica.update(honest)
        assert replica.root() == master.root()
        assert replica.size == master.size

    def test_update_many_applies_consecutive_batches_in_one_transaction(self, master, replica):
        issuances = [
            master.insert(make_serials(2, start=1 + batch * 10), now=100 + batch)
            for batch in range(3)
        ]
        assert replica.update_many(issuances) == 6
        assert replica.size == master.size == 6
        assert replica.root() == master.root()
        assert replica.signed_root == issuances[-1].signed_root

    def test_update_many_rejects_non_consecutive_batches(self, master, replica):
        first = master.insert(make_serials(2), now=100)
        master.insert(make_serials(2, start=10), now=110)
        third = master.insert(make_serials(2, start=20), now=120)
        with pytest.raises(DesynchronizedError):
            replica.update_many([first, third])
        assert replica.size == 0

    def test_update_many_empty_is_noop(self, replica):
        assert replica.update_many([]) == 0
        assert replica.size == 0

    @pytest.mark.parametrize("engine", ["naive", "incremental", "durable"])
    def test_engines_produce_identical_signed_roots(self, keys, engine):
        master = CADictionary("CA-X", keys, delta=10, chain_length=16, engine=engine)
        replica = ReplicaDictionary("CA-X", keys.public, engine=engine)
        assert master.store_engine == replica.store_engine == engine
        issuance = master.insert(make_serials(7), now=100)
        replica.update(issuance)
        assert replica.root() == master.root()
