"""Tests for expiry-split dictionaries (§VIII 'Ever-growing dictionaries')."""

import pytest

from repro.crypto.signing import KeyPair
from repro.dictionary.sharding import (
    DEFAULT_SHARD_SECONDS,
    ShardKey,
    ShardedCADictionary,
    ShardedReplica,
    shard_name,
)
from repro.errors import DictionaryError, RevokedCertificateError
from repro.pki.serial import SerialNumber

QUARTER = DEFAULT_SHARD_SECONDS


@pytest.fixture()
def keys():
    return KeyPair.generate(b"sharding-tests")


@pytest.fixture()
def sharded(keys):
    return ShardedCADictionary("Shard-CA", keys, delta=10, chain_length=32)


class TestShardKey:
    def test_expiry_maps_to_window(self):
        key = ShardKey.for_expiry(QUARTER + 5)
        assert key.index == 1
        assert key.window_start == QUARTER
        assert key.window_end == 2 * QUARTER

    def test_is_expired(self):
        key = ShardKey.for_expiry(QUARTER // 2)
        assert not key.is_expired(QUARTER - 1)
        assert key.is_expired(QUARTER)

    def test_negative_expiry_rejected(self):
        with pytest.raises(DictionaryError):
            ShardKey.for_expiry(-1)

    def test_shard_name_is_unique_per_index(self):
        assert shard_name("CA", 1) != shard_name("CA", 2)


class TestShardedCADictionary:
    def test_revocations_route_to_expiry_shards(self, sharded):
        issuances = sharded.revoke(
            [
                (SerialNumber(1), QUARTER // 2),          # shard 0
                (SerialNumber(2), QUARTER + 10),          # shard 1
                (SerialNumber(3), QUARTER + 20),          # shard 1
            ],
            now=100,
        )
        assert sharded.shard_count == 2
        assert {key.index for key, _ in issuances} == {0, 1}
        sizes = {key.index: issuance.signed_root.size for key, issuance in issuances}
        assert sizes == {0: 1, 1: 2}
        assert sharded.total_revocations() == 3

    def test_same_serial_may_appear_in_different_shards(self, sharded):
        # Serial spaces are per-CA, but shards are independent dictionaries, so
        # routing is purely by expiry; the same value in two shards must not clash.
        sharded.revoke([(SerialNumber(7), 10)], now=100)
        sharded.revoke([(SerialNumber(7), QUARTER + 10)], now=110)
        assert sharded.total_revocations() == 2

    def test_prove_uses_the_right_shard(self, sharded, keys):
        sharded.revoke([(SerialNumber(5), QUARTER + 10)], now=100)
        revoked_status = sharded.prove(SerialNumber(5), expiry=QUARTER + 10, now=105)
        clean_status = sharded.prove(SerialNumber(5), expiry=10, now=105)
        assert revoked_status.is_revoked
        assert not clean_status.is_revoked
        with pytest.raises(RevokedCertificateError):
            revoked_status.verify(keys.public, now=106, delta=10)
        clean_status.verify(keys.public, now=106, delta=10)

    def test_refresh_all_touches_only_live_shards(self, sharded):
        sharded.revoke([(SerialNumber(1), 10), (SerialNumber(2), QUARTER + 10)], now=100)
        refreshed = sharded.refresh_all(now=QUARTER + 50)
        # Shard 0's window has passed; only shard 1 is refreshed.
        assert list(refreshed) == [1]

    def test_retire_expired_drops_old_shards(self, sharded):
        sharded.revoke([(SerialNumber(1), 10), (SerialNumber(2), QUARTER + 10)], now=100)
        before = sharded.storage_size_bytes()
        retired = sharded.retire_expired(now=QUARTER + 1)
        assert [key.index for key in retired] == [0]
        assert sharded.shard_count == 1
        assert sharded.storage_size_bytes() < before

    def test_live_shards(self, sharded):
        sharded.revoke([(SerialNumber(1), 10), (SerialNumber(2), QUARTER + 10)], now=100)
        live = sharded.live_shards(now=QUARTER + 1)
        assert [key.index for key, _ in live] == [1]


class TestShardedReplica:
    def test_replica_tracks_shards_and_proves(self, sharded, keys):
        replica = ShardedReplica("Shard-CA", keys.public)
        issuances = sharded.revoke(
            [(SerialNumber(1), 10), (SerialNumber(2), QUARTER + 10)], now=100
        )
        for key, issuance in issuances:
            replica.apply_issuance(key, issuance)
        assert replica.shard_count == 2
        assert replica.total_revocations() == 2
        status = replica.prove(SerialNumber(2), expiry=QUARTER + 10)
        assert status.is_revoked

    def test_prove_unknown_shard_requires_sync(self, keys):
        replica = ShardedReplica("Shard-CA", keys.public)
        with pytest.raises(DictionaryError):
            replica.prove(SerialNumber(1), expiry=10)

    def test_prune_expired_reclaims_storage(self, sharded, keys):
        replica = ShardedReplica("Shard-CA", keys.public)
        issuances = sharded.revoke(
            [(SerialNumber(i), 10) for i in range(1, 51)]
            + [(SerialNumber(100 + i), QUARTER + 10) for i in range(1, 11)],
            now=100,
        )
        for key, issuance in issuances:
            replica.apply_issuance(key, issuance)
        before = replica.storage_size_bytes()
        freed = replica.prune_expired(now=QUARTER + 1)
        assert freed == 50
        assert replica.shard_count == 1
        assert replica.storage_size_bytes() < before

    def test_freshness_applies_per_shard(self, sharded, keys):
        replica = ShardedReplica("Shard-CA", keys.public)
        issuances = sharded.revoke([(SerialNumber(1), QUARTER + 10)], now=100)
        for key, issuance in issuances:
            replica.apply_issuance(key, issuance)
        refreshed = sharded.refresh_all(now=120)
        replica.apply_freshness(1, refreshed[1])
        status = replica.prove(SerialNumber(9), expiry=QUARTER + 10)
        status.verify(keys.public, now=125, delta=10)
