"""Tests for expiry-split dictionaries (§VIII 'Ever-growing dictionaries')."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.signing import KeyPair
from repro.dictionary.authdict import CADictionary
from repro.dictionary.sharding import (
    DEFAULT_SHARD_SECONDS,
    MAX_CERTIFICATE_LIFETIME_SECONDS,
    ShardKey,
    ShardedCADictionary,
    ShardedReplica,
    shard_name,
    shard_prefix,
)
from repro.errors import DictionaryError, RevokedCertificateError
from repro.pki.serial import SerialNumber

QUARTER = DEFAULT_SHARD_SECONDS


@pytest.fixture()
def keys():
    return KeyPair.generate(b"sharding-tests")


@pytest.fixture()
def sharded(keys):
    return ShardedCADictionary("Shard-CA", keys, delta=10, chain_length=32)


class TestShardKey:
    def test_expiry_maps_to_window(self):
        key = ShardKey.for_expiry(QUARTER + 5)
        assert key.index == 1
        assert key.window_start == QUARTER
        assert key.window_end == 2 * QUARTER

    def test_is_expired(self):
        key = ShardKey.for_expiry(QUARTER // 2)
        assert not key.is_expired(QUARTER - 1)
        assert key.is_expired(QUARTER)

    def test_negative_expiry_rejected(self):
        with pytest.raises(DictionaryError):
            ShardKey.for_expiry(-1)

    def test_shard_name_is_unique_per_index(self):
        assert shard_name("CA", 1) != shard_name("CA", 2)


class TestShardedCADictionary:
    def test_revocations_route_to_expiry_shards(self, sharded):
        issuances = sharded.revoke(
            [
                (SerialNumber(1), QUARTER // 2),          # shard 0
                (SerialNumber(2), QUARTER + 10),          # shard 1
                (SerialNumber(3), QUARTER + 20),          # shard 1
            ],
            now=100,
        )
        assert sharded.shard_count == 2
        assert {key.index for key, _ in issuances} == {0, 1}
        sizes = {key.index: issuance.signed_root.size for key, issuance in issuances}
        assert sizes == {0: 1, 1: 2}
        assert sharded.total_revocations() == 3

    def test_same_serial_may_appear_in_different_shards(self, sharded):
        # Serial spaces are per-CA, but shards are independent dictionaries, so
        # routing is purely by expiry; the same value in two shards must not clash.
        sharded.revoke([(SerialNumber(7), 10)], now=100)
        sharded.revoke([(SerialNumber(7), QUARTER + 10)], now=110)
        assert sharded.total_revocations() == 2

    def test_prove_uses_the_right_shard(self, sharded, keys):
        sharded.revoke([(SerialNumber(5), QUARTER + 10)], now=100)
        revoked_status = sharded.prove(SerialNumber(5), expiry=QUARTER + 10, now=105)
        clean_status = sharded.prove(SerialNumber(5), expiry=10, now=105)
        assert revoked_status.is_revoked
        assert not clean_status.is_revoked
        with pytest.raises(RevokedCertificateError):
            revoked_status.verify(keys.public, now=106, delta=10)
        clean_status.verify(keys.public, now=106, delta=10)

    def test_refresh_all_touches_only_live_shards(self, sharded):
        sharded.revoke([(SerialNumber(1), 10), (SerialNumber(2), QUARTER + 10)], now=100)
        refreshed = sharded.refresh_all(now=QUARTER + 50)
        # Shard 0's window has passed; only shard 1 is refreshed.
        assert list(refreshed) == [1]

    def test_retire_expired_drops_old_shards(self, sharded):
        sharded.revoke([(SerialNumber(1), 10), (SerialNumber(2), QUARTER + 10)], now=100)
        before = sharded.storage_size_bytes()
        retired = sharded.retire_expired(now=QUARTER + 1)
        assert [key.index for key in retired] == [0]
        assert sharded.shard_count == 1
        assert sharded.storage_size_bytes() < before

    def test_live_shards(self, sharded):
        sharded.revoke([(SerialNumber(1), 10), (SerialNumber(2), QUARTER + 10)], now=100)
        live = sharded.live_shards(now=QUARTER + 1)
        assert [key.index for key, _ in live] == [1]


class TestShardedReplica:
    def test_replica_tracks_shards_and_proves(self, sharded, keys):
        replica = ShardedReplica("Shard-CA", keys.public)
        issuances = sharded.revoke(
            [(SerialNumber(1), 10), (SerialNumber(2), QUARTER + 10)], now=100
        )
        for key, issuance in issuances:
            replica.apply_issuance(key, issuance)
        assert replica.shard_count == 2
        assert replica.total_revocations() == 2
        status = replica.prove(SerialNumber(2), expiry=QUARTER + 10)
        assert status.is_revoked

    def test_prove_unknown_shard_requires_sync(self, keys):
        replica = ShardedReplica("Shard-CA", keys.public)
        with pytest.raises(DictionaryError):
            replica.prove(SerialNumber(1), expiry=10)

    def test_prune_expired_reclaims_storage(self, sharded, keys):
        replica = ShardedReplica("Shard-CA", keys.public)
        issuances = sharded.revoke(
            [(SerialNumber(i), 10) for i in range(1, 51)]
            + [(SerialNumber(100 + i), QUARTER + 10) for i in range(1, 11)],
            now=100,
        )
        for key, issuance in issuances:
            replica.apply_issuance(key, issuance)
        before = replica.storage_size_bytes()
        freed = replica.prune_expired(now=QUARTER + 1)
        assert freed == 50
        assert replica.shard_count == 1
        assert replica.storage_size_bytes() < before

    def test_freshness_applies_per_shard(self, sharded, keys):
        replica = ShardedReplica("Shard-CA", keys.public)
        issuances = sharded.revoke([(SerialNumber(1), QUARTER + 10)], now=100)
        for key, issuance in issuances:
            replica.apply_issuance(key, issuance)
        refreshed = sharded.refresh_all(now=120)
        replica.apply_freshness(1, refreshed[1])
        status = replica.prove(SerialNumber(9), expiry=QUARTER + 10)
        status.verify(keys.public, now=125, delta=10)


class TestReadPathPurity:
    """Regression: prove() used to create and retain shards on the read path."""

    def test_prove_unknown_window_does_not_create_a_shard(self, sharded):
        sharded.revoke([(SerialNumber(1), 10)], now=100)
        before_count = sharded.shard_count
        before_storage = sharded.storage_size_bytes()
        status = sharded.prove(SerialNumber(2), expiry=5 * QUARTER + 3, now=150)
        assert not status.is_revoked
        assert sharded.shard_count == before_count
        assert sharded.storage_size_bytes() == before_storage
        assert [key.index for key in sharded.shard_keys()] == [0]

    def test_prove_unknown_window_does_not_inflate_refresh_all(self, sharded):
        sharded.revoke([(SerialNumber(1), 10)], now=100)
        sharded.prove(SerialNumber(2), expiry=5 * QUARTER + 3, now=150)
        # refresh_all must still touch only the shard revocations created.
        assert list(sharded.refresh_all(now=200)) == [0]

    def test_unknown_window_absence_status_verifies(self, sharded, keys):
        status = sharded.prove(SerialNumber(7), expiry=2 * QUARTER + 1, now=500)
        status.verify(keys.public, now=505, delta=10)

    def test_repeated_unknown_window_queries_stay_pure(self, sharded):
        for query in range(5):
            sharded.prove(SerialNumber(query + 1), expiry=QUARTER * 3 + query, now=100)
        assert sharded.shard_count == 0


class TestProveTimestamps:
    """Regression: prove() used to fall back to refresh(0) when now was omitted."""

    def test_prove_without_now_on_unsigned_shard_raises(self, sharded):
        with pytest.raises(DictionaryError, match="real timestamp"):
            sharded.prove(SerialNumber(1), expiry=10)

    def test_prove_with_now_mints_a_fresh_root(self, sharded, keys):
        now = 86_400 * 1000
        status = sharded.prove(SerialNumber(1), expiry=now + 10, now=now)
        assert status.signed_root.timestamp == now
        # A root minted at epoch 0 would fail this freshness check.
        status.verify(keys.public, now=now + 5, delta=10)

    def test_prove_without_now_on_signed_shard_is_fine(self, sharded):
        sharded.revoke([(SerialNumber(1), 10)], now=100)
        status = sharded.prove(SerialNumber(1), expiry=10)
        assert status.is_revoked


class TestValidation:
    """Regression: the lifetime cap was exported but never enforced; zero
    shard widths raised a bare ZeroDivisionError."""

    def test_revoke_rejects_expiry_beyond_maximum_lifetime(self, sharded):
        now = 1_000_000
        too_far = now + MAX_CERTIFICATE_LIFETIME_SECONDS + 1
        with pytest.raises(DictionaryError, match="maximum lifetime"):
            sharded.revoke([(SerialNumber(1), too_far)], now=now)
        assert sharded.shard_count == 0

    def test_revoke_accepts_expiry_at_the_cap(self, sharded):
        now = 1_000_000
        at_cap = now + MAX_CERTIFICATE_LIFETIME_SECONDS
        issuances = sharded.revoke([(SerialNumber(1), at_cap)], now=now)
        assert len(issuances) == 1

    def test_rejected_batch_creates_no_shards(self, sharded):
        """A batch with one bad expiry must not leave empty shards behind."""
        now = 1_000_000
        with pytest.raises(DictionaryError, match="maximum lifetime"):
            sharded.revoke(
                [
                    (SerialNumber(1), now + 10),
                    (SerialNumber(2), now + MAX_CERTIFICATE_LIFETIME_SECONDS + 1),
                ],
                now=now,
            )
        assert sharded.shard_count == 0
        assert sharded.total_revocations() == 0
        # a corrected retry goes through
        issuances = sharded.revoke(
            [(SerialNumber(1), now + 10), (SerialNumber(2), now + 20)], now=now
        )
        assert sum(len(issuance.serials) for _, issuance in issuances) == 2

    @pytest.mark.parametrize("width", [0, -90])
    def test_zero_or_negative_shard_width_rejected(self, width):
        with pytest.raises(DictionaryError, match="positive"):
            ShardKey.for_expiry(100, width_seconds=width)

    @pytest.mark.parametrize("width", [0, -1])
    def test_sharded_dictionary_rejects_bad_width(self, keys, width):
        with pytest.raises(DictionaryError, match="positive"):
            ShardedCADictionary("Shard-CA", keys, delta=10, shard_seconds=width)

    @pytest.mark.parametrize("width", [0, -1])
    def test_sharded_replica_rejects_bad_width(self, keys, width):
        with pytest.raises(DictionaryError, match="positive"):
            ShardedReplica("Shard-CA", keys.public, shard_seconds=width)

    def test_shard_prefix_matches_shard_name(self):
        assert shard_name("CA", 3).startswith(shard_prefix("CA"))


class TestAccounting:
    """Reclaimed-storage counters feed the §VIII cost/overhead analyses."""

    def test_ca_reclaimed_bytes_accumulate(self, sharded):
        sharded.revoke(
            [(SerialNumber(1), 10), (SerialNumber(2), QUARTER + 10)], now=100
        )
        before = sharded.storage_size_bytes()
        sharded.retire_expired(now=QUARTER + 1)
        assert sharded.reclaimed_storage_bytes > 0
        assert sharded.reclaimed_storage_bytes + sharded.storage_size_bytes() == before
        assert sharded.retired_revocations == 1
        assert sharded.retired_indices() == [0]

    def test_replica_reclaimed_bytes_accumulate(self, sharded, keys):
        replica = ShardedReplica("Shard-CA", keys.public)
        for key, issuance in sharded.revoke(
            [(SerialNumber(1), 10), (SerialNumber(2), QUARTER + 10)], now=100
        ):
            replica.apply_issuance(key, issuance)
        before = replica.storage_size_bytes()
        freed = replica.prune_expired(now=QUARTER + 1)
        assert freed == 1
        assert replica.pruned_revocations == 1
        assert replica.reclaimed_storage_bytes + replica.storage_size_bytes() == before


class TestDifferentialOracle:
    """Sharded and unsharded dictionaries must agree on every verdict."""

    @pytest.mark.parametrize("engine", ["naive", "incremental"])
    def test_same_revocations_same_verdicts(self, keys, engine):
        sharded = ShardedCADictionary(
            "Shard-CA", keys, delta=10, chain_length=32, engine=engine
        )
        replica = ShardedReplica("Shard-CA", keys.public, engine=engine)
        oracle = CADictionary(
            "Oracle-CA", keys, delta=10, chain_length=32, engine=engine
        )
        now = 1_000_000
        pairs = [
            (SerialNumber(value), now + (value % 7 + 1) * QUARTER // 3)
            for value in range(1, 41)
        ]
        for key, issuance in sharded.revoke(pairs, now=now):
            replica.apply_issuance(key, issuance)
        oracle.insert([serial for serial, _ in pairs], now=now)
        oracle_proofs_absent = SerialNumber(999)

        for serial, expiry in pairs:
            ca_status = sharded.prove(serial, expiry, now=now)
            ra_status = replica.prove(serial, expiry)
            assert ca_status.is_revoked == ra_status.is_revoked == oracle.contains(serial)
        for _, expiry in pairs[:5]:
            assert not sharded.prove(oracle_proofs_absent, expiry, now=now).is_revoked
            assert not replica.prove(oracle_proofs_absent, expiry).is_revoked
            assert not oracle.contains(oracle_proofs_absent)


@settings(max_examples=25, deadline=None)
@given(
    expiry_offsets=st.lists(
        st.integers(min_value=1, max_value=6 * QUARTER), min_size=1, max_size=24
    ),
    retire_after=st.integers(min_value=0, max_value=8 * QUARTER),
    engine=st.sampled_from(["naive", "incremental"]),
)
def test_prune_retire_round_trip_property(expiry_offsets, retire_after, engine):
    """Property: retiring/pruning at any time keeps CA and RA in lockstep.

    After retirement at an arbitrary time, (a) CA and RA hold the same live
    shard indices with the same sizes and roots, (b) both freed the same
    number of bytes, and (c) later revocations into future windows still
    flow and prove correctly.
    """
    keys = KeyPair.generate(b"prune-retire-property")
    now = 1_000_000
    sharded = ShardedCADictionary(
        "Prop-CA", keys, delta=10, chain_length=32, engine=engine
    )
    replica = ShardedReplica("Prop-CA", keys.public, engine=engine)
    pairs = [
        (SerialNumber(index + 1), now + offset)
        for index, offset in enumerate(expiry_offsets)
    ]
    for key, issuance in sharded.revoke(pairs, now=now):
        replica.apply_issuance(key, issuance)

    cutoff = now + retire_after
    retired = sharded.retire_expired(cutoff)
    replica.prune_expired(cutoff)

    live_ca = {key.index for key in sharded.shard_keys()}
    assert live_ca == set(replica.live_indices())
    assert all(not key.is_expired(cutoff) for key in sharded.shard_keys())
    assert {key.index for key in retired}.isdisjoint(live_ca)
    assert sharded.reclaimed_storage_bytes == replica.reclaimed_storage_bytes
    for index in live_ca:
        assert sharded.shard_at(index).root() == replica.replica_at(index).root()
        assert sharded.shard_at(index).size == replica.replica_at(index).size

    # The stream keeps flowing into future windows after retirement.
    future_expiry = cutoff + QUARTER
    serial = SerialNumber(10_000)
    for key, issuance in sharded.revoke([(serial, future_expiry)], now=cutoff):
        replica.apply_issuance(key, issuance)
    assert replica.prove(serial, future_expiry).is_revoked
    assert sharded.prove(serial, future_expiry, now=cutoff).is_revoked
