"""Tests for signed roots, freshness statements, and revocation statuses."""

import pytest

from repro.crypto.signing import KeyPair
from repro.dictionary.authdict import CADictionary
from repro.dictionary.freshness import (
    FreshnessStatement,
    periods_elapsed,
    require_fresh,
    statement_is_fresh,
    statement_period,
)
from repro.dictionary.signed_root import SignedRoot
from repro.errors import (
    ProofError,
    RevokedCertificateError,
    SignatureError,
    StaleStatusError,
)
from repro.pki.serial import SerialNumber

from tests.conftest import make_serials


@pytest.fixture()
def keys():
    return KeyPair.generate(b"proofs-tests")


@pytest.fixture()
def master(keys):
    dictionary = CADictionary("CA-P", keys, delta=10, chain_length=32)
    dictionary.insert(make_serials(20), now=1000)
    return dictionary


class TestSignedRoot:
    def test_sign_and_verify(self, keys):
        root = SignedRoot(
            ca_name="CA-P", root=b"\x01" * 20, size=3, anchor=b"\x02" * 20,
            timestamp=100, chain_length=16,
        ).sign(keys.private)
        assert root.verify(keys.public)

    def test_verify_fails_for_other_key(self, keys):
        root = SignedRoot(
            ca_name="CA-P", root=b"\x01" * 20, size=3, anchor=b"\x02" * 20,
            timestamp=100, chain_length=16,
        ).sign(keys.private)
        assert not root.verify(KeyPair.generate(b"other").public)

    def test_tampering_any_field_breaks_signature(self, keys):
        from dataclasses import replace

        root = SignedRoot(
            ca_name="CA-P", root=b"\x01" * 20, size=3, anchor=b"\x02" * 20,
            timestamp=100, chain_length=16,
        ).sign(keys.private)
        for field_name, new_value in [
            ("root", b"\x09" * 20),
            ("size", 4),
            ("anchor", b"\x08" * 20),
            ("timestamp", 101),
            ("chain_length", 17),
            ("ca_name", "CA-Q"),
        ]:
            assert not replace(root, **{field_name: new_value}).verify(keys.public)

    def test_verify_or_raise(self, keys):
        root = SignedRoot(
            ca_name="CA-P", root=b"\x01" * 20, size=1, anchor=b"\x02" * 20,
            timestamp=1, chain_length=4,
        )
        with pytest.raises(SignatureError):
            root.verify_or_raise(keys.public)

    def test_conflicts_with(self, keys):
        base = dict(ca_name="CA-P", size=5, anchor=b"\x02" * 20, timestamp=1, chain_length=4)
        a = SignedRoot(root=b"\x01" * 20, **base)
        b = SignedRoot(root=b"\x03" * 20, **base)
        c = SignedRoot(root=b"\x01" * 20, **base)
        assert a.conflicts_with(b)
        assert not a.conflicts_with(c)
        assert not a.conflicts_with(SignedRoot(root=b"\x03" * 20, ca_name="Other",
                                               size=5, anchor=b"\x02" * 20, timestamp=1, chain_length=4))

    def test_encoded_size(self, keys):
        root = SignedRoot(
            ca_name="CA-P", root=b"\x01" * 20, size=3, anchor=b"\x02" * 20,
            timestamp=100, chain_length=16,
        ).sign(keys.private)
        assert 100 < root.encoded_size() < 300


class TestFreshnessPolicy:
    def test_periods_elapsed(self):
        assert periods_elapsed(100, 100, 10) == 0
        assert periods_elapsed(100, 119, 10) == 1
        assert periods_elapsed(100, 200, 10) == 10
        assert periods_elapsed(100, 50, 10) == 0

    def test_periods_elapsed_requires_positive_delta(self):
        with pytest.raises(ValueError):
            periods_elapsed(0, 10, 0)

    def test_fresh_statement_accepted_within_2delta(self, master):
        statement = master.refresh(now=1000 + 10)
        assert statement_is_fresh(master.signed_root, statement, now=1019, delta=10)
        # One further period is tolerated (the 2Δ window).
        assert statement_is_fresh(master.signed_root, statement, now=1029, delta=10)

    def test_stale_statement_rejected_after_2delta(self, master):
        statement = master.refresh(now=1000 + 10)
        assert not statement_is_fresh(master.signed_root, statement, now=1040, delta=10)

    def test_require_fresh_raises(self, master):
        statement = master.refresh(now=1010)
        require_fresh(master.signed_root, statement, now=1015, delta=10)
        with pytest.raises(StaleStatusError):
            require_fresh(master.signed_root, statement, now=1100, delta=10)

    def test_statement_period(self, master):
        statement = master.refresh(now=1000 + 30)
        assert statement_period(master.signed_root, statement) == 3

    def test_forged_statement_never_fresh(self, master):
        forged = FreshnessStatement(ca_name="CA-P", value=b"\x00" * 20)
        assert not statement_is_fresh(master.signed_root, forged, now=1005, delta=10)


class TestRevocationStatus:
    def test_absent_status_verifies(self, master, keys):
        status = master.prove(SerialNumber(500_000))
        status.verify(keys.public, now=1005, delta=10)
        assert status.is_acceptable(keys.public, now=1005, delta=10)

    def test_revoked_status_raises(self, master, keys):
        status = master.prove(SerialNumber(5))
        with pytest.raises(RevokedCertificateError):
            status.verify(keys.public, now=1005, delta=10)
        assert not status.is_acceptable(keys.public, now=1005, delta=10)

    def test_status_with_wrong_ca_key_rejected(self, master):
        status = master.prove(SerialNumber(500_000))
        with pytest.raises(SignatureError):
            status.verify(KeyPair.generate(b"imposter").public, now=1005, delta=10)

    def test_stale_status_rejected(self, master, keys):
        status = master.prove(SerialNumber(500_000))
        with pytest.raises(StaleStatusError):
            status.verify(keys.public, now=1000 + 500, delta=10)

    def test_status_for_mismatched_serial_rejected(self, master, keys):
        from dataclasses import replace

        status = master.prove(SerialNumber(500_000))
        lying = replace(status, serial=SerialNumber(400_000))
        with pytest.raises(ProofError):
            lying.verify(keys.public, now=1005, delta=10)

    def test_proof_swapped_between_dictionaries_rejected(self, keys):
        # A proof from one dictionary must not verify against another's root.
        from dataclasses import replace

        first = CADictionary("CA-P", keys, delta=10, chain_length=8)
        first.insert(make_serials(8), now=1000)
        second = CADictionary("CA-P", keys, delta=10, chain_length=8)
        second.insert(make_serials(9), now=1000)
        status_first = first.prove(SerialNumber(777))
        status_second = second.prove(SerialNumber(777))
        frankenstein = replace(status_first, proof=status_second.proof)
        with pytest.raises(ProofError):
            frankenstein.verify(keys.public, now=1005, delta=10)

    def test_encoded_size_in_paper_range_for_large_dictionary(self, keys):
        dictionary = CADictionary("CA-Big", keys, delta=10, chain_length=8)
        dictionary.insert(make_serials(4096), now=1000)
        status = dictionary.prove(SerialNumber(1_000_000))
        # Depth 12 tree: the paper quotes 500-900 B for depth ~19.
        assert 300 < status.encoded_size() < 1200
