"""Property and statistical tests for the streaming workload generator.

Three layers of pinning, per docs/WORKLOADS.md:

* **Determinism / resume** — Hypothesis-driven proofs that the trace is a
  pure function of (seed, index): regeneration is identical, resuming from
  any cursor reproduces the identical suffix, and slicing composes.
* **Bounded allocation** — tracemalloc shows per-batch allocation scales
  with ``batch_size``, not with client count or trace length.
* **Distributional fidelity** — fixed-seed chi-squared and KS-style
  statistics confirm the empirical site popularity follows the configured
  Zipf law and the empirical arrival times follow the diurnal intensity
  curve.  Seeds and tolerances are pinned so the tests cannot flake.
"""

import dataclasses
import tracemalloc

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.streaming import (
    DAY_SECONDS,
    EVENT_BYTES,
    StreamConfig,
    StreamingWorkload,
    intensity_table,
    uniform_slot_counts,
    zipf_cumulative_weights,
)

BASE = StreamConfig(
    clients=20_000,
    sites=500,
    events_total=4_000,
    duration_seconds=2 * DAY_SECONDS,
)


# ---------------------------------------------------------------------------
# determinism and resume
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_same_seed_same_trace(seed):
    config = dataclasses.replace(BASE, events_total=600, seed=seed)
    first = list(StreamingWorkload(config).events(0, 600))
    second = list(StreamingWorkload(config).events(0, 600))
    assert first == second


@settings(max_examples=25, deadline=None)
@given(cursor=st.integers(min_value=0, max_value=4_000))
def test_resume_from_any_cursor_reproduces_the_suffix(cursor):
    full = list(StreamingWorkload(BASE).events(0, BASE.events_total))
    resumed = list(StreamingWorkload(BASE).events(cursor, BASE.events_total))
    assert resumed == full[cursor:]


@settings(max_examples=25, deadline=None)
@given(
    start=st.integers(min_value=0, max_value=3_999),
    width=st.integers(min_value=1, max_value=700),
)
def test_any_slice_matches_the_full_trace(start, width):
    stop = min(start + width, BASE.events_total)
    full = list(StreamingWorkload(BASE).events(0, BASE.events_total))
    assert list(StreamingWorkload(BASE).events(start, stop)) == full[start:stop]


def test_different_seeds_differ():
    a = list(StreamingWorkload(BASE).events(0, 200))
    b = list(StreamingWorkload(dataclasses.replace(BASE, seed=405)).events(0, 200))
    assert a != b


def test_times_strictly_increase_within_the_window():
    config = dataclasses.replace(BASE, start_time=500.0)
    times = [event.time for event in StreamingWorkload(config).events(0, 4_000)]
    assert all(later > earlier for earlier, later in zip(times, times[1:]))
    assert times[0] >= 500.0
    assert times[-1] <= 500.0 + config.duration_seconds


def test_period_counts_partition_the_trace():
    config = dataclasses.replace(BASE, start_time=1_000.0)
    workload = StreamingWorkload(config)
    boundaries = [1_000.0 + k * (config.duration_seconds / 8) for k in range(9)]
    counts = workload.period_counts(boundaries)
    assert len(counts) == 8
    assert sum(counts) == config.events_total
    assert all(count >= 0 for count in counts)


@settings(max_examples=20, deadline=None)
@given(
    total=st.integers(min_value=0, max_value=10_000),
    slots=st.integers(min_value=1, max_value=64),
)
def test_uniform_slot_counts_matches_legacy_divmod_spread(total, slots):
    counts = uniform_slot_counts(total, slots)
    base, extra = divmod(total, slots)
    assert counts == [base + (1 if index < extra else 0) for index in range(slots)]
    assert sum(counts) == total


# ---------------------------------------------------------------------------
# bounded allocation
# ---------------------------------------------------------------------------


def peak_generation_bytes(config):
    """Peak tracemalloc allocation while draining one full trace."""
    workload = StreamingWorkload(config)
    # Prime the per-site profile cache outside the measurement so the
    # (bounded, site-count-dependent) cache is not attributed to batching.
    for batch in workload.batches():
        for event in batch:
            workload.site_profile(event.site)
    tracemalloc.start()
    try:
        for batch in workload.batches():
            pass
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_per_batch_allocation_is_independent_of_client_count():
    small = dataclasses.replace(BASE, clients=10_000, batch_size=1_024)
    large = dataclasses.replace(BASE, clients=10_000_000, batch_size=1_024)
    peak_small = peak_generation_bytes(small)
    peak_large = peak_generation_bytes(large)
    # 1000x more clients must not move the allocation peak materially.
    assert peak_large < 2 * peak_small + 65_536


def test_peak_batch_bytes_respects_the_event_layout_budget():
    config = dataclasses.replace(BASE, batch_size=512)
    workload = StreamingWorkload(config)
    for batch in workload.batches():
        assert batch.nbytes <= EVENT_BYTES * config.batch_size
    assert workload.peak_batch_bytes <= EVENT_BYTES * config.batch_size


# ---------------------------------------------------------------------------
# distributional fidelity (fixed seeds, generous non-flaky tolerances)
# ---------------------------------------------------------------------------


def test_site_popularity_follows_the_zipf_law():
    config = StreamConfig(
        clients=100_000,
        sites=50,
        events_total=30_000,
        duration_seconds=DAY_SECONDS,
        zipf_exponent=1.1,
        seed=404,
    )
    observed = [0] * config.sites
    for event in StreamingWorkload(config).events(0, config.events_total):
        observed[event.site] += 1
    weights = zipf_cumulative_weights(config.sites, config.zipf_exponent)
    total_weight = weights[-1]
    expected = []
    previous = 0.0
    for cumulative in weights:
        expected.append(
            (cumulative - previous) / total_weight * config.events_total
        )
        previous = cumulative
    chi_squared = sum(
        (obs - exp) ** 2 / exp for obs, exp in zip(observed, expected)
    )
    # 49 degrees of freedom; the 99.9th percentile of chi2(49) is ~85.4.
    # A broken sampler (uniform instead of Zipf) scores in the thousands.
    assert chi_squared < 90.0
    # Sanity: head rank dominates the tail as a Zipf law demands.
    assert observed[0] > 4 * observed[-1]


def test_arrival_times_follow_the_diurnal_curve():
    config = StreamConfig(
        clients=100_000,
        sites=1_000,
        events_total=20_000,
        duration_seconds=DAY_SECONDS,
        diurnal_amplitude=0.7,
        seed=404,
    )
    times = sorted(
        event.time for event in StreamingWorkload(config).events(0, 20_000)
    )
    table = intensity_table(config.duration_seconds, config.diurnal_amplitude)
    total = table[-1]

    def model_cdf(t):
        """Analytic diurnal CDF via linear interpolation on the shared table."""
        position = t / config.duration_seconds * (len(table) - 1)
        low = min(int(position), len(table) - 2)
        frac = position - low
        return (table[low] + (table[low + 1] - table[low]) * frac) / total

    ks_statistic = max(
        abs((rank + 1) / len(times) - model_cdf(t))
        for rank, t in enumerate(times)
    )
    # Stratified quantiles keep the true statistic near 1/N; 0.01 is a
    # 200x margin, while a flat (non-diurnal) clock scores above 0.10.
    assert ks_statistic < 0.01
    flat_deviation = max(
        abs((rank + 1) / len(times) - t / config.duration_seconds)
        for rank, t in enumerate(times)
    )
    assert flat_deviation > 0.05


def test_certificate_lifetimes_follow_the_configured_mix():
    mix = ((90 * DAY_SECONDS, 0.6), (365 * DAY_SECONDS, 0.4))
    config = StreamConfig(
        clients=10_000,
        sites=4_000,
        events_total=100,
        duration_seconds=DAY_SECONDS,
        lifetime_mix=mix,
        seed=11,
    )
    workload = StreamingWorkload(config)
    lifetimes = [workload.site_lifetime(site) for site in range(config.sites)]
    assert set(lifetimes) <= {90 * DAY_SECONDS, 365 * DAY_SECONDS}
    share_short = lifetimes.count(90 * DAY_SECONDS) / len(lifetimes)
    assert 0.55 < share_short < 0.65
