"""Tests for the synthetic datasets: revocation trace, population, PlanetLab, corpus."""

import datetime as dt

import pytest

from repro.cdn.geography import Region
from repro.workloads.certificates import generate_corpus
from repro.workloads.planetlab import PLANETLAB_NODE_COUNT, generate_vantage_points
from repro.workloads.population import (
    DEFAULT_CLIENTS_PER_RA,
    TOTAL_POPULATION,
    generate_population,
)
from repro.workloads.revocation_trace import (
    HEARTBLEED_BURST_PEAK,
    LARGEST_CRL_ENTRIES,
    NUMBER_OF_CRLS,
    TOTAL_REVOCATIONS,
    generate_trace,
    largest_crl_serials,
    serials_for_count,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace()


class TestRevocationTrace:
    def test_total_matches_paper_dataset(self, trace):
        assert trace.total == TOTAL_REVOCATIONS

    def test_ca_count_and_largest_crl(self, trace):
        assert len(trace.ca_totals) == NUMBER_OF_CRLS
        assert max(trace.ca_totals.values()) == LARGEST_CRL_ENTRIES
        assert sum(trace.ca_totals.values()) == TOTAL_REVOCATIONS

    def test_average_revocations_per_ca_close_to_paper(self, trace):
        average = sum(trace.ca_totals.values()) / len(trace.ca_totals)
        assert average == pytest.approx(5_440, rel=0.01)

    def test_peak_day_is_during_heartbleed_burst(self, trace):
        peak = trace.peak_day()
        assert abs((peak.day - HEARTBLEED_BURST_PEAK).days) <= 1

    def test_peak_is_an_order_of_magnitude_above_baseline(self, trace):
        quiet_january_day = next(
            entry for entry in trace.daily if entry.day == dt.date(2014, 2, 5)
        )
        assert trace.peak_day().count > 10 * quiet_january_day.count

    def test_determinism(self):
        assert generate_trace(seed=3).total == generate_trace(seed=3).total
        assert [e.count for e in generate_trace(seed=3).daily[:30]] == [
            e.count for e in generate_trace(seed=3).daily[:30]
        ]

    def test_monthly_counts_cover_horizon(self, trace):
        months = dict(trace.monthly_counts())
        assert "2014-01" in months and "2015-06" in months

    def test_counts_per_bin_conserves_daily_totals(self, trace):
        day = dt.date(2014, 4, 16)
        daily_total = next(entry.count for entry in trace.daily if entry.day == day)
        bins = trace.counts_per_bin(day, day, bin_seconds=3600)
        assert len(bins) == 24
        assert sum(count for _, count in bins) == daily_total

    def test_between_is_inclusive(self, trace):
        window = trace.between(dt.date(2014, 4, 14), dt.date(2014, 4, 20))
        assert len(window) == 7

    def test_serials_are_unique_three_byte_values(self):
        serials = serials_for_count(10_000, seed=2)
        assert len(set(serials)) == 10_000
        assert all(1 <= value < 2**24 for value in serials)

    def test_largest_crl_serials_count(self):
        assert len(largest_crl_serials()) == LARGEST_CRL_ENTRIES


class TestPopulation:
    @pytest.fixture(scope="class")
    def population(self):
        return generate_population(total_cities=3_000)

    def test_total_population_preserved(self, population):
        assert population.total_population == pytest.approx(TOTAL_POPULATION, rel=0.001)

    def test_every_region_has_population(self, population):
        by_region = population.population_by_region()
        assert all(by_region[region] > 0 for region in Region)

    def test_region_shares_roughly_match_targets(self, population):
        from repro.cdn.geography import POPULATION_SHARE

        by_region = population.population_by_region()
        total = population.total_population
        for region, share in POPULATION_SHARE.items():
            assert by_region[region] / total == pytest.approx(share, abs=0.08)

    def test_ra_counts_scale_inversely_with_clients_per_ra(self, population):
        dense = population.total_ras(clients_per_ra=10)
        sparse = population.total_ras(clients_per_ra=1_000)
        assert dense == pytest.approx(100 * sparse, rel=0.01)
        # The paper's headline figure: 10 clients/RA → ~230 million RAs.
        assert dense == pytest.approx(230_000_000, rel=0.02)

    def test_invalid_clients_per_ra_rejected(self, population):
        with pytest.raises(ValueError):
            population.ras_by_region(clients_per_ra=0)

    def test_city_sizes_follow_heavy_tail(self, population):
        largest = population.largest_cities(10)
        assert largest[0].population > 20 * (population.total_population // len(population.cities))

    def test_sample_locations(self, population):
        locations = population.sample_locations(50, seed=4)
        assert len(locations) == 50


class TestPlanetLabAndCorpus:
    def test_vantage_point_count_matches_paper(self):
        nodes = generate_vantage_points()
        assert len(nodes) == PLANETLAB_NODE_COUNT == 80

    def test_vantage_points_cover_multiple_regions(self):
        regions = {node.location.region for node in generate_vantage_points()}
        assert len(regions) >= 5

    def test_vantage_points_deterministic(self):
        first = generate_vantage_points(seed=9)
        second = generate_vantage_points(seed=9)
        assert [node.location.distance_factor for node in first] == [
            node.location.distance_factor for node in second
        ]

    def test_corpus_structure(self):
        corpus = generate_corpus(ca_count=2, domains_per_ca=3, use_intermediates=True)
        assert len(corpus.chains) == 6
        assert len(corpus.authorities) == 4  # 2 roots + 2 intermediates
        assert all(len(chain) == 3 for chain in corpus.chains)
        assert set(corpus.ca_public_keys()) == {a.name for a in corpus.authorities}

    def test_corpus_without_intermediates(self):
        corpus = generate_corpus(ca_count=1, domains_per_ca=2, use_intermediates=False)
        assert all(len(chain) == 2 for chain in corpus.chains)

    def test_corpus_lookup_helpers(self):
        corpus = generate_corpus(ca_count=1, domains_per_ca=2)
        domain = corpus.chains[0].leaf.subject
        assert corpus.chain_for_domain(domain) is corpus.chains[0]
        assert corpus.chain_for_domain("missing.example") is None
        assert corpus.authority_by_name("Root-CA-0") is not None
        assert corpus.authority_by_name("Nope") is None
