"""Differential suite: streaming generator vs the materialized oracle.

The streaming generator (``repro.workloads.streaming``) produces client
events lazily in O(batch) memory; ``materialize_trace`` is a deliberately
naive per-event oracle that shares only the elementary functions (stratum
RNG recipe, draw order, cumulative-weight accumulation order, and the
diurnal intensity table) while re-implementing the search and iteration
machinery from scratch.  These tests prove the two are *event-identical* —
bit-equal timestamps, clients, and sites — at small N across seeds, Zipf
exponents, and certificate-lifetime mixes, so the batched fast path can be
trusted at a million clients where the oracle is unaffordable.
"""

import pytest

from repro.workloads.streaming import (
    DAY_SECONDS,
    DEFAULT_LIFETIME_MIX,
    StreamConfig,
    StreamingWorkload,
    materialize_site_profile,
    materialize_trace,
)

SMALL = dict(
    clients=5_000,
    sites=200,
    events_total=2_000,
    duration_seconds=2 * DAY_SECONDS,
)


def streamed_events(config):
    """Fully drain the streaming generator into a list of ClientEvents."""
    return list(StreamingWorkload(config).events(0, config.events_total))


def assert_identical(config):
    """The core differential assertion: streaming == oracle, event for event."""
    oracle = materialize_trace(config)
    stream = streamed_events(config)
    assert len(stream) == len(oracle) == config.events_total
    for fast, slow in zip(stream, oracle):
        assert fast.index == slow.index
        assert fast.time == slow.time  # bit-identical float64, not approx
        assert fast.client == slow.client
        assert fast.site == slow.site


@pytest.mark.parametrize("seed", [1, 7, 404])
def test_streaming_matches_oracle_across_seeds(seed):
    assert_identical(StreamConfig(seed=seed, **SMALL))


@pytest.mark.parametrize("exponent", [0.8, 1.1, 1.4])
def test_streaming_matches_oracle_across_zipf_exponents(exponent):
    assert_identical(StreamConfig(zipf_exponent=exponent, **SMALL))


@pytest.mark.parametrize(
    "mix",
    [
        DEFAULT_LIFETIME_MIX,
        ((90 * DAY_SECONDS, 1.0),),
        ((30 * DAY_SECONDS, 0.5), (365 * DAY_SECONDS, 0.5)),
    ],
)
def test_streaming_matches_oracle_across_lifetime_mixes(mix):
    config = StreamConfig(lifetime_mix=mix, **SMALL)
    assert_identical(config)
    workload = StreamingWorkload(config)
    for site in (0, 1, config.sites - 1):
        assert workload.site_profile(site) == materialize_site_profile(config, site)


def test_streaming_matches_oracle_at_ten_thousand_events():
    config = StreamConfig(
        clients=50_000,
        sites=1_000,
        events_total=10_000,
        duration_seconds=5 * DAY_SECONDS,
        diurnal_amplitude=0.9,
    )
    assert_identical(config)


def test_batch_size_does_not_change_the_trace():
    base = StreamConfig(**SMALL)
    reference = streamed_events(base)
    for batch_size in (1, 17, 128, 4_096):
        import dataclasses

        variant = dataclasses.replace(base, batch_size=batch_size)
        assert streamed_events(variant) == reference


def test_offset_start_time_shifts_but_preserves_shape():
    import dataclasses

    base = StreamConfig(**SMALL)
    shifted = dataclasses.replace(base, start_time=123_456.0)
    for fast, slow in zip(streamed_events(shifted), materialize_trace(shifted)):
        assert fast == slow
    for at_zero, at_offset in zip(streamed_events(base), streamed_events(shifted)):
        assert at_offset.time == pytest.approx(at_zero.time + 123_456.0)
        assert at_offset.client == at_zero.client
        assert at_offset.site == at_zero.site


def test_site_profiles_match_oracle_everywhere():
    config = StreamConfig(**SMALL)
    workload = StreamingWorkload(config)
    for site in range(0, config.sites, 13):
        assert workload.site_profile(site) == materialize_site_profile(config, site)
