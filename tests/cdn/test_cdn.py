"""Tests for the CDN substrate: origin, edges, fabric, geography."""

import pytest

from repro.cdn.edge import EdgeServer
from repro.cdn.geography import GeoLocation, Region, all_regions
from repro.cdn.network import CDNNetwork
from repro.cdn.origin import DistributionPoint
from repro.errors import CDNError


class TestDistributionPoint:
    def test_publish_and_fetch(self):
        origin = DistributionPoint()
        origin.publish("/a", b"content-a", now=0.0)
        assert origin.fetch("/a").content == b"content-a"
        assert origin.bytes_ingress == len(b"content-a")
        assert origin.bytes_egress == len(b"content-a")

    def test_versions_increase(self):
        origin = DistributionPoint()
        first = origin.publish("/a", b"v1", now=0.0)
        second = origin.publish("/a", b"v2", now=1.0)
        assert second.version > first.version
        assert origin.latest_version() == second.version

    def test_missing_object(self):
        with pytest.raises(CDNError):
            DistributionPoint().fetch("/nope")

    def test_validator_rejects_bad_uploads(self):
        origin = DistributionPoint()
        origin.register_validator("/ritm/", lambda content: content.startswith(b"ok"))
        origin.publish("/ritm/x", b"ok-payload", now=0.0)
        with pytest.raises(CDNError):
            origin.publish("/ritm/x", b"bad-payload", now=1.0)
        # Paths outside the validated prefix are unaffected.
        origin.publish("/other", b"bad-payload", now=2.0)

    def test_paths_listing(self):
        origin = DistributionPoint()
        origin.publish("/b", b"x", now=0.0)
        origin.publish("/a", b"y", now=0.0)
        assert origin.paths() == ["/a", "/b"]


class TestEdgeServer:
    def make_edge(self, ttl: float):
        origin = DistributionPoint()
        origin.publish("/object", b"\x01" * 1000, now=0.0, ttl_seconds=ttl)
        return origin, EdgeServer("edge-1", Region.EUROPE, origin)

    def test_ttl_zero_always_misses(self):
        origin, edge = self.make_edge(ttl=0.0)
        edge.serve("/object", now=1.0)
        edge.serve("/object", now=2.0)
        assert edge.cache_hits == 0
        assert edge.bytes_from_origin == 2000
        assert edge.cache_hit_ratio() == 0.0

    def test_ttl_caching_hits_within_ttl(self):
        origin, edge = self.make_edge(ttl=60.0)
        first = edge.serve("/object", now=1.0)
        second = edge.serve("/object", now=30.0)
        third = edge.serve("/object", now=100.0)
        assert not first.cache_hit and second.cache_hit and not third.cache_hit
        assert edge.bytes_from_origin == 2000
        assert edge.bytes_served == 3000

    def test_cache_hit_has_no_origin_latency(self):
        origin, edge = self.make_edge(ttl=60.0)
        edge.serve("/object", now=1.0)
        hit = edge.serve("/object", now=2.0)
        assert hit.origin_latency == 0.0 and hit.origin_bytes == 0

    def test_invalidate_forces_refetch(self):
        origin, edge = self.make_edge(ttl=3600.0)
        edge.serve("/object", now=1.0)
        edge.invalidate("/object")
        result = edge.serve("/object", now=2.0)
        assert not result.cache_hit


class TestGeography:
    def test_all_regions_have_parameters(self):
        from repro.cdn.geography import EDGE_RTT_SECONDS, FIRST_TIER_PRICE_PER_GB, POPULATION_SHARE

        for region in all_regions():
            assert region in EDGE_RTT_SECONDS
            assert region in FIRST_TIER_PRICE_PER_GB
            assert region in POPULATION_SHARE

    def test_population_shares_sum_to_one(self):
        from repro.cdn.geography import POPULATION_SHARE

        assert sum(POPULATION_SHARE.values()) == pytest.approx(1.0, abs=0.01)

    def test_distance_factor_moves_rtt(self):
        near = GeoLocation(Region.EUROPE, distance_factor=0.0)
        far = GeoLocation(Region.EUROPE, distance_factor=1.0)
        assert near.rtt_to_edge() < far.rtt_to_edge()
        assert near.bandwidth_to_edge() > far.bandwidth_to_edge()


class TestCDNNetwork:
    def test_download_returns_content_and_latency(self):
        cdn = CDNNetwork()
        cdn.publish("/x", b"\x02" * 5_000, now=0.0)
        result = cdn.download("/x", GeoLocation(Region.UNITED_STATES), now=1.0)
        assert result.content == b"\x02" * 5_000
        assert result.latency_seconds > 0
        assert not result.cache_hit

    def test_edge_selection_by_region(self):
        cdn = CDNNetwork(edges_per_region=2)
        edge = cdn.edge_for(GeoLocation(Region.JAPAN), index_hint=1)
        assert edge.region == Region.JAPAN

    def test_unknown_region_rejected(self):
        cdn = CDNNetwork(regions=[Region.EUROPE])
        with pytest.raises(CDNError):
            cdn.edges_in(Region.JAPAN)

    def test_usage_accounting_and_reset(self):
        cdn = CDNNetwork()
        cdn.publish("/x", b"\x00" * 1_000, now=0.0)
        cdn.download("/x", GeoLocation(Region.EUROPE), now=1.0)
        cdn.download("/x", GeoLocation(Region.INDIA), now=2.0)
        usage = cdn.reset_usage()
        assert usage.total_requests() == 2
        assert usage.total_bytes() > 2_000
        assert cdn.usage.total_requests() == 0

    def test_larger_objects_take_longer(self):
        cdn = CDNNetwork()
        cdn.publish("/small", b"\x00" * 100, now=0.0)
        cdn.publish("/large", b"\x00" * 1_000_000, now=0.0)
        location = GeoLocation(Region.EUROPE, distance_factor=0.5)
        small = cdn.download("/small", location, now=1.0)
        large = cdn.download("/large", location, now=2.0)
        assert large.latency_seconds > small.latency_seconds

    def test_cached_download_is_faster(self):
        cdn = CDNNetwork()
        cdn.publish("/x", b"\x00" * 100_000, now=0.0, ttl_seconds=600.0)
        location = GeoLocation(Region.EUROPE)
        cold = cdn.download("/x", location, now=1.0)
        warm = cdn.download("/x", location, now=2.0)
        assert warm.cache_hit
        assert warm.latency_seconds < cold.latency_seconds


class TestPricing:
    def test_first_tier_price(self):
        from repro.cdn.pricing import GB, BillingCycleUsage, PricingModel

        pricing = PricingModel(include_request_fees=False)
        usage = BillingCycleUsage()
        usage.add(Region.UNITED_STATES, int(100 * GB), requests=0)
        assert pricing.monthly_bill(usage) == pytest.approx(100 * 0.085, rel=0.01)

    def test_tier_discount_applies_to_large_volumes(self):
        from repro.cdn.pricing import GB, PricingModel

        pricing = PricingModel(include_request_fees=False)
        small = pricing.transfer_cost(Region.UNITED_STATES, int(10_240 * GB))
        large = pricing.transfer_cost(Region.UNITED_STATES, int(20_480 * GB))
        # The second 10 TB is cheaper per GB than the first.
        assert large < 2 * small

    def test_regional_prices_differ(self):
        from repro.cdn.pricing import GB, PricingModel

        pricing = PricingModel(include_request_fees=False)
        us = pricing.transfer_cost(Region.UNITED_STATES, int(GB))
        brazil = pricing.transfer_cost(Region.SOUTH_AMERICA, int(GB))
        assert brazil > us

    def test_request_fees(self):
        from repro.cdn.pricing import BillingCycleUsage, PricingModel

        pricing = PricingModel(include_request_fees=True)
        usage = BillingCycleUsage()
        usage.add(Region.UNITED_STATES, 0, requests=1_000_000)
        assert pricing.monthly_bill(usage) == pytest.approx(100 * 0.01, rel=0.01)

    def test_negotiated_discount(self):
        from repro.cdn.pricing import GB, BillingCycleUsage, PricingModel

        usage = BillingCycleUsage()
        usage.add(Region.EUROPE, int(10 * GB))
        list_price = PricingModel().monthly_bill(usage)
        discounted = PricingModel(negotiated_discount=0.5).monthly_bill(usage)
        assert discounted == pytest.approx(list_price * 0.5)

    def test_invalid_discount_rejected(self):
        from repro.cdn.pricing import PricingModel

        with pytest.raises(ValueError):
            PricingModel(negotiated_discount=1.5)


class TestEdgeObjectCacheBound:
    """The edge object cache is a bounded LRU with uniform counters."""

    def _edge(self, max_objects=None):
        origin = DistributionPoint()
        for index in range(6):
            origin.publish(f"/object-{index}", b"x" * 10, now=0.0, ttl_seconds=60.0)
        kwargs = {} if max_objects is None else {"max_objects": max_objects}
        return EdgeServer("edge-lru", Region.EUROPE, origin, **kwargs)

    def test_lru_bound_evicts_cold_objects(self):
        edge = self._edge(max_objects=2)
        for index in range(4):
            edge.serve(f"/object-{index}", now=1.0)
        assert edge.cached_object_count() == 2
        assert edge.cache_stats.evictions == 2
        # The most recent two still hit; the evicted ones refetch.
        assert edge.serve("/object-3", now=2.0).cache_hit
        assert not edge.serve("/object-0", now=2.0).cache_hit

    def test_ttl_expiry_counts_as_miss_and_invalidation(self):
        edge = self._edge()
        edge.serve("/object-0", now=1.0)
        assert edge.serve("/object-0", now=10.0).cache_hit
        stale = edge.serve("/object-0", now=120.0)  # beyond the 60 s TTL
        assert not stale.cache_hit
        assert edge.cache_stats.invalidations == 1
        assert edge.cache_stats.hits == edge.cache_hits == 1
        assert edge.cache_hit_ratio() == pytest.approx(1 / 3)

    def test_peek_version_does_not_touch_counters(self):
        edge = self._edge()
        edge.serve("/object-0", now=1.0)
        lookups_before = edge.cache_stats.lookups
        assert edge.peek_version("/object-0", now=2.0) is not None
        assert edge.peek_version("/missing", now=2.0) is None
        assert edge.cache_stats.lookups == lookups_before

    def test_invalidate_counts(self):
        edge = self._edge()
        edge.serve("/object-0", now=1.0)
        edge.serve("/object-1", now=1.0)
        edge.invalidate("/object-0")
        assert edge.cache_stats.invalidations == 1
        edge.invalidate()
        assert edge.cached_object_count() == 0
        assert edge.cache_stats.invalidations == 2
