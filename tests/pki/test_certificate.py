"""Tests for certificates and certificate chains."""

import pytest

from repro.crypto.signing import KeyPair
from repro.errors import CertificateError
from repro.pki.certificate import Certificate, CertificateChain
from repro.pki.serial import SerialNumber


@pytest.fixture(scope="module")
def issuer_keys():
    return KeyPair.generate(b"issuer")


@pytest.fixture(scope="module")
def subject_keys():
    return KeyPair.generate(b"subject")


@pytest.fixture(scope="module")
def certificate(issuer_keys, subject_keys):
    unsigned = Certificate(
        subject="example.com",
        issuer="Test CA",
        serial=SerialNumber(0xABCDEF),
        public_key=subject_keys.public,
        not_before=1_000,
        not_after=2_000,
    )
    return unsigned.with_signature(issuer_keys.private)


class TestCertificate:
    def test_roundtrip_encoding(self, certificate):
        decoded = Certificate.from_bytes(certificate.to_bytes())
        assert decoded == certificate

    def test_signature_verifies_with_issuer_key(self, certificate, issuer_keys):
        assert certificate.verify_signature(issuer_keys.public)

    def test_signature_fails_with_other_key(self, certificate):
        assert not certificate.verify_signature(KeyPair.generate(b"other").public)

    def test_unsigned_certificate_does_not_verify(self, issuer_keys, subject_keys):
        unsigned = Certificate(
            subject="x.com",
            issuer="Test CA",
            serial=SerialNumber(5),
            public_key=subject_keys.public,
            not_before=0,
            not_after=10,
        )
        assert not unsigned.verify_signature(issuer_keys.public)

    def test_tampered_subject_breaks_signature(self, certificate, issuer_keys):
        from dataclasses import replace

        tampered = replace(certificate, subject="evil.com")
        assert not tampered.verify_signature(issuer_keys.public)

    def test_validity_window(self, certificate):
        assert certificate.is_valid_at(1_500)
        assert certificate.is_valid_at(1_000) and certificate.is_valid_at(2_000)
        assert not certificate.is_valid_at(999)
        assert not certificate.is_valid_at(2_001)

    def test_identifier(self, certificate):
        assert certificate.identifier() == ("Test CA", 0xABCDEF)

    def test_from_bytes_rejects_truncation(self, certificate):
        data = certificate.to_bytes()
        with pytest.raises(CertificateError):
            Certificate.from_bytes(data[: len(data) // 2])

    def test_from_bytes_rejects_trailing_garbage(self, certificate):
        with pytest.raises(CertificateError):
            Certificate.from_bytes(certificate.to_bytes() + b"\x00")

    def test_encoded_size_is_realistic(self, certificate):
        # Subject + issuer + serial + key (32) + validity + Ed25519 signature (64).
        assert 100 < certificate.encoded_size() < 400


class TestCertificateChain:
    def test_empty_chain_rejected(self):
        with pytest.raises(CertificateError):
            CertificateChain(certificates=())

    def test_leaf_and_len(self, certificate):
        chain = CertificateChain(certificates=(certificate,))
        assert chain.leaf is certificate
        assert len(chain) == 1

    def test_roundtrip_encoding(self, certificate, issuer_keys):
        ca_cert = Certificate(
            subject="Test CA",
            issuer="Test CA",
            serial=SerialNumber(1),
            public_key=issuer_keys.public,
            not_before=0,
            not_after=10_000,
            is_ca=True,
        ).with_signature(issuer_keys.private)
        chain = CertificateChain(certificates=(certificate, ca_cert))
        decoded = CertificateChain.from_bytes(chain.to_bytes())
        assert decoded == chain
        assert decoded.issuer_of_leaf() == "Test CA"

    def test_pairs(self, certificate, issuer_keys):
        ca_cert = Certificate(
            subject="Test CA",
            issuer="Test CA",
            serial=SerialNumber(2),
            public_key=issuer_keys.public,
            not_before=0,
            not_after=10_000,
            is_ca=True,
        ).with_signature(issuer_keys.private)
        chain = CertificateChain(certificates=(certificate, ca_cert))
        pairs = chain.pairs()
        assert pairs[0] == (certificate, ca_cert)
        assert pairs[1] == (ca_cert, None)

    def test_corpus_chain_has_three_certificates(self, small_corpus):
        # Root + intermediate + leaf: the paper's most common chain length.
        assert len(small_corpus.chains[0]) == 3
