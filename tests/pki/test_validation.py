"""Tests for standard certificate-chain validation."""

import pytest

from repro.crypto.signing import KeyPair
from repro.pki.ca import CertificationAuthority, TrustStore
from repro.pki.certificate import CertificateChain
from repro.pki.validation import validate_chain


NOW = 1_400_000_000


@pytest.fixture()
def world():
    root = CertificationAuthority("Root", key_seed=b"val-root")
    intermediate = CertificationAuthority("Issuing", key_seed=b"val-mid", parent=root)
    keys = KeyPair.generate(b"val-server")
    chain = intermediate.issue_chain_for("good.example", keys.public, now=NOW)
    store = TrustStore()
    store.add(root)
    return root, intermediate, chain, store


class TestValidateChain:
    def test_valid_chain_passes(self, world):
        _, _, chain, store = world
        result = validate_chain(chain, store, now=NOW + 100, expected_subject="good.example")
        assert result.valid
        assert "trust-anchor" in result.checks

    def test_subject_mismatch(self, world):
        _, _, chain, store = world
        result = validate_chain(chain, store, now=NOW + 100, expected_subject="other.example")
        assert not result.valid
        assert "does not match" in result.reason

    def test_expired_certificate(self, world):
        _, _, chain, store = world
        far_future = NOW + 200 * 365 * 86_400
        result = validate_chain(chain, store, now=far_future)
        assert not result.valid
        assert "validity window" in result.reason

    def test_not_yet_valid_certificate(self, world):
        _, _, chain, store = world
        result = validate_chain(chain, store, now=NOW - 10)
        assert not result.valid

    def test_untrusted_root(self, world):
        _, _, chain, _ = world
        empty_store = TrustStore()
        result = validate_chain(chain, empty_store, now=NOW + 100)
        assert not result.valid
        assert "trusted root" in result.reason

    def test_wrong_issuer_signature(self, world):
        root, intermediate, chain, store = world
        # Re-sign the leaf with an unrelated key: the signature check must fail.
        from dataclasses import replace

        rogue = KeyPair.generate(b"rogue")
        forged_leaf = replace(chain.leaf, signature=rogue.sign(chain.leaf.tbs_bytes()))
        forged = CertificateChain(certificates=(forged_leaf,) + chain.certificates[1:])
        result = validate_chain(forged, store, now=NOW + 100)
        assert not result.valid
        assert "does not verify" in result.reason

    def test_out_of_order_chain(self, world):
        _, _, chain, store = world
        shuffled = CertificateChain(
            certificates=(chain.certificates[0],) + tuple(reversed(chain.certificates[1:]))
        )
        result = validate_chain(shuffled, store, now=NOW + 100)
        assert not result.valid

    def test_issuer_without_ca_flag_rejected(self, world):
        root, intermediate, chain, store = world
        from dataclasses import replace

        # Strip the CA flag from the intermediate and re-sign it with the root
        # so only the CA-flag check can fail.
        stripped = replace(chain.certificates[1], is_ca=False, signature=b"")
        stripped = stripped.with_signature(root._keys.private)
        forged = CertificateChain(
            certificates=(chain.certificates[0], stripped, chain.certificates[2])
        )
        result = validate_chain(forged, store, now=NOW + 100)
        assert not result.valid
        assert "not a CA" in result.reason

    def test_corpus_chains_validate(self, small_corpus):
        for chain in small_corpus.chains:
            result = validate_chain(
                chain, small_corpus.trust_store, now=NOW + 5, expected_subject=chain.leaf.subject
            )
            assert result.valid, result.reason
