"""Tests for serial numbers and the allocator."""

import pytest

from repro.pki.serial import DEFAULT_SERIAL_BYTES, SerialNumber, SerialNumberAllocator


class TestSerialNumber:
    def test_default_width_is_three_bytes(self):
        assert SerialNumber(123).width == DEFAULT_SERIAL_BYTES == 3

    def test_roundtrip_encoding(self):
        serial = SerialNumber(0x73E1A5)
        assert SerialNumber.from_bytes(serial.to_bytes()) == serial

    def test_encoding_is_fixed_width(self):
        assert len(SerialNumber(1).to_bytes()) == 3
        assert len(SerialNumber(1, width=20).to_bytes()) == 20

    def test_lexicographic_order_matches_numeric_order(self):
        values = [5, 70_000, 123, 1, 16_000_000]
        serials = [SerialNumber(value) for value in values]
        by_bytes = sorted(serials, key=lambda serial: serial.to_bytes())
        by_value = sorted(serials, key=lambda serial: serial.value)
        assert by_bytes == by_value

    def test_zero_and_negative_rejected(self):
        with pytest.raises(ValueError):
            SerialNumber(0)
        with pytest.raises(ValueError):
            SerialNumber(-5)

    def test_value_must_fit_width(self):
        with pytest.raises(ValueError):
            SerialNumber(2**24, width=3)

    def test_width_bounds(self):
        with pytest.raises(ValueError):
            SerialNumber(1, width=0)
        with pytest.raises(ValueError):
            SerialNumber(1, width=21)

    def test_from_bytes_rejects_empty_and_oversized(self):
        with pytest.raises(ValueError):
            SerialNumber.from_bytes(b"")
        with pytest.raises(ValueError):
            SerialNumber.from_bytes(b"\x01" * 21)

    def test_str_is_hex(self):
        assert str(SerialNumber(0x73E10A5, width=4)) == "73E10A5"

    def test_ordering(self):
        assert SerialNumber(1) < SerialNumber(2)


class TestAllocator:
    def test_allocations_are_unique(self):
        allocator = SerialNumberAllocator(seed=1)
        serials = allocator.allocate_many(500)
        assert len({serial.value for serial in serials}) == 500

    def test_deterministic_with_same_seed(self):
        a = SerialNumberAllocator(seed=7).allocate_many(10)
        b = SerialNumberAllocator(seed=7).allocate_many(10)
        assert [s.value for s in a] == [s.value for s in b]

    def test_width_is_respected(self):
        allocator = SerialNumberAllocator(width=2, seed=3)
        assert all(serial.width == 2 for serial in allocator.allocate_many(10))

    def test_exhaustion_raises(self):
        allocator = SerialNumberAllocator(width=1, seed=3)
        allocator.allocate_many(255)
        with pytest.raises(ValueError):
            allocator.allocate()
