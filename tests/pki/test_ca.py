"""Tests for certification authorities and the trust store."""

import pytest

from repro.crypto.signing import KeyPair
from repro.errors import CertificateError
from repro.pki.ca import CertificationAuthority, TrustStore
from repro.pki.serial import SerialNumber


class TestIssuance:
    def test_issue_returns_signed_certificate(self, root_ca):
        keys = KeyPair.generate(b"server-a")
        certificate = root_ca.issue("a.example", keys.public, now=100)
        assert certificate.issuer == root_ca.name
        assert certificate.verify_signature(root_ca.public_key)
        assert certificate.is_valid_at(100)

    def test_serials_are_unique_across_issuances(self, root_ca):
        keys = KeyPair.generate(b"server-b")
        serials = {root_ca.issue(f"host{i}.example", keys.public).serial.value for i in range(50)}
        assert len(serials) == 50

    def test_issued_certificates_are_recorded(self, root_ca):
        keys = KeyPair.generate(b"server-c")
        root_ca.issue("c.example", keys.public)
        assert root_ca.issued_count() == 1
        assert root_ca.issued_certificates()[0].subject == "c.example"

    def test_issue_chain_for_includes_ca_certificate(self, root_ca):
        keys = KeyPair.generate(b"server-d")
        chain = root_ca.issue_chain_for("d.example", keys.public, now=10)
        assert len(chain) == 2
        assert chain.leaf.subject == "d.example"
        assert chain.certificates[-1].subject == root_ca.name
        assert chain.certificates[-1].is_ca

    def test_intermediate_chain_has_three_links(self):
        root = CertificationAuthority("Root", key_seed=b"r")
        intermediate = CertificationAuthority("Intermediate", key_seed=b"i", parent=root)
        keys = KeyPair.generate(b"server-e")
        chain = intermediate.issue_chain_for("e.example", keys.public, now=10)
        assert [certificate.subject for certificate in chain] == [
            "e.example",
            "Intermediate",
            "Root",
        ]

    def test_ca_certificate_is_self_signed_for_roots(self, root_ca):
        certificate = root_ca.certificate(now=0)
        assert certificate.issuer == root_ca.name
        assert certificate.verify_signature(root_ca.public_key)

    def test_intermediate_certificate_signed_by_parent(self):
        root = CertificationAuthority("Root2", key_seed=b"r2")
        intermediate = CertificationAuthority("Mid2", key_seed=b"i2", parent=root)
        certificate = intermediate.certificate(now=0)
        assert certificate.issuer == "Root2"
        assert certificate.verify_signature(root.public_key)


class TestRevocation:
    def test_revoke_and_query(self, root_ca):
        keys = KeyPair.generate(b"server-f")
        certificate = root_ca.issue("f.example", keys.public)
        assert not root_ca.is_revoked(certificate.serial)
        record = root_ca.revoke(certificate.serial, now=500, reason="key compromise")
        assert root_ca.is_revoked(certificate.serial)
        assert record.reason == "key compromise"

    def test_double_revocation_rejected(self, root_ca):
        serial = SerialNumber(4242)
        root_ca.revoke(serial, now=1)
        with pytest.raises(CertificateError):
            root_ca.revoke(serial, now=2)

    def test_revocations_ordered_by_time(self, root_ca):
        root_ca.revoke(SerialNumber(10), now=30)
        root_ca.revoke(SerialNumber(11), now=10)
        root_ca.revoke(SerialNumber(12), now=20)
        times = [record.revoked_at for record in root_ca.revocations()]
        assert times == sorted(times)

    def test_revoke_many(self, root_ca):
        records = root_ca.revoke_many([SerialNumber(100), SerialNumber(101)], now=5)
        assert len(records) == 2
        assert root_ca.revocation_count() == 2


class TestTrustStore:
    def test_add_and_lookup(self, root_ca):
        store = TrustStore()
        store.add(root_ca)
        assert store.trusts(root_ca.name)
        assert store.public_key_for(root_ca.name) == root_ca.public_key

    def test_unknown_ca(self):
        store = TrustStore()
        assert not store.trusts("Nobody")
        assert store.public_key_for("Nobody") is None

    def test_names_sorted(self):
        store = TrustStore()
        store.add(CertificationAuthority("Zeta", key_seed=b"z"))
        store.add(CertificationAuthority("Alpha", key_seed=b"a"))
        assert store.names() == ["Alpha", "Zeta"]
