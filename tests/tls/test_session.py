"""Tests for session caching and ticket issuance."""

from repro.tls.session import SessionCache, SessionState, TicketIssuer


def make_state(session_id: bytes = b"\x01" * 32, established_at: int = 1000) -> SessionState:
    return SessionState(
        session_id=session_id,
        server_name="example.com",
        cipher_suite=0xC02F,
        established_at=established_at,
        ca_name="Test CA",
        serial_value=1234,
    )


class TestSessionCache:
    def test_store_and_lookup(self):
        cache = SessionCache()
        state = make_state()
        cache.store(state)
        assert cache.lookup(state.session_id, now=1500) == state

    def test_expired_sessions_are_dropped(self):
        cache = SessionCache(lifetime_seconds=100)
        state = make_state(established_at=1000)
        cache.store(state)
        assert cache.lookup(state.session_id, now=1200) is None
        assert len(cache) == 0

    def test_unknown_session(self):
        assert SessionCache().lookup(b"\x09" * 32, now=0) is None

    def test_new_session_ids_are_unique(self):
        cache = SessionCache()
        assert cache.new_session_id() != cache.new_session_id()


class TestTicketIssuer:
    def test_issue_and_validate_roundtrip(self):
        issuer = TicketIssuer(key=b"\x05" * 32)
        state = make_state()
        ticket = issuer.issue(state)
        recovered = issuer.validate(ticket, now=1200)
        assert recovered == state

    def test_tampered_ticket_rejected(self):
        issuer = TicketIssuer(key=b"\x05" * 32)
        ticket = bytearray(issuer.issue(make_state()))
        ticket[0] ^= 0xFF
        assert issuer.validate(bytes(ticket), now=1200) is None

    def test_ticket_from_other_issuer_rejected(self):
        ticket = TicketIssuer(key=b"\x01" * 32).issue(make_state())
        assert TicketIssuer(key=b"\x02" * 32).validate(ticket, now=1200) is None

    def test_expired_ticket_rejected(self):
        issuer = TicketIssuer(key=b"\x05" * 32, lifetime_seconds=100)
        ticket = issuer.issue(make_state(established_at=1000))
        assert issuer.validate(ticket, now=1050) is not None
        assert issuer.validate(ticket, now=1200) is None

    def test_short_garbage_rejected(self):
        assert TicketIssuer().validate(b"short", now=0) is None

    def test_ticket_preserves_ritm_identity_fields(self):
        issuer = TicketIssuer()
        recovered = issuer.validate(issuer.issue(make_state()), now=1001)
        assert recovered.ca_name == "Test CA"
        assert recovered.serial_value == 1234
