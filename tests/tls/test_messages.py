"""Tests for handshake message encoding and parsing."""

import pytest

from repro.errors import TLSError
from repro.tls.extensions import (
    Extension,
    decode_extensions,
    encode_extensions,
    find_extension,
    has_ritm_support,
    ritm_server_confirm_extension,
    ritm_support_extension,
    server_name_extension,
    has_ritm_server_confirmation,
)
from repro.tls.messages import (
    CertificateMessage,
    ClientHello,
    Finished,
    HandshakeType,
    NewSessionTicket,
    ServerHello,
    ServerHelloDone,
    parse_handshake_messages,
)


class TestExtensions:
    def test_roundtrip(self):
        extensions = [ritm_support_extension(), server_name_extension("example.com")]
        encoded = encode_extensions(extensions)
        decoded, offset = decode_extensions(encoded, 0)
        assert decoded == extensions
        assert offset == len(encoded)

    def test_find_extension(self):
        extensions = [ritm_support_extension(), server_name_extension("x.com")]
        assert find_extension(extensions, 0).data == b"x.com"
        assert find_extension(extensions, 0x9999) is None

    def test_ritm_support_detection(self):
        assert has_ritm_support([ritm_support_extension()])
        assert not has_ritm_support([server_name_extension("x.com")])

    def test_ritm_server_confirmation_detection(self):
        assert has_ritm_server_confirmation([ritm_server_confirm_extension()])
        assert not has_ritm_server_confirmation([])

    def test_truncated_extension_block_rejected(self):
        encoded = encode_extensions([ritm_support_extension()])
        with pytest.raises(TLSError):
            decode_extensions(encoded[:-2], 0)

    def test_wire_size(self):
        extension = Extension(5, b"abc")
        assert extension.wire_size == 4 + 3 == len(extension.to_bytes())


class TestClientHello:
    def test_roundtrip_with_extensions(self):
        hello = ClientHello(
            session_id=b"\x11" * 8,
            extensions=(ritm_support_extension(), server_name_extension("shop.example")),
        )
        parsed = parse_handshake_messages(hello.to_bytes())
        assert len(parsed) == 1
        handshake_type, message = parsed[0]
        assert handshake_type == HandshakeType.CLIENT_HELLO
        assert message.session_id == b"\x11" * 8
        assert has_ritm_support(list(message.extensions))
        assert message.cipher_suites == hello.cipher_suites

    def test_random_is_32_bytes(self):
        assert len(ClientHello().random) == 32

    def test_truncated_body_rejected(self):
        data = ClientHello().to_bytes()
        with pytest.raises(TLSError):
            parse_handshake_messages(data[:10])


class TestServerMessages:
    def test_server_hello_roundtrip(self):
        hello = ServerHello(
            session_id=b"\x22" * 16, extensions=(ritm_server_confirm_extension(),)
        )
        handshake_type, message = parse_handshake_messages(hello.to_bytes())[0]
        assert handshake_type == HandshakeType.SERVER_HELLO
        assert message.session_id == b"\x22" * 16
        assert has_ritm_server_confirmation(list(message.extensions))

    def test_certificate_message_roundtrip(self, small_corpus):
        chain = small_corpus.chains[0]
        message = CertificateMessage(chain)
        handshake_type, decoded = parse_handshake_messages(message.to_bytes())[0]
        assert handshake_type == HandshakeType.CERTIFICATE
        assert decoded.chain == chain

    def test_server_hello_done_and_finished(self):
        payload = ServerHelloDone().to_bytes() + Finished(verify_data=b"\xaa" * 12).to_bytes()
        messages = parse_handshake_messages(payload)
        assert messages[0][0] == HandshakeType.SERVER_HELLO_DONE
        assert messages[1][0] == HandshakeType.FINISHED
        assert messages[1][1].verify_data == b"\xaa" * 12

    def test_new_session_ticket_roundtrip(self):
        ticket = NewSessionTicket(lifetime_seconds=3600, ticket=b"ticket-bytes")
        handshake_type, decoded = parse_handshake_messages(ticket.to_bytes())[0]
        assert handshake_type == HandshakeType.NEW_SESSION_TICKET
        assert decoded.ticket == b"ticket-bytes"
        assert decoded.lifetime_seconds == 3600

    def test_full_server_flight_parses_in_order(self, small_corpus):
        chain = small_corpus.chains[0]
        flight = (
            ServerHello().to_bytes()
            + CertificateMessage(chain).to_bytes()
            + ServerHelloDone().to_bytes()
        )
        types = [handshake_type for handshake_type, _ in parse_handshake_messages(flight)]
        assert types == [
            HandshakeType.SERVER_HELLO,
            HandshakeType.CERTIFICATE,
            HandshakeType.SERVER_HELLO_DONE,
        ]

    def test_unknown_handshake_type_rejected(self):
        bogus = bytes([99]) + (1).to_bytes(3, "big") + b"\x00"
        with pytest.raises(TLSError):
            parse_handshake_messages(bogus)
