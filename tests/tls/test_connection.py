"""Tests for the TLS client/server connection state machines."""

import pytest

from repro.errors import CertificateError, TLSError
from repro.tls.connection import (
    ClientConnectionConfig,
    HandshakeStage,
    ServerConnectionConfig,
    TLSClientConnection,
    TLSServerConnection,
)
from repro.tls.records import ContentType, parse_records

NOW = 1_400_000_100


def run_handshake(client, server, now=NOW):
    """Drive records between the two endpoints until both are quiescent."""
    to_server = [client.client_hello()]
    guard = 0
    while to_server:
        guard += 1
        assert guard < 20, "handshake did not converge"
        to_client = []
        for record in to_server:
            to_client.extend(server.process_record(record, now))
        to_server = []
        for record in to_client:
            to_server.extend(client.process_record(record, now))
    return client, server


@pytest.fixture()
def endpoints(small_corpus):
    chain = small_corpus.chains[0]
    client = TLSClientConnection(
        ClientConnectionConfig(server_name=chain.leaf.subject), small_corpus.trust_store
    )
    server = TLSServerConnection(ServerConnectionConfig(chain=chain))
    return client, server, chain


class TestFullHandshake:
    def test_handshake_reaches_established(self, endpoints):
        client, server, _ = endpoints
        run_handshake(client, server)
        assert client.is_established
        assert server.stage == HandshakeStage.ESTABLISHED

    def test_client_validates_certificate_chain(self, endpoints):
        client, server, chain = endpoints
        run_handshake(client, server)
        assert client.server_chain == chain
        assert client.validation.valid

    def test_client_receives_session_ticket(self, endpoints):
        client, server, _ = endpoints
        run_handshake(client, server)
        assert client.received_ticket is not None
        assert client.negotiated_session_id

    def test_server_detects_ritm_extension(self, endpoints):
        client, server, _ = endpoints
        run_handshake(client, server)
        assert server.client_supports_ritm

    def test_server_without_ritm_extension(self, small_corpus):
        chain = small_corpus.chains[0]
        client = TLSClientConnection(
            ClientConnectionConfig(server_name=chain.leaf.subject, use_ritm_extension=False),
            small_corpus.trust_store,
        )
        server = TLSServerConnection(ServerConnectionConfig(chain=chain))
        run_handshake(client, server)
        assert not server.client_supports_ritm
        assert client.is_established

    def test_terminator_confirms_ritm_in_server_hello(self, small_corpus):
        chain = small_corpus.chains[0]
        client = TLSClientConnection(
            ClientConnectionConfig(server_name=chain.leaf.subject), small_corpus.trust_store
        )
        server = TLSServerConnection(
            ServerConnectionConfig(chain=chain, acts_as_ritm_terminator=True)
        )
        run_handshake(client, server)
        assert client.server_confirmed_ritm

    def test_wrong_hostname_fails_validation(self, small_corpus):
        chain = small_corpus.chains[0]
        client = TLSClientConnection(
            ClientConnectionConfig(server_name="wrong.example"), small_corpus.trust_store
        )
        server = TLSServerConnection(ServerConnectionConfig(chain=chain))
        with pytest.raises(CertificateError):
            run_handshake(client, server)

    def test_application_data_after_establishment(self, endpoints):
        client, server, _ = endpoints
        run_handshake(client, server)
        record = client.application_data(b"GET / HTTP/1.1")
        server.process_record(record, NOW)
        assert server.application_data_received == [b"GET / HTTP/1.1"]

    def test_application_data_before_establishment_rejected(self, endpoints):
        client, _, _ = endpoints
        with pytest.raises(TLSError):
            client.application_data(b"too early")


class TestResumption:
    def test_session_id_resumption_skips_certificate(self, small_corpus):
        chain = small_corpus.chains[0]
        cache_server = TLSServerConnection(ServerConnectionConfig(chain=chain))
        first_client = TLSClientConnection(
            ClientConnectionConfig(server_name=chain.leaf.subject), small_corpus.trust_store
        )
        run_handshake(first_client, cache_server)
        session_id = first_client.negotiated_session_id

        resumed_client = TLSClientConnection(
            ClientConnectionConfig(server_name=chain.leaf.subject, session_id=session_id),
            small_corpus.trust_store,
        )
        resumed_server = TLSServerConnection(
            ServerConnectionConfig(chain=chain),
            session_cache=cache_server.session_cache,
            ticket_issuer=cache_server.ticket_issuer,
        )
        run_handshake(resumed_client, resumed_server)
        assert resumed_client.is_established
        assert resumed_client.resumed
        assert resumed_server.resumed
        assert resumed_client.server_chain is None  # no Certificate message

    def test_ticket_resumption(self, small_corpus):
        chain = small_corpus.chains[0]
        original_server = TLSServerConnection(ServerConnectionConfig(chain=chain))
        original_client = TLSClientConnection(
            ClientConnectionConfig(server_name=chain.leaf.subject), small_corpus.trust_store
        )
        run_handshake(original_client, original_server)
        ticket = original_client.received_ticket.ticket

        resumed_client = TLSClientConnection(
            ClientConnectionConfig(server_name=chain.leaf.subject, session_ticket=ticket),
            small_corpus.trust_store,
        )
        resumed_server = TLSServerConnection(
            ServerConnectionConfig(chain=chain),
            ticket_issuer=original_server.ticket_issuer,
        )
        run_handshake(resumed_client, resumed_server)
        assert resumed_server.resumed
        assert resumed_client.is_established

    def test_unknown_session_id_falls_back_to_full_handshake(self, small_corpus):
        chain = small_corpus.chains[0]
        client = TLSClientConnection(
            ClientConnectionConfig(server_name=chain.leaf.subject, session_id=b"\x42" * 32),
            small_corpus.trust_store,
        )
        server = TLSServerConnection(ServerConnectionConfig(chain=chain))
        run_handshake(client, server)
        assert client.is_established
        assert not server.resumed
        assert client.server_chain is not None


class TestStateMachineErrors:
    def test_unexpected_server_hello_rejected(self, endpoints):
        client, _, _ = endpoints
        from repro.tls.messages import ServerHello
        from repro.tls.records import TLSRecord

        record = TLSRecord(ContentType.HANDSHAKE, ServerHello().to_bytes())
        with pytest.raises(TLSError):
            client.process_record(record, NOW)  # no ClientHello sent yet

    def test_server_rejects_premature_application_data(self, endpoints):
        _, server, _ = endpoints
        from repro.tls.records import TLSRecord

        with pytest.raises(TLSError):
            server.process_record(TLSRecord(ContentType.APPLICATION_DATA, b"x"), NOW)

    def test_alert_closes_connection(self, endpoints):
        client, server, _ = endpoints
        run_handshake(client, server)
        from repro.tls.records import TLSRecord

        client.process_record(TLSRecord(ContentType.ALERT, b"\x02\x28"), NOW)
        assert client.stage == HandshakeStage.CLOSED


class TestChainValidationCache:
    """The memoized chain-validation fast path must be invisible except in cost."""

    def test_cached_result_matches_uncached(self, small_corpus):
        from repro.pki.validation import validate_chain
        from repro.tls.connection import ChainValidationCache

        chain = small_corpus.chains[0]
        cache = ChainValidationCache()
        direct = validate_chain(
            chain, small_corpus.trust_store, now=NOW, expected_subject=chain.leaf.subject
        )
        cached = cache.validate(
            chain, small_corpus.trust_store, now=NOW, expected_subject=chain.leaf.subject
        )
        again = cache.validate(
            chain, small_corpus.trust_store, now=NOW, expected_subject=chain.leaf.subject
        )
        assert cached.valid and direct.valid
        assert cached.checks == direct.checks
        assert again is cached  # served from the cache
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lookup_outside_validity_window_reverifies(self, small_corpus):
        from repro.tls.connection import ChainValidationCache

        chain = small_corpus.chains[0]
        cache = ChainValidationCache()
        assert cache.validate(chain, small_corpus.trust_store, now=NOW).valid
        far_future = max(cert.not_after for cert in chain) + 10
        late = cache.validate(chain, small_corpus.trust_store, now=far_future)
        assert not late.valid
        assert "validity window" in late.reason
        assert len(cache) == 0  # the dead entry was dropped, failure not cached

    def test_failures_are_not_cached(self, small_corpus):
        from repro.tls.connection import ChainValidationCache

        chain = small_corpus.chains[0]
        cache = ChainValidationCache()
        for _ in range(2):
            result = cache.validate(
                chain, small_corpus.trust_store, now=NOW, expected_subject="wrong.example"
            )
            assert not result.valid
        assert len(cache) == 0
        assert cache.stats.misses == 2

    def test_trust_store_contents_are_part_of_the_key(self, small_corpus):
        from repro.pki.ca import TrustStore
        from repro.tls.connection import ChainValidationCache

        chain = small_corpus.chains[0]
        cache = ChainValidationCache()
        assert cache.validate(chain, small_corpus.trust_store, now=NOW).valid
        empty = TrustStore()
        distrusted = cache.validate(chain, empty, now=NOW)
        assert not distrusted.valid
        assert cache.stats.hits == 0  # different trust store, different key

    def test_client_connection_uses_shared_cache(self, small_corpus):
        from repro.tls.connection import ChainValidationCache

        chain = small_corpus.chains[0]
        cache = ChainValidationCache()
        for _ in range(2):
            client = TLSClientConnection(
                ClientConnectionConfig(
                    server_name=chain.leaf.subject, validation_cache=cache
                ),
                small_corpus.trust_store,
            )
            server = TLSServerConnection(ServerConnectionConfig(chain=chain))
            run_handshake(client, server)
            assert client.is_established
            assert client.validation.valid
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
