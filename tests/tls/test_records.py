"""Tests for the TLS record layer."""

import pytest

from repro.errors import TLSError
from repro.tls.records import (
    ContentType,
    MAX_RECORD_PAYLOAD,
    TLSRecord,
    looks_like_tls,
    parse_record,
    parse_records,
    serialize_records,
)


class TestRecordEncoding:
    def test_roundtrip_single_record(self):
        record = TLSRecord(ContentType.HANDSHAKE, b"\x01\x02\x03")
        parsed, offset = parse_record(record.to_bytes())
        assert parsed == record
        assert offset == record.wire_size

    def test_roundtrip_multiple_records(self):
        records = [
            TLSRecord(ContentType.HANDSHAKE, b"hello"),
            TLSRecord(ContentType.APPLICATION_DATA, b"payload"),
            TLSRecord(ContentType.RITM_STATUS, b"status"),
        ]
        assert parse_records(serialize_records(records)) == records

    def test_wire_size_includes_header(self):
        record = TLSRecord(ContentType.ALERT, b"xy")
        assert record.wire_size == 5 + 2
        assert len(record.to_bytes()) == record.wire_size

    def test_oversized_payload_rejected(self):
        with pytest.raises(TLSError):
            TLSRecord(ContentType.APPLICATION_DATA, b"\x00" * (MAX_RECORD_PAYLOAD + 1))

    def test_truncated_header_rejected(self):
        with pytest.raises(TLSError):
            parse_record(b"\x16\x03\x03")

    def test_truncated_payload_rejected(self):
        record = TLSRecord(ContentType.HANDSHAKE, b"\x01" * 20).to_bytes()
        with pytest.raises(TLSError):
            parse_records(record[:-5])

    def test_unknown_content_type_rejected(self):
        data = bytes([99, 3, 3, 0, 1, 0])
        with pytest.raises(TLSError):
            parse_records(data)

    def test_content_type_predicates(self):
        assert TLSRecord(ContentType.HANDSHAKE, b"").is_handshake()
        assert TLSRecord(ContentType.APPLICATION_DATA, b"").is_application_data()
        assert TLSRecord(ContentType.RITM_STATUS, b"").is_ritm_status()


class TestTLSDetection:
    def test_valid_record_detected(self):
        assert looks_like_tls(TLSRecord(ContentType.HANDSHAKE, b"x" * 40).to_bytes())

    def test_http_not_detected(self):
        assert not looks_like_tls(b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n")

    def test_short_payload_not_detected(self):
        assert not looks_like_tls(b"\x16\x03")

    def test_wrong_version_not_detected(self):
        assert not looks_like_tls(bytes([22, 2, 0, 0, 5]) + b"abcde")

    def test_ritm_status_record_detected(self):
        assert looks_like_tls(TLSRecord(ContentType.RITM_STATUS, b"s").to_bytes())

    def test_empty_payload_not_detected(self):
        assert not looks_like_tls(b"")
