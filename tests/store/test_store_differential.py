"""Differential tests: every engine must be byte-identical to the oracle.

The :class:`NaiveMerkleStore` full-rebuild engine is the differential-testing
oracle; :class:`IncrementalMerkleStore` (and any future engine) must produce
the same roots, the same proofs, and the same errors under arbitrary
interleavings of single inserts, batch inserts, and proof queries.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProofError
from repro.store import (
    DEFAULT_ENGINE,
    ENGINES,
    IncrementalMerkleStore,
    NaiveMerkleStore,
    create_store,
)

serial_values = st.integers(min_value=1, max_value=2**24 - 1)


def to_key(value: int) -> bytes:
    return value.to_bytes(3, "big")


def to_value(value: int) -> bytes:
    return (value % 251).to_bytes(4, "big")


class TestRegistry:
    def test_engines_registered(self):
        assert ENGINES["naive"] is NaiveMerkleStore
        assert ENGINES["incremental"] is IncrementalMerkleStore
        assert DEFAULT_ENGINE in ENGINES

    def test_create_store_default_and_named(self):
        assert create_store().engine_name == DEFAULT_ENGINE
        assert create_store("naive").engine_name == "naive"
        assert create_store("incremental").engine_name == "incremental"

    def test_create_store_unknown_engine(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            create_store("rocksdb")


@settings(max_examples=60, deadline=None)
@given(st.lists(serial_values, unique=True, min_size=0, max_size=150), st.randoms(use_true_random=False))
def test_random_interleavings_produce_identical_roots_and_proofs(values, rng):
    """Single inserts, batches, and proof queries interleaved at random."""
    naive = NaiveMerkleStore()
    incremental = IncrementalMerkleStore()
    remaining = list(values)
    rng.shuffle(remaining)
    inserted = []
    while remaining:
        action = rng.randrange(3)
        if action == 0:
            value = remaining.pop()
            items = [(to_key(value), to_value(value))]
            assert naive.insert(*items[0]) == incremental.insert(*items[0])
            inserted.append(value)
        elif action == 1:
            size = min(len(remaining), rng.randrange(1, 10))
            chunk = [remaining.pop() for _ in range(size)]
            items = [(to_key(v), to_value(v)) for v in chunk]
            assert naive.insert_batch(list(items)) == incremental.insert_batch(items)
            inserted.extend(chunk)
        else:
            probe = rng.randrange(1, 2**24)
            key = to_key(probe)
            assert naive.prove(key) == incremental.prove(key)
        assert naive.root() == incremental.root()
    assert len(naive) == len(incremental) == len(inserted)
    assert naive.keys() == incremental.keys()
    root = naive.root()
    assert root == incremental.root()
    for value in inserted:
        key = to_key(value)
        left, right = naive.prove_presence(key), incremental.prove_presence(key)
        assert left == right
        assert left.verify(root)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(serial_values, unique=True, min_size=1, max_size=120),
    st.integers(min_value=1, max_value=119),
)
def test_batch_equals_sequence_of_single_inserts(values, split):
    """One batch must commit to the same root as element-wise insertion."""
    split = min(split, len(values))
    batched = create_store("incremental")
    batched.insert_batch([(to_key(v), to_value(v)) for v in values[:split]])
    batched.insert_batch([(to_key(v), to_value(v)) for v in values[split:]])
    sequential = create_store("incremental")
    for value in values:
        sequential.insert(to_key(value), to_value(value))
    oracle = create_store("naive")
    oracle.insert_batch([(to_key(v), to_value(v)) for v in values])
    assert batched.root() == sequential.root() == oracle.root()


@settings(max_examples=40, deadline=None)
@given(st.lists(serial_values, unique=True, min_size=1, max_size=120), serial_values)
def test_absence_proofs_identical_across_engines(values, probe):
    naive = create_store("naive")
    incremental = create_store("incremental")
    items = [(to_key(v), to_value(v)) for v in values]
    naive.insert_batch(items)
    incremental.insert_batch(list(items))
    key = to_key(probe)
    if probe in values:
        assert naive.prove_presence(key) == incremental.prove_presence(key)
    else:
        proof = incremental.prove_absence(key)
        assert proof == naive.prove_absence(key)
        assert proof.verify(incremental.root())


@settings(max_examples=40, deadline=None)
@given(
    st.lists(serial_values, unique=True, min_size=2, max_size=100),
    st.randoms(use_true_random=False),
)
def test_remove_batch_matches_fresh_build(values, rng):
    """Removing a staged subset leaves exactly the tree of the remainder."""
    removed = set(rng.sample(values, rng.randrange(1, len(values))))
    for engine in sorted(ENGINES):
        store = create_store(engine)
        store.insert_batch([(to_key(v), to_value(v)) for v in values])
        store.remove_batch(to_key(v) for v in removed)
        fresh = create_store(engine)
        fresh.insert_batch([(to_key(v), to_value(v)) for v in values if v not in removed])
        assert store.root() == fresh.root()
        assert store.keys() == fresh.keys()
        kept = [v for v in values if v not in removed]
        if kept:
            assert store.prove_presence(to_key(kept[0])) == fresh.prove_presence(to_key(kept[0]))


@pytest.mark.parametrize("engine", sorted(ENGINES))
class TestEngineContract:
    """Behavioral contract every registered engine must satisfy."""

    def test_empty_root_sentinel(self, engine):
        from repro.crypto.merkle import empty_root

        assert create_store(engine).root() == empty_root()

    def test_duplicate_single_insert_rejected(self, engine):
        store = create_store(engine)
        store.insert(to_key(7), b"v")
        with pytest.raises(ProofError):
            store.insert(to_key(7), b"w")

    def test_duplicate_in_batch_rejected(self, engine):
        store = create_store(engine)
        with pytest.raises(ProofError):
            store.insert_batch([(to_key(1), b"a"), (to_key(1), b"b")])

    def test_batch_duplicate_against_store_rejected(self, engine):
        store = create_store(engine)
        store.insert(to_key(5), b"v")
        with pytest.raises(ProofError):
            store.insert_batch([(to_key(4), b"a"), (to_key(5), b"b")])

    def test_empty_batch_is_noop(self, engine):
        store = create_store(engine)
        before = store.root()
        assert store.insert_batch([]) == 0
        assert store.root() == before

    def test_batch_accepts_generators(self, engine):
        store = create_store(engine)
        assert store.insert_batch((to_key(i), b"v") for i in range(10)) == 10
        assert len(store) == 10

    def test_get_and_contains(self, engine):
        store = create_store(engine)
        store.insert_batch([(to_key(3), b"a"), (to_key(1), b"b")])
        assert to_key(1) in store
        assert store.get(to_key(3)) == b"a"
        assert store.get(to_key(9)) is None

    def test_remove_batch_restores_pre_insert_state(self, engine):
        store = create_store(engine)
        store.insert_batch([(to_key(v), b"v") for v in (2, 5, 8, 11)])
        root_before = store.root()
        staged = [(to_key(v), b"v") for v in (1, 6, 7, 20)]
        store.insert_batch(staged)
        assert store.root() != root_before
        assert store.remove_batch(key for key, _ in staged) == 4
        assert store.root() == root_before
        assert len(store) == 4
        assert to_key(6) not in store

    def test_remove_batch_missing_key_rejected(self, engine):
        store = create_store(engine)
        store.insert(to_key(1), b"v")
        with pytest.raises(ProofError):
            store.remove_batch([to_key(2)])

    def test_remove_batch_to_empty(self, engine):
        from repro.crypto.merkle import empty_root

        store = create_store(engine)
        store.insert_batch([(to_key(v), b"v") for v in (3, 9)])
        assert store.remove_batch([to_key(3), to_key(9)]) == 2
        assert store.root() == empty_root()
        assert len(store) == 0
        store.insert(to_key(4), b"v")
        assert to_key(4) in store
