"""Differential and property tests for the compact flat-buffer engine.

The compact engine rebuilds the whole storage layer — byte arenas instead of
Python lists, flat hash planes instead of digest lists, lazy settling instead
of eager recomputation — so this suite pins the one thing that must not
change: for every reachable leaf set, roots, presence proofs, *and* absence
proofs are byte-identical to the ``naive`` oracle and the ``incremental``
engine.  It also covers what is new: proof-aliasing safety (returned proofs
must survive later mutations of the underlying buffers), the ragged-width
arena fallback, the lazy dirty-watermark settle, and the ``durable-compact``
WAL composition.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.merkle import empty_root
from repro.errors import ProofError
from repro.store import create_store
from repro.store.compact import CompactMerkleStore, _ByteColumn

serial_values = st.integers(min_value=1, max_value=2**24 - 1)


def to_key(value: int) -> bytes:
    return value.to_bytes(3, "big")


def to_value(value: int) -> bytes:
    return (value % 251).to_bytes(4, "big")


def build_pair(engine="compact", oracle="naive"):
    return create_store(engine), create_store(oracle)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(serial_values, unique=True, min_size=0, max_size=150),
    st.randoms(use_true_random=False),
)
def test_random_interleavings_match_both_references(values, rng):
    """Inserts, batches, removes, and proofs interleaved at random.

    Every intermediate state must agree with *both* references: the naive
    full-rebuild oracle and the incremental engine (so a shared bug in the
    suffix-recompute lineage would still be caught by the oracle).
    """
    compact = create_store("compact")
    naive = create_store("naive")
    incremental = create_store("incremental")
    remaining = list(values)
    rng.shuffle(remaining)
    inserted = []
    while remaining:
        action = rng.randrange(4)
        if action == 0:
            value = remaining.pop()
            item = (to_key(value), to_value(value))
            assert compact.insert(*item) == naive.insert(*item) == incremental.insert(*item)
            inserted.append(value)
        elif action == 1:
            size = min(len(remaining), rng.randrange(1, 10))
            chunk = [remaining.pop() for _ in range(size)]
            items = [(to_key(v), to_value(v)) for v in chunk]
            assert (
                compact.insert_batch(list(items))
                == naive.insert_batch(list(items))
                == incremental.insert_batch(items)
            )
            inserted.extend(chunk)
        elif action == 2 and inserted:
            count = rng.randrange(1, min(len(inserted), 6) + 1)
            victims = set(rng.sample(inserted, count))
            keys = [to_key(v) for v in victims]
            assert (
                compact.remove_batch(list(keys))
                == naive.remove_batch(list(keys))
                == incremental.remove_batch(keys)
            )
            inserted = [v for v in inserted if v not in victims]
        else:
            probe = to_key(rng.randrange(1, 2**24))
            assert compact.prove(probe) == naive.prove(probe) == incremental.prove(probe)
        assert compact.root() == naive.root() == incremental.root()
    root = compact.root()
    for value in inserted:
        key = to_key(value)
        proof = compact.prove_presence(key)
        assert proof == naive.prove_presence(key)
        assert proof.verify(root)
    assert compact.keys() == naive.keys()
    assert list(compact.items()) == list(naive.items())


@settings(max_examples=40, deadline=None)
@given(st.lists(serial_values, unique=True, min_size=1, max_size=120), serial_values)
def test_absence_proofs_byte_identical(values, probe):
    """Absence proofs (adjacency pairs) must match the oracle exactly."""
    compact, naive = build_pair()
    items = [(to_key(v), to_value(v)) for v in values]
    compact.insert_batch(list(items))
    naive.insert_batch(items)
    key = to_key(probe)
    if probe in values:
        with pytest.raises(ProofError):
            compact.prove_absence(key)
    else:
        proof = compact.prove_absence(key)
        assert proof == naive.prove_absence(key)
        assert proof.verify(compact.root())


@settings(max_examples=40, deadline=None)
@given(
    st.lists(serial_values, unique=True, min_size=1, max_size=120),
    st.integers(min_value=1, max_value=119),
)
def test_batch_equals_sequence_of_single_inserts(values, split):
    """Split batches, element-wise inserts, and one batch commit identically."""
    split = min(split, len(values))
    batched = create_store("compact")
    batched.insert_batch([(to_key(v), to_value(v)) for v in values[:split]])
    batched.insert_batch([(to_key(v), to_value(v)) for v in values[split:]])
    sequential = create_store("compact")
    for value in values:
        sequential.insert(to_key(value), to_value(value))
    oracle = create_store("naive")
    oracle.insert_batch([(to_key(v), to_value(v)) for v in values])
    assert batched.root() == sequential.root() == oracle.root()


class TestProofAliasing:
    """Returned proofs must be immutable snapshots, not live buffer views.

    The engine serves sibling digests out of mutable ``bytearray`` planes;
    a careless ``memoryview`` would let later mutations silently rewrite a
    proof that was already handed to a verifier.
    """

    def test_presence_proof_survives_later_mutations(self):
        store = create_store("compact")
        values = list(range(10, 200, 7))
        store.insert_batch([(to_key(v), to_value(v)) for v in values])
        root_before = store.root()
        proof = store.prove_presence(to_key(52))
        frozen = (
            proof.key,
            proof.value,
            tuple((bytes(s.sibling), s.sibling_is_left) for s in proof.path),
        )
        store.insert_batch([(to_key(v), to_value(v)) for v in range(1000, 1100, 3)])
        store.remove_batch([to_key(10), to_key(17)])
        store.root()  # force a settle that rewrites the planes
        assert proof.key == frozen[0]
        assert proof.value == frozen[1]
        assert tuple((bytes(s.sibling), s.sibling_is_left) for s in proof.path) == frozen[2]
        assert proof.verify(root_before)

    def test_absence_proof_survives_later_mutations(self):
        store = create_store("compact")
        store.insert_batch([(to_key(v), to_value(v)) for v in (5, 9, 30, 77)])
        root_before = store.root()
        proof = store.prove_absence(to_key(20))
        store.insert(to_key(20), to_value(20))
        store.root()
        assert proof.verify(root_before)

    def test_proof_fields_are_real_bytes(self):
        """Fields must be hashable ``bytes`` (frozen-dataclass contract)."""
        store = create_store("compact")
        store.insert_batch([(to_key(v), to_value(v)) for v in (1, 2, 3, 4, 5)])
        proof = store.prove_presence(to_key(3))
        assert type(proof.key) is bytes
        assert type(proof.value) is bytes
        for step in proof.path:
            assert type(step.sibling) is bytes
        hash(proof.path[0])  # would raise on bytearray/memoryview fields


class TestRaggedArenas:
    """The fixed-stride arenas must fall back safely on mixed-width leaves."""

    def test_mixed_width_keys_match_oracle(self):
        compact, naive = build_pair()
        leaves = [
            (b"a", b"1"),
            (b"longer-key", b"value-two"),
            (b"zz", b""),
            (b"m" * 40, b"v" * 17),
            (b"b", b"x"),
        ]
        for key, value in leaves:
            assert compact.insert(key, value) == naive.insert(key, value)
            assert compact.root() == naive.root()
        assert compact.prove_presence(b"a") == naive.prove_presence(b"a")
        assert compact.prove_absence(b"c") == naive.prove_absence(b"c")
        assert compact.keys() == naive.keys()

    def test_mixed_width_batch_and_remove(self):
        compact, naive = build_pair()
        first = [(b"k%03d" % i, b"v%d" % i) for i in range(20)]
        compact.insert_batch(list(first))
        naive.insert_batch(first)
        ragged = [(b"A" * (i + 1), b"B" * (i % 5)) for i in range(10)]
        compact.insert_batch(list(ragged))
        naive.insert_batch(ragged)
        assert compact.root() == naive.root()
        removed = [key for key, _ in first[::3]] + [ragged[2][0]]
        assert compact.remove_batch(list(removed)) == naive.remove_batch(removed)
        assert compact.root() == naive.root()
        assert list(compact.items()) == list(naive.items())

    def test_column_mode_transition(self):
        column = _ByteColumn()
        column.insert_at(0, b"aaa")
        column.insert_at(1, b"bbb")
        assert column.is_uniform
        column.insert_at(2, b"cc")  # width mismatch converts the arena
        assert not column.is_uniform
        assert list(column) == [b"aaa", b"bbb", b"cc"]
        assert column[-1] == b"cc"


class TestLazySettle:
    """The dirty-watermark settle must be invisible to observers."""

    def test_mutation_burst_shares_one_settle(self):
        compact, naive = build_pair()
        for v in range(50):
            compact.insert(to_key(v + 1), to_value(v))
            naive.insert(to_key(v + 1), to_value(v))
        # no root() calls in between: the whole burst settles at once
        assert compact.root() == naive.root()

    def test_remove_then_append_after_no_read(self):
        """Shrink + regrow between settles exercises stale-plane truncation."""
        compact, naive = build_pair()
        values = list(range(1, 65))
        compact.insert_batch([(to_key(v), to_value(v)) for v in values])
        naive.insert_batch([(to_key(v), to_value(v)) for v in values])
        compact.root()  # settle at 64 leaves
        tail = [to_key(v) for v in values[-9:]]
        compact.remove_batch(list(tail))
        naive.remove_batch(list(tail))
        compact.insert(to_key(2000), to_value(7))
        naive.insert(to_key(2000), to_value(7))
        assert compact.root() == naive.root()
        assert compact.prove_presence(to_key(2000)) == naive.prove_presence(to_key(2000))

    def test_remove_all_then_reuse(self):
        store = create_store("compact")
        store.insert_batch([(to_key(v), b"v") for v in (3, 9, 27)])
        store.remove_batch([to_key(3), to_key(9), to_key(27)])
        assert store.root() == empty_root()
        assert len(store) == 0
        store.insert(to_key(4), b"v")
        reference = create_store("naive")
        reference.insert(to_key(4), b"v")
        assert store.root() == reference.root()


class TestDurableCompact:
    """The WAL overlay composed over the compact core."""

    def test_recovery_round_trip(self, tmp_path):
        directory = tmp_path / "store"
        store = create_store("durable-compact", directory=directory, snapshot_every=8)
        values = random.Random(11).sample(range(1, 2**24), 200)
        store.insert_batch([(to_key(v), to_value(v)) for v in sorted(values)[:150]])
        for v in sorted(values)[150:]:
            store.insert(to_key(v), to_value(v))
        store.remove_batch([to_key(v) for v in sorted(values)[:10]])
        root = store.root()
        proof = store.prove_presence(to_key(sorted(values)[20]))
        store.close()

        reopened = create_store("durable-compact", directory=directory)
        assert reopened.root() == root
        assert reopened.prove_presence(to_key(sorted(values)[20])) == proof
        assert isinstance(reopened, CompactMerkleStore)
        reopened.close()

    def test_directory_interchangeable_with_durable(self, tmp_path):
        """Both WAL engines read each other's directories byte-identically."""
        directory = tmp_path / "store"
        first = create_store("durable-compact", directory=directory)
        first.insert_batch([(to_key(v), to_value(v)) for v in range(100, 400, 7)])
        root = first.root()
        first.close()
        second = create_store("durable", directory=directory)
        assert second.root() == root
        second.insert(to_key(5000), to_value(1))
        root_two = second.root()
        second.close()
        third = create_store("durable-compact", directory=directory)
        assert third.root() == root_two
        third.close()


class TestMemoryAccounting:
    """The flat layout's advertised footprint must hold."""

    def test_memory_usage_reports_flat_buffers(self):
        store = create_store("compact")
        count = 4096
        store.insert_batch([(to_key(v), to_value(v)) for v in range(1, count + 1)])
        usage = store.memory_usage()
        digest_size = store.digest_size
        assert usage["keys_bytes"] == count * 3
        assert usage["values_bytes"] == count * 4
        # planes: ~2N digests (leaf row + geometric levels above it)
        assert count * digest_size <= usage["plane_bytes"] <= 2 * count * digest_size + 64
        per_leaf = usage["total_bytes"] / count
        assert per_leaf < 60, f"flat layout should stay under 60 B/leaf, got {per_leaf:.1f}"
