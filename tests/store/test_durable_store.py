"""The durable engine: WAL/snapshot persistence and crash recovery.

Three families of guarantees:

* **differential** — ``durable`` produces byte-identical roots and proofs
  to ``incremental`` (and the naive oracle) under random batch histories;
* **crash-point** — truncating the WAL at *every* record boundary (and at
  arbitrary byte offsets inside the torn tail) recovers exactly the state
  after the last complete record;
* **format** — corrupt snapshots and WALs are rejected loudly, the
  lifecycle contract (close, context manager) holds, and snapshots compose
  with WAL suffixes across restarts.
"""

import struct
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, ProofError, StorageError
from repro.store import ENGINES, create_store
from repro.store.durable import (
    DurableMerkleStore,
    SNAPSHOT_FILENAME,
    WAL_FILENAME,
    _RECORD_CRC,
    _RECORD_HEADER,
)

serial_values = st.integers(min_value=1, max_value=2**24 - 1)


def to_key(value: int) -> bytes:
    return value.to_bytes(3, "big")


def to_value(value: int) -> bytes:
    return (value % 251).to_bytes(4, "big")


def record_boundaries(wal_path: Path):
    """Byte offsets after each complete record in a WAL file."""
    data = wal_path.read_bytes()
    offsets = [0]
    offset = 0
    while offset + _RECORD_HEADER.size <= len(data):
        _, _, payload_length = _RECORD_HEADER.unpack_from(data, offset)
        end = offset + _RECORD_HEADER.size + payload_length + _RECORD_CRC.size
        if end > len(data):
            break
        offsets.append(end)
        offset = end
    return offsets


class TestRegistryAndLifecycle:
    def test_registered(self):
        assert ENGINES["durable"] is DurableMerkleStore
        assert create_store("durable").engine_name == "durable"

    def test_temp_directory_removed_on_close(self):
        store = create_store("durable")
        directory = store.directory
        store.insert(to_key(1), b"v")
        assert directory.exists()
        store.close()
        assert not directory.exists()
        store.close()  # closing twice is safe

    def test_temp_directory_reclaimed_at_gc(self):
        import gc

        store = create_store("durable")
        directory = store.directory
        store.insert(to_key(1), b"v")
        del store
        gc.collect()
        assert not directory.exists()

    def test_explicit_directory_survives_close(self, tmp_path):
        with create_store("durable", directory=tmp_path / "s") as store:
            store.insert(to_key(1), b"v")
        assert (tmp_path / "s" / WAL_FILENAME).exists()

    def test_mutation_after_close_raises(self, tmp_path):
        store = create_store("durable", directory=tmp_path / "s")
        store.insert(to_key(1), b"v")
        store.close()
        with pytest.raises(StorageError):
            store.insert(to_key(2), b"v")
        with pytest.raises(StorageError):
            store.insert_batch([(to_key(3), b"v")])
        with pytest.raises(StorageError):
            store.remove_batch([to_key(1)])
        # reads still work from memory
        assert to_key(1) in store

    def test_unknown_engine_option_rejected(self):
        with pytest.raises(ConfigurationError):
            create_store("incremental", directory="/nope")

    def test_in_memory_engines_close_is_noop(self):
        for engine in ("naive", "incremental"):
            with create_store(engine) as store:
                store.insert(to_key(1), b"v")
            assert to_key(1) in store


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.lists(serial_values, unique=True, min_size=1, max_size=30),
        min_size=1,
        max_size=8,
    )
)
def test_durable_matches_incremental_on_random_batch_histories(batches):
    """Differential: identical roots/proofs under arbitrary batch histories."""
    durable = create_store("durable")
    incremental = create_store("incremental")
    inserted = set()
    try:
        for batch in batches:
            items = [
                (to_key(v), to_value(v)) for v in batch if v not in inserted
            ]
            if not items:
                continue
            assert durable.insert_batch(list(items)) == incremental.insert_batch(items)
            inserted.update(batch)
            assert durable.root() == incremental.root()
        for value in sorted(inserted)[:10]:
            key = to_key(value)
            assert durable.prove_presence(key) == incremental.prove_presence(key)
        probe = to_key(2**24 - 1)
        if 2**24 - 1 not in inserted:
            assert durable.prove_absence(probe) == incremental.prove_absence(probe)
    finally:
        durable.close()


def test_reopen_recovers_identical_state(tmp_path):
    directory = tmp_path / "store"
    with create_store("durable", directory=directory) as store:
        store.insert_batch([(to_key(v), to_value(v)) for v in (5, 9, 2, 40)])
        store.insert(to_key(7), to_value(7))
        store.remove_batch([to_key(9)])
        root = store.root()
        proof = store.prove_presence(to_key(7))
        keys = store.keys()
    recovered = create_store("durable", directory=directory)
    assert recovered.root() == root
    assert recovered.keys() == keys
    assert recovered.prove_presence(to_key(7)) == proof
    assert recovered.records_replayed == 3
    recovered.close()


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.lists(serial_values, unique=True, min_size=1, max_size=20),
        min_size=1,
        max_size=6,
    ),
    st.data(),
)
def test_crash_at_every_record_boundary_recovers_prefix_state(tmp_path_factory, batches, data):
    """The tentpole guarantee: a WAL truncated at any record boundary
    recovers to the exact root the store had after that many records."""
    directory = Path(tmp_path_factory.mktemp("crash")) / "store"
    store = DurableMerkleStore(directory=directory, snapshot_every=0)
    shadow = create_store("incremental")
    roots = [store.root()]  # roots[i] = root after i records
    inserted = set()
    for batch in batches:
        items = [(to_key(v), to_value(v)) for v in batch if v not in inserted]
        if not items:
            continue
        store.insert_batch(list(items))
        shadow.insert_batch(items)
        inserted.update(batch)
        roots.append(shadow.root())
    store.close()

    wal_path = directory / WAL_FILENAME
    full_wal = wal_path.read_bytes()
    boundaries = record_boundaries(wal_path)
    assert len(boundaries) == len(roots)
    for count, boundary in enumerate(boundaries):
        wal_path.write_bytes(full_wal[:boundary])
        recovered = DurableMerkleStore(directory=directory, snapshot_every=0)
        assert recovered.root() == roots[count], f"crash after {count} record(s)"
        recovered.close()  # explicit directory: files survive close
    # a torn tail (crash inside a record) recovers the preceding boundary
    if len(full_wal) > boundaries[-2] + 1:
        torn = data.draw(
            st.integers(min_value=boundaries[-2] + 1, max_value=len(full_wal) - 1),
            label="torn-offset",
        )
        wal_path.write_bytes(full_wal[:torn])
        recovered = DurableMerkleStore(directory=directory, snapshot_every=0)
        assert recovered.root() == roots[-2]
        recovered.close()


def test_snapshot_plus_wal_suffix_compose(tmp_path):
    """Records already covered by the snapshot are skipped on replay."""
    directory = tmp_path / "store"
    store = DurableMerkleStore(directory=directory, snapshot_every=0)
    store.insert_batch([(to_key(v), b"a") for v in (1, 2, 3)])
    store.snapshot()
    assert store.wal_size_bytes() == 0
    store.insert_batch([(to_key(v), b"b") for v in (10, 11)])
    root = store.root()
    store.close()

    recovered = DurableMerkleStore(directory=directory, snapshot_every=0)
    assert recovered.recovered_from_snapshot
    assert recovered.records_replayed == 1  # only the post-snapshot batch
    assert recovered.root() == root
    recovered.close()


def test_crash_between_snapshot_and_wal_reset_is_harmless(tmp_path):
    """A WAL whose records the snapshot already covers must replay to the
    same state (sequence numbers make replay idempotent)."""
    directory = tmp_path / "store"
    store = DurableMerkleStore(directory=directory, snapshot_every=0)
    store.insert_batch([(to_key(v), b"a") for v in (1, 2, 3)])
    wal_before = (directory / WAL_FILENAME).read_bytes()
    store.snapshot()
    root = store.root()
    store.close()
    # simulate the crash: snapshot on disk, WAL never truncated
    (directory / WAL_FILENAME).write_bytes(wal_before)
    recovered = DurableMerkleStore(directory=directory, snapshot_every=0)
    assert recovered.root() == root
    assert recovered.records_replayed == 0
    recovered.close()


def test_automatic_snapshots_bound_the_wal(tmp_path):
    directory = tmp_path / "store"
    store = DurableMerkleStore(directory=directory, snapshot_every=4)
    for value in range(1, 20):
        store.insert(to_key(value), b"v")
    assert store.snapshots_written >= 4
    root = store.root()
    store.close()
    recovered = create_store("durable", directory=directory)
    assert recovered.root() == root
    recovered.close()


def test_remove_batch_is_logged_and_recovered(tmp_path):
    """The rollback path (remove_batch) survives a restart too."""
    directory = tmp_path / "store"
    with create_store("durable", directory=directory) as store:
        store.insert_batch([(to_key(v), b"v") for v in (2, 4, 6, 8)])
        staged = [(to_key(v), b"v") for v in (3, 5)]
        store.insert_batch(staged)
        store.remove_batch(key for key, _ in staged)
        root = store.root()
    recovered = create_store("durable", directory=directory)
    assert recovered.root() == root
    assert len(recovered) == 4
    recovered.close()


def test_failed_mutations_never_reach_the_wal(tmp_path):
    """Validation errors must leave the log untouched (no phantom records)."""
    directory = tmp_path / "store"
    store = create_store("durable", directory=directory)
    store.insert(to_key(5), b"v")
    logged = store.records_logged
    with pytest.raises(ProofError):
        store.insert(to_key(5), b"w")
    with pytest.raises(ProofError):
        store.insert_batch([(to_key(6), b"a"), (to_key(6), b"b")])
    with pytest.raises(ProofError):
        store.remove_batch([to_key(99)])
    assert store.records_logged == logged
    store.close()
    recovered = create_store("durable", directory=directory)
    assert len(recovered) == 1
    recovered.close()


def test_corrupt_snapshot_rejected(tmp_path):
    directory = tmp_path / "store"
    store = DurableMerkleStore(directory=directory)
    store.insert_batch([(to_key(v), b"v") for v in (1, 2, 3)])
    store.snapshot()
    store.close()
    snapshot_path = directory / SNAPSHOT_FILENAME
    data = bytearray(snapshot_path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    snapshot_path.write_bytes(bytes(data))
    with pytest.raises(StorageError):
        DurableMerkleStore(directory=directory)


def test_snapshot_digest_size_mismatch_rejected(tmp_path):
    directory = tmp_path / "store"
    store = DurableMerkleStore(directory=directory, digest_size=20)
    store.insert(to_key(1), b"v")
    store.snapshot()
    store.close()
    with pytest.raises(StorageError):
        DurableMerkleStore(directory=directory, digest_size=32)


def test_snapshot_version_pinned(tmp_path):
    directory = tmp_path / "store"
    store = DurableMerkleStore(directory=directory)
    store.insert(to_key(1), b"v")
    store.snapshot()
    store.close()
    snapshot_path = directory / SNAPSHOT_FILENAME
    data = bytearray(snapshot_path.read_bytes())
    # bump the version field (directly after the 8-byte magic), re-checksum
    struct.pack_into(">H", data, 8, 99)
    import zlib

    struct.pack_into(">I", data, len(data) - 4, zlib.crc32(bytes(data[:-4])))
    snapshot_path.write_bytes(bytes(data))
    with pytest.raises(StorageError):
        DurableMerkleStore(directory=directory)
