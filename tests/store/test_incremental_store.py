"""Unit tests for the incremental engine's cached-level maintenance."""

import pytest

from repro.store import IncrementalMerkleStore, NaiveMerkleStore


def key(value: int) -> bytes:
    return value.to_bytes(3, "big")


def fresh_levels(store: IncrementalMerkleStore):
    """Recompute the hash levels from scratch through the oracle."""
    oracle = NaiveMerkleStore(digest_size=store.digest_size)
    oracle.insert_batch(zip(store.keys(), (store.get(k) for k in store.keys())))
    return oracle._hash_levels()


def assert_levels_fresh(store: IncrementalMerkleStore):
    assert store._hash_levels() == fresh_levels(store)


@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33])
def test_levels_match_oracle_after_appends(size):
    store = IncrementalMerkleStore()
    for value in range(1, size + 1):
        store.insert(key(value), b"val1")
    assert_levels_fresh(store)


@pytest.mark.parametrize("size", [2, 3, 5, 8, 13, 21, 34])
def test_levels_match_oracle_after_front_inserts(size):
    store = IncrementalMerkleStore()
    for value in range(size, 0, -1):
        store.insert(key(value), b"val1")
    assert_levels_fresh(store)


def test_levels_match_oracle_after_middle_inserts():
    store = IncrementalMerkleStore()
    store.insert_batch([(key(v), b"v") for v in range(0, 100, 10)])
    for value in (5, 55, 95, 41, 42, 43):
        store.insert(key(value), b"v")
        assert_levels_fresh(store)


def test_append_touches_only_logarithmic_path(monkeypatch):
    """An append (key after every stored key) must not rehash the whole tree."""
    import repro.store.incremental as incremental_module

    store = IncrementalMerkleStore()
    store.insert_batch([(key(v), b"v") for v in range(1, 1025)])

    calls = 0
    real_hash_node = incremental_module.hash_node

    def counting_hash_node(left, right, digest_size):
        nonlocal calls
        calls += 1
        return real_hash_node(left, right, digest_size)

    monkeypatch.setattr(incremental_module, "hash_node", counting_hash_node)
    store.insert(key(5000), b"v")
    # 1025 leaves → 11 levels; the right-edge path recomputes at most a
    # couple of nodes per level, nowhere near the ~1024 of a full rebuild.
    assert calls <= 2 * 11


def test_batch_recomputes_only_dirty_suffix(monkeypatch):
    """A batch landing at the far right must not rehash the left subtrees."""
    import repro.store.incremental as incremental_module

    store = IncrementalMerkleStore()
    store.insert_batch([(key(v), b"v") for v in range(1, 1025)])

    calls = 0
    real_hash_node = incremental_module.hash_node

    def counting_hash_node(left, right, digest_size):
        nonlocal calls
        calls += 1
        return real_hash_node(left, right, digest_size)

    monkeypatch.setattr(incremental_module, "hash_node", counting_hash_node)
    store.insert_batch([(key(5000 + v), b"v") for v in range(64)])
    # 64 appended leaves dirty a 64-wide suffix: ~64+32+16+... ≈ 128 nodes,
    # plus one path to the root; a full rebuild would be ~1088.
    assert calls < 200


def test_root_is_served_from_cache(monkeypatch):
    import repro.store.incremental as incremental_module

    store = IncrementalMerkleStore()
    store.insert_batch([(key(v), b"v") for v in range(1, 100)])

    def exploding_hash_node(left, right, digest_size):
        raise AssertionError("root() must not hash anything")

    monkeypatch.setattr(incremental_module, "hash_node", exploding_hash_node)
    for _ in range(3):
        assert store.root() == store.root()
        store.prove(key(50))
        store.prove(key(100000))


def test_height_growth_and_single_leaf():
    store = IncrementalMerkleStore()
    store.insert(key(1), b"v")
    assert store.root() == fresh_levels(store)[-1][0]
    store.insert(key(2), b"v")
    assert_levels_fresh(store)
