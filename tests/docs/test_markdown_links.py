"""Relative links in the documentation must resolve (tools/check_links.py)."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def run_checker(*args):
    return subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_links.py"), *args],
        capture_output=True,
        text=True,
        cwd=REPO,
    )


def test_repo_docs_have_no_broken_links():
    result = run_checker("README.md", "ARCHITECTURE.md", "docs")
    assert result.returncode == 0, result.stdout + result.stderr


def test_checker_catches_broken_link(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text("see [missing](does-not-exist.md)\n", encoding="utf-8")
    result = run_checker(str(bad))
    assert result.returncode == 1
    assert "broken link" in result.stdout


def test_checker_fails_on_missing_argument(tmp_path):
    result = run_checker(str(tmp_path / "no-such-dir"))
    assert result.returncode == 1
    assert "not an existing" in result.stderr


def test_checker_ignores_external_links(tmp_path):
    doc = tmp_path / "ok.md"
    doc.write_text(
        "[a](https://example.com) [b](#heading) [c](mailto:x@example.com)\n",
        encoding="utf-8",
    )
    result = run_checker(str(doc))
    assert result.returncode == 0, result.stdout
