"""``docs/RESULTS.md`` stays in sync with the artifact registry.

The generated results index must list every benchmark artifact exactly once
and every registered scenario exactly once, and the registry in
``tools/gen_results.py`` must know about every artifact the benchmark suite
actually writes (no silently unmapped results).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
RESULTS_MD = REPO / "docs" / "RESULTS.md"


@pytest.fixture(scope="module")
def gen_results():
    """The generator module, imported from tools/ by path."""
    spec = importlib.util.spec_from_file_location(
        "gen_results", REPO / "tools" / "gen_results.py"
    )
    module = importlib.util.module_from_spec(spec)
    # Register before exec: dataclasses resolves string annotations through
    # sys.modules[cls.__module__].
    sys.modules["gen_results"] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def results_text():
    assert RESULTS_MD.exists(), "docs/RESULTS.md is missing; run tools/gen_results.py"
    return RESULTS_MD.read_text(encoding="utf-8")


def test_document_carries_generation_marker(gen_results, results_text):
    assert gen_results.MARKER in results_text


def test_every_artifact_listed_exactly_once(gen_results, results_text):
    filenames = [artifact.filename for artifact in gen_results.ARTIFACTS]
    assert len(filenames) == len(set(filenames)), "registry has duplicate artifacts"
    for filename in filenames:
        occurrences = results_text.count(f"`benchmarks/results/{filename}`")
        assert occurrences == 1, f"{filename} mapped {occurrences} times in RESULTS.md"


def test_every_registered_scenario_listed_exactly_once(results_text):
    sys.path.insert(0, str(REPO / "src"))
    from repro.scenarios import registry

    names = registry.names()
    assert names, "no scenarios registered"
    for name in names:
        occurrences = results_text.count(f"`python -m repro run {name}`")
        assert occurrences == 1, f"scenario {name} listed {occurrences} times"


def test_registry_covers_every_written_artifact(gen_results):
    """No benchmark may write an artifact the results index cannot map."""
    results_dir = REPO / "benchmarks" / "results"
    if not results_dir.exists():
        pytest.skip("benchmarks have not produced artifacts in this checkout")
    known = {artifact.filename for artifact in gen_results.ARTIFACTS}
    written = {
        path.name
        for path in results_dir.iterdir()
        if path.suffix in (".txt", ".json")
    }
    unmapped = sorted(written - known)
    assert not unmapped, f"artifacts missing from the gen_results registry: {unmapped}"


def test_generator_is_deterministic(gen_results):
    assert gen_results.generate() == gen_results.generate()
