"""Docstring coverage gate for the documented public API surfaces.

Every public class and function in ``repro.store``, ``repro.perf``,
``repro.net``, ``repro.ritm.dissemination``, ``repro.ritm.persistence``,
``repro.dictionary.sharding``, ``repro.tls.connection``, ``repro.cdn.edge``,
``repro.scenarios``, and ``repro.scenarios.engine`` must carry a docstring.  CI additionally runs
``interrogate``; this test is the always-on, stdlib-only enforcement so the
gate holds wherever the suite runs.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: The modules whose public API must be 100% documented.
COVERED_FILES = sorted(
    [
        *(SRC / "store").glob("*.py"),
        *(SRC / "perf").glob("*.py"),
        *(SRC / "net").glob("*.py"),
        SRC / "ritm" / "dissemination.py",
        SRC / "ritm" / "persistence.py",
        SRC / "ritm" / "consistency.py",
        SRC / "ritm" / "replication.py",
        SRC / "dictionary" / "sharding.py",
        SRC / "tls" / "connection.py",
        SRC / "cdn" / "edge.py",
        *(SRC / "scenarios").glob("*.py"),
        *(SRC / "scenarios" / "engine").glob("*.py"),
        *(SRC / "workloads").glob("*.py"),
    ]
)

#: Required docstring coverage over public definitions, in percent.
THRESHOLD = 100.0


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_docstrings(path: Path):
    """Yield dotted names of public defs/classes without a docstring."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    if ast.get_docstring(tree) is None:
        yield f"{path.name} (module)"

    def walk(node, prefix, public_scope):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                public = public_scope and _is_public(child.name)
                dotted = f"{prefix}{child.name}"
                if public and ast.get_docstring(child) is None:
                    yield dotted
                yield from walk(child, f"{dotted}.", public)

    yield from walk(tree, f"{path.stem}.", True)


def _definition_counts(path: Path):
    """(documented, total) public definitions in ``path``."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    total = documented = 0

    def walk(node, public_scope):
        nonlocal total, documented
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                public = public_scope and _is_public(child.name)
                if public:
                    total += 1
                    if ast.get_docstring(child) is not None:
                        documented += 1
                walk(child, public)

    walk(tree, True)
    return documented, total


def test_covered_files_exist():
    assert len(COVERED_FILES) >= 10


@pytest.mark.parametrize("path", COVERED_FILES, ids=lambda p: str(p.relative_to(SRC)))
def test_public_api_is_documented(path):
    missing = list(_missing_docstrings(path))
    assert not missing, f"undocumented public definitions: {missing}"


def test_overall_coverage_meets_threshold():
    documented = total = 0
    for path in COVERED_FILES:
        doc, tot = _definition_counts(path)
        documented += doc
        total += tot
    coverage = 100.0 * documented / total if total else 100.0
    assert coverage >= THRESHOLD, f"docstring coverage {coverage:.1f}% < {THRESHOLD}%"
