"""Tests for the RA's Δ-periodic pull from the dissemination network."""

import pytest

from repro.cdn.geography import GeoLocation, Region
from repro.ritm.agent import RevocationAgent
from repro.ritm.dissemination import attach_agent_to_cas

from tests.ritm.conftest import EPOCH, build_world


class TestInitialSync:
    def test_initial_pull_installs_roots_for_every_ca(self, world):
        for ca in world.cas:
            replica = world.agent.replica_for(ca.name)
            assert replica is not None
            assert replica.signed_root is not None
            assert replica.size == 0

    def test_pull_records_history_and_bytes(self, world):
        result = world.pull(now=EPOCH + 20)
        assert result.bytes_downloaded > 0
        assert result.heads_checked == len(world.cas)
        assert result.errors == []
        assert world.dissemination.total_bytes_downloaded() > 0

    def test_pull_latency_is_subsecond(self, world):
        result = world.pull(now=EPOCH + 20)
        # The paper's Fig. 5 claim: dissemination completes within seconds.
        assert result.latency_seconds < 2.0


class TestRevocationPropagation:
    def test_new_revocation_reaches_replica_on_next_pull(self, world):
        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        serial = world.corpus.chains[0].leaf.serial
        issuing.revoke([serial], now=EPOCH + 20)
        replica = world.agent.replica_for(issuing.name)
        assert not replica.contains(serial)
        result = world.pull(now=EPOCH + 25)
        assert result.issuances_applied == 1
        assert result.serials_applied == 1
        assert replica.contains(serial)
        assert replica.root() == issuing.dictionary.root()

    def test_multiple_batches_applied_in_order(self, world):
        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        serials = [chain.leaf.serial for chain in world.corpus.chains_by_ca[issuing.name]]
        issuing.revoke([serials[0]], now=EPOCH + 20)
        issuing.revoke([serials[1]], now=EPOCH + 30)
        world.pull(now=EPOCH + 35)
        replica = world.agent.replica_for(issuing.name)
        assert replica.size == 2
        assert replica.revocation_number(serials[0]) == 1
        assert replica.revocation_number(serials[1]) == 2

    def test_freshness_applied_every_pull(self, world):
        ca = world.cas[0]
        ca.refresh(now=EPOCH + 20)
        result = world.pull(now=EPOCH + 21)
        assert result.freshness_applied == len(world.cas)
        replica = world.agent.replica_for(ca.name)
        assert replica.latest_freshness is not None

    def test_periodic_pull_keeps_statuses_fresh(self, world):
        from repro.pki.serial import SerialNumber

        issuing = world.cas[0]
        now = EPOCH + 20
        for step in range(5):
            issuing.refresh(now=now)
            world.pull(now=now + 1)
            replica = world.agent.replica_for(issuing.name)
            status = replica.prove(SerialNumber(123))
            status.verify(issuing.public_key, now=int(now + 2), delta=world.config.delta_seconds)
            now += world.config.delta_seconds


class TestRecovery:
    def test_cold_agent_catches_up_via_issuance_objects(self, world):
        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        serials = [chain.leaf.serial for chain in world.corpus.chains_by_ca[issuing.name]]
        issuing.revoke([serials[0]], now=EPOCH + 20)
        issuing.revoke([serials[1]], now=EPOCH + 30)

        late_agent = RevocationAgent("late-ra", world.config)
        late_dissemination = attach_agent_to_cas(
            late_agent, world.cas, world.cdn, GeoLocation(Region.INDIA)
        )
        result = late_dissemination.pull(now=EPOCH + 40)
        assert result.serials_applied == 2
        assert late_agent.replica_for(issuing.name).size == 2

    def test_missing_batches_trigger_sync_fallback(self, world):
        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        serials = [chain.leaf.serial for chain in world.corpus.chains_by_ca[issuing.name]]
        issuing.revoke([serials[0]], now=EPOCH + 20)
        issuing.revoke([serials[1]], now=EPOCH + 30)
        # Simulate the CDN purging the first batch before a cold RA arrives.
        from repro.ritm.ca_service import issuance_path

        world.cdn.origin._objects.pop(issuance_path(issuing.name, 1))

        cold_agent = RevocationAgent("cold-ra", world.config)
        cold_dissemination = attach_agent_to_cas(
            cold_agent, world.cas, world.cdn, GeoLocation(Region.JAPAN)
        )
        result = cold_dissemination.pull(now=EPOCH + 40)
        assert result.resyncs >= 1
        assert cold_agent.replica_for(issuing.name).size == 2

    def test_desync_without_sync_server_reports_error(self, world):
        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        serial = world.corpus.chains[0].leaf.serial
        issuing.revoke([serial], now=EPOCH + 20)
        from repro.ritm.ca_service import issuance_path

        world.cdn.origin._objects.pop(issuance_path(issuing.name, 1))

        isolated_agent = RevocationAgent("isolated-ra", world.config)
        isolated_agent.register_ca(issuing.name, issuing.public_key)
        from repro.ritm.dissemination import RADisseminationClient

        client = RADisseminationClient(
            isolated_agent, world.cdn, GeoLocation(Region.EUROPE), sync_servers={}
        )
        result = client.pull(now=EPOCH + 40)
        assert any("no sync server" in error for error in result.errors)


class TestTamperedObjectRecovery:
    """A malicious CDN/edge must cost one resync, never a bricked replica."""

    @staticmethod
    def _tamper(world, issuing, mutate):
        from dataclasses import replace

        from repro.ritm.ca_service import issuance_path
        from repro.ritm.messages import decode_issuance, encode_issuance

        path = issuance_path(issuing.name, issuing.issuance_count())
        stored = world.cdn.origin._objects[path]
        issuance = decode_issuance(stored.content)
        world.cdn.origin._objects[path] = replace(
            stored, content=encode_issuance(mutate(issuance))
        )

    def test_tampered_serials_roll_back_and_resync(self, world):
        from dataclasses import replace

        from repro.pki.serial import SerialNumber

        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        serial = world.corpus.chains[0].leaf.serial
        issuing.revoke([serial], now=EPOCH + 20)
        self._tamper(
            world, issuing, lambda iss: replace(iss, serials=(SerialNumber(0xEEEEEE),))
        )

        result = world.pull(now=EPOCH + 40)
        replica = world.agent.replica_for(issuing.name)
        assert result.resyncs >= 1
        assert any("root does not match" in error for error in result.errors)
        assert not replica.contains(SerialNumber(0xEEEEEE))
        assert replica.contains(serial)
        assert replica.root() == issuing.dictionary.root()

    def test_forged_signature_recorded_and_resynced_without_aborting_pull(self, world):
        from dataclasses import replace

        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        serial = world.corpus.chains[0].leaf.serial
        issuing.revoke([serial], now=EPOCH + 20)
        self._tamper(
            world,
            issuing,
            lambda iss: replace(
                iss, signed_root=replace(iss.signed_root, signature=b"\x00" * 64)
            ),
        )

        result = world.pull(now=EPOCH + 40)
        replica = world.agent.replica_for(issuing.name)
        # The forged batch is reported, the replica recovers via sync, and
        # every other CA's head was still checked in the same cycle.
        assert any("signature" in error for error in result.errors)
        assert result.heads_checked == len(world.cas)
        assert result.resyncs >= 1
        assert replica.contains(serial)
        assert replica.root() == issuing.dictionary.root()

    def test_transient_tamper_without_sync_server_self_heals(self, world):
        """A batch that failed to apply must be refetched once the CDN heals."""
        from dataclasses import replace

        from repro.pki.serial import SerialNumber
        from repro.ritm.ca_service import issuance_path
        from repro.ritm.dissemination import RADisseminationClient

        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        serial = world.corpus.chains[0].leaf.serial

        lonely_agent = RevocationAgent("lonely-ra", world.config)
        lonely_agent.register_ca(issuing.name, issuing.public_key)
        client = RADisseminationClient(
            lonely_agent, world.cdn, GeoLocation(Region.EUROPE), sync_servers={}
        )
        client.pull(now=EPOCH + 10)  # bootstrap the signed root

        issuing.revoke([serial], now=EPOCH + 20)
        path = issuance_path(issuing.name, issuing.issuance_count())
        honest_object = world.cdn.origin._objects[path]
        self._tamper(
            world, issuing, lambda iss: replace(iss, serials=(SerialNumber(0xEEEEEE),))
        )

        bad_pull = client.pull(now=EPOCH + 40)
        replica = lonely_agent.replica_for(issuing.name)
        assert any("root does not match" in error for error in bad_pull.errors)
        assert replica.size == 0  # rolled back, nothing bogus retained

        # CDN heals: the same batch object is honest again.
        world.cdn.origin._objects[path] = honest_object
        good_pull = client.pull(now=EPOCH + 50)
        assert good_pull.errors == []
        assert good_pull.serials_applied == 1
        assert replica.contains(serial)
        assert replica.root() == issuing.dictionary.root()
