"""Tests for the RITM configuration and the RA's connection state table."""

import pytest

from repro.errors import ConfigurationError
from repro.net.packet import make_flow
from repro.pki.serial import SerialNumber
from repro.ritm.config import PAPER_DELTA_SWEEP, DeploymentModel, RITMConfig
from repro.ritm.state import ConnectionState, ConnectionTable
from repro.tls.connection import HandshakeStage


class TestRITMConfig:
    def test_defaults(self):
        config = RITMConfig()
        assert config.delta_seconds == 10
        assert config.attack_window_seconds == 20
        assert config.deployment == DeploymentModel.CLOSE_TO_CLIENT

    def test_attack_window_is_two_delta(self):
        assert RITMConfig(delta_seconds=60).attack_window_seconds == 120

    def test_attack_window_with_custom_tolerance(self):
        config = RITMConfig(delta_seconds=60, freshness_tolerance_periods=2)
        assert config.attack_window_seconds == 180

    def test_with_delta_preserves_other_fields(self):
        base = RITMConfig(delta_seconds=10, prove_full_chain=True)
        changed = base.with_delta(3600)
        assert changed.delta_seconds == 3600
        assert changed.prove_full_chain

    def test_for_label_matches_paper_sweep(self):
        for label, seconds in PAPER_DELTA_SWEEP.items():
            assert RITMConfig.for_label(label).delta_seconds == seconds

    def test_for_unknown_label_rejected(self):
        with pytest.raises(ConfigurationError):
            RITMConfig.for_label("2 weeks")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"delta_seconds": 0},
            {"delta_seconds": -5},
            {"chain_length": 0},
            {"freshness_tolerance_periods": -1},
            {"digest_size": 0},
            {"digest_size": 64},
            {"shard_width_seconds": 0},
            {"shard_width_seconds": -86_400},
            {"prune_every_periods": 0},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RITMConfig(**kwargs)

    def test_sharded_defaults(self):
        config = RITMConfig(sharded=True)
        assert config.shard_width_seconds == 90 * 86_400
        assert config.prune_every_periods == 1

    def test_with_delta_preserves_sharding_fields(self):
        base = RITMConfig(sharded=True, shard_width_seconds=7 * 86_400, prune_every_periods=2)
        changed = base.with_delta(3600)
        assert changed.sharded
        assert changed.shard_width_seconds == 7 * 86_400
        assert changed.prune_every_periods == 2


class TestConnectionState:
    def test_needs_status_after_delta(self):
        state = ConnectionState(flow=make_flow("1.1.1.1", 1, "2.2.2.2"))
        state.mark_status_sent(100.0)
        assert not state.needs_status(105.0, delta_seconds=10)
        assert state.needs_status(110.0, delta_seconds=10)

    def test_knows_certificate(self):
        state = ConnectionState(flow=make_flow("1.1.1.1", 1, "2.2.2.2"))
        assert not state.knows_certificate()
        state.ca_name = "CA1"
        state.serial = SerialNumber(5)
        assert state.knows_certificate()

    def test_is_established(self):
        state = ConnectionState(flow=make_flow("1.1.1.1", 1, "2.2.2.2"))
        assert not state.is_established()
        state.stage = HandshakeStage.ESTABLISHED
        assert state.is_established()


class TestConnectionTable:
    def test_create_and_lookup_in_both_directions(self):
        table = ConnectionTable()
        flow = make_flow("1.1.1.1", 1234, "2.2.2.2", 443)
        table.create(flow, now=0.0)
        assert table.lookup(flow) is not None
        assert table.lookup(flow.reversed()) is not None
        assert len(table) == 1

    def test_remove(self):
        table = ConnectionTable()
        flow = make_flow("1.1.1.1", 1234, "2.2.2.2", 443)
        table.create(flow, now=0.0)
        table.remove(flow.reversed())
        assert table.lookup(flow) is None

    def test_expire_idle(self):
        table = ConnectionTable(idle_timeout_seconds=100)
        active = make_flow("1.1.1.1", 1, "2.2.2.2", 443)
        idle = make_flow("1.1.1.1", 2, "2.2.2.2", 443)
        table.create(active, now=0.0)
        table.create(idle, now=0.0)
        table.touch(active, now=500.0)
        expired = table.expire_idle(now=550.0)
        assert expired == 1
        assert table.lookup(active) is not None
        assert table.lookup(idle) is None

    def test_session_memory(self):
        table = ConnectionTable()
        table.remember_session(b"sess-1", "CA1", SerialNumber(99))
        assert table.recall_session(b"sess-1") == ("CA1", SerialNumber(99))
        assert table.recall_session(b"other") is None
        table.remember_session(b"", "CA1", SerialNumber(1))  # empty ids are ignored
        assert table.recall_session(b"") is None
