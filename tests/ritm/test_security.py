"""Adversarial scenarios from the paper's security analysis (§V).

Each test instantiates one of the attacks the paper discusses and checks that
the defence RITM claims actually holds in this implementation:

* MITM dropping or delaying status messages → connection interrupted;
* MITM tampering with statuses → detected as invalid;
* compromised RA / CDN forging dictionary content → proofs don't verify;
* compromised RA suppressing a revocation → client still learns the truth
  (or at worst the connection dies), never accepts a forged "good" status;
* misbehaving CA equivocating about its dictionary → cryptographic evidence;
* downgrade attempts (bypassing the RA) → detected through deployment-model
  defences.
"""

import pytest

from repro.net.clock import SimulatedClock
from repro.net.node import DroppingMiddlebox, TamperingMiddlebox
from repro.ritm.client import RejectionReason
from repro.tls.records import ContentType, parse_records, serialize_records

from tests.ritm.conftest import EPOCH, build_world


@pytest.fixture()
def world():
    return build_world()


def deploy(world, chain=None, extra_middleboxes=None, clock=None):
    from repro.ritm.deployment import build_close_to_client_deployment

    return build_close_to_client_deployment(
        server_chain=chain if chain is not None else world.corpus.chains[0],
        trust_store=world.trust_store,
        ca_public_keys=world.ca_public_keys(),
        config=world.config,
        agent=world.agent,
        clock=clock if clock is not None else SimulatedClock(EPOCH + 20),
        extra_middleboxes=extra_middleboxes,
    )


def strip_status_records(payload: bytes) -> bytes:
    records = [record for record in parse_records(payload) if not record.is_ritm_status()]
    return serialize_records(records)


class TestBlockingAndTampering:
    def test_adversary_stripping_status_causes_rejection_not_acceptance(self, world):
        """Dropping the status from the handshake must never yield an accepted
        connection (fail-closed, §V 'MITM and Blocking Attack')."""
        stripper = TamperingMiddlebox(
            should_tamper=lambda packet: any(
                record.is_ritm_status() for record in parse_records(packet.payload)
            )
            if packet.payload[:1] in (b"\x16", b"\x17", b"\x64")
            else False,
            tamper=strip_status_records,
            name="status-stripper",
        )
        # The stripper sits between the RA (gateway) and the client.
        deployment = deploy(world, extra_middleboxes=[stripper])
        # Place the stripper *before* the RA on the server side? The builder
        # appends extra boxes after the RA (towards the server), so on the
        # return path packets hit the stripper first, then the RA re-adds the
        # status... to truly strip, run the packets once more manually.
        accepted = deployment.run_handshake()
        if accepted:
            # The RA healed the stripped status (multiple-RA behaviour); now
            # strip after the RA by delivering a tampered packet directly.
            packet = deployment.server.send_application_data(
                deployment.flow, b"x", deployment.engine.clock.now()
            )
            tampered = packet.with_payload(strip_status_records(packet.payload))
            deployment.client.handle_packet(tampered, deployment.engine.clock.now())
            horizon = deployment.engine.clock.now() + 3 * world.config.delta_seconds
            assert not deployment.client.enforce_freshness(horizon)
        else:
            assert deployment.client.rejection in (
                RejectionReason.MISSING_STATUS,
                RejectionReason.INVALID_STATUS,
            )

    def test_delaying_statuses_interrupts_connection(self, world):
        """An adversary that blocks every status after establishment cannot keep
        the connection alive past 2Δ (§V 'Race Condition' / blocking)."""
        deployment = deploy(world)
        assert deployment.run_handshake()
        dropper = DroppingMiddlebox(lambda packet: True, name="blackhole")
        deployment.engine.path.middleboxes.append(dropper)
        horizon = deployment.engine.clock.now() + 3 * world.config.delta_seconds
        assert not deployment.client.enforce_freshness(horizon)
        assert deployment.client.rejection == RejectionReason.STATUS_TIMEOUT

    def test_bitflip_in_status_detected(self, world):
        def flip_status_byte(payload: bytes) -> bytes:
            records = parse_records(payload)
            rebuilt = []
            for record in records:
                if record.is_ritm_status():
                    body = bytearray(record.payload)
                    # Corrupt a byte in the middle of the proof/root material.
                    body[len(body) // 2] ^= 0xFF
                    from repro.tls.records import TLSRecord

                    record = TLSRecord(ContentType.RITM_STATUS, bytes(body))
                rebuilt.append(record)
            return serialize_records(rebuilt)

        deployment = deploy(world)
        hello = deployment.client.client_hello_packet(deployment.flow, EPOCH + 20)
        # Run the exchange manually so we can corrupt the server's reply after
        # the RA processed it.
        agent = world.agent
        server = deployment.server
        client = deployment.client
        packet = agent.process_packet(hello, EPOCH + 20)[0]
        replies = server.handle_packet(packet, EPOCH + 20)
        reply = agent.process_packet(replies[0], EPOCH + 21)[0]
        corrupted = reply.with_payload(flip_status_byte(reply.payload))
        client.handle_packet(corrupted, EPOCH + 21)
        assert not client.is_connection_usable
        assert client.rejection in (
            RejectionReason.INVALID_STATUS,
            RejectionReason.STALE_STATUS,
        )

    def test_status_for_wrong_serial_is_rejected(self, world):
        """A compromised RA replaying a valid proof about a *different* serial
        must not satisfy the client's policy."""
        chain = world.corpus.chains[0]
        other_chain = world.corpus.chains[1]
        issuing = world.ca_by_name(chain.leaf.issuer)
        replica = world.agent.replica_for(issuing.name)

        from repro.ritm.messages import encode_status_bundle
        from repro.tls.records import TLSRecord

        wrong_status = replica.prove(other_chain.leaf.serial)

        deployment = deploy(world, chain)
        client = deployment.client
        server = deployment.server
        hello = client.client_hello_packet(deployment.flow, EPOCH + 20)
        replies = server.handle_packet(hello, EPOCH + 20)
        # The "compromised RA" attaches a status about an unrelated serial.
        forged_payload = replies[0].payload + TLSRecord(
            ContentType.RITM_STATUS, encode_status_bundle([wrong_status])
        ).to_bytes()
        client.handle_packet(replies[0].with_payload(forged_payload), EPOCH + 21)
        assert not client.is_connection_usable
        assert client.rejection == RejectionReason.INVALID_STATUS


class TestCompromisedInfrastructure:
    def test_compromised_ra_cannot_forge_clean_status_for_revoked_cert(self, world):
        """An RA that tampers with its replica cannot produce a verifying
        absence proof for a revoked serial (§V 'RA and Dissemination Network
        Compromise')."""
        chain = world.corpus.chains[0]
        issuing = world.ca_by_name(chain.leaf.issuer)
        issuing.revoke([chain.leaf.serial], now=EPOCH + 10)
        world.pull(now=EPOCH + 11)

        replica = world.agent.replica_for(issuing.name)
        # The compromised RA builds an absence proof from a *forged* tree that
        # omits the revocation, but it only has the genuine signed root.
        from repro.crypto.merkle import SortedMerkleTree
        from repro.dictionary.proofs import RevocationStatus

        forged_tree = SortedMerkleTree()
        forged_proof = forged_tree.prove_absence(chain.leaf.serial.to_bytes())
        forged_status = RevocationStatus(
            ca_name=issuing.name,
            serial=chain.leaf.serial,
            proof=forged_proof,
            signed_root=replica.signed_root,
            freshness=replica.latest_freshness,
        )
        assert not forged_status.is_acceptable(
            issuing.public_key, now=EPOCH + 12, delta=world.config.delta_seconds
        )

    def test_compromised_cdn_cannot_inject_unsigned_content(self, world):
        """Tampered dissemination objects are rejected by replica verification."""
        issuing = world.cas[0]
        from repro.dictionary.authdict import RevocationIssuance
        from repro.pki.serial import SerialNumber
        from dataclasses import replace

        genuine_root = issuing.dictionary.signed_root
        forged_issuance = RevocationIssuance(
            ca_name=issuing.name,
            serials=(SerialNumber(0xBEEF),),
            first_number=1,
            signed_root=replace(genuine_root, size=1, root=b"\x13" * 20),
        )
        from repro.errors import SignatureError

        with pytest.raises(SignatureError):
            world.agent.replica_for(issuing.name).update(forged_issuance)

    def test_old_freshness_statement_cannot_be_replayed_forever(self, world):
        """Suppressing updates only works for 2Δ: an old statement goes stale."""
        chain = world.corpus.chains[0]
        deployment = deploy(world, chain)
        assert deployment.run_handshake()
        # The adversary suppresses all dictionary updates; the client's next
        # status (whenever it comes) reuses the old freshness statement.
        stale_now = deployment.engine.clock.now() + 5 * world.config.delta_seconds
        deployment.engine.clock.advance_to(stale_now)
        deployment.deliver_from_server(b"stale tick")
        assert not deployment.client.is_connection_usable
        assert deployment.client.rejection in (
            RejectionReason.STALE_STATUS,
            RejectionReason.STATUS_TIMEOUT,
        )


class TestMisbehavingCA:
    def test_equivocating_ca_produces_provable_evidence(self, world):
        """Showing different dictionaries to different parties is detectable by
        comparing signed roots of the same size (§V 'Misbehaving CA')."""
        from dataclasses import replace

        ca = world.cas[0]
        honest_root = ca.dictionary.signed_root
        evil_root = replace(honest_root, root=b"\x99" * 20).sign(ca.authority._keys.private)

        report = world.agent.consistency.observe_root(evil_root)
        assert report is not None
        assert report.is_valid_evidence(ca.public_key)

    def test_gossip_between_client_and_ra_catches_split_view(self, world):
        from dataclasses import replace
        from repro.ritm.consistency import ConsistencyChecker, GossipExchange

        ca = world.cas[0]
        honest_root = ca.dictionary.signed_root
        evil_root = replace(honest_root, root=b"\x99" * 20).sign(ca.authority._keys.private)

        client_view = ConsistencyChecker("client")
        client_view.observe_root(evil_root)  # the client was shown the fake view
        reports = GossipExchange().exchange(client_view, world.agent.consistency)
        assert reports
        assert reports[0].is_valid_evidence(ca.public_key)


class TestDowngrade:
    def test_tunnelled_traffic_detected_when_client_expects_protection(self, world):
        """Close-to-client model: the operator told the client RITM is in force,
        so a path with no RA (tunnelled around it) is rejected."""
        from repro.ritm.deployment import build_unprotected_path

        deployment = build_unprotected_path(
            server_chain=world.corpus.chains[0],
            trust_store=world.trust_store,
            ca_public_keys=world.ca_public_keys(),
            config=world.config,
            clock=SimulatedClock(EPOCH + 20),
        )
        assert not deployment.run_handshake()
        assert deployment.client.rejection == RejectionReason.MISSING_STATUS

    def test_terminator_confirmation_cannot_be_forged_outside_tls(self, world):
        """In the close-to-server model the confirmation rides inside the
        TLS-protected ServerHello; without it, and without a status, the
        client refuses."""
        deployment = deploy(world, chain=world.corpus.chains[1])
        # Plain server (no terminator) and an RA that knows nothing about the
        # CA: the client gets neither a status nor a confirmation.
        world.agent.replicas.clear()
        assert not deployment.run_handshake()
        assert deployment.client.rejection == RejectionReason.MISSING_STATUS
