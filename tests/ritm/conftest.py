"""Shared fixtures for the RITM core tests: a small but complete deployment."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import pytest

from repro.cdn.geography import GeoLocation, Region
from repro.cdn.network import CDNNetwork
from repro.pki.ca import TrustStore
from repro.ritm.agent import RevocationAgent
from repro.ritm.ca_service import RITMCertificationAuthority
from repro.ritm.config import RITMConfig
from repro.ritm.dissemination import RADisseminationClient, attach_agent_to_cas
from repro.workloads.certificates import CertificateCorpus, generate_corpus

#: Simulation epoch: certificates in the corpus are issued at 1_400_000_000.
EPOCH = 1_400_000_000


@dataclass
class RITMWorld:
    """Everything a test needs: CAs, CDN, an RA kept in sync, and TLS chains."""

    config: RITMConfig
    corpus: CertificateCorpus
    cdn: CDNNetwork
    cas: List[RITMCertificationAuthority]
    agent: RevocationAgent
    dissemination: RADisseminationClient

    @property
    def trust_store(self) -> TrustStore:
        return self.corpus.trust_store

    def ca_public_keys(self) -> Dict[str, object]:
        return {ca.name: ca.public_key for ca in self.cas}

    def ca_by_name(self, name: str) -> RITMCertificationAuthority:
        for ca in self.cas:
            if ca.name == name:
                return ca
        raise KeyError(name)

    def pull(self, now: float):
        return self.dissemination.pull(now)


def build_world(config: RITMConfig | None = None, now: float = EPOCH + 5) -> RITMWorld:
    config = config if config is not None else RITMConfig(delta_seconds=10, chain_length=64)
    corpus = generate_corpus(ca_count=2, domains_per_ca=2, use_intermediates=True, now=EPOCH)
    cdn = CDNNetwork()
    cas = []
    for authority in corpus.authorities:
        ca = RITMCertificationAuthority(authority, config, cdn)
        ca.bootstrap(now=now)
        cas.append(ca)
    agent = RevocationAgent("test-ra", config)
    dissemination = attach_agent_to_cas(agent, cas, cdn, GeoLocation(Region.EUROPE))
    dissemination.pull(now=now + 1)
    return RITMWorld(
        config=config,
        corpus=corpus,
        cdn=cdn,
        cas=cas,
        agent=agent,
        dissemination=dissemination,
    )


@pytest.fixture()
def world() -> RITMWorld:
    return build_world()
