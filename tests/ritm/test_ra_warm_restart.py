"""RA crash recovery: checkpoint/restore through the dissemination stack.

A restarted RA that warm-starts from a checkpoint must (a) serve exactly
the verified state it checkpointed, (b) fetch only the delta since its last
applied epoch on the next pull, and (c) end byte-identical to a cold-synced
agent.  Tampered checkpoints must be rejected and degrade to a cold sync,
never into serving unsigned state.
"""

import json
import struct
import zlib

import pytest

from repro.cdn import CDNNetwork, GeoLocation
from repro.cdn.geography import Region
from repro.errors import StorageError
from repro.pki import CertificationAuthority, SerialNumber
from repro.ritm import (
    RITMCertificationAuthority,
    RITMConfig,
    RevocationAgent,
    attach_agent_to_cas,
)
from repro.ritm.persistence import (
    MANIFEST_FILENAME,
    REPLICA_MAGIC,
    load_checkpoint,
)


def build_stack(engine="incremental", sharded=False, tmp=None):
    """A bootstrapped CA + CDN + one attached, synced agent."""
    kwargs = {"sharded": True, "shard_width_seconds": 600} if sharded else {}
    config = RITMConfig(
        delta_seconds=10, chain_length=64, store_engine=engine, **kwargs
    )
    authority = CertificationAuthority("Warm CA", key_seed=b"warm-restart")
    cdn = CDNNetwork()
    ca = RITMCertificationAuthority(authority, config, cdn)
    ca.bootstrap(now=100)
    agent = RevocationAgent("ra-under-test", config)
    client = attach_agent_to_cas(agent, [ca], cdn, GeoLocation(Region.EUROPE))
    client.pull(now=101)
    return config, ca, cdn, agent, client


def issue_and_pull(ca, client, start, periods, per_period=4, base=1000):
    """Revoke ``per_period`` serials per period and pull after each."""
    for period in range(periods):
        now = start + period * 10
        serials = [
            SerialNumber(base + period * per_period + offset)
            for offset in range(per_period)
        ]
        ca.revoke(serials, now=now)
        client.pull(now=now + 5)


class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("engine", ["incremental", "durable"])
    def test_restore_reproduces_checkpointed_state(self, engine, tmp_path):
        config, ca, cdn, agent, client = build_stack(engine)
        issue_and_pull(ca, client, 120, periods=5)
        replica = agent.replica_for(ca.name)
        persisted = client.checkpoint(tmp_path)
        assert persisted == 1

        restored_agent = RevocationAgent("ra-under-test", config)
        restored_client = attach_agent_to_cas(
            restored_agent, [ca], cdn, GeoLocation(Region.EUROPE)
        )
        assert restored_client.restore(tmp_path) == 1
        restored = restored_agent.replica_for(ca.name)
        assert restored.root() == replica.root()
        assert restored.size == replica.size
        assert restored.signed_root == replica.signed_root
        assert restored.latest_freshness == replica.latest_freshness
        # proofs and revocation numbers are byte-identical
        serial = SerialNumber(1000)
        assert restored.prove(serial) == replica.prove(serial)
        assert restored.revocation_number(serial) == replica.revocation_number(serial)
        for a in (agent, restored_agent):
            a.close()
        ca.close()

    def test_skips_replicas_without_verified_state(self, tmp_path):
        config, ca, cdn, agent, client = build_stack()
        issue_and_pull(ca, client, 120, periods=2)
        from repro.crypto.signing import KeyPair

        agent.register_ca("Never Synced CA", KeyPair.generate(b"x").public)
        assert client.checkpoint(tmp_path) == 1  # only the synced replica

    def test_load_checkpoint_requires_manifest(self, tmp_path):
        with pytest.raises(StorageError):
            load_checkpoint(tmp_path)


class TestWarmRestartDelta:
    def test_warm_pull_fetches_only_the_delta(self, tmp_path):
        config, ca, cdn, agent, client = build_stack("durable")
        issue_and_pull(ca, client, 120, periods=6)
        client.checkpoint(tmp_path)
        batches_before = ca.issuance_count()

        # the CA keeps revoking while the RA is down
        for period in range(3):
            ca.revoke([SerialNumber(5000 + period)], now=300 + period * 10)

        cold_agent = RevocationAgent("ra-cold", config)
        cold_client = attach_agent_to_cas(
            cold_agent, [ca], cdn, GeoLocation(Region.EUROPE)
        )
        cold_result = cold_client.pull(now=400)

        warm_agent = RevocationAgent("ra-under-test", config)
        warm_client = attach_agent_to_cas(
            warm_agent, [ca], cdn, GeoLocation(Region.EUROPE)
        )
        warm_client.restore(tmp_path)
        warm_result = warm_client.pull(now=400)

        # the warm agent applied exactly the outage delta; the cold one
        # re-applied the whole history
        assert warm_result.serials_applied == 3
        assert warm_result.issuances_applied == ca.issuance_count() - batches_before
        assert cold_result.serials_applied == 6 * 4 + 3
        assert warm_result.bytes_downloaded < cold_result.bytes_downloaded
        assert warm_result.resyncs == 0

        # both converge to byte-identical replicas
        warm_replica = warm_agent.replica_for(ca.name)
        cold_replica = cold_agent.replica_for(ca.name)
        assert warm_replica.root() == cold_replica.root()
        assert warm_replica.size == cold_replica.size
        status_warm = warm_agent.build_status(ca.name, SerialNumber(5000))
        status_cold = cold_agent.build_status(ca.name, SerialNumber(5000))
        assert status_warm.proof == status_cold.proof
        assert status_warm.signed_root == status_cold.signed_root
        for a in (agent, cold_agent, warm_agent):
            a.close()
        ca.close()


class TestTamperedCheckpoints:
    def _checkpointed_stack(self, tmp_path):
        config, ca, cdn, agent, client = build_stack()
        issue_and_pull(ca, client, 120, periods=3)
        client.checkpoint(tmp_path)
        return config, ca, cdn

    def _restore_into_fresh_agent(self, config, ca, cdn, tmp_path):
        agent = RevocationAgent("ra-under-test", config)
        client = attach_agent_to_cas(agent, [ca], cdn, GeoLocation(Region.EUROPE))
        return agent, client.restore(tmp_path)

    def test_flipped_leaf_is_rejected_and_degrades_to_cold_sync(self, tmp_path):
        config, ca, cdn = self._checkpointed_stack(tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_FILENAME).read_text())
        replica_file = tmp_path / manifest["replicas"][0]["file"]
        data = bytearray(replica_file.read_bytes())
        # flip a byte in the leaf region, then fix the CRC so the structural
        # check passes and rejection happens at Merkle-root verification
        import struct
        import zlib

        data[-20] ^= 0xFF
        struct.pack_into(">I", data, len(data) - 4, zlib.crc32(bytes(data[:-4])))
        replica_file.write_bytes(bytes(data))
        agent, restored = self._restore_into_fresh_agent(config, ca, cdn, tmp_path)
        assert restored == 0
        replica = agent.replica_for(ca.name)
        assert replica is not None and replica.size == 0  # empty → cold sync

    def test_corrupt_replica_file_fails_structurally(self, tmp_path):
        config, ca, cdn = self._checkpointed_stack(tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_FILENAME).read_text())
        replica_file = tmp_path / manifest["replicas"][0]["file"]
        data = bytearray(replica_file.read_bytes())
        data[10] ^= 0xFF  # CRC now fails
        replica_file.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            self._restore_into_fresh_agent(config, ca, cdn, tmp_path)


class TestRotationAndReplayCursorCheckpoint:
    """Adversarial control-plane state through a restart (docs/THREATS.md).

    A checkpoint taken mid-rotation must bring back the learned keyring and
    the replay cursors exactly — the restarted RA neither re-learns the
    announcement chain nor rejects the CA's next honest head as a replay.
    A tampered cursor block must degrade to *cold replay state* (cursors
    re-learned from the next pull) without ever touching the warm replica.
    """

    def _restored(self, config, ca, cdn, tmp_path):
        agent = RevocationAgent("ra-under-test", config)
        client = attach_agent_to_cas(agent, [ca], cdn, GeoLocation(Region.EUROPE))
        client.restore(tmp_path)
        return agent, client

    def test_mid_rotation_checkpoint_restores_keyring_and_cursors(self, tmp_path):
        config, ca, cdn, agent, client = build_stack()
        issue_and_pull(ca, client, 120, periods=3)
        ca.rotate_keys(now=160)
        ca.refresh(now=160)  # republish the head under the new key
        mid = client.pull(now=165)
        assert mid.key_rotations_applied == 1
        assert not mid.errors
        keyring = agent.keyring_for(ca.name)
        assert keyring is not None and keyring.key_epoch == ca.key_epoch
        head_cursors = dict(client._head_cursors)
        assert head_cursors[ca.name] > 0
        client.checkpoint(tmp_path)

        restored_agent, restored_client = self._restored(config, ca, cdn, tmp_path)
        restored_keyring = restored_agent.keyring_for(ca.name)
        assert restored_keyring is not None
        assert restored_keyring.key_epoch == keyring.key_epoch
        assert [
            record.public_key.key_bytes for record in restored_keyring.records
        ] == [record.public_key.key_bytes for record in keyring.records]
        assert restored_client._head_cursors == head_cursors
        assert restored_client._index_cursors == client._index_cursors

        # The CA revokes once more while the RA was down; the warm restart
        # applies exactly that delta — no resync, no re-learned rotation,
        # and crucially no replay rejection of the CA's next honest head.
        ca.revoke([SerialNumber(9000)], now=300)
        warm = restored_client.pull(now=305)
        assert warm.serials_applied == 1
        assert warm.resyncs == 0
        assert warm.replays_rejected == 0
        assert warm.key_rotations_applied == 0
        assert not warm.errors
        assert restored_agent.replica_for(ca.name).contains(SerialNumber(9000))
        for a in (agent, restored_agent):
            a.close()
        ca.close()

    def test_tampered_cursor_block_degrades_to_cold_replay_state(self, tmp_path):
        config, ca, cdn, agent, client = build_stack()
        issue_and_pull(ca, client, 120, periods=3)
        client.checkpoint(tmp_path)
        state_file = tmp_path / client.STATE_FILENAME
        state = json.loads(state_file.read_text())
        assert state["head_cursors"][ca.name] > 0
        # Forge the cursor far into the future — the attack that would brick
        # the pull loop if restore trusted it.  The CRC no longer matches.
        state["head_cursors"][ca.name] += 1_000_000
        state_file.write_text(json.dumps(state))

        restored_agent, restored_client = self._restored(config, ca, cdn, tmp_path)
        # Cursors were dropped wholesale (cold replay state)...
        assert restored_client._head_cursors == {}
        assert restored_client._index_cursors == {}
        # ...but the replica and the applied-batch cursor stayed warm.
        assert restored_agent.replica_for(ca.name).size == agent.replica_for(ca.name).size

        ca.revoke([SerialNumber(9100)], now=300)
        warm = restored_client.pull(now=305)
        assert warm.serials_applied == 1  # still a delta fetch, not a cold sync
        assert warm.replays_rejected == 0
        assert not warm.errors
        # The cursor is re-learned from the first post-restart pull.
        assert restored_client._head_cursors[ca.name] > 0
        for a in (agent, restored_agent):
            a.close()
        ca.close()

    def test_pre_replay_window_checkpoint_restores_without_cursors(self, tmp_path):
        """An honest old checkpoint (written before replay windows existed)
        must warm-start normally — missing cursors are not tampering."""
        config, ca, cdn, agent, client = build_stack()
        issue_and_pull(ca, client, 120, periods=2)
        client.checkpoint(tmp_path)
        state_file = tmp_path / client.STATE_FILENAME
        state = json.loads(state_file.read_text())
        for legacy_absent in ("head_cursors", "index_cursors", "cursor_checksum"):
            state.pop(legacy_absent, None)
        state_file.write_text(json.dumps(state))

        restored_agent, restored_client = self._restored(config, ca, cdn, tmp_path)
        assert restored_client._head_cursors == {}
        ca.revoke([SerialNumber(9200)], now=300)
        warm = restored_client.pull(now=305)
        assert warm.serials_applied == 1
        assert warm.resyncs == 0 and not warm.errors
        for a in (agent, restored_agent):
            a.close()
        ca.close()


class TestShardedCheckpoint:
    def test_shard_registry_and_replicas_survive_restart(self, tmp_path):
        config, ca, cdn, agent, client = build_stack("incremental", sharded=True)
        pairs = [(SerialNumber(7000 + n), 150 + 300 * n) for n in range(4)]
        ca.revoke_with_expiry(pairs, now=110)
        client.pull(now=120)
        assert agent.shard_replicas(ca.name)
        client.checkpoint(tmp_path)

        restored_agent = RevocationAgent("ra-under-test", config)
        restored_client = attach_agent_to_cas(
            restored_agent, [ca], cdn, GeoLocation(Region.EUROPE)
        )
        restored = restored_client.restore(tmp_path)
        assert restored == len(agent.shard_replicas(ca.name))
        assert restored_agent.shard_widths == agent.shard_widths
        originals = agent.shard_replicas(ca.name)
        recovered = restored_agent.shard_replicas(ca.name)
        assert recovered.keys() == originals.keys()
        for index, original in originals.items():
            assert recovered[index].root() == original.root()
        # the TLS path maps expiries to shard replicas immediately
        serial, expiry = pairs[0]
        replica = restored_agent.replica_for_certificate(ca.name, expiry)
        assert replica is not None and replica.contains(serial)

    def test_corrupt_shard_replica_is_dropped_not_registered_empty(self, tmp_path):
        """A shard checkpoint that fails verification must vanish entirely:
        no registry entry mapping its expiry window, no stray base-CA
        replica for the pull loop — rediscovery via the shard index
        cold-syncs it instead."""
        import struct
        import zlib

        config, ca, cdn, agent, client = build_stack("incremental", sharded=True)
        pairs = [(SerialNumber(7100 + n), 150 + 300 * n) for n in range(3)]
        ca.revoke_with_expiry(pairs, now=110)
        client.pull(now=120)
        client.checkpoint(tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_FILENAME).read_text())
        target = manifest["replicas"][0]
        replica_file = tmp_path / target["file"]
        data = bytearray(replica_file.read_bytes())
        data[-20] ^= 0xFF  # flip a leaf byte, keep the CRC valid
        struct.pack_into(">I", data, len(data) - 4, zlib.crc32(bytes(data[:-4])))
        replica_file.write_bytes(bytes(data))

        restored_agent = RevocationAgent("ra-under-test", config)
        restored_client = attach_agent_to_cas(
            restored_agent, [ca], cdn, GeoLocation(Region.EUROPE)
        )
        restored_client.restore(tmp_path)
        assert target["ca_name"] not in restored_agent.replicas
        member_names = restored_agent.shard_replica_names()
        assert target["ca_name"] not in member_names
        # the next pull rediscovers the dropped shard and cold-syncs it
        restored_client.pull(now=130)
        serial, expiry = pairs[0]
        replica = restored_agent.replica_for_certificate(ca.name, expiry)
        assert replica is not None and replica.contains(serial)


class TestCheckpointFormatEvolution:
    """The replica-file format version gate (docs/STORAGE.md).

    Format 1 is the pre-extension layout still found in old checkpoints: it
    must keep warm-starting byte-for-byte.  Format 2 adds skip-unknown typed
    extension blocks between the leaf dump and the CRC, so a checkpoint
    written by a *newer* build still restores here.  Anything else — unknown
    versions, blocks in a format-1 file, truncated blocks — must fail
    structurally, not half-restore.
    """

    def _checkpointed_stack(self, tmp_path):
        config, ca, cdn, agent, client = build_stack()
        issue_and_pull(ca, client, 120, periods=3)
        client.checkpoint(tmp_path)
        return config, ca, cdn, agent

    def _replica_file(self, tmp_path):
        manifest = json.loads((tmp_path / MANIFEST_FILENAME).read_text())
        return tmp_path / manifest["replicas"][0]["file"]

    @staticmethod
    def _reseal(body: bytes) -> bytes:
        """``body`` (sans CRC) with a freshly computed trailing CRC32."""
        return body + struct.pack(">I", zlib.crc32(body))

    def _rewrite_version(self, data: bytes, version: int) -> bytes:
        body = bytearray(data[:-4])
        struct.pack_into(">H", body, len(REPLICA_MAGIC), version)
        return self._reseal(bytes(body))

    def _restore_into_fresh_agent(self, config, ca, cdn, tmp_path):
        agent = RevocationAgent("ra-under-test", config)
        client = attach_agent_to_cas(agent, [ca], cdn, GeoLocation(Region.EUROPE))
        return agent, client, client.restore(tmp_path)

    def test_legacy_format1_checkpoint_warm_restores(self, tmp_path):
        """A checkpoint downgraded to the exact pre-extension format-1 layout
        (version field + manifest, no trailing blocks) restores warm."""
        config, ca, cdn, agent = self._checkpointed_stack(tmp_path)
        replica_file = self._replica_file(tmp_path)
        replica_file.write_bytes(
            self._rewrite_version(replica_file.read_bytes(), 1)
        )
        manifest_path = tmp_path / MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = 1
        manifest_path.write_text(json.dumps(manifest))

        legacy = load_checkpoint(tmp_path)
        assert legacy.replicas[0].extensions == {}
        restored_agent, restored_client, restored = self._restore_into_fresh_agent(
            config, ca, cdn, tmp_path
        )
        assert restored == 1
        original = agent.replica_for(ca.name)
        warm = restored_agent.replica_for(ca.name)
        assert warm.root() == original.root()
        assert warm.size == original.size
        assert warm.signed_root == original.signed_root

        # the warm restart still delta-fetches, exactly like a format-2 one
        ca.revoke([SerialNumber(9300)], now=300)
        result = restored_client.pull(now=305)
        assert result.serials_applied == 1
        assert result.resyncs == 0 and not result.errors
        for a in (agent, restored_agent):
            a.close()
        ca.close()

    def test_unknown_extension_block_is_skipped_not_fatal(self, tmp_path):
        """A format-2 file carrying a block type this build has never heard
        of (a future field) loads, preserves the block, and restores warm."""
        config, ca, cdn, agent = self._checkpointed_stack(tmp_path)
        replica_file = self._replica_file(tmp_path)
        body = bytearray(replica_file.read_bytes()[:-4])
        future_block = b"from-a-newer-build"
        body += struct.pack(">BI", 0xEE, len(future_block)) + future_block
        replica_file.write_bytes(self._reseal(bytes(body)))

        loaded = load_checkpoint(tmp_path)
        assert loaded.replicas[0].extensions == {0xEE: future_block}
        restored_agent, _, restored = self._restore_into_fresh_agent(
            config, ca, cdn, tmp_path
        )
        assert restored == 1
        assert (
            restored_agent.replica_for(ca.name).root()
            == agent.replica_for(ca.name).root()
        )
        for a in (agent, restored_agent):
            a.close()
        ca.close()

    def test_format1_file_rejects_trailing_extension_bytes(self, tmp_path):
        """Format 1 predates extension blocks: trailing bytes are corruption
        there, never silently skipped."""
        config, ca, cdn, agent = self._checkpointed_stack(tmp_path)
        replica_file = self._replica_file(tmp_path)
        body = bytearray(self._rewrite_version(replica_file.read_bytes(), 1)[:-4])
        body += struct.pack(">BI", 0xEE, 4) + b"ext!"
        replica_file.write_bytes(self._reseal(bytes(body)))
        with pytest.raises(StorageError, match="trailing bytes"):
            load_checkpoint(tmp_path)
        agent.close()
        ca.close()

    def test_unsupported_replica_version_is_rejected(self, tmp_path):
        config, ca, cdn, agent = self._checkpointed_stack(tmp_path)
        replica_file = self._replica_file(tmp_path)
        replica_file.write_bytes(
            self._rewrite_version(replica_file.read_bytes(), 3)
        )
        with pytest.raises(StorageError, match="format 3"):
            load_checkpoint(tmp_path)
        agent.close()
        ca.close()

    def test_truncated_extension_block_is_rejected(self, tmp_path):
        """A block header whose declared length runs past the CRC must fail
        structurally rather than swallow the checksum as block body."""
        config, ca, cdn, agent = self._checkpointed_stack(tmp_path)
        replica_file = self._replica_file(tmp_path)
        body = bytearray(replica_file.read_bytes()[:-4])
        body += struct.pack(">BI", 0xEE, 1000) + b"short"
        replica_file.write_bytes(self._reseal(bytes(body)))
        with pytest.raises(StorageError, match="truncated"):
            load_checkpoint(tmp_path)
        agent.close()
        ca.close()
