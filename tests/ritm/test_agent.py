"""Tests for the Revocation Agent middlebox logic."""

import pytest

from repro.net.packet import Direction, Packet, make_flow
from repro.ritm.agent import RevocationAgent
from repro.ritm.messages import decode_status_bundle
from repro.tls.connection import HandshakeStage
from repro.tls.extensions import ritm_support_extension
from repro.tls.messages import CertificateMessage, ClientHello, Finished, ServerHello, ServerHelloDone
from repro.tls.records import ContentType, TLSRecord, parse_records

from tests.ritm.conftest import EPOCH


FLOW = make_flow("12.34.56.78", 9012, "98.76.54.32", 443)


def client_hello_packet(with_ritm: bool = True, session_id: bytes = b"") -> Packet:
    extensions = (ritm_support_extension(),) if with_ritm else ()
    record = TLSRecord(
        ContentType.HANDSHAKE,
        ClientHello(session_id=session_id, extensions=extensions).to_bytes(),
    )
    return Packet(flow=FLOW, payload=record.to_bytes(), direction=Direction.CLIENT_TO_SERVER)


def server_flight_packet(chain, session_id: bytes = b"\x07" * 8) -> Packet:
    flight = (
        ServerHello(session_id=session_id).to_bytes()
        + CertificateMessage(chain).to_bytes()
        + ServerHelloDone().to_bytes()
    )
    record = TLSRecord(ContentType.HANDSHAKE, flight)
    return Packet(
        flow=FLOW.reversed(), payload=record.to_bytes(), direction=Direction.SERVER_TO_CLIENT
    )


def server_finished_packet() -> Packet:
    record = TLSRecord(ContentType.HANDSHAKE, Finished().to_bytes())
    return Packet(
        flow=FLOW.reversed(), payload=record.to_bytes(), direction=Direction.SERVER_TO_CLIENT
    )


def application_packet() -> Packet:
    record = TLSRecord(ContentType.APPLICATION_DATA, b"protected data")
    return Packet(
        flow=FLOW.reversed(), payload=record.to_bytes(), direction=Direction.SERVER_TO_CLIENT
    )


def statuses_in(packet: Packet):
    found = []
    for record in parse_records(packet.payload):
        if record.is_ritm_status():
            found.extend(decode_status_bundle(record.payload))
    return found


class TestTransparency:
    def test_non_tls_traffic_passes_untouched(self, world):
        packet = Packet(flow=FLOW, payload=b"GET / HTTP/1.1\r\n\r\n")
        out = world.agent.process_packet(packet, now=EPOCH + 10)
        assert out == [packet]
        assert world.agent.stats.packets_forwarded_transparently == 1

    def test_connection_without_ritm_extension_is_ignored(self, world):
        chain = world.corpus.chains[0]
        world.agent.process_packet(client_hello_packet(with_ritm=False), now=EPOCH + 10)
        out = world.agent.process_packet(server_flight_packet(chain), now=EPOCH + 11)
        assert statuses_in(out[0]) == []
        assert len(world.agent.connections) == 0

    def test_malformed_tls_is_forwarded(self, world):
        broken = TLSRecord(ContentType.HANDSHAKE, b"\x01\x00\x10\x00" + b"\x00" * 3)
        packet = Packet(flow=FLOW, payload=broken.to_bytes())
        out = world.agent.process_packet(packet, now=EPOCH + 10)
        assert out[0].payload == packet.payload


class TestStatusAttachment:
    def test_state_created_on_ritm_client_hello(self, world):
        world.agent.process_packet(client_hello_packet(), now=EPOCH + 10)
        state = world.agent.connections.lookup(FLOW)
        assert state is not None
        assert state.stage == HandshakeStage.CLIENT_HELLO
        assert world.agent.stats.supported_connections == 1

    def test_status_attached_to_server_hello(self, world):
        chain = world.corpus.chains[0]
        world.agent.process_packet(client_hello_packet(), now=EPOCH + 10)
        out = world.agent.process_packet(server_flight_packet(chain), now=EPOCH + 11)
        statuses = statuses_in(out[0])
        assert len(statuses) == 1
        assert statuses[0].ca_name == chain.leaf.issuer
        assert statuses[0].serial == chain.leaf.serial
        assert not statuses[0].is_revoked
        assert world.agent.stats.statuses_attached == 1

    def test_state_updated_after_server_hello(self, world):
        chain = world.corpus.chains[0]
        world.agent.process_packet(client_hello_packet(), now=EPOCH + 10)
        world.agent.process_packet(server_flight_packet(chain), now=EPOCH + 11)
        state = world.agent.connections.lookup(FLOW)
        assert state.ca_name == chain.leaf.issuer
        assert state.serial == chain.leaf.serial
        assert state.last_status == EPOCH + 11

    def test_established_after_server_finished(self, world):
        chain = world.corpus.chains[0]
        world.agent.process_packet(client_hello_packet(), now=EPOCH + 10)
        world.agent.process_packet(server_flight_packet(chain), now=EPOCH + 11)
        world.agent.process_packet(server_finished_packet(), now=EPOCH + 12)
        assert world.agent.connections.lookup(FLOW).is_established()

    def test_periodic_status_on_established_connection(self, world):
        chain = world.corpus.chains[0]
        delta = world.config.delta_seconds
        world.agent.process_packet(client_hello_packet(), now=EPOCH + 10)
        world.agent.process_packet(server_flight_packet(chain), now=EPOCH + 11)
        world.agent.process_packet(server_finished_packet(), now=EPOCH + 12)

        # Before Δ elapses: application data passes without a new status.
        early = world.agent.process_packet(application_packet(), now=EPOCH + 13)
        assert statuses_in(early[0]) == []

        # After Δ: the first server→client packet carries a fresh status.
        late = world.agent.process_packet(application_packet(), now=EPOCH + 11 + delta + 1)
        assert len(statuses_in(late[0])) == 1

    def test_status_reflects_revocation_after_pull(self, world):
        chain = world.corpus.chains[0]
        issuing = world.ca_by_name(chain.leaf.issuer)
        issuing.revoke([chain.leaf.serial], now=EPOCH + 15)
        world.pull(now=EPOCH + 16)
        world.agent.process_packet(client_hello_packet(), now=EPOCH + 17)
        out = world.agent.process_packet(server_flight_packet(chain), now=EPOCH + 18)
        statuses = statuses_in(out[0])
        assert statuses[0].is_revoked

    def test_unknown_ca_forwards_without_status(self, world):
        from repro.crypto.signing import KeyPair
        from repro.pki.ca import CertificationAuthority

        foreign_ca = CertificationAuthority("Foreign-CA", key_seed=b"foreign")
        foreign_chain = foreign_ca.issue_chain_for(
            "foreign.example", KeyPair.generate(b"foreign-server").public, now=EPOCH
        )
        world.agent.process_packet(client_hello_packet(), now=EPOCH + 10)
        out = world.agent.process_packet(server_flight_packet(foreign_chain), now=EPOCH + 11)
        assert statuses_in(out[0]) == []
        assert world.agent.stats.unknown_ca >= 1

    def test_full_chain_proving_attaches_status_per_certificate(self, world):
        from repro.ritm.config import RITMConfig
        from tests.ritm.conftest import build_world

        chained_world = build_world(
            RITMConfig(delta_seconds=10, chain_length=64, prove_full_chain=True)
        )
        chain = chained_world.corpus.chains[0]
        chained_world.agent.process_packet(client_hello_packet(), now=EPOCH + 10)
        out = chained_world.agent.process_packet(server_flight_packet(chain), now=EPOCH + 11)
        statuses = statuses_in(out[0])
        # Leaf + intermediate + root (all three issuers are replicated).
        assert len(statuses) >= 2


class TestResumptionAndMultipleRAs:
    def test_abbreviated_handshake_recovers_identity_from_server_cache(self, world):
        chain = world.corpus.chains[0]
        # Full handshake first: the agent learns the server's certificate.
        world.agent.process_packet(client_hello_packet(), now=EPOCH + 10)
        world.agent.process_packet(server_flight_packet(chain), now=EPOCH + 11)
        world.agent.connections.remove(FLOW)

        # Resumed handshake: ServerHello only, no Certificate message.
        world.agent.process_packet(client_hello_packet(session_id=b"\x07" * 8), now=EPOCH + 30)
        abbreviated = TLSRecord(
            ContentType.HANDSHAKE,
            ServerHello(session_id=b"\x07" * 8).to_bytes() + Finished().to_bytes(),
        )
        packet = Packet(
            flow=FLOW.reversed(), payload=abbreviated.to_bytes(), direction=Direction.SERVER_TO_CLIENT
        )
        out = world.agent.process_packet(packet, now=EPOCH + 31)
        statuses = statuses_in(out[0])
        assert len(statuses) == 1
        assert statuses[0].serial == chain.leaf.serial
        assert world.agent.stats.resumptions_recovered == 1

    def test_second_ra_does_not_duplicate_fresher_status(self, world):
        chain = world.corpus.chains[0]
        world.agent.process_packet(client_hello_packet(), now=EPOCH + 10)
        out = world.agent.process_packet(server_flight_packet(chain), now=EPOCH + 11)

        second = RevocationAgent("second-ra", world.config)
        from repro.ritm.dissemination import attach_agent_to_cas
        from repro.cdn.geography import GeoLocation, Region

        attach_agent_to_cas(second, world.cas, world.cdn, GeoLocation(Region.JAPAN)).pull(
            now=EPOCH + 12
        )
        second.process_packet(client_hello_packet(), now=EPOCH + 10)
        final = second.process_packet(out[0], now=EPOCH + 13)
        assert len(statuses_in(final[0])) == 1
        assert second.stats.statuses_deferred_to_peer == 1

    def test_second_ra_replaces_stale_status_with_newer_view(self, world):
        chain = world.corpus.chains[0]
        issuing = world.ca_by_name(chain.leaf.issuer)

        # A stale RA that never saw the revocation attaches a clean status.
        world.agent.process_packet(client_hello_packet(), now=EPOCH + 10)
        stale_out = world.agent.process_packet(server_flight_packet(chain), now=EPOCH + 11)
        assert not statuses_in(stale_out[0])[0].is_revoked

        # A second, up-to-date RA further down the path replaces it.
        issuing.revoke([chain.leaf.serial], now=EPOCH + 12)
        fresh = RevocationAgent("fresh-ra", world.config)
        from repro.ritm.dissemination import attach_agent_to_cas
        from repro.cdn.geography import GeoLocation, Region

        attach_agent_to_cas(fresh, world.cas, world.cdn, GeoLocation(Region.UNITED_STATES)).pull(
            now=EPOCH + 13
        )
        fresh.process_packet(client_hello_packet(), now=EPOCH + 10)
        final = fresh.process_packet(stale_out[0], now=EPOCH + 14)
        statuses = statuses_in(final[0])
        assert len(statuses) == 1
        assert statuses[0].is_revoked
        assert fresh.stats.statuses_replaced == 1

    def test_housekeeping_expires_idle_connections(self, world):
        world.agent.process_packet(client_hello_packet(), now=EPOCH + 10)
        assert len(world.agent.connections) == 1
        expired = world.agent.expire_idle_connections(now=EPOCH + 10 + 7200)
        assert expired == 1
        assert len(world.agent.connections) == 0

    def test_dictionary_sizes_reporting(self, world):
        sizes = world.agent.dictionary_sizes()
        assert set(sizes) == {ca.name for ca in world.cas}
