"""Tests for consistency checking, equivocation detection, and gossip."""

import pytest

from repro.crypto.signing import KeyPair
from repro.dictionary.signed_root import SignedRoot
from repro.errors import MisbehaviorDetected
from repro.ritm.consistency import ConsistencyChecker, GossipExchange, cross_check_edge


@pytest.fixture(scope="module")
def keys():
    return KeyPair.generate(b"consistency-tests")


def signed_root(keys, size: int, root_byte: int, ca_name: str = "CA-C") -> SignedRoot:
    return SignedRoot(
        ca_name=ca_name,
        root=bytes([root_byte]) * 20,
        size=size,
        anchor=b"\x02" * 20,
        timestamp=100 + size,
        chain_length=16,
    ).sign(keys.private)


class TestConsistencyChecker:
    def test_consistent_roots_produce_no_report(self, keys):
        checker = ConsistencyChecker("ra-1")
        assert checker.observe_root(signed_root(keys, 1, 0x01)) is None
        assert checker.observe_root(signed_root(keys, 2, 0x02)) is None
        assert checker.observe_root(signed_root(keys, 1, 0x01)) is None  # same root again
        assert not checker.has_detected_misbehavior()

    def test_equivocation_at_same_size_detected(self, keys):
        checker = ConsistencyChecker("ra-1")
        checker.observe_root(signed_root(keys, 3, 0x01))
        report = checker.observe_root(signed_root(keys, 3, 0x09))
        assert report is not None
        assert report.ca_name == "CA-C"
        assert report.is_valid_evidence(keys.public)
        assert checker.has_detected_misbehavior("CA-C")

    def test_observe_or_raise(self, keys):
        checker = ConsistencyChecker("ra-1")
        checker.observe_root(signed_root(keys, 3, 0x01))
        with pytest.raises(MisbehaviorDetected) as excinfo:
            checker.observe_or_raise(signed_root(keys, 3, 0x09))
        assert excinfo.value.evidence.is_valid_evidence(keys.public)

    def test_different_cas_do_not_conflict(self, keys):
        checker = ConsistencyChecker("ra-1")
        checker.observe_root(signed_root(keys, 3, 0x01, ca_name="CA-A"))
        assert checker.observe_root(signed_root(keys, 3, 0x09, ca_name="CA-B")) is None

    def test_latest_root_and_known_roots(self, keys):
        checker = ConsistencyChecker("ra-1")
        checker.observe_root(signed_root(keys, 1, 0x01))
        checker.observe_root(signed_root(keys, 5, 0x05))
        checker.observe_root(signed_root(keys, 3, 0x03))
        assert checker.latest_root("CA-C").size == 5
        assert [root.size for root in checker.known_roots("CA-C")] == [1, 3, 5]
        assert checker.latest_root("Unknown-CA") is None

    def test_evidence_with_bad_signature_is_invalid(self, keys):
        from dataclasses import replace

        checker = ConsistencyChecker("ra-1")
        checker.observe_root(signed_root(keys, 3, 0x01))
        report = checker.observe_root(signed_root(keys, 3, 0x09))
        forged = replace(report, first=replace(report.first, signature=b"\x00" * 64))
        assert not forged.is_valid_evidence(keys.public)


class TestGossipAndEdgeChecks:
    def test_gossip_propagates_equivocation_evidence(self, keys):
        # RA one saw version A, RA two saw version B: gossip exposes the split view.
        left = ConsistencyChecker("ra-left")
        right = ConsistencyChecker("ra-right")
        left.observe_root(signed_root(keys, 4, 0x0A))
        right.observe_root(signed_root(keys, 4, 0x0B))
        reports = GossipExchange().exchange(left, right)
        assert reports
        assert left.has_detected_misbehavior() or right.has_detected_misbehavior()

    def test_gossip_between_consistent_parties_is_silent(self, keys):
        left = ConsistencyChecker("ra-left")
        right = ConsistencyChecker("ra-right")
        shared = signed_root(keys, 4, 0x0A)
        left.observe_root(shared)
        right.observe_root(shared)
        assert GossipExchange().exchange(left, right) == []

    def test_cross_check_edge(self, keys):
        checker = ConsistencyChecker("ra-1")
        checker.observe_root(signed_root(keys, 2, 0x01))
        reports = cross_check_edge(checker, [signed_root(keys, 2, 0x02), signed_root(keys, 3, 0x03)])
        assert len(reports) == 1

    def test_agent_detects_equivocating_ca_through_dissemination(self, world, keys):
        """A CA that republishes a different dictionary at the same size is caught."""
        from tests.ritm.conftest import EPOCH

        ca = world.cas[0]
        good_root = ca.dictionary.signed_root
        # The "other view": same size (0) but different content hash.
        from dataclasses import replace

        evil_root = replace(good_root, root=b"\x66" * 20).sign(ca.authority._keys.private)
        report = world.agent.consistency.observe_root(evil_root)
        assert report is not None
        assert report.is_valid_evidence(ca.public_key)
