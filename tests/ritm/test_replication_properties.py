"""Property-based tests for the WAL-segment replication layer.

The replication stream faces an untrusted network and untrusted peers, so
its invariants must hold for *any* interleaving of loss, reordering,
duplication, tampering, crash points, and equivocating relays — not just
the staged sequences in the differential suite:

* the applied segment cursor is monotone, across adversarial syncs and
  crash/restore alike;
* a tampered or mis-signed segment never mutates the replica, whatever
  byte was flipped;
* anti-entropy either converges to the CA's dictionary or degrades to the
  CA sync protocol **explicitly** (``cold_sync_fallbacks``), never silently
  stalls or loops.
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.cdn import CDNNetwork, GeoLocation
from repro.cdn.geography import Region
from repro.crypto.signing import KeyPair
from repro.pki import CertificationAuthority, SerialNumber
from repro.ritm import (
    RITMCertificationAuthority,
    RITMConfig,
    RevocationAgent,
    attach_agent_to_cas,
)
from repro.ritm.replication import (
    decode_segment,
    encode_segment,
    segment_header_payload,
    segment_path,
)
from repro.store import ENGINES

ATTACKER = KeyPair.generate(b"replication-prop-attacker")

#: Small batch counts keep examples fast while still exercising multi-leaf
#: segments and multi-segment streams.
batch_sizes = st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=5)

#: What an adversarial peer may do to one relayed segment.
actions = st.sampled_from(["serve", "drop", "stale", "skip", "tamper"])

#: Invariants must hold under every store engine, so examples draw one.
engines = st.sampled_from(sorted(ENGINES))


def build_stack(engine="incremental"):
    """A bootstrapped CA + CDN plus a factory for attached agents."""
    config = RITMConfig(delta_seconds=10, chain_length=64, store_engine=engine)
    authority = CertificationAuthority("Prop CA", key_seed=b"replication-prop")
    cdn = CDNNetwork()
    ca = RITMCertificationAuthority(authority, config, cdn)
    ca.bootstrap(now=100)

    def attach(name, region=Region.EUROPE):
        agent = RevocationAgent(name, config)
        client = attach_agent_to_cas(agent, [ca], cdn, GeoLocation(region))
        return agent, client

    return config, ca, cdn, attach


def revoke_batches(ca, sizes, start=120, base=1000):
    """One revocation batch (= one WAL segment) per entry of ``sizes``."""
    serial = base
    for period, size in enumerate(sizes):
        ca.revoke(
            [SerialNumber(serial + offset) for offset in range(size)],
            now=start + period * 10,
        )
        serial += size


def flip_byte(raw: bytes, index: int) -> bytes:
    """``raw`` with the byte at ``index`` inverted."""
    return raw[:index] + bytes([raw[index] ^ 0xFF]) + raw[index + 1 :]


class AdversarialPeer:
    """A peer relay that mangles its archive per a segment-number plan."""

    def __init__(self, client, ca_name, plan):
        self._client = client
        self._ca = ca_name
        self._plan = plan
        self.location = client.location

    def replication_cursor(self, ca_name):
        return self._client.replication_cursor(ca_name)

    def archived_segment(self, ca_name, number):
        raw = self._client.archived_segment(ca_name, number)
        action = self._plan.get(number, "serve")
        if action == "drop":
            return None
        if action == "stale":
            return self._client.archived_segment(ca_name, 1)
        if action == "skip":
            return self._client.archived_segment(ca_name, number + 1)
        if action == "tamper" and raw is not None:
            return flip_byte(raw, len(raw) // 2)
        return raw


class EquivocatingPeer(AdversarialPeer):
    """A relay that re-signs segment headers under its own (wrong) key."""

    def __init__(self, client, ca_name, forge_from):
        super().__init__(client, ca_name, plan={})
        self._forge_from = forge_from

    def archived_segment(self, ca_name, number):
        raw = self._client.archived_segment(ca_name, number)
        if raw is None or number < self._forge_from:
            return raw
        segment = decode_segment(raw)
        forged = replace(
            segment, signature=ATTACKER.sign(segment_header_payload(segment))
        )
        return encode_segment(forged)


@settings(max_examples=25, deadline=None)
@given(engine=engines, sizes=batch_sizes, data=st.data())
def test_adversarial_peer_converges_or_degrades_explicitly(engine, sizes, data):
    """For any loss/reorder/duplication/tamper plan: the cursor is monotone,
    the replica converges to the CA's dictionary, and any shortfall against
    the peer's claimed cursor is flagged as an explicit cold-sync fallback."""
    config, ca, cdn, attach = build_stack(engine)
    reference, reference_client = attach("reference-ra")
    relay, relay_client = attach("relay-ra", Region.UNITED_STATES)
    victim, victim_client = attach("victim-ra", Region.UNITED_STATES)

    revoke_batches(ca, sizes)
    reference_client.pull(now=400)
    relay_client.sync_via_segments(now=400)
    total = len(sizes)
    plan = {
        number: data.draw(actions, label=f"segment {number}")
        for number in range(1, total + 1)
    }

    peer = AdversarialPeer(relay_client, ca.name, plan)
    result = victim_client.sync_from_peer(peer, now=410)

    cursor = victim_client.replication_cursor(ca.name)
    assert 0 <= cursor <= total
    if cursor < total:
        # never a silent stall: shortfall must be an explicit fallback
        assert result.cold_sync_fallbacks == 1
    else:
        assert result.cold_sync_fallbacks == 0
    # converged either way (peer relay or explicit CA cold sync)
    ref = reference.replica_for(ca.name)
    got = victim.replica_for(ca.name)
    assert got.size == ref.size
    assert got.root() == ref.root()
    for a in (reference, relay, victim):
        a.close()
    ca.close()


@settings(max_examples=25, deadline=None)
@given(engine=engines, sizes=batch_sizes, data=st.data())
def test_tampered_segment_never_mutates_replica(engine, sizes, data):
    """Whatever byte is flipped in a published segment, applying it is
    rejected and leaves cursor, size, root, and signed root untouched."""
    config, ca, cdn, attach = build_stack(engine)
    segmented, segment_client = attach("segment-ra")
    revoke_batches(ca, sizes)
    segment_client.sync_via_segments(now=400)

    # one more batch, tampered at the origin before the RA sees it
    ca.revoke([SerialNumber(999)], now=500)
    path = segment_path(ca.name, len(sizes) + 1)
    raw = cdn.origin.fetch(path).content
    index = data.draw(
        st.integers(min_value=0, max_value=len(raw) - 1), label="flip index"
    )
    cdn.origin.publish(path, flip_byte(raw, index), now=500)

    replica = segmented.replica_for(ca.name)
    before = (
        segment_client.replication_cursor(ca.name),
        replica.size,
        replica.root(),
        replica.signed_root,
    )
    result = segment_client.sync_via_segments(now=510)
    assert result.segments_rejected == 1
    assert result.segments_applied == 0
    assert result.errors
    after = (
        segment_client.replication_cursor(ca.name),
        replica.size,
        replica.root(),
        replica.signed_root,
    )
    assert after == before
    segmented.close()
    ca.close()


@settings(max_examples=20, deadline=None)
@given(engine=engines, before_crash=batch_sizes, after_crash=batch_sizes)
def test_mid_stream_crash_restore_keeps_cursor_monotone(
    engine, before_crash, after_crash, tmp_path_factory
):
    """Checkpoint mid-stream, lose the process, restore, keep syncing: the
    cursor resumes exactly where the checkpoint left it and the replica
    converges on the full stream."""
    tmp_path = tmp_path_factory.mktemp("segckpt")
    config, ca, cdn, attach = build_stack(engine)
    segmented, segment_client = attach("segment-ra")

    revoke_batches(ca, before_crash, start=120)
    segment_client.sync_via_segments(now=300)
    checkpoint_cursor = segment_client.replication_cursor(ca.name)
    assert checkpoint_cursor == len(before_crash)
    assert segment_client.checkpoint(tmp_path) == 1

    revoke_batches(ca, after_crash, start=400, base=5000)
    segmented.close()

    restored, restored_client = attach("segment-ra")
    assert restored_client.restore(tmp_path) == 1
    assert restored_client.replication_cursor(ca.name) == checkpoint_cursor
    restored_client.sync_via_segments(now=600)
    total = len(before_crash) + len(after_crash)
    assert restored_client.replication_cursor(ca.name) == total
    assert restored.replica_for(ca.name).size == sum(before_crash) + sum(
        after_crash
    )
    restored.close()
    ca.close()


@settings(max_examples=20, deadline=None)
@given(engine=engines, sizes=batch_sizes, data=st.data())
def test_equivocating_relay_is_rejected_and_fallback_is_explicit(engine, sizes, data):
    """A peer re-signing segments under its own key never gets a forged
    segment applied or archived; the victim degrades to an explicit CA cold
    sync and still converges."""
    config, ca, cdn, attach = build_stack(engine)
    reference, reference_client = attach("reference-ra")
    relay, relay_client = attach("relay-ra", Region.UNITED_STATES)
    victim, victim_client = attach("victim-ra", Region.UNITED_STATES)

    revoke_batches(ca, sizes)
    reference_client.pull(now=400)
    relay_client.sync_via_segments(now=400)
    total = len(sizes)
    forge_from = data.draw(
        st.integers(min_value=1, max_value=total), label="forge from"
    )

    peer = EquivocatingPeer(relay_client, ca.name, forge_from)
    result = victim_client.sync_from_peer(peer, now=410)

    assert result.segments_rejected == 1
    assert result.cold_sync_fallbacks == 1
    cursor = victim_client.replication_cursor(ca.name)
    assert cursor == forge_from - 1
    # the forged segment was never archived for onward relay
    assert victim_client.archived_segment(ca.name, forge_from) is None
    ref = reference.replica_for(ca.name)
    got = victim.replica_for(ca.name)
    assert got.size == ref.size
    assert got.root() == ref.root()
    for a in (reference, relay, victim):
        a.close()
    ca.close()
