"""Tests for RITM's binary wire formats (status, head, issuance)."""

import json
from dataclasses import replace

import pytest

from repro.crypto.signing import KeyPair
from repro.dictionary.authdict import CADictionary
from repro.errors import TLSError
from repro.pki.serial import SerialNumber
from repro.ritm.messages import (
    DictionaryHead,
    KeyAnnouncement,
    ShardIndex,
    decode_head,
    decode_issuance,
    decode_key_announcements,
    decode_proof,
    decode_shard_index,
    decode_signed_root,
    decode_status,
    decode_status_bundle,
    encode_head,
    encode_issuance,
    encode_key_announcements,
    encode_proof,
    encode_shard_index,
    encode_signed_root,
    encode_status,
    encode_status_bundle,
)

from tests.conftest import make_serials


@pytest.fixture(scope="module")
def keys():
    return KeyPair.generate(b"codec-tests")


@pytest.fixture(scope="module")
def master(keys):
    dictionary = CADictionary("Codec-CA", keys, delta=10, chain_length=16)
    dictionary.insert(make_serials(50), now=1000)
    return dictionary


class TestSignedRootCodec:
    def test_roundtrip_preserves_verification(self, master, keys):
        root = master.signed_root
        decoded, consumed = decode_signed_root(encode_signed_root(root))
        assert decoded == root
        assert decoded.verify(keys.public)
        assert consumed == len(encode_signed_root(root))

    def test_truncation_rejected(self, master):
        data = encode_signed_root(master.signed_root)
        with pytest.raises(TLSError):
            decode_signed_root(data[:10])


class TestProofCodec:
    def test_absence_proof_roundtrip(self, master):
        proof = master.prove_membership(SerialNumber(700_000))
        decoded, _ = decode_proof(encode_proof(proof))
        assert decoded == proof
        assert decoded.verify(master.root())

    def test_presence_proof_roundtrip(self, master):
        proof = master.prove_membership(SerialNumber(10))
        decoded, _ = decode_proof(encode_proof(proof))
        assert decoded == proof
        assert decoded.verify(master.root())

    def test_edge_absence_proofs_roundtrip(self, master):
        # Before the first and after the last leaf (one-sided proofs).
        low = master.prove_membership(SerialNumber(16_000_000))
        decoded, _ = decode_proof(encode_proof(low))
        assert decoded.verify(master.root())

    def test_unknown_tag_rejected(self):
        with pytest.raises(TLSError):
            decode_proof(b"\x07garbage")


class TestStatusCodec:
    def test_status_roundtrip_still_verifies(self, master, keys):
        status = master.prove(SerialNumber(700_000))
        decoded, _ = decode_status(encode_status(status))
        assert decoded.ca_name == status.ca_name
        assert decoded.serial == status.serial
        decoded.verify(keys.public, now=1005, delta=10)

    def test_revoked_status_roundtrip(self, master, keys):
        from repro.errors import RevokedCertificateError

        status = master.prove(SerialNumber(7))
        decoded, _ = decode_status(encode_status(status))
        assert decoded.is_revoked
        with pytest.raises(RevokedCertificateError):
            decoded.verify(keys.public, now=1005, delta=10)

    def test_bundle_roundtrip(self, master):
        statuses = [master.prove(SerialNumber(700_000)), master.prove(SerialNumber(5))]
        decoded = decode_status_bundle(encode_status_bundle(statuses))
        assert len(decoded) == 2
        assert decoded[0].serial == statuses[0].serial
        assert decoded[1].is_revoked

    def test_empty_bundle_record_rejected(self):
        with pytest.raises(TLSError):
            decode_status_bundle(b"")

    def test_encoded_size_close_to_estimate(self, master):
        status = master.prove(SerialNumber(700_000))
        encoded = len(encode_status(status))
        estimate = status.encoded_size()
        assert abs(encoded - estimate) < 200


class TestHeadAndIssuanceCodec:
    def test_head_roundtrip(self, master, keys):
        head = DictionaryHead(
            ca_name="Codec-CA",
            size=master.size,
            signed_root=master.signed_root,
            freshness=master.latest_freshness,
        )
        decoded = decode_head(encode_head(head))
        assert decoded.ca_name == head.ca_name
        assert decoded.size == head.size
        assert decoded.signed_root.verify(keys.public)

    def test_head_size_is_small(self, master):
        head = DictionaryHead(
            ca_name="Codec-CA",
            size=master.size,
            signed_root=master.signed_root,
            freshness=master.latest_freshness,
        )
        # The polling object stays a few hundred bytes (it is fetched every Δ).
        assert head.encoded_size() < 500

    def test_issuance_roundtrip(self, keys):
        dictionary = CADictionary("Codec-CA-2", keys, delta=10, chain_length=8)
        issuance = dictionary.insert(make_serials(7), now=2000)
        decoded = decode_issuance(encode_issuance(issuance))
        assert decoded.ca_name == issuance.ca_name
        assert decoded.first_number == 1
        assert decoded.serials == issuance.serials
        assert decoded.signed_root == issuance.signed_root

    def test_issuance_applies_to_replica_after_roundtrip(self, keys):
        from repro.dictionary.authdict import ReplicaDictionary

        dictionary = CADictionary("Codec-CA-3", keys, delta=10, chain_length=8)
        issuance = dictionary.insert(make_serials(5), now=2000)
        replica = ReplicaDictionary("Codec-CA-3", keys.public)
        replica.update(decode_issuance(encode_issuance(issuance)))
        assert replica.root() == dictionary.root()


class TestReplayWindowFieldsCodec:
    """Round-trip and tamper behaviour of the replay-window fields.

    The publication ``sequence`` on heads and shard indexes is deliberately
    unauthenticated (the replay *backstop* is the signed freshness chain),
    so the codec contract is: the counter survives a round trip exactly,
    absent counters decode to zero (pre-replay-window objects), and
    syntactically invalid counters are rejected as malformed rather than
    silently clamped.
    """

    def _head(self, master, sequence):
        return DictionaryHead(
            ca_name="Codec-CA",
            size=master.size,
            signed_root=master.signed_root,
            freshness=master.latest_freshness,
            sequence=sequence,
        )

    @pytest.mark.parametrize("sequence", [0, 1, 7, 2**32, 2**63])
    def test_head_sequence_roundtrips_exactly(self, master, keys, sequence):
        decoded = decode_head(encode_head(self._head(master, sequence)))
        assert decoded.sequence == sequence
        assert decoded.signed_root.verify(keys.public)

    def test_legacy_head_without_sequence_decodes_to_zero(self, master):
        # Heads published before the replay window existed end right after
        # the freshness statement; decoding must not reject them.
        encoded = encode_head(self._head(master, sequence=12))
        decoded = decode_head(encoded[:-8])
        assert decoded.sequence == 0
        assert decoded.size == master.size

    def test_head_sequence_is_outside_the_signature(self, master, keys):
        # A CDN (or attacker) can rewrite the counter without breaking the
        # root signature — exactly why the client also keeps the signed
        # freshness chain as the authenticated staleness backstop.
        head = self._head(master, sequence=5)
        rewound = decode_head(encode_head(replace(head, sequence=1)))
        assert rewound.sequence == 1
        assert rewound.signed_root == head.signed_root
        assert rewound.signed_root.verify(keys.public)

    @pytest.mark.parametrize("sequence", [0, 3, 2**40])
    def test_shard_index_sequence_roundtrips_exactly(self, sequence):
        index = ShardIndex(
            ca_name="Codec-CA",
            width_seconds=600,
            live=(4, 5, 6),
            retired=(1, 2),
            sequence=sequence,
        )
        decoded = decode_shard_index(encode_shard_index(index))
        assert decoded == index

    def test_shard_index_without_sequence_decodes_to_zero(self):
        payload = {"ca": "Codec-CA", "width_seconds": 600, "live": [1]}
        decoded = decode_shard_index(json.dumps(payload).encode("utf-8"))
        assert decoded.sequence == 0

    def test_shard_index_negative_sequence_rejected(self):
        index = ShardIndex(ca_name="Codec-CA", width_seconds=600, live=(1,))
        payload = json.loads(encode_shard_index(index).decode("utf-8"))
        payload["sequence"] = -4
        with pytest.raises(TLSError):
            decode_shard_index(json.dumps(payload).encode("utf-8"))


class TestKeyAnnouncementCodec:
    """The key-rotation chain must survive the CDN byte-exactly: every
    field is covered by the previous epoch's signature, so any mutation in
    transit must flip signature verification, and malformed chains must be
    rejected before they reach keyring logic."""

    def _chain(self, keys):
        next_keys = KeyPair.generate(b"codec-epoch-1")
        genesis = KeyAnnouncement(
            ca_name="Codec-CA",
            key_epoch=0,
            public_key_bytes=keys.public.key_bytes,
            activated_at=0,
            overlap_seconds=0,
        )
        rotation = KeyAnnouncement(
            ca_name="Codec-CA",
            key_epoch=1,
            public_key_bytes=next_keys.public.key_bytes,
            activated_at=5_000,
            overlap_seconds=10,
        )
        rotation = replace(rotation, signature=keys.sign(rotation.payload()))
        return (genesis, rotation)

    def test_chain_roundtrips_and_still_verifies(self, keys):
        chain = self._chain(keys)
        decoded = decode_key_announcements(encode_key_announcements(chain))
        assert decoded == chain
        # The rotation link's signature still verifies under epoch 0's key.
        assert keys.public.verify(decoded[1].payload(), decoded[1].signature)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("key_epoch", 2),
            ("activated_at", 5_001),
            ("overlap_seconds", 10_000),
            ("public_key_bytes", b"\x00" * 32),
            ("ca_name", "Codec-CA-evil"),
        ],
    )
    def test_any_field_mutation_breaks_the_signature(self, keys, field, value):
        chain = self._chain(keys)
        tampered = replace(chain[1], **{field: value})
        decoded = decode_key_announcements(
            encode_key_announcements((chain[0], tampered))
        )
        assert not keys.public.verify(decoded[1].payload(), decoded[1].signature)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda entries: entries[1].update(signature="zz-not-hex"),
            lambda entries: entries[1].update(overlap_seconds=-1),
            lambda entries: entries[1].update(activated_at=-5),
            lambda entries: entries[1].pop("epoch"),
        ],
    )
    def test_malformed_chain_rejected(self, keys, mutate):
        entries = json.loads(
            encode_key_announcements(self._chain(keys)).decode("utf-8")
        )
        mutate(entries)
        with pytest.raises(TLSError):
            decode_key_announcements(json.dumps(entries).encode("utf-8"))

    def test_non_list_chain_rejected(self):
        with pytest.raises(TLSError):
            decode_key_announcements(b"{}")
