"""Tests for RITM's binary wire formats (status, head, issuance)."""

import pytest

from repro.crypto.signing import KeyPair
from repro.dictionary.authdict import CADictionary
from repro.errors import TLSError
from repro.pki.serial import SerialNumber
from repro.ritm.messages import (
    DictionaryHead,
    decode_head,
    decode_issuance,
    decode_proof,
    decode_signed_root,
    decode_status,
    decode_status_bundle,
    encode_head,
    encode_issuance,
    encode_proof,
    encode_signed_root,
    encode_status,
    encode_status_bundle,
)

from tests.conftest import make_serials


@pytest.fixture(scope="module")
def keys():
    return KeyPair.generate(b"codec-tests")


@pytest.fixture(scope="module")
def master(keys):
    dictionary = CADictionary("Codec-CA", keys, delta=10, chain_length=16)
    dictionary.insert(make_serials(50), now=1000)
    return dictionary


class TestSignedRootCodec:
    def test_roundtrip_preserves_verification(self, master, keys):
        root = master.signed_root
        decoded, consumed = decode_signed_root(encode_signed_root(root))
        assert decoded == root
        assert decoded.verify(keys.public)
        assert consumed == len(encode_signed_root(root))

    def test_truncation_rejected(self, master):
        data = encode_signed_root(master.signed_root)
        with pytest.raises(TLSError):
            decode_signed_root(data[:10])


class TestProofCodec:
    def test_absence_proof_roundtrip(self, master):
        proof = master.prove_membership(SerialNumber(700_000))
        decoded, _ = decode_proof(encode_proof(proof))
        assert decoded == proof
        assert decoded.verify(master.root())

    def test_presence_proof_roundtrip(self, master):
        proof = master.prove_membership(SerialNumber(10))
        decoded, _ = decode_proof(encode_proof(proof))
        assert decoded == proof
        assert decoded.verify(master.root())

    def test_edge_absence_proofs_roundtrip(self, master):
        # Before the first and after the last leaf (one-sided proofs).
        low = master.prove_membership(SerialNumber(16_000_000))
        decoded, _ = decode_proof(encode_proof(low))
        assert decoded.verify(master.root())

    def test_unknown_tag_rejected(self):
        with pytest.raises(TLSError):
            decode_proof(b"\x07garbage")


class TestStatusCodec:
    def test_status_roundtrip_still_verifies(self, master, keys):
        status = master.prove(SerialNumber(700_000))
        decoded, _ = decode_status(encode_status(status))
        assert decoded.ca_name == status.ca_name
        assert decoded.serial == status.serial
        decoded.verify(keys.public, now=1005, delta=10)

    def test_revoked_status_roundtrip(self, master, keys):
        from repro.errors import RevokedCertificateError

        status = master.prove(SerialNumber(7))
        decoded, _ = decode_status(encode_status(status))
        assert decoded.is_revoked
        with pytest.raises(RevokedCertificateError):
            decoded.verify(keys.public, now=1005, delta=10)

    def test_bundle_roundtrip(self, master):
        statuses = [master.prove(SerialNumber(700_000)), master.prove(SerialNumber(5))]
        decoded = decode_status_bundle(encode_status_bundle(statuses))
        assert len(decoded) == 2
        assert decoded[0].serial == statuses[0].serial
        assert decoded[1].is_revoked

    def test_empty_bundle_record_rejected(self):
        with pytest.raises(TLSError):
            decode_status_bundle(b"")

    def test_encoded_size_close_to_estimate(self, master):
        status = master.prove(SerialNumber(700_000))
        encoded = len(encode_status(status))
        estimate = status.encoded_size()
        assert abs(encoded - estimate) < 200


class TestHeadAndIssuanceCodec:
    def test_head_roundtrip(self, master, keys):
        head = DictionaryHead(
            ca_name="Codec-CA",
            size=master.size,
            signed_root=master.signed_root,
            freshness=master.latest_freshness,
        )
        decoded = decode_head(encode_head(head))
        assert decoded.ca_name == head.ca_name
        assert decoded.size == head.size
        assert decoded.signed_root.verify(keys.public)

    def test_head_size_is_small(self, master):
        head = DictionaryHead(
            ca_name="Codec-CA",
            size=master.size,
            signed_root=master.signed_root,
            freshness=master.latest_freshness,
        )
        # The polling object stays a few hundred bytes (it is fetched every Δ).
        assert head.encoded_size() < 500

    def test_issuance_roundtrip(self, keys):
        dictionary = CADictionary("Codec-CA-2", keys, delta=10, chain_length=8)
        issuance = dictionary.insert(make_serials(7), now=2000)
        decoded = decode_issuance(encode_issuance(issuance))
        assert decoded.ca_name == issuance.ca_name
        assert decoded.first_number == 1
        assert decoded.serials == issuance.serials
        assert decoded.signed_root == issuance.signed_root

    def test_issuance_applies_to_replica_after_roundtrip(self, keys):
        from repro.dictionary.authdict import ReplicaDictionary

        dictionary = CADictionary("Codec-CA-3", keys, delta=10, chain_length=8)
        issuance = dictionary.insert(make_serials(5), now=2000)
        replica = ReplicaDictionary("Codec-CA-3", keys.public)
        replica.update(decode_issuance(encode_issuance(issuance)))
        assert replica.root() == dictionary.root()
