"""Differential oracle for the WAL-segment replication stream.

An RA that learns revocations *only* from the CA's signed WAL segments —
whether fetched CA-direct from the CDN or relayed peer-to-peer by another
RA's archive — must end byte-identical to an RA fed by the ordinary pull
path: same Merkle roots, same signed roots, same freshness statements,
same proofs for present and absent serials.  Every store engine must agree,
and a segment-synced replica must survive a checkpoint/restore round trip
with its segment cursor intact (docs/REPLICATION.md).
"""

import pytest

from repro.cdn import CDNNetwork, GeoLocation
from repro.cdn.geography import Region
from repro.pki import CertificationAuthority, SerialNumber
from repro.ritm import (
    RITMCertificationAuthority,
    RITMConfig,
    RevocationAgent,
    attach_agent_to_cas,
)
from repro.store import ENGINES

PERIODS = 5
PER_PERIOD = 4


def build_stack(engine="incremental"):
    """A bootstrapped CA + CDN plus a factory for attached agents."""
    config = RITMConfig(delta_seconds=10, chain_length=64, store_engine=engine)
    authority = CertificationAuthority("Repl CA", key_seed=b"replication-diff")
    cdn = CDNNetwork()
    ca = RITMCertificationAuthority(authority, config, cdn)
    ca.bootstrap(now=100)

    def attach(name, region=Region.EUROPE):
        agent = RevocationAgent(name, config)
        client = attach_agent_to_cas(agent, [ca], cdn, GeoLocation(region))
        return agent, client

    return config, ca, cdn, attach


def drive(ca, steps, start=120):
    """Revoke PER_PERIOD serials per period, calling ``steps`` after each."""
    for period in range(PERIODS):
        now = start + period * 10
        serials = [
            SerialNumber(1000 + period * PER_PERIOD + offset)
            for offset in range(PER_PERIOD)
        ]
        ca.revoke(serials, now=now)
        for step in steps:
            step(now + 5)


def assert_replicas_identical(ca, reference, candidate):
    """Byte-level equality of state, plus proof equality for both verdicts."""
    ref = reference.replica_for(ca.name)
    cand = candidate.replica_for(ca.name)
    assert cand.root() == ref.root()
    assert cand.size == ref.size
    assert cand.signed_root == ref.signed_root
    assert cand.latest_freshness == ref.latest_freshness
    present = SerialNumber(1000)
    absent = SerialNumber(999_999)
    assert cand.prove(present) == ref.prove(present)
    assert cand.prove(absent) == ref.prove(absent)
    assert cand.prove(present).is_revoked
    assert not cand.prove(absent).is_revoked


@pytest.mark.parametrize("engine", sorted(ENGINES))
class TestSegmentSyncMatchesPullPath:
    def test_ca_direct_segments_reach_pull_state(self, engine):
        config, ca, cdn, attach = build_stack(engine)
        puller, pull_client = attach("pull-ra")
        pull_client.pull(now=101)
        segmented, segment_client = attach("segment-ra", Region.UNITED_STATES)

        drive(
            ca,
            steps=[
                lambda now: pull_client.pull(now=now),
                lambda now: segment_client.sync_via_segments(now),
            ],
        )

        assert_replicas_identical(ca, puller, segmented)
        assert segment_client.replication_cursor(ca.name) == PERIODS
        applied = sum(
            pull.segments_applied for pull in segment_client.pull_history
        )
        assert applied == PERIODS
        for a in (puller, segmented):
            a.close()
        ca.close()

    def test_peer_relayed_segments_reach_pull_state(self, engine):
        config, ca, cdn, attach = build_stack(engine)
        puller, pull_client = attach("pull-ra")
        pull_client.pull(now=101)
        relay, relay_client = attach("relay-ra", Region.UNITED_STATES)
        restored, restored_client = attach("restored-ra", Region.UNITED_STATES)

        drive(
            ca,
            steps=[
                lambda now: pull_client.pull(now=now),
                lambda now: relay_client.sync_via_segments(now),
            ],
        )
        result = restored_client.sync_from_peer(relay_client, now=500)

        assert_replicas_identical(ca, puller, restored)
        assert result.peer_syncs == 1
        assert result.segments_from_peer == PERIODS
        assert result.cold_sync_fallbacks == 0
        assert result.segment_bytes_downloaded > 0
        # peer relay never touched the CDN origin on the restored RA's behalf
        assert cdn.origin_bytes_by_source.get("restored-ra", 0) == 0
        assert restored_client.replication_cursor(ca.name) == PERIODS
        for a in (puller, relay, restored):
            a.close()
        ca.close()

    def test_segment_sync_is_idempotent(self, engine):
        config, ca, cdn, attach = build_stack(engine)
        segmented, segment_client = attach("segment-ra")
        drive(ca, steps=[lambda now: segment_client.sync_via_segments(now)])

        again = segment_client.sync_via_segments(now=600)
        assert again.segments_applied == 0
        assert again.serials_applied == 0
        assert segment_client.replication_cursor(ca.name) == PERIODS

        # a follow-up peer sync against an equally-caught-up peer is a no-op
        peer, peer_client = attach("peer-ra")
        peer_client.sync_via_segments(now=601)
        rerun = segment_client.sync_from_peer(peer_client, now=602)
        assert rerun.peer_syncs == 0
        assert rerun.serials_applied == 0
        for a in (segmented, peer):
            a.close()
        ca.close()


class TestStreamingPullMode:
    def test_streaming_pull_matches_plain_pull(self):
        """segment_streaming=True pulls end byte-identical to legacy pulls."""
        config, ca, cdn, attach = build_stack("incremental")
        plain, plain_client = attach("plain-ra")
        streaming, streaming_client = attach("streaming-ra", Region.JAPAN)
        streaming_client.segment_streaming = True
        plain_client.pull(now=101)
        streaming_client.pull(now=101)

        drive(
            ca,
            steps=[
                lambda now: plain_client.pull(now=now),
                lambda now: streaming_client.pull(now=now),
            ],
        )

        assert_replicas_identical(ca, plain, streaming)
        # the streaming client learned its serials via segments, not batches
        assert (
            sum(p.segments_applied for p in streaming_client.pull_history)
            == PERIODS
        )
        assert streaming_client.replication_cursor(ca.name) == PERIODS
        assert plain_client.replication_cursor(ca.name) == 0
        for a in (plain, streaming):
            a.close()
        ca.close()

    def test_segment_cursor_survives_checkpoint_restore(self, tmp_path):
        config, ca, cdn, attach = build_stack("durable")
        segmented, segment_client = attach("segment-ra")
        drive(ca, steps=[lambda now: segment_client.sync_via_segments(now)])
        assert segment_client.checkpoint(tmp_path) == 1

        fresh, fresh_client = attach("segment-ra")
        assert fresh_client.restore(tmp_path) == 1
        assert fresh_client.replication_cursor(ca.name) == PERIODS
        # nothing new published, so the restored cursor makes syncs no-ops
        result = fresh_client.sync_via_segments(now=700)
        assert result.segments_applied == 0
        assert_replicas_identical(ca, segmented, fresh)
        for a in (segmented, fresh):
            a.close()
        ca.close()
