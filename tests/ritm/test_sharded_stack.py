"""The sharded deployment mode (§VIII) across ca_service → CDN → dissemination → agent.

These tests drive the same pipeline the ``sharded-longrun`` scenario uses,
but at unit scale: a sharded :class:`RITMCertificationAuthority` publishing
per-shard heads/issuances plus a shard index, an RA discovering shards
through the index, proving from shard replicas, and pruning them as their
expiry windows pass.
"""

from __future__ import annotations

import pytest

import json

from repro.cdn.geography import GeoLocation, Region
from repro.cdn.network import CDNNetwork
from repro.crypto.signing import KeyPair
from repro.dictionary.sharding import MAX_CERTIFICATE_LIFETIME_SECONDS, shard_name
from repro.errors import DictionaryError, TLSError
from repro.pki.ca import CertificationAuthority
from repro.pki.serial import SerialNumber
from repro.ritm.agent import RevocationAgent
from repro.ritm.ca_service import (
    RITMCertificationAuthority,
    head_path,
    shard_index_path,
)
from repro.ritm.config import RITMConfig
from repro.ritm.dissemination import attach_agent_to_cas
from repro.ritm.messages import decode_shard_index

EPOCH = 1_400_000_000
WEEK = 7 * 86_400


@pytest.fixture()
def sharded_world():
    """A sharded CA, a CDN, and one RA wired for shard discovery."""
    config = RITMConfig(
        delta_seconds=WEEK,
        chain_length=64,
        sharded=True,
        shard_width_seconds=4 * WEEK,
        prune_every_periods=1,
    )
    authority = CertificationAuthority("Sharded CA", key_seed=b"sharded-stack")
    cdn = CDNNetwork()
    ca = RITMCertificationAuthority(authority, config, cdn)
    ca.bootstrap(now=EPOCH)
    agent = RevocationAgent("shard-ra", config)
    client = attach_agent_to_cas(agent, [ca], cdn, GeoLocation(Region.EUROPE))
    return config, authority, cdn, ca, agent, client


class TestShardedCAService:
    def test_bootstrap_publishes_manifest_and_empty_index(self, sharded_world):
        _, _, cdn, ca, _, _ = sharded_world
        manifest_ok = ca.manifest()["sharded"] is True
        assert manifest_ok
        assert ca.manifest()["shard_index"] == shard_index_path(ca.name)
        index = decode_shard_index(
            cdn.download(shard_index_path(ca.name), GeoLocation(Region.EUROPE), EPOCH).content
        )
        assert index.live == () and index.retired == ()
        assert index.width_seconds == 4 * WEEK

    def test_revoke_with_expiry_publishes_per_shard_objects(self, sharded_world):
        _, _, cdn, ca, _, _ = sharded_world
        now = EPOCH + WEEK
        issuances = ca.revoke_with_expiry(
            [(SerialNumber(1), now + WEEK), (SerialNumber(2), now + 6 * WEEK)],
            now=now,
        )
        assert len(issuances) == 2
        for key, _ in issuances:
            path = head_path(shard_name(ca.name, key.index))
            assert cdn.origin.exists(path)
        index = decode_shard_index(
            cdn.download(shard_index_path(ca.name), GeoLocation(Region.EUROPE), now).content
        )
        assert set(index.live) == {key.index for key, _ in issuances}

    def test_head_raises_in_sharded_mode(self, sharded_world):
        _, _, _, ca, _, _ = sharded_world
        with pytest.raises(DictionaryError, match="per-shard heads"):
            ca.head()
        with pytest.raises(DictionaryError, match="no published shard"):
            ca.shard_head(0)

    def test_revoke_derives_expiry_from_issued_certificate(self, sharded_world):
        _, authority, _, ca, _, _ = sharded_world
        keys = KeyPair.generate(b"sharded-server")
        certificate = authority.issue("host.example", keys.public, now=EPOCH)
        issuance = ca.revoke([certificate.serial], now=EPOCH + 1)
        expected = shard_name(
            ca.name, certificate.not_after // ca.config.shard_width_seconds
        )
        assert issuance.ca_name == expected

    def test_revoke_unknown_serial_requires_explicit_expiry(self, sharded_world):
        _, _, _, ca, _, _ = sharded_world
        with pytest.raises(DictionaryError, match="revoke_with_expiry"):
            ca.revoke([SerialNumber(404)], now=EPOCH + 1)

    def test_empty_revocation_batch_rejected(self, sharded_world):
        _, _, _, ca, _, _ = sharded_world
        with pytest.raises(DictionaryError, match="at least one serial"):
            ca.revoke_with_expiry([], now=EPOCH + 1)
        with pytest.raises(DictionaryError, match="at least one serial"):
            ca.revoke([], now=EPOCH + 1)

    def test_duplicate_serial_leaves_batch_retryable(self, sharded_world):
        """A duplicate serial anywhere in the batch must fail before any
        other serial is recorded, so the corrected batch can be retried."""
        _, authority, _, ca, _, _ = sharded_world
        now = EPOCH + 1
        ca.revoke_with_expiry([(SerialNumber(1), now + WEEK)], now=now)
        with pytest.raises(DictionaryError, match="already revoked"):
            ca.revoke_with_expiry(
                [(SerialNumber(2), now + WEEK), (SerialNumber(1), now + WEEK)],
                now=now,
            )
        assert not authority.is_revoked(SerialNumber(2))
        with pytest.raises(DictionaryError, match="already revoked"):
            ca.revoke_with_expiry(
                [(SerialNumber(3), now + WEEK), (SerialNumber(3), now + 2 * WEEK)],
                now=now,
            )
        # corrected retries go through
        ca.revoke_with_expiry([(SerialNumber(2), now + WEEK)], now=now)
        assert authority.is_revoked(SerialNumber(2))

    def test_born_retired_expiry_rejected(self, sharded_world):
        """An expiry whose whole shard window already passed would create a
        shard no RA ever replicates; it must be rejected up front."""
        _, authority, _, ca, _, _ = sharded_world
        now = EPOCH + 20 * WEEK
        stale = now - 8 * WEEK  # two full 4-week windows in the past
        with pytest.raises(DictionaryError, match="whole window passed"):
            ca.revoke_with_expiry([(SerialNumber(6), stale)], now=now)
        assert ca.shards.shard_count == 0
        assert not authority.is_revoked(SerialNumber(6))

    def test_rejected_expiry_leaves_pki_retryable(self, sharded_world):
        """A bad expiry must fail before the issuance CA records anything."""
        _, authority, _, ca, _, _ = sharded_world
        now = EPOCH + 1
        bad = now + MAX_CERTIFICATE_LIFETIME_SECONDS + 1
        with pytest.raises(DictionaryError, match="maximum lifetime"):
            ca.revoke_with_expiry([(SerialNumber(8), bad)], now=now)
        assert not authority.is_revoked(SerialNumber(8))
        assert ca.shards.shard_count == 0
        # corrected retry succeeds (no duplicate-revocation error)
        ca.revoke_with_expiry([(SerialNumber(8), now + WEEK)], now=now)
        assert authority.is_revoked(SerialNumber(8))

    def test_refresh_retires_expired_shards_and_republishes_index(self, sharded_world):
        _, _, cdn, ca, _, _ = sharded_world
        now = EPOCH + WEEK
        ca.revoke_with_expiry([(SerialNumber(1), now + WEEK)], now=now)
        later = now + 10 * WEEK
        ca.refresh(now=later)
        assert ca.shards.shard_count == 0
        assert ca.shards.retired_count == 1
        index = decode_shard_index(
            cdn.download(shard_index_path(ca.name), GeoLocation(Region.EUROPE), later).content
        )
        assert index.live == ()
        assert len(index.retired) == 1


class TestShardedDissemination:
    def test_pull_discovers_and_replicates_shards(self, sharded_world):
        _, _, _, ca, agent, client = sharded_world
        now = EPOCH + WEEK
        ca.revoke_with_expiry(
            [(SerialNumber(1), now + WEEK), (SerialNumber(2), now + 6 * WEEK)],
            now=now,
        )
        result = client.pull(now=now + 1)
        assert not result.errors
        assert result.shard_indexes_checked == 1
        assert result.heads_checked == 2
        assert result.serials_applied == 2
        replicas = agent.shard_replicas(ca.name)
        assert len(replicas) == 2
        assert sum(replica.size for replica in replicas.values()) == 2

    def test_shard_replica_proves_revoked_and_absent(self, sharded_world):
        _, _, _, ca, agent, client = sharded_world
        now = EPOCH + WEEK
        expiry = now + WEEK
        ca.revoke_with_expiry([(SerialNumber(5), expiry)], now=now)
        client.pull(now=now + 1)
        replica = agent.replica_for_certificate(ca.name, expiry)
        assert replica is not None
        assert replica.prove(SerialNumber(5)).is_revoked
        assert not replica.prove(SerialNumber(6)).is_revoked

    def test_pull_applies_queued_batches_per_shard(self, sharded_world):
        _, _, _, ca, agent, client = sharded_world
        now = EPOCH + WEEK
        expiry = now + 2 * WEEK
        ca.revoke_with_expiry([(SerialNumber(1), expiry)], now=now)
        ca.revoke_with_expiry([(SerialNumber(2), expiry)], now=now + 10)
        ca.revoke_with_expiry([(SerialNumber(3), expiry)], now=now + 20)
        result = client.pull(now=now + 30)
        assert not result.errors
        assert result.serials_applied == 3
        replicas = agent.shard_replicas(ca.name)
        assert sum(replica.size for replica in replicas.values()) == 3

    def test_pull_prunes_expired_replicas_and_reclaims_storage(self, sharded_world):
        _, _, _, ca, agent, client = sharded_world
        now = EPOCH + WEEK
        ca.revoke_with_expiry(
            [(SerialNumber(1), now + WEEK), (SerialNumber(2), now + 6 * WEEK)],
            now=now,
        )
        client.pull(now=now + 1)
        assert len(agent.shard_replicas(ca.name)) == 2
        later = now + 5 * WEEK
        ca.refresh(now=later)
        result = client.pull(now=later + 1)
        assert not result.errors
        assert result.shards_pruned == 1
        assert result.entries_pruned == 1
        assert result.bytes_reclaimed > 0
        assert agent.stats.shard_replicas_pruned == 1
        assert agent.reclaimed_storage_bytes == result.bytes_reclaimed
        replicas = agent.shard_replicas(ca.name)
        assert list(replicas) == [
            (now + 6 * WEEK) // ca.config.shard_width_seconds
        ]

    def test_stale_index_entries_are_not_rereplicated(self, sharded_world):
        """A cached index listing an already-expired shard must not make the
        RA re-download and re-prune it (double-counting reclaimed bytes)."""
        _, _, _, ca, agent, client = sharded_world
        now = EPOCH + WEEK
        ca.revoke_with_expiry([(SerialNumber(1), now + WEEK)], now=now)
        client.pull(now=now + 1)
        # The CA never refreshes, so the published index still lists the
        # shard as live long after its window has passed.
        later = now + 10 * WEEK
        first = client.pull(now=later)
        assert first.shards_pruned == 1
        reclaimed = agent.reclaimed_storage_bytes
        second = client.pull(now=later + 1)
        assert second.shards_pruned == 0
        assert second.serials_applied == 0
        assert agent.reclaimed_storage_bytes == reclaimed
        assert agent.shard_replicas(ca.name) == {}

    def test_forged_zero_width_index_is_rejected(self, sharded_world):
        """A forged width must neither crash ShardKey math nor overwrite the
        agent's configured shard width (the index is unauthenticated)."""
        _, _, cdn, ca, agent, client = sharded_world
        now = EPOCH + WEEK
        ca.revoke_with_expiry([(SerialNumber(1), now + WEEK)], now=now)
        client.pull(now=now + 1)
        forged = json.dumps(
            {"ca": ca.name, "width_seconds": 0, "live": [], "retired": []}
        ).encode("utf-8")
        cdn.publish(shard_index_path(ca.name), forged, now + 2)
        with pytest.raises(TLSError, match="shard index"):
            decode_shard_index(forged)
        result = client.pull(now=now + 3)
        assert any("shard index" in error for error in result.errors)
        # width survives, so the TLS-path lookup keeps working
        assert agent.shard_widths[ca.name] == ca.config.shard_width_seconds
        assert agent.replica_for_certificate(ca.name, now + WEEK) is not None

    def test_forged_width_index_cannot_remap_replicas(self, sharded_world):
        """A forged (but positive) width must not overwrite the configured
        width — which would mass-expire every held replica on the next prune."""
        _, _, cdn, ca, agent, client = sharded_world
        now = EPOCH + WEEK
        ca.revoke_with_expiry([(SerialNumber(1), now + WEEK)], now=now)
        client.pull(now=now + 1)
        held_before = dict(agent.shard_replicas(ca.name))
        forged = json.dumps(
            {"ca": ca.name, "width_seconds": 1, "live": [], "retired": []}
        ).encode("utf-8")
        cdn.publish(shard_index_path(ca.name), forged, now + 2)
        result = client.pull(now=now + 3)
        assert any("advertises width" in error for error in result.errors)
        assert agent.shard_widths[ca.name] == ca.config.shard_width_seconds
        assert agent.shard_replicas(ca.name) == held_before
        assert result.shards_pruned == 0

    def test_duplicate_index_entries_cost_one_fetch(self, sharded_world):
        """A forged index repeating one live shard many times must not
        multiply the RA's per-pull head fetches."""
        _, _, cdn, ca, agent, client = sharded_world
        now = EPOCH + WEEK
        ca.revoke_with_expiry([(SerialNumber(1), now + WEEK)], now=now)
        live = (now + WEEK) // ca.config.shard_width_seconds
        forged = json.dumps(
            {
                "ca": ca.name,
                "width_seconds": ca.config.shard_width_seconds,
                "live": [live] * 500,
                "retired": [],
            }
        ).encode("utf-8")
        cdn.publish(shard_index_path(ca.name), forged, now)
        result = client.pull(now=now + 1)
        assert not result.errors
        assert result.heads_checked == 1
        assert len(agent.shard_replicas(ca.name)) == 1

    def test_forged_far_future_index_does_not_register_replicas(self, sharded_world):
        """A forged index listing implausible far-future shards must not grow
        the agent's replica set (those windows never expire, so the replicas
        could never be pruned)."""
        _, _, cdn, ca, agent, client = sharded_world
        now = EPOCH + WEEK
        width = ca.config.shard_width_seconds
        far_future = (now + 3 * MAX_CERTIFICATE_LIFETIME_SECONDS) // width
        forged = json.dumps(
            {
                "ca": ca.name,
                "width_seconds": width,
                "live": [far_future, far_future + 1],
                "retired": [],
            }
        ).encode("utf-8")
        cdn.publish(shard_index_path(ca.name), forged, now)
        result = client.pull(now=now + 1)
        assert sum("implausible far-future" in error for error in result.errors) == 2
        assert agent.shard_replicas(ca.name) == {}
        assert len(agent.replicas) == 0

    def test_unrelated_ca_with_shard_like_name_is_not_captured(self):
        """A CA legitimately named '<ca>#expiry-<n>' must keep pulling and
        never be adopted or pruned as if it were a shard of the sharded CA —
        even once the sharded CA's index lists that very shard as live."""
        width = 2 * WEEK
        sharded_cfg = RITMConfig(
            delta_seconds=WEEK, chain_length=64, sharded=True,
            shard_width_seconds=width,
        )
        plain_cfg = RITMConfig(delta_seconds=WEEK, chain_length=64)
        cdn = CDNNetwork()
        sharded_ca = RITMCertificationAuthority(
            CertificationAuthority("Decoy CA", key_seed=b"decoy-base"), sharded_cfg, cdn
        )
        # Name the unrelated CA after a *current* window, so the sharded CA
        # can later publish that exact shard as live (the collision case).
        collision_index = (EPOCH + WEEK) // width
        weird_name = shard_name("Decoy CA", collision_index)
        weird_ca = RITMCertificationAuthority(
            CertificationAuthority(weird_name, key_seed=b"decoy-weird"), plain_cfg, cdn
        )
        sharded_ca.bootstrap(now=EPOCH)
        weird_ca.bootstrap(now=EPOCH)
        agent = RevocationAgent("decoy-ra", sharded_cfg)
        client = attach_agent_to_cas(
            agent, [sharded_ca, weird_ca], cdn, GeoLocation(Region.EUROPE)
        )
        weird_ca.revoke([SerialNumber(11)], now=EPOCH + 1)
        result = client.pull(now=EPOCH + 2)
        assert not result.errors
        assert agent.replica_for(weird_name).size == 1
        # The sharded CA now publishes the colliding shard as live: the
        # agent must refuse to adopt the unrelated CA's replica as a shard.
        sharded_ca.revoke_with_expiry(
            [(SerialNumber(5), EPOCH + WEEK)], now=EPOCH + 3
        )
        result = client.pull(now=EPOCH + 4)
        assert any("different" in error and "CA key" in error for error in result.errors)
        assert agent.shard_replicas("Decoy CA") == {}
        assert agent.replica_for(weird_name).size == 1
        # The unrelated CA keeps being pulled and is never pruned.
        weird_ca.revoke([SerialNumber(12)], now=EPOCH + 5)
        far = EPOCH + 50 * WEEK
        sharded_ca.refresh(now=far)
        result = client.pull(now=far + 1)
        assert agent.replica_for(weird_name) is not None
        assert agent.replica_for(weird_name).size == 2
        assert result.shards_pruned == 0

    def test_prune_cadence_respects_config(self):
        config = RITMConfig(
            delta_seconds=WEEK,
            chain_length=64,
            sharded=True,
            shard_width_seconds=2 * WEEK,
            prune_every_periods=3,
        )
        authority = CertificationAuthority("Cadence CA", key_seed=b"cadence")
        cdn = CDNNetwork()
        ca = RITMCertificationAuthority(authority, config, cdn)
        ca.bootstrap(now=EPOCH)
        agent = RevocationAgent("cadence-ra", config)
        client = attach_agent_to_cas(agent, [ca], cdn, GeoLocation(Region.EUROPE))
        now = EPOCH + WEEK
        ca.revoke_with_expiry([(SerialNumber(1), now + WEEK)], now=now)
        client.pull(now=now + 1)
        # The shard window passes, but pruning only fires on the 3rd pull.
        far = now + 6 * WEEK
        first = client.pull(now=far)
        second = client.pull(now=far + 1)
        assert first.shards_pruned == 0 and second.shards_pruned == 1
        assert agent.stats.shard_replicas_pruned == 1

    def test_ca_retirement_hint_prunes_ahead_of_cadence(self):
        """When the published index lists a held shard as retired, the RA
        prunes it on the next pull instead of waiting out its cadence."""
        config = RITMConfig(
            delta_seconds=WEEK,
            chain_length=64,
            sharded=True,
            shard_width_seconds=2 * WEEK,
            prune_every_periods=5,
        )
        authority = CertificationAuthority("Hint CA", key_seed=b"hint")
        cdn = CDNNetwork()
        ca = RITMCertificationAuthority(authority, config, cdn)
        ca.bootstrap(now=EPOCH)
        agent = RevocationAgent("hint-ra", config)
        client = attach_agent_to_cas(agent, [ca], cdn, GeoLocation(Region.EUROPE))
        now = EPOCH + WEEK
        ca.revoke_with_expiry([(SerialNumber(1), now + WEEK)], now=now)
        client.pull(now=now + 1)
        # After five refreshes the CA's own cadence fires: the shard is
        # retired and the index republished with it in `retired`.
        far = now + 6 * WEEK
        for offset in range(5):
            ca.refresh(now=far + offset)
        assert ca.shards.retired_count == 1
        result = client.pull(now=far + 5)
        assert result.shards_pruned == 1  # 2nd pull of a 5-period cadence


class TestAgentShardLookup:
    def test_replica_for_certificate_unsharded_passthrough(self):
        config = RITMConfig(delta_seconds=10, chain_length=64)
        agent = RevocationAgent("plain-ra", config)
        keys = KeyPair.generate(b"plain")
        replica = agent.register_ca("Plain CA", keys.public)
        assert agent.replica_for_certificate("Plain CA", expiry=123) is replica

    def test_replica_for_certificate_requires_known_width(self):
        config = RITMConfig(delta_seconds=10, chain_length=64)
        agent = RevocationAgent("plain-ra", config)
        assert agent.replica_for_certificate("Unknown CA", expiry=123) is None

    def test_sharded_lookup_maps_expiry_to_shard(self, sharded_world):
        _, _, _, ca, agent, client = sharded_world
        now = EPOCH + WEEK
        expiry = now + 6 * WEEK
        ca.revoke_with_expiry([(SerialNumber(9), expiry)], now=now)
        client.pull(now=now + 1)
        replica = agent.replica_for_certificate(ca.name, expiry)
        index = expiry // ca.config.shard_width_seconds
        assert replica is agent.replicas[shard_name(ca.name, index)]
        # An expiry in a window the RA holds no replica for answers None.
        assert agent.replica_for_certificate(ca.name, expiry + 20 * WEEK) is None
