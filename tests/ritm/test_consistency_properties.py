"""Property-based tests for the equivocation detector.

The :class:`~repro.ritm.consistency.ConsistencyChecker` is the last line of
defense against a misbehaving CA, so its report/no-report decision must be
exactly right for *any* observation order, not just the staged sequences in
the unit tests: a report appears iff a stored root and an observed root of
the same size carry different hashes, the evidence always verifies under
the CA's key (bare or keyring), and nothing an attacker can substitute into
a report survives verification.
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.crypto.signing import CAKeyring, KeyPair
from repro.dictionary.signed_root import SignedRoot
from repro.ritm.consistency import ConsistencyChecker, GossipExchange

CA_KEYS = KeyPair.generate(b"consistency-prop-ca")
REPORTER = KeyPair.generate(b"consistency-prop-reporter")
ATTACKER = KeyPair.generate(b"consistency-prop-attacker")

#: Small domains keep hypothesis focused on orderings and collisions, the
#: dimensions the checker's logic actually branches on.
sizes = st.integers(min_value=1, max_value=6)
variants = st.integers(min_value=1, max_value=3)


def _root(size: int, variant: int, keys: KeyPair = CA_KEYS) -> SignedRoot:
    """A signed root whose hash is determined by ``variant``."""
    return SignedRoot(
        ca_name="Prop-CA",
        root=bytes([variant]) * 8,
        size=size,
        anchor=b"\x01" * 8,
        timestamp=1_000,
        chain_length=8,
    ).sign(keys.private)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(sizes, variants), min_size=1, max_size=24))
def test_report_iff_observed_root_conflicts_with_stored_one(observations):
    """For any observation sequence: a report appears exactly when the
    observed root differs from the first root stored at that size."""
    checker = ConsistencyChecker("prop-ra", reporter_keys=REPORTER)
    first_seen = {}
    for size, variant in observations:
        expected_conflict = size in first_seen and first_seen[size] != variant
        report = checker.observe_root(_root(size, variant))
        first_seen.setdefault(size, variant)
        assert (report is not None) == expected_conflict
        if report is not None:
            assert report.is_valid_evidence(CA_KEYS.public)
            assert report.is_valid_evidence(CAKeyring.single(CA_KEYS.public))
            assert report.verify_reporter()
            assert report.verify_reporter(REPORTER.public)
    assert checker.has_detected_misbehavior("Prop-CA") == any(
        variant != first_seen[size] for size, variant in observations
    )


@settings(max_examples=60, deadline=None)
@given(
    st.sets(sizes, min_size=1, max_size=5),
    st.sets(sizes, min_size=1, max_size=5),
)
def test_gossip_surfaces_exactly_the_split_view_sizes(left_sizes, right_sizes):
    """One gossip round reports each size where the two views disagree, in
    both directions, and nothing else."""
    left = ConsistencyChecker("left-ra", reporter_keys=REPORTER)
    right = ConsistencyChecker(
        "right-ra", reporter_keys=KeyPair.generate(b"right-reporter")
    )
    for size in left_sizes:
        left.observe_root(_root(size, variant=1))
    for size in right_sizes:
        right.observe_root(_root(size, variant=2))

    reports = GossipExchange().exchange(left, right)

    disputed = left_sizes & right_sizes
    assert len(reports) == 2 * len(disputed)
    assert {report.first.size for report in reports} == disputed
    for report in reports:
        assert report.is_valid_evidence(CA_KEYS.public)
        assert report.verify_reporter()


@settings(max_examples=40, deadline=None)
@given(sizes)
def test_evidence_validity_is_bound_to_the_ca_key(size):
    """Genuine evidence verifies under the CA's key (and a keyring holding
    it) but never under an unrelated key, and substituting an
    attacker-signed root voids it."""
    checker = ConsistencyChecker("prop-ra", reporter_keys=REPORTER)
    checker.observe_root(_root(size, variant=1))
    report = checker.observe_root(_root(size, variant=2))
    assert report is not None

    assert report.is_valid_evidence(CA_KEYS.public)
    assert report.is_valid_evidence(CAKeyring.single(CA_KEYS.public))
    assert not report.is_valid_evidence(ATTACKER.public)
    assert not report.is_valid_evidence(CAKeyring.single(ATTACKER.public))

    # An attacker cannot manufacture evidence with its own signing key...
    forged = replace(report, second=_root(size, variant=3, keys=ATTACKER))
    assert not forged.is_valid_evidence(CA_KEYS.public)
    # ...nor pass off two agreeing roots as a conflict.
    agreeing = replace(report, second=report.first)
    assert not agreeing.is_valid_evidence(CA_KEYS.public)
    # Stripping or replaying the reporter countersignature is detectable.
    unsigned = replace(report, reporter_signature=b"")
    assert not unsigned.verify_reporter()
    misattributed = replace(report, reporter_key_bytes=ATTACKER.public.key_bytes)
    assert not misattributed.verify_reporter()


@settings(max_examples=40, deadline=None)
@given(sizes, sizes, variants, variants)
def test_different_sizes_never_conflict(size_a, size_b, variant_a, variant_b):
    """Roots of different sizes are snapshots of different dictionary
    states — never equivocation evidence, whatever their hashes."""
    if size_a == size_b:
        size_b = size_a + 1
    checker = ConsistencyChecker("prop-ra", reporter_keys=REPORTER)
    assert checker.observe_root(_root(size_a, variant_a)) is None
    assert checker.observe_root(_root(size_b, variant_b)) is None
    assert not checker.has_detected_misbehavior("Prop-CA")
