"""Tests for the RITM client endpoint and the server/terminator endpoints."""

import pytest

from repro.net.packet import Direction, Packet, make_flow
from repro.ritm.client import LegacyTLSClient, RejectionReason, RITMClient
from repro.ritm.server import RITMServer, TLSTerminator
from repro.tls.records import ContentType, TLSRecord, parse_records

from tests.ritm.conftest import EPOCH


FLOW = make_flow("12.34.56.78", 9012, "98.76.54.32", 443)


def make_client(world, chain, expect_protection=True) -> RITMClient:
    return RITMClient(
        ip_address="12.34.56.78",
        server_name=chain.leaf.subject,
        trust_store=world.trust_store,
        ca_public_keys=world.ca_public_keys(),
        config=world.config,
        expect_ritm_protection=expect_protection,
    )


def run_direct_handshake(client, server, agent=None, now=EPOCH + 20):
    """Shuttle packets client↔server, passing them through an optional RA."""
    to_server = [client.client_hello_packet(FLOW, now)]
    guard = 0
    while to_server:
        guard += 1
        assert guard < 20
        to_client = []
        for packet in to_server:
            if agent is not None:
                packet = agent.process_packet(packet, now)[0]
            to_client.extend(server.handle_packet(packet, now))
        to_server = []
        for packet in to_client:
            if agent is not None:
                processed = agent.process_packet(packet, now)
                if not processed:
                    continue
                packet = processed[0]
            to_server.extend(client.handle_packet(packet, now))
    return client, server


class TestClientPolicy:
    def test_client_hello_carries_ritm_extension(self, world):
        chain = world.corpus.chains[0]
        client = make_client(world, chain)
        packet = client.client_hello_packet(FLOW, EPOCH + 20)
        from repro.ritm.dpi import DPIEngine

        inspection = DPIEngine().inspect(packet.payload)
        assert inspection.client_requests_ritm

    def test_handshake_with_agent_is_accepted(self, world):
        chain = world.corpus.chains[0]
        client = make_client(world, chain)
        server = RITMServer("98.76.54.32", chain)
        run_direct_handshake(client, server, agent=world.agent)
        assert client.is_connection_usable
        assert client.stats.statuses_valid >= 1
        assert client.last_status is not None

    def test_handshake_without_agent_is_rejected(self, world):
        chain = world.corpus.chains[0]
        client = make_client(world, chain)
        server = RITMServer("98.76.54.32", chain)
        run_direct_handshake(client, server, agent=None)
        assert not client.is_connection_usable
        assert client.rejection == RejectionReason.MISSING_STATUS

    def test_handshake_without_agent_but_terminator_confirms(self, world):
        # Close-to-server model: the terminator's confirmation (inside the
        # handshake) is the downgrade defence even if the status arrives later.
        chain = world.corpus.chains[0]
        client = make_client(world, chain)
        terminator = TLSTerminator("98.76.54.32", chain)
        run_direct_handshake(client, terminator, agent=world.agent)
        assert client.is_connection_usable
        assert client.tls.server_confirmed_ritm

    def test_revoked_certificate_rejected(self, world):
        chain = world.corpus.chains[0]
        issuing = world.ca_by_name(chain.leaf.issuer)
        issuing.revoke([chain.leaf.serial], now=EPOCH + 15)
        world.pull(now=EPOCH + 16)
        client = make_client(world, chain)
        server = RITMServer("98.76.54.32", chain)
        run_direct_handshake(client, server, agent=world.agent)
        assert not client.is_connection_usable
        assert client.rejection == RejectionReason.CERTIFICATE_REVOKED

    def test_client_standard_validation_still_applies(self, world):
        # An untrusted chain fails standard validation even with a valid status.
        from repro.crypto.signing import KeyPair
        from repro.pki.ca import CertificationAuthority

        rogue_ca = CertificationAuthority("Rogue-CA", key_seed=b"rogue")
        rogue_chain = rogue_ca.issue_chain_for(
            "victim.example", KeyPair.generate(b"victim").public, now=EPOCH
        )
        client = RITMClient(
            ip_address="12.34.56.78",
            server_name="victim.example",
            trust_store=world.trust_store,  # does not contain Rogue-CA
            ca_public_keys=world.ca_public_keys(),
            config=world.config,
        )
        server = RITMServer("98.76.54.32", rogue_chain)
        run_direct_handshake(client, server, agent=world.agent)
        assert not client.is_connection_usable
        assert client.rejection in (
            RejectionReason.STANDARD_VALIDATION_FAILED,
            RejectionReason.MISSING_STATUS,
        )

    def test_stale_status_rejected(self, world):
        chain = world.corpus.chains[0]
        client = make_client(world, chain)
        server = RITMServer("98.76.54.32", chain)
        # Run the handshake far in the future without refreshing the CA:
        # the freshness statement the RA holds is now older than 2Δ.
        stale_now = EPOCH + 5 + 40 * world.config.delta_seconds
        run_direct_handshake(client, server, agent=world.agent, now=stale_now)
        assert not client.is_connection_usable
        assert client.rejection == RejectionReason.STALE_STATUS

    def test_freshness_enforcement_on_established_connection(self, world):
        chain = world.corpus.chains[0]
        client = make_client(world, chain)
        server = RITMServer("98.76.54.32", chain)
        run_direct_handshake(client, server, agent=world.agent, now=EPOCH + 20)
        assert client.enforce_freshness(EPOCH + 25)
        # No further statuses for longer than 2Δ: the client interrupts.
        assert not client.enforce_freshness(EPOCH + 20 + 3 * world.config.delta_seconds)
        assert client.rejection == RejectionReason.STATUS_TIMEOUT
        assert client.stats.connections_interrupted == 1

    def test_client_that_does_not_expect_protection_accepts_without_status(self, world):
        chain = world.corpus.chains[0]
        client = make_client(world, chain, expect_protection=False)
        server = RITMServer("98.76.54.32", chain)
        run_direct_handshake(client, server, agent=None)
        assert client.is_connection_usable


class TestLegacyClientAndServer:
    def test_legacy_client_completes_handshake_through_agent(self, world):
        chain = world.corpus.chains[0]
        legacy = LegacyTLSClient("12.34.56.78", chain.leaf.subject, world.trust_store)
        server = RITMServer("98.76.54.32", chain)
        to_server = [legacy.client_hello_packet(FLOW, EPOCH + 20)]
        guard = 0
        while to_server:
            guard += 1
            assert guard < 20
            to_client = []
            for packet in to_server:
                packet = world.agent.process_packet(packet, EPOCH + 20)[0]
                to_client.extend(server.handle_packet(packet, EPOCH + 20))
            to_server = []
            for packet in to_client:
                packet = world.agent.process_packet(packet, EPOCH + 20)[0]
                to_server.extend(legacy.handle_packet(packet, EPOCH + 20))
        assert legacy.tls.is_established

    def test_server_tracks_one_connection_per_client(self, world):
        chain = world.corpus.chains[0]
        server = RITMServer("98.76.54.32", chain)
        first = make_client(world, chain, expect_protection=False)
        run_direct_handshake(first, server)
        other_flow = make_flow("10.0.0.9", 1111, "98.76.54.32", 443)
        second = make_client(world, chain, expect_protection=False)
        to_server = [second.client_hello_packet(other_flow, EPOCH + 30)]
        while to_server:
            to_client = []
            for packet in to_server:
                to_client.extend(server.handle_packet(packet, EPOCH + 30))
            to_server = []
            for packet in to_client:
                to_server.extend(second.handle_packet(packet, EPOCH + 30))
        assert server.connection_count() == 2

    def test_server_application_data_flow(self, world):
        chain = world.corpus.chains[0]
        client = make_client(world, chain, expect_protection=False)
        server = RITMServer("98.76.54.32", chain)
        run_direct_handshake(client, server)
        packet = server.send_application_data(FLOW, b"hello client", EPOCH + 30)
        assert packet.direction == Direction.SERVER_TO_CLIENT
        client.handle_packet(packet, EPOCH + 30)
        assert client.tls.application_data_received == [b"hello client"]

    def test_server_unknown_flow_rejected(self, world):
        chain = world.corpus.chains[0]
        server = RITMServer("98.76.54.32", chain)
        with pytest.raises(KeyError):
            server.send_application_data(FLOW, b"data", EPOCH + 30)
