"""Tests for the RITM-enabled CA: bootstrap, revocation, refresh, publication."""

import json

import pytest

from repro.dictionary.signed_root import SignedRoot
from repro.errors import DictionaryError
from repro.ritm.ca_service import RITMCertificationAuthority, head_path, issuance_path, manifest_path
from repro.ritm.messages import decode_head, decode_issuance

from tests.ritm.conftest import EPOCH


class TestBootstrap:
    def test_bootstrap_publishes_head_and_manifest(self, world):
        ca = world.cas[0]
        assert world.cdn.origin.exists(head_path(ca.name))
        assert world.cdn.origin.exists(manifest_path(ca.name))

    def test_bootstrap_signs_empty_dictionary(self, world):
        ca = world.cas[0]
        head = ca.head()
        assert head.size == 0
        assert head.signed_root.verify(ca.public_key)

    def test_head_before_bootstrap_rejected(self, world):
        from repro.pki.ca import CertificationAuthority

        bare = RITMCertificationAuthority(
            CertificationAuthority("Unbootstrapped", key_seed=b"u"), world.config
        )
        with pytest.raises(DictionaryError):
            bare.head()

    def test_manifest_contents(self, world):
        ca = world.cas[0]
        manifest = json.loads(world.cdn.origin.fetch(manifest_path(ca.name)).content)
        assert manifest["ca"] == ca.name
        assert manifest["delta_seconds"] == world.config.delta_seconds
        assert manifest["head"] == head_path(ca.name)


class TestRevocation:
    def test_revoke_updates_dictionary_and_authority(self, world):
        ca = world.cas[0]
        chain = world.corpus.chains_by_ca.get(ca.name)
        serial = world.corpus.chains[0].leaf.serial
        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        issuance = issuing.revoke([serial], now=EPOCH + 20)
        assert issuing.dictionary.contains(serial)
        assert issuing.authority.is_revoked(serial)
        assert issuance.signed_root.size == 1

    def test_revoke_publishes_issuance_and_head(self, world):
        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        serial = world.corpus.chains[0].leaf.serial
        issuing.revoke([serial], now=EPOCH + 20)
        assert world.cdn.origin.exists(issuance_path(issuing.name, 1))
        head = decode_head(world.cdn.origin.fetch(head_path(issuing.name)).content)
        assert head.size == 1

    def test_published_issuance_decodes_and_verifies(self, world):
        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        serial = world.corpus.chains[0].leaf.serial
        issuing.revoke([serial], now=EPOCH + 20)
        issuance = decode_issuance(
            world.cdn.origin.fetch(issuance_path(issuing.name, 1)).content
        )
        assert issuance.serials == (serial,)
        assert issuance.signed_root.verify(issuing.public_key)

    def test_issuance_counter_increments(self, world):
        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        serials = [chain.leaf.serial for chain in world.corpus.chains_by_ca[issuing.name]]
        issuing.revoke([serials[0]], now=EPOCH + 20)
        issuing.revoke([serials[1]], now=EPOCH + 30)
        assert issuing.issuance_count() == 2
        assert world.cdn.origin.exists(issuance_path(issuing.name, 2))

    def test_publication_stats_track_uploads(self, world):
        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        before = issuing.publication_stats.bytes_uploaded
        issuing.revoke([world.corpus.chains[0].leaf.serial], now=EPOCH + 20)
        assert issuing.publication_stats.bytes_uploaded > before
        assert issuing.publication_stats.issuances_published == 1


class TestRefresh:
    def test_refresh_publishes_new_head(self, world):
        ca = world.cas[0]
        version_before = world.cdn.origin.fetch(head_path(ca.name)).version
        ca.refresh(now=EPOCH + 30)
        version_after = world.cdn.origin.fetch(head_path(ca.name)).version
        assert version_after > version_before

    def test_refresh_returns_freshness_statement_normally(self, world):
        ca = world.cas[0]
        result = ca.refresh(now=EPOCH + 30)
        assert not isinstance(result, SignedRoot)

    def test_refresh_resigns_after_chain_exhaustion(self, world):
        ca = world.cas[0]
        horizon = EPOCH + 5 + world.config.chain_length * world.config.delta_seconds + 10
        result = ca.refresh(now=horizon)
        assert isinstance(result, SignedRoot)

    def test_ca_without_cdn_still_works(self, world):
        from repro.pki.ca import CertificationAuthority

        offline = RITMCertificationAuthority(
            CertificationAuthority("Offline-CA", key_seed=b"off"), world.config, cdn=None
        )
        offline.bootstrap(now=EPOCH)
        offline.refresh(now=EPOCH + 10)
        assert offline.head().size == 0
