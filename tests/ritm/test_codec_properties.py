"""Property-based tests for RITM's wire formats and the end-to-end status path.

The codec is the trust boundary between parties (RAs serialize, clients
deserialize and verify), so round-tripping must preserve verification for
*any* dictionary contents and any queried serial — not just the handful of
cases in the unit tests.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.signing import KeyPair
from repro.dictionary.authdict import CADictionary, ReplicaDictionary
from repro.errors import RevokedCertificateError
from repro.pki.serial import SerialNumber
from repro.ritm.messages import (
    decode_head,
    decode_issuance,
    decode_status,
    encode_head,
    encode_issuance,
    encode_status,
    DictionaryHead,
)

KEYS = KeyPair.generate(b"codec-property-tests")

serial_values = st.integers(min_value=1, max_value=2**24 - 1)


@settings(max_examples=25, deadline=None)
@given(st.sets(serial_values, min_size=1, max_size=40), serial_values)
def test_status_roundtrip_preserves_verdict_for_any_content(revoked_values, probe):
    """encode(decode(status)) verifies identically for any dictionary and probe."""
    master = CADictionary("Prop-CA", KEYS, delta=10, chain_length=8)
    master.insert([SerialNumber(value) for value in sorted(revoked_values)], now=1000)
    status = master.prove(SerialNumber(probe))
    decoded, _ = decode_status(encode_status(status))
    assert decoded.is_revoked == status.is_revoked == (probe in revoked_values)
    if probe in revoked_values:
        with pytest.raises(RevokedCertificateError):
            decoded.verify(KEYS.public, now=1005, delta=10)
    else:
        decoded.verify(KEYS.public, now=1005, delta=10)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.sets(serial_values, min_size=1, max_size=10), min_size=1, max_size=4))
def test_issuance_roundtrip_reconstructs_replica_for_any_batching(raw_batches):
    """A replica fed only decoded issuance bytes always converges to the master."""
    seen = set()
    batches = []
    for batch in raw_batches:
        cleaned = sorted(value for value in batch if value not in seen)
        seen.update(cleaned)
        if cleaned:
            batches.append(cleaned)
    master = CADictionary("Prop-CA", KEYS, delta=10, chain_length=8)
    replica = ReplicaDictionary("Prop-CA", KEYS.public)
    now = 1000
    for batch in batches:
        issuance = master.insert([SerialNumber(value) for value in batch], now=now)
        replica.update(decode_issuance(encode_issuance(issuance)))
        now += 10
    assert replica.root() == master.root()
    assert replica.size == master.size


@settings(max_examples=20, deadline=None)
@given(st.sets(serial_values, min_size=1, max_size=30))
def test_head_roundtrip_always_verifies(values):
    master = CADictionary("Prop-CA", KEYS, delta=10, chain_length=8)
    master.insert([SerialNumber(value) for value in sorted(values)], now=1000)
    head = DictionaryHead(
        ca_name="Prop-CA",
        size=master.size,
        signed_root=master.signed_root,
        freshness=master.latest_freshness,
    )
    decoded = decode_head(encode_head(head))
    assert decoded.size == len(values)
    assert decoded.signed_root.verify(KEYS.public)
    assert decoded.signed_root.root == master.root()
