"""Tests for the RA's deep-packet-inspection engine."""

import pytest

from repro.ritm.dpi import DPIEngine
from repro.tls.extensions import ritm_support_extension
from repro.tls.messages import CertificateMessage, ClientHello, Finished, ServerHello, ServerHelloDone
from repro.tls.records import ContentType, TLSRecord


@pytest.fixture()
def dpi():
    return DPIEngine()


def handshake_payload(*messages) -> bytes:
    return TLSRecord(ContentType.HANDSHAKE, b"".join(m.to_bytes() for m in messages)).to_bytes()


class TestFastPath:
    def test_tls_payload_detected(self, dpi):
        assert dpi.is_tls(handshake_payload(ClientHello()))
        assert dpi.stats.tls_packets == 1

    def test_non_tls_payload_rejected(self, dpi):
        assert not dpi.is_tls(b"GET / HTTP/1.1\r\n\r\n")
        assert not dpi.is_tls(b"\x00\x01\x02")
        assert dpi.stats.non_tls_packets == 2

    def test_counters_accumulate(self, dpi):
        dpi.is_tls(handshake_payload(ClientHello()))
        dpi.is_tls(b"plain")
        assert dpi.stats.packets_inspected == 2


class TestInspection:
    def test_client_hello_with_ritm_extension(self, dpi):
        payload = handshake_payload(ClientHello(extensions=(ritm_support_extension(),)))
        result = dpi.inspect(payload)
        assert result.is_tls
        assert result.client_hello is not None
        assert result.client_requests_ritm

    def test_client_hello_without_extension(self, dpi):
        result = dpi.inspect(handshake_payload(ClientHello()))
        assert result.client_hello is not None
        assert not result.client_requests_ritm

    def test_server_flight_extracts_certificate_chain(self, dpi, small_corpus):
        chain = small_corpus.chains[0]
        payload = handshake_payload(ServerHello(), CertificateMessage(chain), ServerHelloDone())
        result = dpi.inspect(payload)
        assert result.server_hello is not None
        assert result.certificate_chain == chain
        assert dpi.stats.certificates_parsed == 1

    def test_finished_detection(self, dpi):
        result = dpi.inspect(handshake_payload(Finished()))
        assert result.finished_seen

    def test_application_data_and_status_flags(self, dpi):
        payload = (
            TLSRecord(ContentType.APPLICATION_DATA, b"data").to_bytes()
            + TLSRecord(ContentType.RITM_STATUS, b"\x01\x00\x00").to_bytes()
        )
        result = dpi.inspect(payload)
        assert result.has_application_data
        assert result.has_ritm_status

    def test_non_tls_payload_returns_early(self, dpi):
        result = dpi.inspect(b"definitely not TLS")
        assert not result.is_tls
        assert result.records == []

    def test_malformed_handshake_reports_parse_error(self, dpi):
        # A handshake record whose body claims more bytes than it carries.
        payload = TLSRecord(ContentType.HANDSHAKE, b"\x01\x00\x10\x00" + b"\x00" * 3).to_bytes()
        result = dpi.inspect(payload)
        assert result.parse_error is not None
        assert dpi.stats.parse_errors >= 1

    def test_multiple_records_in_one_packet(self, dpi, small_corpus):
        chain = small_corpus.chains[0]
        payload = (
            handshake_payload(ServerHello(), CertificateMessage(chain))
            + TLSRecord(ContentType.APPLICATION_DATA, b"body").to_bytes()
        )
        result = dpi.inspect(payload)
        assert result.server_hello is not None
        assert result.certificate_chain is not None
        assert result.has_application_data
