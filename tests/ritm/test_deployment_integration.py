"""End-to-end integration tests over the simulated network path (Fig. 3)."""

import pytest

from repro.net.clock import SimulatedClock
from repro.ritm.client import RejectionReason
from repro.ritm.config import DeploymentModel, RITMConfig
from repro.ritm.deployment import (
    build_close_to_client_deployment,
    build_close_to_server_deployment,
    build_unprotected_path,
)

from tests.ritm.conftest import EPOCH, build_world


@pytest.fixture()
def world():
    return build_world()


def deploy_close_to_client(world, chain=None, clock=None, extra_middleboxes=None):
    chain = chain if chain is not None else world.corpus.chains[0]
    return build_close_to_client_deployment(
        server_chain=chain,
        trust_store=world.trust_store,
        ca_public_keys=world.ca_public_keys(),
        config=world.config,
        agent=world.agent,
        clock=clock if clock is not None else SimulatedClock(EPOCH + 20),
        extra_middleboxes=extra_middleboxes,
    )


class TestCloseToClientDeployment:
    def test_handshake_accepted_with_fresh_dictionary(self, world):
        deployment = deploy_close_to_client(world)
        assert deployment.run_handshake()
        assert deployment.client.stats.statuses_valid >= 1
        assert deployment.model == DeploymentModel.CLOSE_TO_CLIENT

    def test_revoked_certificate_is_refused_end_to_end(self, world):
        chain = world.corpus.chains[0]
        issuing = world.ca_by_name(chain.leaf.issuer)
        issuing.revoke([chain.leaf.serial], now=EPOCH + 10)
        world.pull(now=EPOCH + 11)
        deployment = deploy_close_to_client(world, chain)
        assert not deployment.run_handshake()
        assert deployment.client.rejection == RejectionReason.CERTIFICATE_REVOKED

    def test_established_connection_receives_periodic_statuses(self, world):
        deployment = deploy_close_to_client(world)
        assert deployment.run_handshake()
        received_before = deployment.client.stats.statuses_received

        # Advance past Δ, keep the CA fresh, pull, then push application data.
        delta = world.config.delta_seconds
        for step in range(1, 4):
            now = deployment.engine.clock.now() + delta + 1
            deployment.engine.clock.advance_to(now)
            for ca in world.cas:
                ca.refresh(now=now)
            world.pull(now=now)
            deployment.deliver_from_server(b"tick")
            assert deployment.client.enforce_freshness(deployment.engine.clock.now())
        assert deployment.client.stats.statuses_received > received_before

    def test_race_condition_protection_mid_connection_revocation(self, world):
        """A revocation arriving after establishment still kills the connection."""
        chain = world.corpus.chains[0]
        deployment = deploy_close_to_client(world, chain)
        assert deployment.run_handshake()

        issuing = world.ca_by_name(chain.leaf.issuer)
        now = deployment.engine.clock.now() + world.config.delta_seconds + 1
        deployment.engine.clock.advance_to(now)
        issuing.revoke([chain.leaf.serial], now=now)
        world.pull(now=now + 1)
        deployment.deliver_from_server(b"data after revocation")
        assert not deployment.client.is_connection_usable
        assert deployment.client.rejection == RejectionReason.CERTIFICATE_REVOKED

    def test_client_interrupts_when_statuses_stop(self, world):
        deployment = deploy_close_to_client(world)
        assert deployment.run_handshake()
        horizon = deployment.engine.clock.now() + 3 * world.config.delta_seconds
        assert not deployment.client.enforce_freshness(horizon)
        assert deployment.client.rejection == RejectionReason.STATUS_TIMEOUT

    def test_latency_overhead_is_negligible(self, world):
        """The paper's <1 % of a 30 ms handshake claim.

        RITM's additions to the handshake are (a) the RA's per-packet
        processing and (b) the extra bytes of the status message.  Both must
        amount to well under 1 % of a 30 ms handshake.
        """
        deployment = deploy_close_to_client(world)
        assert deployment.run_handshake()
        agent = deployment.agents[0]
        status_bytes = deployment.client.last_status.encoded_size()
        # Processing: every packet of the handshake crosses the RA once.
        processing = agent.stats.packets_seen * agent.processing_delay(None)
        # Transmission of the extra bytes at a 100 Mbit/s access link.
        transmission = status_bytes / 12_500_000.0
        added = processing + transmission
        assert status_bytes < 2_000
        assert added < 0.0003  # 0.3 ms = 1 % of a 30 ms handshake


class TestCloseToServerDeployment:
    def test_terminator_confirms_and_handshake_succeeds(self, world):
        deployment = build_close_to_server_deployment(
            server_chain=world.corpus.chains[0],
            trust_store=world.trust_store,
            ca_public_keys=world.ca_public_keys(),
            config=world.config,
            agent=world.agent,
            clock=SimulatedClock(EPOCH + 20),
        )
        assert deployment.run_handshake()
        assert deployment.client.tls.server_confirmed_ritm
        assert deployment.model == DeploymentModel.CLOSE_TO_SERVER

    def test_revocation_refused_in_server_side_model(self, world):
        chain = world.corpus.chains[1]
        issuing = world.ca_by_name(chain.leaf.issuer)
        issuing.revoke([chain.leaf.serial], now=EPOCH + 10)
        world.pull(now=EPOCH + 11)
        deployment = build_close_to_server_deployment(
            server_chain=chain,
            trust_store=world.trust_store,
            ca_public_keys=world.ca_public_keys(),
            config=world.config,
            agent=world.agent,
            clock=SimulatedClock(EPOCH + 20),
        )
        assert not deployment.run_handshake()
        assert deployment.client.rejection == RejectionReason.CERTIFICATE_REVOKED


class TestUnprotectedPath:
    def test_missing_ra_is_detected_as_downgrade(self, world):
        deployment = build_unprotected_path(
            server_chain=world.corpus.chains[0],
            trust_store=world.trust_store,
            ca_public_keys=world.ca_public_keys(),
            config=world.config,
            clock=SimulatedClock(EPOCH + 20),
        )
        assert not deployment.run_handshake()
        assert deployment.client.rejection == RejectionReason.MISSING_STATUS
