"""The hot-path verification engine across agent → dissemination → client.

The engine's contract is that caching is *invisible* except in latency:
every status built through :meth:`RevocationAgent.build_status` must be
byte-identical to the uncached ``replica.prove`` path, across every event
that changes a dictionary's state — revocation batches, Δ-epoch root
rotation (hash-chain exhaustion), tampered-batch rollback + resync, and
shard retirement.  These tests enforce that differentially, plus the
explicit invalidation rules documented in docs/PERFORMANCE.md.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.cdn.geography import GeoLocation, Region
from repro.cdn.network import CDNNetwork
from repro.crypto.signing import CAKeyring, KeyPair
from repro.dictionary.authdict import CADictionary
from repro.dictionary.signed_root import SignedRoot
from repro.errors import DictionaryError
from repro.net.clock import SimulatedClock
from repro.perf import VerifiedRootCache
from repro.pki.ca import CertificationAuthority
from repro.pki.serial import SerialNumber
from repro.ritm.agent import RevocationAgent
from repro.ritm.ca_service import RITMCertificationAuthority, issuance_path
from repro.ritm.config import RITMConfig
from repro.ritm.deployment import build_close_to_client_deployment
from repro.ritm.dissemination import attach_agent_to_cas
from repro.ritm.messages import decode_issuance, encode_issuance

from tests.ritm.conftest import EPOCH, build_world


class TestProofCachedStatuses:
    def test_build_status_matches_uncached_prove(self, world):
        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        revoked = world.corpus.chains[0].leaf.serial
        issuing.revoke([revoked], now=EPOCH + 20)
        world.pull(now=EPOCH + 30)
        replica = world.agent.replica_for(issuing.name)
        for serial in (revoked, SerialNumber(0xABCDEF)):
            cached_cold = world.agent.build_status(issuing.name, serial)
            cached_warm = world.agent.build_status(issuing.name, serial)
            assert cached_cold == replica.prove(serial)
            assert cached_warm == replica.prove(serial)
        assert world.agent.proof_cache.stats.hits >= 2
        assert world.agent.proof_cache.stats.misses >= 2

    def test_revocation_status_correctness_through_cache(self, world):
        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        revoked = world.corpus.chains[0].leaf.serial
        issuing.revoke([revoked], now=EPOCH + 20)
        world.pull(now=EPOCH + 30)
        for _ in range(2):  # second round served from the proof cache
            assert world.agent.build_status(issuing.name, revoked).is_revoked
            assert not world.agent.build_status(
                issuing.name, SerialNumber(0x0FF5E7)
            ).is_revoked

    def test_new_root_is_never_served_a_stale_proof(self, world):
        """Every revocation changes the root, so the old entries miss."""
        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        probe = SerialNumber(0x00AB01)
        serials = [
            chain.leaf.serial for chain in world.corpus.chains_by_ca[issuing.name]
        ]
        replica = world.agent.replica_for(issuing.name)
        for index, serial in enumerate(serials):
            issuing.revoke([serial], now=EPOCH + 20 + index)
            world.pull(now=EPOCH + 21 + index)
            status = world.agent.build_status(issuing.name, probe)
            assert status == replica.prove(probe)
            assert status.signed_root == replica.signed_root

    def test_unknown_ca_raises(self, world):
        with pytest.raises(DictionaryError):
            world.agent.build_status("No Such CA", SerialNumber(1))

    def test_disabled_proof_cache_still_correct(self):
        world = build_world(
            RITMConfig(delta_seconds=10, chain_length=64, proof_cache_size=0)
        )
        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        serial = world.corpus.chains[0].leaf.serial
        issuing.revoke([serial], now=EPOCH + 20)
        world.pull(now=EPOCH + 30)
        replica = world.agent.replica_for(issuing.name)
        assert world.agent.build_status(issuing.name, serial) == replica.prove(serial)
        assert len(world.agent.proof_cache) == 0


class TestRootRotationAcrossDelta:
    """Hash-chain exhaustion: a re-signed root over unchanged content."""

    def _rotated_world(self):
        world = build_world(RITMConfig(delta_seconds=10, chain_length=1))
        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        serial = world.corpus.chains[0].leaf.serial
        issuing.revoke([serial], now=EPOCH + 20)
        world.pull(now=EPOCH + 21)
        return world, issuing, serial

    def test_rotation_invalidates_root_verdicts_but_keeps_proofs(self):
        world, issuing, serial = self._rotated_world()
        replica = world.agent.replica_for(issuing.name)
        world.agent.build_status(issuing.name, serial)  # prime the proof cache
        old_root = replica.signed_root

        issuing.refresh(now=EPOCH + 40)  # chain exhausted: re-sign
        result = world.pull(now=EPOCH + 41)
        new_root = replica.signed_root
        assert new_root.timestamp > old_root.timestamp
        assert new_root.root == old_root.root  # content unchanged
        # The refresh evicted the old epoch's verdict and verified the new
        # root (a cache miss counted in the pull's metrics).
        assert world.agent.root_cache.stats.invalidations >= 1
        assert result.root_signatures_verified >= 1

        proof_hits_before = world.agent.proof_cache.stats.hits
        status = world.agent.build_status(issuing.name, serial)
        assert status == replica.prove(serial)
        assert status.signed_root == new_root  # never the stale epoch
        assert world.agent.proof_cache.stats.hits == proof_hits_before + 1

    def test_client_accepts_statuses_across_rotation(self):
        world, issuing, serial = self._rotated_world()
        client_cache = VerifiedRootCache()
        status = world.agent.build_status(issuing.name, SerialNumber(0x77AA01))
        assert status.is_acceptable(
            issuing.public_key, EPOCH + 25, 10, root_cache=client_cache
        )
        issuing.refresh(now=EPOCH + 40)
        world.pull(now=EPOCH + 41)
        rotated = world.agent.build_status(issuing.name, SerialNumber(0x77AA01))
        assert rotated.is_acceptable(
            issuing.public_key, EPOCH + 45, 10, root_cache=client_cache
        )
        # Two distinct epochs → two full verifications, no false hits.
        assert client_cache.stats.misses == 2


class TestTamperedBatchRollback:
    def test_rollback_and_resync_evict_and_stay_differential(self, world):
        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        serial = world.corpus.chains[0].leaf.serial
        probe = SerialNumber(0x00CD02)
        world.agent.build_status(issuing.name, probe)  # prime the proof cache

        issuing.revoke([serial], now=EPOCH + 20)
        path = issuance_path(issuing.name, issuing.issuance_count())
        stored = world.cdn.origin._objects[path]
        forged = decode_issuance(stored.content)
        world.cdn.origin._objects[path] = replace(
            stored,
            content=encode_issuance(
                replace(forged, serials=(SerialNumber(0xEEEEEE),))
            ),
        )

        result = world.pull(now=EPOCH + 40)
        assert result.resyncs >= 1
        # The resync evicted the dictionary's cached proofs, and the metrics
        # surfaced it.
        assert result.proofs_invalidated >= 1
        replica = world.agent.replica_for(issuing.name)
        assert world.agent.build_status(issuing.name, serial) == replica.prove(serial)
        assert world.agent.build_status(issuing.name, serial).is_revoked
        assert not world.agent.build_status(issuing.name, probe).is_revoked
        assert replica.root() == issuing.dictionary.root()

    def test_rolled_back_replica_keeps_serving_old_root_correctly(self, world):
        """No sync server: the tampered batch rolls back and the cached
        proofs for the old (still current) root remain valid."""
        from repro.ritm.dissemination import RADisseminationClient

        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        serial = world.corpus.chains[0].leaf.serial
        lonely = RevocationAgent("lonely-ra", world.config)
        lonely.register_ca(issuing.name, issuing.public_key)
        client = RADisseminationClient(
            lonely, world.cdn, GeoLocation(Region.EUROPE), sync_servers={}
        )
        client.pull(now=EPOCH + 10)
        probe = SerialNumber(0x00EF03)
        primed = lonely.build_status(issuing.name, probe)

        issuing.revoke([serial], now=EPOCH + 20)
        path = issuance_path(issuing.name, issuing.issuance_count())
        stored = world.cdn.origin._objects[path]
        tampered = decode_issuance(stored.content)
        world.cdn.origin._objects[path] = replace(
            stored,
            content=encode_issuance(
                replace(tampered, serials=(SerialNumber(0xEEEEEE),))
            ),
        )
        bad_pull = client.pull(now=EPOCH + 40)
        assert any("root does not match" in error for error in bad_pull.errors)
        replica = lonely.replica_for(issuing.name)
        assert replica.size == 0  # rolled back
        after = lonely.build_status(issuing.name, probe)
        assert after == replica.prove(probe)
        assert after == primed  # same verified state as before the attack


class TestShardRetirementEviction:
    WEEK = 7 * 86_400

    def _sharded_world(self):
        config = RITMConfig(
            delta_seconds=self.WEEK,
            chain_length=64,
            sharded=True,
            shard_width_seconds=4 * self.WEEK,
            prune_every_periods=1,
        )
        authority = CertificationAuthority("Sharded CA", key_seed=b"hot-path-shards")
        cdn = CDNNetwork()
        ca = RITMCertificationAuthority(authority, config, cdn)
        ca.bootstrap(now=EPOCH)
        agent = RevocationAgent("shard-ra", config)
        client = attach_agent_to_cas(agent, [ca], cdn, GeoLocation(Region.EUROPE))
        return config, ca, agent, client

    def test_shard_retirement_evicts_cached_proofs(self):
        config, ca, agent, client = self._sharded_world()
        serial = SerialNumber(0x0A0B0C)
        expiry = EPOCH + 2 * self.WEEK  # falls in the first shard window
        ca.revoke_with_expiry([(serial, expiry)], now=EPOCH + 1)
        client.pull(now=EPOCH + 10)

        replica = agent.replica_for_certificate(ca.name, expiry)
        status = agent.build_status(ca.name, serial, expiry)
        assert status == replica.prove(serial)
        assert status.is_revoked
        assert len(agent.proof_cache) == 1

        # Jump past the shard's window: the CA retires it, the RA prunes it,
        # and the proof cache entry goes with the replica.
        later = EPOCH + 6 * self.WEEK
        ca.refresh(now=later)
        result = client.pull(now=later + 10)
        assert result.shards_pruned >= 1
        assert len(agent.proof_cache) == 0
        assert agent.proof_cache.stats.invalidations >= 1
        assert agent.replica_for_certificate(ca.name, expiry) is None
        with pytest.raises(DictionaryError):
            agent.build_status(ca.name, serial, expiry)


class TestClientSideCaches:
    def test_client_verifies_each_root_once_per_epoch(self, world):
        issuing = world.ca_by_name(world.corpus.chains[0].leaf.issuer)
        shared = VerifiedRootCache()
        for attempt in range(3):
            deployment = build_close_to_client_deployment(
                server_chain=world.corpus.chains[0],
                trust_store=world.trust_store,
                ca_public_keys=world.ca_public_keys(),
                config=world.config,
                agent=world.agent,
                clock=SimulatedClock(EPOCH + 8 + attempt),
                root_cache=shared,
            )
            assert deployment.run_handshake()
        # One epoch, three handshakes: exactly one full verification.
        assert shared.stats.misses == 1
        assert shared.stats.hits == 2

    def test_handshake_without_shared_caches_still_accepts(self, world):
        deployment = build_close_to_client_deployment(
            server_chain=world.corpus.chains[0],
            trust_store=world.trust_store,
            ca_public_keys=world.ca_public_keys(),
            config=world.config,
            agent=world.agent,
            clock=SimulatedClock(EPOCH + 8),
        )
        assert deployment.run_handshake()
        # The client still memoizes within its own connection lifetime.
        assert deployment.client.root_cache.stats.misses >= 1


class TestDifferentialProperty:
    """Random CA histories: cached and uncached reads always agree."""

    @settings(max_examples=8, deadline=None)
    @given(
        operations=st.lists(
            st.one_of(
                st.tuples(st.just("revoke"), st.integers(1, 3)),
                st.tuples(st.just("refresh"), st.just(0)),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_cached_statuses_equal_uncached_across_histories(self, operations):
        keys = KeyPair.generate(b"hot-path-property")
        ca = CADictionary(
            "Property CA", keys, delta=10, chain_length=2
        )  # short chain: refreshes rotate the root quickly
        config = RITMConfig(delta_seconds=10, chain_length=2)
        agent = RevocationAgent("property-ra", config)
        replica = agent.register_ca("Property CA", keys.public)
        replica.install_root(ca.refresh(EPOCH))

        now = EPOCH
        next_serial = 1
        revoked = []
        for kind, count in operations:
            now += 10
            if kind == "revoke":
                serials = [SerialNumber(next_serial + offset) for offset in range(count)]
                next_serial += count
                revoked.extend(serials)
                agent.apply_issuances("Property CA", [ca.insert(serials, int(now))])
            else:
                result = ca.refresh(int(now))
                if isinstance(result, SignedRoot):
                    replica.install_root(result)
                else:
                    replica.apply_freshness(result)
            probes = revoked[-2:] + [SerialNumber(0xF00000 + next_serial)]
            for probe in probes:
                cached = agent.build_status("Property CA", probe)
                assert cached == replica.prove(probe)
                assert cached.is_revoked == ca.contains(probe)


class TestRotationAwareRootCache:
    """The verified-root cache must not outlive a CA key rotation.

    A memoized verdict is keyed to the specific key that verified it, so a
    root signed by a retired key keeps verifying — cached or not — exactly
    until the overlap window closes, and not one second longer.
    """

    @staticmethod
    def _signed(size: int, keys: KeyPair, timestamp: int) -> SignedRoot:
        return SignedRoot(
            ca_name="Rotating CA",
            root=bytes([size % 251]) * 8,
            size=size,
            anchor=b"\x01" * 8,
            timestamp=timestamp,
            chain_length=8,
        ).sign(keys.private)

    def test_retired_root_verifies_only_inside_overlap_window(self):
        old, new = KeyPair.generate(b"rotate-old"), KeyPair.generate(b"rotate-new")
        root = self._signed(3, old, EPOCH)
        keyring = CAKeyring.single(old.public)
        cache = VerifiedRootCache()
        assert cache.verify(root, keyring)  # memoized under the epoch-0 key

        keyring.add_key(new.public, activated_at=EPOCH + 100, overlap_seconds=50)
        keyring.advance(EPOCH + 150)  # the last instant of the overlap window
        assert cache.verify(root, keyring)
        assert any(
            key.verify(root.payload(), root.signature)
            for key in keyring.acceptable_keys()
        )

        keyring.advance(EPOCH + 151)  # window closed: the memo must die with it
        assert not cache.verify(root, keyring)
        assert not any(
            key.verify(root.payload(), root.signature)
            for key in keyring.acceptable_keys()
        )
        # The new epoch is unaffected, warm or cold.
        fresh = self._signed(4, new, EPOCH + 200)
        assert cache.verify(fresh, keyring)
        assert cache.verify(fresh, keyring)

    @settings(max_examples=30, deadline=None)
    @given(
        gaps=st.lists(st.integers(min_value=10, max_value=120), min_size=1, max_size=5),
        probe_offset=st.integers(min_value=0, max_value=500),
    )
    def test_cached_matches_uncached_for_any_rotation_schedule(
        self, gaps, probe_offset
    ):
        """Differential property: for any rotation schedule, overlap widths,
        and probe time, a warm cache, a cold cache, and direct keyring
        verification agree on every historical root."""
        epoch_keys = [KeyPair.generate(b"sched-epoch-0")]
        keyring = CAKeyring.single(epoch_keys[0].public)
        warm = VerifiedRootCache()
        now = EPOCH
        roots = [self._signed(1, epoch_keys[0], now)]
        warm.verify(roots[0], keyring)
        for index, gap in enumerate(gaps, start=1):
            now += gap
            keys = KeyPair.generate(b"sched-epoch-%d" % index)
            epoch_keys.append(keys)
            keyring.add_key(keys.public, activated_at=now, overlap_seconds=gap // 2)
            keyring.advance(now)
            roots.append(self._signed(index + 1, keys, now))
            for root in roots:
                warm.verify(root, keyring)  # keep every verdict memoized

        keyring.advance(now + probe_offset)
        for root in roots:
            direct = any(
                key.verify(root.payload(), root.signature)
                for key in keyring.acceptable_keys()
            )
            assert warm.verify(root, keyring) == direct
            assert VerifiedRootCache().verify(root, keyring) == direct

    def test_chain_validation_cache_unaffected_by_dictionary_key_rotation(
        self, world
    ):
        """Rotation retires the CA's *dictionary-signing* key, never its
        certificate-issuing key: chain-validation verdicts — warm, cached,
        or cold — must be byte-identical across a rotation, and the cached
        entry must survive it (the trust store did not change)."""
        from repro.pki.validation import validate_chain
        from repro.tls.connection import ChainValidationCache

        chain = world.corpus.chains[0]
        ca = world.ca_by_name(chain.leaf.issuer)
        cache = ChainValidationCache()
        before = cache.validate(
            chain, world.trust_store, now=EPOCH + 20,
            expected_subject=chain.leaf.subject,
        )
        assert before.valid

        ca.rotate_keys(now=EPOCH + 30)

        after = cache.validate(
            chain, world.trust_store, now=EPOCH + 40,
            expected_subject=chain.leaf.subject,
        )
        assert after is before  # same trust store → the memo survives
        assert cache.stats.hits == 1
        direct = validate_chain(
            chain, world.trust_store, now=EPOCH + 40,
            expected_subject=chain.leaf.subject,
        )
        assert direct.valid and direct.checks == after.checks
        # ...while the dictionary-signing side really did rotate.
        assert ca.key_epoch == 1
