#!/usr/bin/env python
"""Fail CI when the compact engine's measured advantage regresses.

Compares a freshly generated ``dictionary_update_scaling.json`` (from
``benchmarks/test_dictionary_update.py::test_dictionary_update_scaling_sweep``)
against the committed copy in ``benchmarks/baselines/``.

Absolute throughput is machine-dependent — a CI runner and the box that
produced the baseline share no clock — so the gate is built on
**machine-relative ratios**: the compact engine's speedups over the
incremental engine at the store-level points both files share.  Those
ratios cancel the hardware out.  Each gated metric must satisfy *both*:

* ``fresh >= (1 - tolerance) * min(baseline, noise_cap)`` — no >30 %
  regression against the committed expectation (the headline rule from
  the CI job).  The cap matters: the batch-append ratio swings ~4–7×
  between healthy runs (allocator/GC state moves both engines' batch
  timings even with best-of-3 sampling), so a lucky baseline must not
  ratchet the bar above the healthy envelope's floor; and
* ``fresh >= floor``                        — an absolute sanity floor
  mirroring the thresholds the benchmark itself asserts, so this check
  can never fail a run the benchmark accepted for a different reason.

``bytes_per_leaf`` for the compact engine is additionally gated as an
absolute (it is machine-independent: pure layout arithmetic).

Usage::

    python tools/check_perf_regression.py \
        [--fresh benchmarks/results/dictionary_update_scaling.json] \
        [--baseline benchmarks/baselines/dictionary_update_scaling.json] \
        [--tolerance 0.30]

Exits 0 when every gate holds, 1 with a per-metric report otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Gated ratio metrics from ``store_speedups`` and their absolute floors.
#: Floors match the benchmark's own in-test assertions (batch append
#: measured ~4–7x, random ~1.3–2x on the reference box), so single-shot
#: noise cannot trip them without also failing the benchmark step.
RATIO_FLOORS = {
    "compact_batch_append_speedup": 3.0,
    "compact_single_random_speedup": 1.1,
}

#: Per-metric clamp applied to the *baseline* value before the relative
#: (>30 %) comparison.  The denominators of these ratios (the incremental
#: engine's timings) swing widely between healthy runs; clamping keeps a
#: lucky committed baseline from demanding more than the healthy envelope
#: can reliably deliver.
NOISE_CAPS = {
    "compact_batch_append_speedup": 4.3,
    "compact_single_random_speedup": 1.6,
}

#: Hard ceiling for the compact engine's per-leaf footprint (bytes).  The
#: measured value is 47.0 for 3-byte keys / 4-byte values; 60 allows for
#: plane-level slack without admitting an object-per-node layout.
BYTES_PER_LEAF_CEILING = 60.0


def _load(path: Path) -> dict:
    """Parse one scaling-sweep JSON artifact, with a actionable error."""
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(
            f"error: {path} not found — run the scaling sweep first:\n"
            "  PYTHONPATH=src:benchmarks python -m pytest "
            "benchmarks/test_dictionary_update.py::"
            "test_dictionary_update_scaling_sweep -q"
        )


def _speedups_by_size(sweep: dict) -> dict:
    """Index a sweep's ``store_speedups`` rows by leaf count."""
    return {row["existing_entries"]: row for row in sweep.get("store_speedups", [])}


def _compact_points_by_size(sweep: dict) -> dict:
    """Index a sweep's compact-engine ``store_points`` rows by leaf count."""
    return {
        row["existing_entries"]: row
        for row in sweep.get("store_points", [])
        if row.get("engine") == "compact"
    }


def check(fresh: dict, baseline: dict, tolerance: float) -> list:
    """Return a list of ``(metric, size, fresh, required, reason)`` failures."""
    failures = []
    fresh_ratios = _speedups_by_size(fresh)
    base_ratios = _speedups_by_size(baseline)
    shared_sizes = sorted(set(fresh_ratios) & set(base_ratios))
    if not shared_sizes:
        failures.append(
            ("store_speedups", None, 0.0, 1.0,
             "no shared store-point sizes between fresh run and baseline")
        )
        return failures

    for size in shared_sizes:
        for metric, floor in RATIO_FLOORS.items():
            fresh_value = fresh_ratios[size].get(metric)
            base_value = base_ratios[size].get(metric)
            if fresh_value is None or base_value is None:
                failures.append((metric, size, 0.0, floor, "metric missing"))
                continue
            clamped = min(base_value, NOISE_CAPS.get(metric, base_value))
            relative_bar = (1.0 - tolerance) * clamped
            if fresh_value < relative_bar:
                failures.append(
                    (metric, size, fresh_value, relative_bar,
                     f">{tolerance:.0%} regression vs baseline {clamped:.2f}x")
                )
            if fresh_value < floor:
                failures.append(
                    (metric, size, fresh_value, floor, "below absolute floor")
                )

    for size, point in _compact_points_by_size(fresh).items():
        per_leaf = point.get("bytes_per_leaf")
        if per_leaf is not None and per_leaf > BYTES_PER_LEAF_CEILING:
            failures.append(
                ("bytes_per_leaf", size, per_leaf, BYTES_PER_LEAF_CEILING,
                 "compact per-leaf footprint above ceiling")
            )
    return failures


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "results" / "dictionary_update_scaling.json",
        help="freshly generated sweep JSON (default: benchmarks/results/...)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "baselines" / "dictionary_update_scaling.json",
        help="committed baseline JSON (default: benchmarks/baselines/...)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional regression vs baseline ratios (default 0.30)",
    )
    args = parser.parse_args(argv)

    fresh = _load(args.fresh)
    baseline = _load(args.baseline)
    failures = check(fresh, baseline, args.tolerance)

    fresh_ratios = _speedups_by_size(fresh)
    for size in sorted(fresh_ratios):
        row = fresh_ratios[size]
        print(
            f"{size:,} leaves: "
            f"batch append {row.get('compact_batch_append_speedup', float('nan')):.2f}x, "
            f"single random {row.get('compact_single_random_speedup', float('nan')):.2f}x "
            f"(compact vs incremental)"
        )
    for size, point in sorted(_compact_points_by_size(fresh).items()):
        if "bytes_per_leaf" in point:
            print(f"{size:,} leaves: compact {point['bytes_per_leaf']:.1f} B/leaf")

    if failures:
        print("\nPERF REGRESSION GATE FAILED:", file=sys.stderr)
        for metric, size, fresh_value, required, reason in failures:
            where = f" @ {size:,} leaves" if size else ""
            print(
                f"  {metric}{where}: {fresh_value:.2f} < required {required:.2f} "
                f"({reason})",
                file=sys.stderr,
            )
        print(
            "\nIf the change is an intentional perf trade-off, refresh the "
            "baseline (see benchmarks/baselines/README.md).",
            file=sys.stderr,
        )
        return 1
    print("\nperf gate OK (tolerance {:.0%})".format(args.tolerance))
    return 0


if __name__ == "__main__":
    sys.exit(main())
