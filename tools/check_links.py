#!/usr/bin/env python3
"""Fail on broken relative links in Markdown files.

Scans ``[text](target)`` links in the given files/directories and verifies
that every relative target (optionally with a ``#fragment``) exists on disk.
External links (http/https/mailto) are ignored; heading fragments are checked
for existence of the file only.

Usage:  python tools/check_links.py README.md ARCHITECTURE.md docs
Exit code 0 when all relative links resolve, 1 otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
IGNORED_SCHEMES = ("http://", "https://", "mailto:", "#")


def markdown_files(arguments: Iterable[str]) -> List[Path]:
    """Expand CLI arguments into a list of Markdown files.

    Raises :class:`FileNotFoundError` for an argument that is neither an
    existing directory nor an existing ``.md`` file, so a renamed doc tree
    or a CI typo fails the gate instead of silently shrinking it.
    """
    files: List[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.is_file() and path.suffix.lower() == ".md":
            files.append(path)
        else:
            raise FileNotFoundError(
                f"{argument!r} is not an existing directory or .md file"
            )
    return files


def broken_links(path: Path) -> List[Tuple[str, str]]:
    """(link, reason) pairs for every unresolvable relative link in ``path``."""
    problems: List[Tuple[str, str]] = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(IGNORED_SCHEMES):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append((target, f"{resolved} does not exist"))
    return problems


def main(argv: List[str]) -> int:
    """Check every file; print problems; return the exit code."""
    try:
        files = markdown_files(argv)
    except FileNotFoundError as exc:
        print(f"check_links: {exc}", file=sys.stderr)
        return 1
    if not files:
        print("check_links: no Markdown files found", file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        for target, reason in broken_links(path):
            print(f"{path}: broken link {target!r}: {reason}")
            failures += 1
    print(f"check_links: {len(files)} file(s) scanned, {failures} broken link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
