#!/usr/bin/env python3
"""Quickstart: a complete RITM deployment in ~60 lines.

Builds the whole pipeline of the paper's Fig. 1/Fig. 3:

  CA ──publishes──▶ CDN (origin + edges) ──pulled every Δ──▶ Revocation Agent
                                                               │ on-path
  client ◀── TLS handshake + piggybacked revocation status ────┘

then revokes the server's certificate and shows that the very next handshake
is refused, about one dissemination period (Δ) later.

Run:  python examples/quickstart.py
"""

from repro.cdn import CDNNetwork, GeoLocation, Region
from repro.crypto import KeyPair
from repro.net.clock import SimulatedClock
from repro.pki import CertificationAuthority, TrustStore
from repro.ritm import (
    RITMCertificationAuthority,
    RITMConfig,
    RevocationAgent,
    attach_agent_to_cas,
    build_close_to_client_deployment,
)

EPOCH = 1_400_000_000  # simulated "now" (Unix seconds)


def main() -> None:
    config = RITMConfig(delta_seconds=10)

    # 1. A certification authority issues the server's certificate chain.
    authority = CertificationAuthority("Example Root CA", key_seed=b"quickstart-ca")
    server_keys = KeyPair.generate(b"quickstart-server")
    chain = authority.issue_chain_for("shop.example", server_keys.public, now=EPOCH)
    trust_store = TrustStore()
    trust_store.add(authority)

    # 2. The CA joins RITM: it signs its (empty) revocation dictionary and
    #    publishes it through a CDN.
    cdn = CDNNetwork()
    ritm_ca = RITMCertificationAuthority(authority, config, cdn)
    ritm_ca.bootstrap(now=EPOCH)

    # 3. A Revocation Agent at the client's gateway pulls the dictionary.
    agent = RevocationAgent("gateway-ra", config)
    dissemination = attach_agent_to_cas(agent, [ritm_ca], cdn, GeoLocation(Region.EUROPE))
    pull = dissemination.pull(now=EPOCH + 1)
    print(f"RA synced {len(agent.replicas)} dictionary in {pull.latency_seconds * 1e3:.1f} ms "
          f"({pull.bytes_downloaded} bytes)")

    # 4. An RITM-supported client connects through the RA.
    clock = SimulatedClock(EPOCH + 2)
    deployment = build_close_to_client_deployment(
        server_chain=chain,
        trust_store=trust_store,
        ca_public_keys={authority.name: authority.public_key},
        config=config,
        agent=agent,
        clock=clock,
    )
    accepted = deployment.run_handshake()
    status = deployment.client.last_status
    print(f"handshake #1 accepted: {accepted} "
          f"(revocation status: {status.encoded_size()} bytes, revoked={status.is_revoked})")

    # 5. The CA revokes the certificate; the RA picks it up on its next pull.
    ritm_ca.revoke([chain.leaf.serial], now=clock.now(), reason="key compromise")
    dissemination.pull(now=clock.now() + config.delta_seconds)
    print(f"CA revoked serial {chain.leaf.serial}; RA dictionary now has "
          f"{agent.replica_for(authority.name).size} entry")

    # 6. The next client connection is refused with a verifiable proof.
    retry = build_close_to_client_deployment(
        server_chain=chain,
        trust_store=trust_store,
        ca_public_keys={authority.name: authority.public_key},
        config=config,
        agent=agent,
        clock=SimulatedClock(clock.now() + config.delta_seconds + 1),
    )
    accepted = retry.run_handshake()
    print(f"handshake #2 accepted: {accepted} -> rejection reason: {retry.client.rejection.value}")
    print(f"detail: {retry.client.rejection_detail}")


if __name__ == "__main__":
    main()
