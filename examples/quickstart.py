#!/usr/bin/env python3
"""Quickstart: a complete RITM deployment via the scenario engine.

Builds the paper's Fig. 1/Fig. 3 pipeline (CA → CDN → RA → client), runs a
handshake, revokes the server's certificate, and shows the next handshake
being refused — all driven by the registered ``quickstart`` scenario.

Run:  python examples/quickstart.py
Same as:  python -m repro run quickstart
"""

import sys

from repro.scenarios import get, run_scenario


def main() -> int:
    report = run_scenario(get("quickstart"))
    print(report.to_markdown())
    return 0 if report.all_checks_passed else 1


if __name__ == "__main__":
    sys.exit(main())
