#!/usr/bin/env python3
"""Long-lived connections (IoT / VPN): mid-connection revocation with RITM.

The paper stresses that a revocation system must notify clients *during*
established connections (§II "Desired Properties", §V "Race Condition").
This wrapper runs the registered ``iot-long-lived`` scenario: a long-lived
RITM-protected session is torn down within 2Δ of the server's certificate
being revoked, while the OCSP Stapling baseline on the same timeline keeps
the compromised session alive for up to its 4-day response lifetime.

Run:  python examples/iot_long_lived_connection.py
Same as:  python -m repro run iot-long-lived
"""

import sys

from repro.scenarios import get, run_scenario


def main() -> int:
    report = run_scenario(get("iot-long-lived"))
    print(report.to_markdown())
    return 0 if report.all_checks_passed else 1


if __name__ == "__main__":
    sys.exit(main())
