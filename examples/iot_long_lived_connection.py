#!/usr/bin/env python3
"""Long-lived connections (IoT / VPN): mid-connection revocation with RITM.

The paper stresses that a revocation system must notify clients *during*
established connections (§II "Desired Properties", §V "Race Condition"):
an IoT device or VPN endpoint that keeps a TLS session open for hours would
otherwise keep talking to a server whose certificate was revoked minutes
after the handshake.

This example establishes a long-lived RITM-protected connection, revokes the
server's certificate mid-session, and shows the client tearing the session
down within 2Δ.  For contrast, it runs the same timeline against the OCSP
Stapling baseline (a 4-day response lifetime) and reports how long that
client would have kept the compromised session alive.

Run:  python examples/iot_long_lived_connection.py
"""

from repro.baselines import CheckContext, GroundTruth, OCSPStaplingScheme
from repro.cdn import CDNNetwork, GeoLocation, Region
from repro.crypto import KeyPair
from repro.net.clock import SimulatedClock
from repro.pki import CertificationAuthority, TrustStore
from repro.ritm import (
    RITMCertificationAuthority,
    RITMConfig,
    RevocationAgent,
    attach_agent_to_cas,
    build_close_to_client_deployment,
)

EPOCH = 1_400_000_000
DELTA = 30  # seconds; IoT gateways can afford frequent small pulls
SESSION_HOURS = 2


def main() -> None:
    config = RITMConfig(delta_seconds=DELTA, chain_length=2 * SESSION_HOURS * 3600 // DELTA + 16)

    authority = CertificationAuthority("IoT Platform CA", key_seed=b"iot-ca")
    device_cloud_keys = KeyPair.generate(b"iot-cloud")
    chain = authority.issue_chain_for("telemetry.iot.example", device_cloud_keys.public, now=EPOCH)
    trust_store = TrustStore()
    trust_store.add(authority)

    cdn = CDNNetwork()
    ritm_ca = RITMCertificationAuthority(authority, config, cdn)
    ritm_ca.bootstrap(now=EPOCH)
    gateway_ra = RevocationAgent("home-gateway-ra", config)
    dissemination = attach_agent_to_cas(gateway_ra, [ritm_ca], cdn, GeoLocation(Region.EUROPE))
    dissemination.pull(now=EPOCH + 1)

    clock = SimulatedClock(EPOCH + 2)
    deployment = build_close_to_client_deployment(
        server_chain=chain,
        trust_store=trust_store,
        ca_public_keys={authority.name: authority.public_key},
        config=config,
        agent=gateway_ra,
        clock=clock,
    )
    assert deployment.run_handshake()
    print(f"IoT device connected to {chain.leaf.subject} (Δ = {DELTA} s, session target "
          f"{SESSION_HOURS} h). Status size: {deployment.client.last_status.encoded_size()} B")

    # The certificate is revoked 20 minutes into the session.
    revocation_offset = 20 * 60
    revoked_at = None
    detected_at = None

    tick = 0
    while clock.now() - (EPOCH + 2) < SESSION_HOURS * 3600:
        tick += 1
        clock.advance(DELTA)
        now = clock.now()
        if revoked_at is None and now - (EPOCH + 2) >= revocation_offset:
            ritm_ca.revoke([chain.leaf.serial], now=now, reason="device key extracted")
            revoked_at = now
            print(f"[t+{(now - EPOCH - 2) / 60:5.1f} min] CA revoked the server certificate")
        else:
            ritm_ca.refresh(now=now)
        dissemination.pull(now=now)
        # The server keeps streaming telemetry acknowledgements; the RA
        # piggybacks a fresh status every Δ.
        deployment.deliver_from_server(b"telemetry-ack")
        if not deployment.client.is_connection_usable:
            detected_at = now
            break
        deployment.client.enforce_freshness(now)

    print(f"[t+{(detected_at - EPOCH - 2) / 60:5.1f} min] client tore the session down: "
          f"{deployment.client.rejection.value}")
    ritm_lag = detected_at - revoked_at
    print(f"RITM detection lag: {ritm_lag:.0f} s (bound: 2Δ = {2 * DELTA} s)\n")

    # ----- the same timeline under OCSP Stapling ---------------------------------
    truth = GroundTruth(ca_name=authority.name)
    stapling = OCSPStaplingScheme(truth, response_lifetime=4 * 86_400.0)
    serial = chain.leaf.serial
    stapling.check(CheckContext("iot-device", chain.leaf.subject, serial, now=float(EPOCH + 2)))
    truth.revoke(serial, now=float(revoked_at))
    # The stapled response the server already holds stays "good" until it expires.
    probe = stapling.check(
        CheckContext("iot-device", chain.leaf.subject, serial, now=float(revoked_at + 3600))
    )
    stapling_window = stapling.responder.response_lifetime
    print("OCSP Stapling on the same timeline:")
    print(f"  one hour after revocation the stapled response still says revoked={probe.revoked}")
    print(f"  worst-case exposure: the response lifetime, {stapling_window / 3600:.0f} h "
          f"(vs {2 * DELTA} s with RITM) — and nothing at all prompts an in-session re-check.")


if __name__ == "__main__":
    main()
