#!/usr/bin/env python3
"""CA accountability: catching an equivocating CA with consistency checking.

RITM keeps CAs accountable (§III "Consistency Checking", §V "Misbehaving
CA"): a CA that shows different dictionaries to different parts of the
system must sign two conflicting roots of the same size.  This wrapper runs
the registered ``ca-audit-gossip`` scenario: the CA revokes a bank's
certificate honestly for one RA, serves a forged view to another, and one
gossip round produces portable cryptographic evidence of the equivocation.

Run:  python examples/ca_audit_gossip.py
Same as:  python -m repro run ca-audit-gossip
"""

import sys

from repro.scenarios import get, run_scenario


def main() -> int:
    report = run_scenario(get("ca-audit-gossip"))
    print(report.to_markdown())
    return 0 if report.all_checks_passed else 1


if __name__ == "__main__":
    sys.exit(main())
