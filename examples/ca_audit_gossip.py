#!/usr/bin/env python3
"""CA accountability: catching an equivocating CA with consistency checking.

RITM keeps CAs accountable (§III "Consistency Checking", §V "Misbehaving
CA"): because dictionaries are append-only and every signed root binds one
exact version, a CA that shows one dictionary to part of the system and a
different one to the rest must eventually sign two conflicting roots of the
same size — and any two parties that compare roots can prove it.

This example stages that attack: a CA maintains an honest dictionary for most
RAs but serves a doctored copy (with one revocation silently omitted) to a
targeted RA.  A single gossip round between the two RAs produces portable
cryptographic evidence of the equivocation.

Run:  python examples/ca_audit_gossip.py
"""

from dataclasses import replace

from repro.cdn import CDNNetwork, GeoLocation, Region
from repro.crypto import KeyPair
from repro.pki import CertificationAuthority, SerialNumber
from repro.ritm import (
    GossipExchange,
    RITMCertificationAuthority,
    RITMConfig,
    RevocationAgent,
    attach_agent_to_cas,
)

EPOCH = 1_400_000_000


def main() -> None:
    config = RITMConfig(delta_seconds=10)
    authority = CertificationAuthority("Equivocating CA", key_seed=b"equivocator")
    victim_keys = KeyPair.generate(b"victim-bank")
    victim_chain = authority.issue_chain_for("bank.example", victim_keys.public, now=EPOCH)

    cdn = CDNNetwork()
    ritm_ca = RITMCertificationAuthority(authority, config, cdn)
    ritm_ca.bootstrap(now=EPOCH)

    # Two independently operated RAs replicate the CA's dictionary.
    honest_ra = RevocationAgent("isp-ra", config)
    targeted_ra = RevocationAgent("campus-ra", config)
    honest_pull = attach_agent_to_cas(honest_ra, [ritm_ca], cdn, GeoLocation(Region.EUROPE))
    targeted_pull = attach_agent_to_cas(targeted_ra, [ritm_ca], cdn, GeoLocation(Region.UNITED_STATES))
    honest_pull.pull(now=EPOCH + 1)
    targeted_pull.pull(now=EPOCH + 1)

    # The CA revokes the bank's certificate and publishes it honestly ...
    issuance = ritm_ca.revoke([victim_chain.leaf.serial], now=EPOCH + 20)
    honest_pull.pull(now=EPOCH + 25)
    print(f"honest RA view: {honest_ra.replica_for(authority.name).size} revocation(s)")

    # ... but serves the targeted RA a *forged* view of the same size in which
    # a different, meaningless serial is revoked instead (hiding the real one).
    decoy = SerialNumber(0xDEAD)
    forged_dictionary_root = _forged_root_for(authority, decoy, issuance.signed_root.timestamp)
    forged_issuance = replace(
        issuance, serials=(decoy,), signed_root=forged_dictionary_root
    )
    targeted_ra.apply_issuance(forged_issuance)
    print(f"targeted RA view: {targeted_ra.replica_for(authority.name).size} revocation(s) "
          f"(but for the decoy serial {decoy})")

    revoked_for_target = targeted_ra.replica_for(authority.name).contains(victim_chain.leaf.serial)
    print(f"targeted RA believes the bank certificate is revoked: {revoked_for_target}")

    # One gossip round between the two RAs exposes the split view.
    reports = GossipExchange().exchange(honest_ra.consistency, targeted_ra.consistency)
    report = reports[0]
    print("\ngossip round complete:")
    print(f"  conflicting signed roots detected for CA {report.ca_name!r} at size "
          f"{report.first.size}")
    print(f"  evidence verifies under the CA's own key: {report.is_valid_evidence(authority.public_key)}")
    print("  the two signed roots can now be forwarded to browser/OS vendors as proof.")


def _forged_root_for(authority: CertificationAuthority, decoy: SerialNumber, timestamp: int):
    """The malicious CA signs a parallel dictionary containing only the decoy."""
    from repro.crypto import HashChain
    from repro.crypto.merkle import SortedMerkleTree
    from repro.dictionary.signed_root import SignedRoot

    shadow_tree = SortedMerkleTree()
    shadow_tree.insert(decoy.to_bytes(), (1).to_bytes(4, "big"))
    shadow_chain = HashChain(length=64)
    unsigned = SignedRoot(
        ca_name=authority.name,
        root=shadow_tree.root(),
        size=1,
        anchor=shadow_chain.anchor,
        timestamp=timestamp,
        chain_length=64,
    )
    return unsigned.sign(authority._keys.private)  # noqa: SLF001 - the CA signs its own forgery


if __name__ == "__main__":
    main()
