#!/usr/bin/env python3
"""Replay a Heartbleed-scale mass-revocation event through RITM.

The paper motivates RITM with catastrophic events such as Heartbleed, when
thousands of certificates were revoked within days (§I, §VII-A).  This
example replays the burst week (14-20 April 2014) from the calibrated
synthetic trace against a real CA + CDN + Revocation Agent pipeline:

* every Δ, the CA batches the revocations issued in that period, updates its
  authenticated dictionary, and publishes the batch + a fresh head object;
* an RA pulls every Δ and applies the updates;
* the example reports, per day, how many revocations flowed, how many bytes
  the RA downloaded, and the worst-case time from "CA revokes" to "RA can
  prove it" (the dissemination delay that bounds the attack window).

Run:  python examples/heartbleed_replay.py  [--delta 3600]
"""

import argparse
import datetime as dt
from collections import defaultdict

from repro.cdn import CDNNetwork, GeoLocation, Region
from repro.pki import CertificationAuthority, SerialNumber
from repro.ritm import RITMCertificationAuthority, RITMConfig, RevocationAgent, attach_agent_to_cas
from repro.workloads import HEARTBLEED_WEEK, generate_trace
from repro.workloads.revocation_trace import serials_for_count


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--delta", type=int, default=3600, help="dissemination period Δ in seconds")
    parser.add_argument("--ca-share", type=float, default=0.05,
                        help="fraction of the global burst handled by the CA under study "
                             "(0.25 reproduces the paper's largest CA but takes a few minutes)")
    args = parser.parse_args()

    config = RITMConfig(delta_seconds=args.delta, chain_length=max(64, 2 * 86_400 // args.delta))
    trace = generate_trace()
    start, end = HEARTBLEED_WEEK
    bins = trace.counts_per_bin(start, end, args.delta)

    authority = CertificationAuthority("Heartbleed-Era CA", key_seed=b"heartbleed-ca")
    cdn = CDNNetwork()
    ritm_ca = RITMCertificationAuthority(authority, config, cdn)

    epoch = bins[0][0]
    ritm_ca.bootstrap(now=epoch - 1)
    agent = RevocationAgent("isp-ra", config)
    dissemination = attach_agent_to_cas(agent, [ritm_ca], cdn, GeoLocation(Region.UNITED_STATES))
    dissemination.pull(now=epoch - 1)

    serial_pool = iter(serials_for_count(2_000_000, seed=404))
    per_day = defaultdict(lambda: {"revocations": 0, "bytes": 0, "max_lag": 0.0})

    for bin_start, global_count in bins:
        ca_count = int(global_count * args.ca_share)
        day = dt.datetime.utcfromtimestamp(bin_start).date().isoformat()
        if ca_count:
            serials = [SerialNumber(next(serial_pool)) for _ in range(ca_count)]
            ritm_ca.revoke(serials, now=bin_start)
            per_day[day]["revocations"] += ca_count
        else:
            ritm_ca.refresh(now=bin_start)
        # The RA pulls at the end of the period (worst case within Δ).
        pull_time = bin_start + args.delta
        result = dissemination.pull(now=pull_time)
        per_day[day]["bytes"] += result.bytes_downloaded
        if ca_count:
            per_day[day]["max_lag"] = max(per_day[day]["max_lag"],
                                          args.delta + result.latency_seconds)

    print(f"Heartbleed week replay, Δ = {args.delta} s, CA share = {args.ca_share:.0%}")
    print(f"{'day':>12} | {'revocations':>11} | {'RA download':>12} | {'worst lag':>10}")
    print("-" * 56)
    total_rev = total_bytes = 0
    for day in sorted(per_day):
        row = per_day[day]
        total_rev += row["revocations"]
        total_bytes += row["bytes"]
        print(f"{day:>12} | {row['revocations']:>11,} | {row['bytes'] / 1024:>9.1f} KB "
              f"| {row['max_lag']:>8.1f} s")
    print("-" * 56)
    print(f"{'total':>12} | {total_rev:>11,} | {total_bytes / 1024 / 1024:>9.2f} MB |")
    replica = agent.replica_for(authority.name)
    print(f"\nRA dictionary after the week: {replica.size:,} revocations, "
          f"storage ≈ {replica.storage_size_bytes() / 1e6:.1f} MB")
    print("Every revocation became provable at the RA within one Δ of being issued "
          f"(attack window 2Δ = {2 * args.delta} s).")


if __name__ == "__main__":
    main()
