#!/usr/bin/env python3
"""Replay a Heartbleed-scale mass-revocation event through RITM.

The paper motivates RITM with catastrophic events such as Heartbleed, when
thousands of certificates were revoked within days (§I, §VII-A).  This
wrapper runs the registered ``heartbleed`` scenario: the burst week of the
calibrated synthetic trace against a real CA + CDN + Revocation Agent
pipeline, reporting dissemination volume and worst-case provability lag.

Run:  python examples/heartbleed_replay.py  [--delta 3600] [--ca-share 0.05]
Same as:  python -m repro run heartbleed
"""

import argparse
import sys

from repro.scenarios import get, run_scenario


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--delta", type=int, default=3600,
                        help="dissemination period Δ in seconds")
    parser.add_argument("--ca-share", type=float, default=0.05,
                        help="fraction of the global burst handled by the CA under study "
                             "(0.25 reproduces the paper's largest CA but takes a few minutes)")
    args = parser.parse_args()

    config = get("heartbleed").with_overrides(
        delta_seconds=args.delta, workload={"ca_share": args.ca_share}
    )
    report = run_scenario(config)
    print(report.to_markdown())
    return 0 if report.all_checks_passed else 1


if __name__ == "__main__":
    sys.exit(main())
