"""Fig. 7: per-RA download volume per Δ during the Heartbleed week.

The paper reports ~4 KB per Δ for standard revocation rates (dominated by the
254 dictionaries' freshness statements), below 5 KB per Δ at the Heartbleed
peak for small Δ, around 25 KB for Δ = 1 hour, and about 230 KB for Δ = 1 day.
"""

from repro.analysis.overhead import figure_7
from repro.analysis.reporting import format_table

from bench_harness import write_result

#: Paper's approximate peak download per Δ (bytes) during the Heartbleed week.
PAPER_PEAKS = {
    "10s": 5_000,
    "1m": 5_200,
    "5m": 7_000,
    "1h": 25_000,
    "1d": 230_000,
}


def test_fig7_communication_overhead(benchmark, trace):
    result = benchmark(figure_7, trace)

    rows = []
    for label, series in result.series.items():
        rows.append(
            [
                label,
                f"{series.min_bytes() / 1024:.1f} KB",
                f"{series.mean_bytes() / 1024:.1f} KB",
                f"{series.max_bytes() / 1024:.1f} KB",
                f"{PAPER_PEAKS[label] / 1024:.1f} KB",
            ]
        )
    table = format_table(
        ["delta", "min/delta", "mean/delta", "max/delta", "paper peak"],
        rows,
        title=(
            "Figure 7 — per-RA download per delta, Heartbleed week "
            f"(14-20 Apr 2014), {result.dictionaries} dictionaries"
        ),
    )
    write_result("fig7_communication_overhead", table)

    series = result.series
    baseline = result.baseline_bytes()
    # Standard rate: a few KB per delta, dominated by freshness statements.
    assert 3_000 < baseline < 8_000
    # Small deltas stay close to the baseline even at the Heartbleed peak.
    assert series["10s"].max_bytes() < 1.5 * baseline
    assert series["1m"].max_bytes() < 2.0 * baseline
    # One-hour updates peak in the tens of kilobytes.
    assert 10_000 < series["1h"].max_bytes() < 60_000
    # Daily updates peak in the hundreds of kilobytes (paper: ~230 KB).
    assert 150_000 < series["1d"].max_bytes() < 400_000
    # Monotone: larger delta never means less data per update.
    assert (
        series["10s"].mean_bytes()
        <= series["1m"].mean_bytes()
        <= series["5m"].mean_bytes()
        <= series["1h"].mean_bytes()
        <= series["1d"].mean_bytes()
    )
