"""Empirical attack window (§V): revocation-to-enforcement lag across an RA fleet.

The paper argues analytically that RITM's effective attack window is 2Δ.
This benchmark measures it: a fleet of RAs with independent pull phases
replicates one CA's dictionary; the CA revokes a certificate mid-run; for
every RA we record when a client connecting through it would first be
refused.  The maximum observed lag must stay within 2Δ.
"""

from repro.analysis.attack_window import run_attack_window_simulation
from repro.analysis.reporting import format_table

from bench_harness import write_result


def test_attack_window_within_two_delta(benchmark):
    results = benchmark.pedantic(
        lambda: [
            run_attack_window_simulation(delta_seconds=delta, ra_count=30, seed=delta)
            for delta in (10, 60)
        ],
        rounds=1,
        iterations=1,
    )

    rows = []
    for result in results:
        rows.append(
            [
                f"{result.delta_seconds} s",
                len(result.lags),
                f"{result.mean_lag():.1f} s",
                f"{result.max_lag():.1f} s",
                f"{2 * result.delta_seconds} s",
                f"{result.fraction_within(result.delta_seconds) * 100:.0f} %",
            ]
        )
    table = format_table(
        ["delta", "RAs", "mean lag", "max lag", "2*delta bound", "within 1*delta"],
        rows,
        title="Empirical attack window: revocation -> enforcement lag across the RA fleet",
    )
    write_result("attack_window", table)

    for result in results:
        assert result.within_two_delta()
        # Most RAs (those whose pull fires after the CA's publication within
        # the same period) enforce within a single delta.
        assert result.fraction_within(result.delta_seconds) > 0.5
