"""Hot-path verification engine: cold vs warm read-path latency (§VII).

The paper's core pitch is that revocation checking is cheap enough to sit on
the TLS handshake path at CDN scale.  This bench measures what the
``repro.perf`` engine buys on the read path and emits the repo's first
machine-readable perf baseline, ``benchmarks/results/handshake_hotpath.json``:

* **cold vs warm end-to-end handshakes** — a fresh client verifying the
  server chain and the status root from scratch, vs a client whose
  verified-root / chain-validation caches are warm and an RA whose proof
  cache holds the serial (session resumption / flash-crowd shape);
* **cold vs warm status verification** — the client-side
  ``RevocationStatus.verify`` with and without the
  :class:`~repro.perf.root_cache.VerifiedRootCache`;
* **cold vs warm proof building** — the RA-side Merkle audit path,
  recomputed vs served from the :class:`~repro.perf.proof_cache.ProofCache`;
* **batch vs serial Ed25519 verification** — ``crypto.signing.verify_batch``
  against a one-by-one loop, at the configured batch width;
* **cache hit rates** — per layer, including the CDN edge object cache
  under a same-region RA fleet pulling with a nonzero TTL.

CI uploads the JSON artifact and fails the perf job unless the warm path
measurably beats the cold path (a guard against silently disabled caches).
See docs/PERFORMANCE.md for how to read the artifact.
"""

from __future__ import annotations

import statistics
import time

from repro.cdn.geography import GeoLocation, Region
from repro.cdn.network import CDNNetwork
from repro.crypto.signing import KeyPair, verify_batch
from repro.dictionary.signed_root import SignedRoot
from repro.net.clock import SimulatedClock
from repro.analysis.reporting import format_table
from repro.perf import VerifiedRootCache
from repro.ritm.agent import RevocationAgent
from repro.ritm.ca_service import RITMCertificationAuthority
from repro.ritm.config import RITMConfig
from repro.ritm.deployment import build_close_to_client_deployment
from repro.ritm.dissemination import attach_agent_to_cas
from repro.tls.connection import ChainValidationCache
from repro.workloads import serials_for_count
from repro.workloads.certificates import generate_corpus

from bench_harness import write_json_result, write_result

EPOCH = 1_400_000_000
#: Revoked serials in the CA's dictionary (a real tree, not a toy).
DICTIONARY_SIZE = 2_000
COLD_HANDSHAKES = 6
WARM_HANDSHAKES = 24
VERIFY_REPS = 12
PROOF_REPS = 400


def build_world():
    """One CA with a populated dictionary, a synced RA, and a TLS corpus."""
    config = RITMConfig(delta_seconds=10, chain_length=64, cdn_ttl_seconds=10.0)
    corpus = generate_corpus(
        ca_count=1, domains_per_ca=1, use_intermediates=True, now=EPOCH
    )
    cdn = CDNNetwork()
    cas = []
    for authority in corpus.authorities:
        ca = RITMCertificationAuthority(authority, config, cdn)
        ca.bootstrap(now=EPOCH + 1)
        cas.append(ca)
    from repro.pki.serial import SerialNumber

    pool = [
        SerialNumber(value)
        for value in serials_for_count(DICTIONARY_SIZE + 40, seed=0xBEEF)
    ]
    revoked, probes = pool[:DICTIONARY_SIZE], pool[DICTIONARY_SIZE:]
    cas[0].revoke(revoked, now=EPOCH + 2, reason="hotpath-bench")
    agent = RevocationAgent("bench-ra", config)
    attach_agent_to_cas(agent, cas, cdn, GeoLocation(Region.EUROPE)).pull(now=EPOCH + 3)
    return config, corpus, cas, cdn, agent, probes


def _median_ms(samples):
    return round(statistics.median(samples) * 1e3, 4)


def _run_handshake(config, corpus, cas, agent, root_cache, validation_cache):
    deployment = build_close_to_client_deployment(
        server_chain=corpus.chains[0],
        trust_store=corpus.trust_store,
        ca_public_keys={ca.name: ca.public_key for ca in cas},
        config=config,
        agent=agent,
        clock=SimulatedClock(EPOCH + 5),
        root_cache=root_cache,
        validation_cache=validation_cache,
    )
    assert deployment.run_handshake()
    return deployment


def bench_handshakes(config, corpus, cas, agent):
    """Cold (fresh caches each time) vs warm (shared caches) handshakes."""
    cold = []
    for _ in range(COLD_HANDSHAKES):
        agent.proof_cache.clear()
        started = time.perf_counter()
        _run_handshake(config, corpus, cas, agent, None, None)
        cold.append(time.perf_counter() - started)

    root_cache = VerifiedRootCache(maxsize=config.root_cache_size)
    validation_cache = ChainValidationCache()
    agent.proof_cache.clear()
    _run_handshake(config, corpus, cas, agent, root_cache, validation_cache)  # prime
    warm = []
    for _ in range(WARM_HANDSHAKES):
        started = time.perf_counter()
        _run_handshake(config, corpus, cas, agent, root_cache, validation_cache)
        warm.append(time.perf_counter() - started)
    return {
        "cold_ms": _median_ms(cold),
        "warm_ms": _median_ms(warm),
        "warm_speedup": round(statistics.median(cold) / statistics.median(warm), 2),
    }, root_cache, validation_cache


def bench_status_verify(config, cas, agent, probe):
    """Client-side status verification with and without the root cache."""
    ca = cas[0]
    status = agent.build_status(ca.name, probe)
    now = EPOCH + 6
    cold = []
    for _ in range(VERIFY_REPS):
        started = time.perf_counter()
        assert status.is_acceptable(ca.public_key, now, config.delta_seconds)
        cold.append(time.perf_counter() - started)
    cache = VerifiedRootCache(maxsize=config.root_cache_size)
    assert status.is_acceptable(ca.public_key, now, config.delta_seconds, root_cache=cache)
    warm = []
    for _ in range(VERIFY_REPS * 4):
        started = time.perf_counter()
        assert status.is_acceptable(
            ca.public_key, now, config.delta_seconds, root_cache=cache
        )
        warm.append(time.perf_counter() - started)
    return {
        "cold_ms": _median_ms(cold),
        "warm_ms": _median_ms(warm),
        "warm_speedup": round(statistics.median(cold) / statistics.median(warm), 2),
    }


def bench_proof_build(cas, agent, probes):
    """RA-side Merkle path construction vs the proof cache."""
    ca = cas[0]
    replica = agent.replica_for(ca.name)
    probes = probes[:20]
    cold = []
    for _ in range(PROOF_REPS // len(probes)):
        for probe in probes:
            started = time.perf_counter()
            replica.prove(probe)
            cold.append(time.perf_counter() - started)
    for probe in probes:  # prime the cache
        agent.build_status(ca.name, probe)
    warm = []
    for _ in range(PROOF_REPS // len(probes)):
        for probe in probes:
            started = time.perf_counter()
            agent.build_status(ca.name, probe)
            warm.append(time.perf_counter() - started)
    return {
        "cold_us": round(statistics.median(cold) * 1e6, 2),
        "warm_us": round(statistics.median(warm) * 1e6, 2),
        "warm_speedup": round(statistics.median(cold) / statistics.median(warm), 2),
    }


def bench_batch_verify(config):
    """Batched vs one-by-one Ed25519 verification of signed roots."""
    keys = KeyPair.generate(b"hotpath-batch")
    width = config.signature_batch_width
    roots = []
    for index in range(width):
        unsigned = SignedRoot(
            ca_name="Batch CA",
            root=bytes([index]) * 20,
            size=index + 1,
            anchor=bytes([index ^ 0xFF]) * 20,
            timestamp=EPOCH + index,
            chain_length=64,
        )
        roots.append(unsigned.sign(keys.private))
    items = [(keys.public, root.payload(), root.signature) for root in roots]

    serial_samples = []
    batch_samples = []
    for _ in range(5):  # medians keep a CI scheduler hiccup out of the guard
        started = time.perf_counter()
        serial_ok = [
            keys.public.verify(message, signature) for _, message, signature in items
        ]
        serial_samples.append(time.perf_counter() - started)
        started = time.perf_counter()
        batch_ok = verify_batch(items, batch_width=width)
        batch_samples.append(time.perf_counter() - started)
        assert all(serial_ok)
        assert batch_ok == serial_ok
    serial_seconds = statistics.median(serial_samples)
    batch_seconds = statistics.median(batch_samples)
    return {
        "width": width,
        "serial_ms": round(serial_seconds * 1e3, 2),
        "batch_ms": round(batch_seconds * 1e3, 2),
        "speedup": round(serial_seconds / batch_seconds, 2),
    }


def bench_edge_cache(config, cas, cdn):
    """Edge object-cache hit rate for a same-region fleet pulling each Δ."""
    fleet = []
    for index in range(3):
        agent = RevocationAgent(f"fleet-ra-{index}", config)
        fleet.append(attach_agent_to_cas(agent, cas, cdn, GeoLocation(Region.EUROPE)))
    for period in range(3):
        now = EPOCH + 10 + period * config.delta_seconds
        for client in fleet:
            client.pull(now=now)
    edges = [edge for edge in cdn.all_edges() if edge.requests_served]
    hits = sum(edge.cache_hits for edge in edges)
    requests = sum(edge.requests_served for edge in edges)
    return {"hits": hits, "requests": requests, "hit_rate": round(hits / requests, 4)}


def test_handshake_hotpath():
    config, corpus, cas, cdn, agent, probes = build_world()

    handshake, root_cache, validation_cache = bench_handshakes(config, corpus, cas, agent)
    status_verify = bench_status_verify(config, cas, agent, probes[-1])
    proof_build = bench_proof_build(cas, agent, probes)
    batch = bench_batch_verify(config)
    edge = bench_edge_cache(config, cas, cdn)

    payload = {
        "config": {
            "dictionary_size": DICTIONARY_SIZE,
            "delta_seconds": config.delta_seconds,
            "proof_cache_size": config.proof_cache_size,
            "root_cache_size": config.root_cache_size,
            "signature_batch_width": config.signature_batch_width,
            "cold_handshakes": COLD_HANDSHAKES,
            "warm_handshakes": WARM_HANDSHAKES,
        },
        "handshake": handshake,
        "status_verify": status_verify,
        "proof_build": proof_build,
        "batch_verify": batch,
        "cache_hit_rates": {
            "agent_proof_cache": round(agent.proof_cache.stats.hit_rate(), 4),
            "client_root_cache": round(root_cache.stats.hit_rate(), 4),
            "chain_validation_cache": round(validation_cache.stats.hit_rate(), 4),
            "edge_object_cache": edge["hit_rate"],
        },
    }
    write_json_result("handshake_hotpath", payload)

    table = format_table(
        ["metric", "cold", "warm", "speedup"],
        [
            [
                "end-to-end handshake",
                f"{handshake['cold_ms']} ms",
                f"{handshake['warm_ms']} ms",
                f"{handshake['warm_speedup']}x",
            ],
            [
                "status verification (client)",
                f"{status_verify['cold_ms']} ms",
                f"{status_verify['warm_ms']} ms",
                f"{status_verify['warm_speedup']}x",
            ],
            [
                "proof build (RA)",
                f"{proof_build['cold_us']} us",
                f"{proof_build['warm_us']} us",
                f"{proof_build['warm_speedup']}x",
            ],
            [
                f"Ed25519 verify x{batch['width']}",
                f"{batch['serial_ms']} ms",
                f"{batch['batch_ms']} ms",
                f"{batch['speedup']}x",
            ],
        ],
        title=f"Hot-path verification engine ({DICTIONARY_SIZE}-entry dictionary)",
    )
    write_result("handshake_hotpath", table)

    # The warm path must measurably beat the cold path — this is the guard
    # CI relies on against silently disabled caches.
    assert handshake["warm_speedup"] > 1.2, handshake
    assert status_verify["warm_speedup"] > 2.0, status_verify
    assert proof_build["warm_speedup"] > 1.2, proof_build
    assert batch["speedup"] > 1.2, batch
    for layer, rate in payload["cache_hit_rates"].items():
        assert rate > 0.0, (layer, payload["cache_hit_rates"])
