"""Table III: per-operation processing times, plus the derived throughput.

The paper times five operations (500 repetitions, µs): the RA's TLS
detection, certificate parsing, and proof construction, and the client's
proof validation and signature+freshness validation.  Pure-Python absolute
numbers are larger than the paper's (its implementation leaned on C crypto),
so the assertions check the *ordering* of costs and the derived claims
(an RA handles many packets/handshakes per second; the client-side overhead
is a negligible fraction of a 30 ms handshake) rather than absolute values.

The benchmark is parameterized over every `repro.store` engine: proof
construction is the dictionary-backed row, and the incremental/compact
engines serve proofs straight from their cached hash levels while the
naive engine may first owe a full rebuild.  Every engine must reproduce
the paper's orderings; the printed artifact records the per-engine numbers
side by side.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.analysis.timing import run_table_3, throughput_from_table3

from bench_harness import write_result

#: Table III as printed in the paper (average µs per operation).
PAPER_AVERAGES_US = {
    "TLS detection (DPI)": 2.93,
    "Certificates parsing (DPI)": 19.95,
    "Proof construction": 67.17,
    "Proof validation": 54.51,
    "Sig. and freshness valid.": 197.27,
}

from repro.store import ENGINES as STORE_ENGINES

ENGINES = tuple(sorted(STORE_ENGINES))


@pytest.mark.parametrize("engine", ENGINES)
def test_table3_processing_time(benchmark, engine):
    result = benchmark.pedantic(
        lambda: run_table_3(
            repetitions=500,
            dictionary_size=20_000,
            signature_repetitions=20,
            engine=engine,
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            row.entity,
            row.operation,
            f"{row.max_us:.2f}",
            f"{row.min_us:.2f}",
            f"{row.avg_us:.2f}",
            f"{PAPER_AVERAGES_US[row.operation]:.2f}",
        ]
        for row in result.rows
    ]
    throughput = throughput_from_table3(result)
    table = format_table(
        ["entity", "operation", "max us", "min us", "avg us", "paper avg us"],
        rows,
        title=f"Table III — detailed processing time ({engine} engine vs paper)",
    )
    extra = "\n".join(
        [
            "",
            f"store engine: {engine}",
            f"derived: non-TLS packets/s      = {throughput.non_tls_packets_per_second:,.0f} (paper: >340,000)",
            f"derived: supported handshakes/s = {throughput.handshakes_per_second:,.0f} (paper: >50,000)",
            f"derived: client validations/s   = {throughput.client_validations_per_second:,.0f} (paper: ~4,000)",
        ]
    )
    write_result(f"table3_processing_time_{engine}", table + extra)

    # Ordering of RA-side costs matches the paper: detection < parsing < proving.
    assert (
        result.row("TLS detection (DPI)").avg_us
        < result.row("Certificates parsing (DPI)").avg_us
        < result.row("Proof construction").avg_us * 5
    )
    # Signature verification is the most expensive client-side step.
    assert (
        result.row("Sig. and freshness valid.").avg_us > result.row("Proof validation").avg_us
    )
    # Throughput claims (scaled-down expectations for pure Python).
    assert throughput.non_tls_packets_per_second > 50_000
    assert throughput.handshakes_per_second > 1_000
