"""Table II: average monthly cost as a function of Δ and clients per RA.

The paper reports average costs (in thousands of USD) for 30, 250, and 1,000
clients per RA and Δ ∈ {10 s, 1 min, 1 h, 1 day}.  The reproduced shape:
costs scale inversely with the clients-per-RA density and fall steeply as Δ
grows.
"""

from repro.analysis.cost import TABLE2_CLIENTS_PER_RA, table_2
from repro.analysis.reporting import format_table

from bench_harness import write_result

#: Table II as printed in the paper (thousands of USD).
PAPER_TABLE2 = {
    (30, "10s"): 18.574,
    (30, "1m"): 3.450,
    (30, "1h"): 0.647,
    (30, "1d"): 0.108,
    (250, "10s"): 2.229,
    (250, "1m"): 0.414,
    (250, "1h"): 0.078,
    (250, "1d"): 0.013,
    (1_000, "10s"): 0.557,
    (1_000, "1m"): 0.103,
    (1_000, "1h"): 0.019,
    (1_000, "1d"): 0.003,
}


def test_table2_cost_per_ra(benchmark, trace, population):
    cells = benchmark.pedantic(
        lambda: table_2(trace=trace, population=population), rounds=1, iterations=1
    )
    lookup = {(cell.clients_per_ra, cell.delta_label): cell.average_cost_usd for cell in cells}

    rows = []
    for clients_per_ra in TABLE2_CLIENTS_PER_RA:
        row = [clients_per_ra]
        for label in ("10s", "1m", "1h", "1d"):
            measured = lookup[(clients_per_ra, label)] / 1_000.0
            paper = PAPER_TABLE2[(clients_per_ra, label)]
            row.append(f"{measured:.3f} (paper {paper:.3f})")
        rows.append(row)
    table = format_table(
        ["clients/RA", "d=10s [k$]", "d=1m [k$]", "d=1h [k$]", "d=1d [k$]"],
        rows,
        title="Table II — average monthly cost in thousands of USD (measured vs paper)",
    )
    write_result("table2_cost_per_ra", table)

    # Shape 1: cost is inversely proportional to clients-per-RA.
    for label in ("10s", "1m", "1h", "1d"):
        assert lookup[(30, label)] > lookup[(250, label)] > lookup[(1_000, label)]
        ratio = lookup[(30, label)] / lookup[(1_000, label)]
        assert 25 < ratio < 40  # paper's ratio is 1000/30 ≈ 33
    # Shape 2: cost falls steeply with delta for every density.
    for clients_per_ra in TABLE2_CLIENTS_PER_RA:
        assert (
            lookup[(clients_per_ra, "10s")]
            > lookup[(clients_per_ra, "1m")]
            > lookup[(clients_per_ra, "1h")]
            >= lookup[(clients_per_ra, "1d")]
        )
