"""Workload-generator scaling benchmark: throughput and memory vs clients.

Drains a fixed-length streamed trace (50k events) at 10^4, 10^5, and 10^6
modelled clients and records events/second, the tracemalloc allocation peak
of the generation loop, and the process high-water RSS for each point in
``benchmarks/results/workload_scaling.json`` (plus a rendered ``.txt``
table).  The headline assertion is **client-count independence**: the
generator materialises O(batch) state, so the tracemalloc peak at a
million clients must stay within 2x of the 10^4-client peak (RSS is
recorded for context only — it is a process-wide, allocator-dependent
number).

``RITM_BENCH_FULL=1`` additionally drains the soak scenario's full-scale
trace — one million clients over thirty simulated days — and records its
throughput alongside the sweep.
"""

from __future__ import annotations

import os
import resource
import time
import tracemalloc

from bench_harness import write_json_result, write_result

from repro.analysis.reporting import format_table
from repro.workloads.streaming import (
    DAY_SECONDS,
    EVENT_BYTES,
    StreamConfig,
    StreamingWorkload,
)

#: Modelled client-population sweep at a fixed 50k-event trace.
CLIENT_POINTS = (10_000, 100_000, 1_000_000)
EVENTS_TOTAL = 50_000
BATCH_SIZE = 8_192

#: Allocation-peak ratio allowed between the largest and smallest point.
MEMORY_INDEPENDENCE_BOUND = 2.0


def _drain(config: StreamConfig) -> dict:
    """One sweep point: drain the trace, measure time and allocation."""
    workload = StreamingWorkload(config)
    tracemalloc.start()
    started = time.perf_counter()
    events = 0
    for batch in workload.batches():
        events += len(batch.times)
        for site in batch.sites:
            workload.site_profile(site)
    wall_seconds = time.perf_counter() - started
    _, alloc_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert events == config.events_total
    return {
        "clients": config.clients,
        "sites": config.sites,
        "events_total": config.events_total,
        "batch_size": config.batch_size,
        "wall_clock_seconds": round(wall_seconds, 4),
        "events_per_second": round(events / wall_seconds, 1),
        "peak_batch_bytes": workload.peak_batch_bytes,
        "batch_budget_bytes": EVENT_BYTES * config.batch_size,
        "generator_footprint_bytes": workload.footprint_bytes(),
        "tracemalloc_peak_bytes": alloc_peak,
        "max_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def test_workload_scaling_memory_is_client_count_independent():
    """Sweep the client population and pin O(batch) memory behaviour."""
    samples = []
    for clients in CLIENT_POINTS:
        config = StreamConfig(
            clients=clients,
            sites=2_000,
            events_total=EVENTS_TOTAL,
            duration_seconds=DAY_SECONDS,
            batch_size=BATCH_SIZE,
            seed=404,
        )
        samples.append(_drain(config))

    full_point = None
    if os.environ.get("RITM_BENCH_FULL"):
        full_point = _drain(
            StreamConfig(
                clients=1_000_000,
                sites=40_000,
                events_total=150_000,
                duration_seconds=30 * DAY_SECONDS,
                batch_size=BATCH_SIZE,
                seed=404,
            )
        )

    smallest, largest = samples[0], samples[-1]
    alloc_ratio = (
        largest["tracemalloc_peak_bytes"] / smallest["tracemalloc_peak_bytes"]
    )
    payload = {
        "events_total": EVENTS_TOTAL,
        "batch_size": BATCH_SIZE,
        "samples": samples,
        "allocation_peak_ratio_100x_clients": round(alloc_ratio, 3),
        "memory_independence_bound": MEMORY_INDEPENDENCE_BOUND,
        "full_scale": full_point,
    }
    write_json_result("workload_scaling", payload)

    rows = [
        (
            f"{s['clients']:,}",
            f"{s['events_per_second']:,.0f}",
            f"{s['peak_batch_bytes']:,} B",
            f"{s['tracemalloc_peak_bytes']:,} B",
            f"{s['max_rss_kb']:,} kB",
        )
        for s in samples
    ]
    text = format_table(
        ["clients", "events/s", "peak batch", "alloc peak", "max RSS"],
        rows,
        title=f"streaming workload generator ({EVENTS_TOTAL:,} events)",
    )
    text += (
        f"\n100x clients move the allocation peak {alloc_ratio:.2f}x "
        f"(bound {MEMORY_INDEPENDENCE_BOUND}x)"
    )
    if full_point:
        text += (
            f"\nfull scale: {full_point['clients']:,} clients / 30 days -> "
            f"{full_point['events_per_second']:,.0f} events/s, "
            f"max RSS {full_point['max_rss_kb']:,} kB"
        )
    write_result("workload_scaling", text)

    for sample in samples:
        assert sample["peak_batch_bytes"] <= sample["batch_budget_bytes"]
    assert alloc_ratio < MEMORY_INDEPENDENCE_BOUND, (
        f"generation allocation grew with the client count: "
        f"{alloc_ratio:.2f}x across a 100x population sweep"
    )
