"""Table IV: comparison of revocation mechanisms.

Regenerates the paper's comparison table — per-scheme storage and connection
counts (global and per client) plus the violated-properties column — from the
functional baseline implementations, and checks every cell against the
paper's symbolic formulas evaluated at the same parameter instantiation.
"""

from repro.analysis.reporting import format_table
from repro.baselines.comparison import (
    DEFAULT_PARAMETERS,
    PAPER_FORMULAS,
    build_comparison_table,
    evaluate_formula,
)

from bench_harness import write_result


def test_table4_comparison(benchmark):
    rows = benchmark(build_comparison_table)

    rendered = format_table(
        [
            "method",
            "storage (global)",
            "storage (client)",
            "conn (global)",
            "conn (client)",
            "violated",
            "paper formula (storage global)",
        ],
        [
            [
                row.scheme,
                f"{row.storage_global:.3e}",
                f"{row.storage_client:,}",
                f"{row.conn_global:.3e}",
                f"{row.conn_client:,}",
                row.violated_properties,
                row.formula_storage_global,
            ]
            for row in rows
        ],
        title=(
            "Table IV — comparison of revocation mechanisms "
            f"(n_rev={DEFAULT_PARAMETERS.n_revocations:,}, n_cl={DEFAULT_PARAMETERS.n_clients:.1e}, "
            f"n_s={DEFAULT_PARAMETERS.n_servers:.1e}, n_ca={DEFAULT_PARAMETERS.n_cas}, "
            f"n_ra={DEFAULT_PARAMETERS.n_ras:.1e})"
        ),
    )
    write_result("table4_comparison", rendered)

    by_name = {row.scheme: row for row in rows}
    # Every cell equals the paper's formula at the same parameters.
    for name, row in by_name.items():
        formulas = PAPER_FORMULAS[name]
        assert row.storage_global == evaluate_formula(formulas["storage_global"], DEFAULT_PARAMETERS)
        assert row.storage_client == evaluate_formula(formulas["storage_client"], DEFAULT_PARAMETERS)
        assert row.conn_global == evaluate_formula(formulas["conn_global"], DEFAULT_PARAMETERS)
        assert row.conn_client == evaluate_formula(formulas["conn_client"], DEFAULT_PARAMETERS)
        assert row.violated_properties == formulas["violated"]
    # RITM's headline properties: clients store nothing, need no connections,
    # and no desired property is violated.
    assert by_name["RITM"].storage_client == 0
    assert by_name["RITM"].conn_client == 0
    assert by_name["RITM"].violated_properties == "-"
