"""Fig. 4: revocations issued between January 2014 and June 2015.

Regenerates both panels — the monthly time series and the Heartbleed
close-up — from the calibrated synthetic trace and records the headline
numbers (total revocations, peak day) alongside the paper's.
"""

from repro.analysis.reporting import format_series
from repro.analysis.trace_figures import figure_4

from bench_harness import write_result


def test_fig4_revocation_trace(benchmark, trace):
    result = benchmark(figure_4, trace)

    lines = [
        "Figure 4 — number of revocations issued (Jan 2014 - Jun 2015)",
        f"total revocations in window: {result.total_revocations}"
        " (paper dataset: 1,381,992 over the full collection)",
        f"peak day: {result.peak_day} with {result.peak_day_count} revocations"
        " (paper: highest rates on 16-17 April 2014)",
        f"peak month / baseline month ratio: {result.peak_to_baseline_ratio():.1f}x",
        "",
        format_series(result.monthly_counts, "month", "revocations", "Top panel (monthly)"),
        "",
        format_series(
            result.heartbleed_focus,
            "unix time (6h bins)",
            "revocations",
            "Bottom panel (16-17 April 2014)",
        ),
    ]
    write_result("fig4_revocation_trace", "\n".join(lines))

    assert result.total_revocations > 1_000_000
    assert str(result.peak_day).startswith("2014-04-1")
    assert result.peak_to_baseline_ratio() > 3
