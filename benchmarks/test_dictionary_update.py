"""§VII-D dictionary-update timing, parameterized over every store engine.

The paper reports ~3 ms (CA insert) and ~3 ms (RA update+verify) for a batch
of 1,000 new revocations.  Beyond reproducing that batch path, this module
is the performance artifact for the `repro.store` engine seam:

* ``test_dictionary_update_1000`` — the paper's batch numbers, once per
  engine;
* ``test_single_serial_update_speedup`` — one-revocation-at-a-time updates
  against a 100,000-entry dictionary, the workload where the naive engine's
  full rebuild pays Θ(N) hashes per serial.  Asserts the incremental engine
  is ≥ 10× faster, both at the store level and end-to-end (tree + hash
  chain + Ed25519-signed root);
* ``test_dictionary_update_scaling_sweep`` — a size sweep over every engine
  emitting ``benchmarks/results/dictionary_update_scaling.json`` so the
  perf trajectory is tracked across PRs.  Always includes store-level
  10⁶-entry points for the ``incremental`` and ``compact`` engines (the
  flat-buffer engine's acceptance comparison); set ``RITM_BENCH_FULL=1``
  to extend the dictionary-level sweep to 1M serials and add a store-level
  10⁷-leaf ``compact`` point.

The compact-engine thresholds are calibrated to what byte-identical tree
semantics permit: an append-ordered batch avoids the incremental engine's
O(N) Python-list merge entirely (order-of-magnitude win), while a
random-position single update must rehash the Θ(N − i) positional suffix
in *every* engine, so its ceiling is the SHA-256 call count itself — the
compact engine sits within ~35 % of that hashing floor, which lands near
1.4× over incremental rather than an object-overhead-sized multiple.
"""

import os

import pytest

from repro.analysis.reporting import format_table
from repro.analysis.timing import (
    sweep_dictionary_update,
    time_dictionary_single_updates,
    time_dictionary_update,
    time_store_single_updates,
)

from repro.store import ENGINES as STORE_ENGINES

from bench_harness import write_json_result, write_result

ENGINES = tuple(sorted(STORE_ENGINES))

#: Entry count for the single-serial acceptance comparison.
SINGLE_UPDATE_DICTIONARY_SIZE = 100_000
#: Required incremental-over-naive advantage for single-serial updates.
REQUIRED_SINGLE_UPDATE_SPEEDUP = 10.0
#: Store-level scaling point for the compact-vs-incremental comparison.
STORE_POINT_ENTRIES = 1_000_000
#: Required compact-over-incremental advantage for an append-ordered batch
#: at 10⁶ leaves.  Measured ~4–7× on the reference box (best-of-3 batch
#: sampling); 3× leaves margin for noise while still catching an
#: O(N)-merge regression (losing the append fast path drops below 1×).
REQUIRED_COMPACT_BATCH_SPEEDUP = 3.0
#: Required compact-over-incremental advantage for random-position single
#: updates at 10⁶ leaves.  Both engines pay the same Θ(N − i) SHA-256
#: suffix, so the ceiling is the hashing floor itself; measured 1.3–2×.
REQUIRED_COMPACT_RANDOM_SPEEDUP = 1.1


@pytest.mark.parametrize("engine", ENGINES)
def test_dictionary_update_1000(benchmark, engine):
    timing = benchmark.pedantic(
        lambda: time_dictionary_update(
            batch_size=1_000, existing_entries=20_000, engine=engine
        ),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["operation", "engine", "batch", "measured ms", "paper avg ms"],
        [
            ["CA insert (build + sign root)", engine, timing.batch_size, f"{timing.ca_insert_ms:.2f}", "2.93"],
            ["RA update (apply + verify root)", engine, timing.batch_size, f"{timing.ra_update_ms:.2f}", "2.84"],
        ],
        title=f"Dictionary update timing — {engine} engine (1,000 new revocations over 20,000 entries)",
    )
    write_result(f"dictionary_update_{engine}", table)

    assert timing.ca_insert_ms < 5_000
    assert timing.ra_update_ms < 5_000
    # The RA's verification-heavy update is within an order of magnitude of
    # the CA's insert, as in the paper (2.93 ms vs 2.84 ms).
    assert timing.ra_update_ms < 10 * timing.ca_insert_ms


def test_single_serial_update_speedup(benchmark):
    """Single-serial updates on a 100k dictionary: incremental ≥ 10× naive."""

    def run():
        rows = {}
        for engine in ENGINES:
            rows[engine] = {
                "store_append": time_store_single_updates(
                    engine=engine,
                    existing_entries=SINGLE_UPDATE_DICTIONARY_SIZE,
                    updates=5,
                ),
                "store_random": time_store_single_updates(
                    engine=engine,
                    existing_entries=SINGLE_UPDATE_DICTIONARY_SIZE,
                    updates=5,
                    workload="random",
                ),
                "dictionary_append": time_dictionary_single_updates(
                    engine=engine,
                    existing_entries=SINGLE_UPDATE_DICTIONARY_SIZE,
                    updates=5,
                ),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    def speedup(metric):
        return rows["naive"][metric].ms_per_update / rows["incremental"][metric].ms_per_update

    store_append_speedup = speedup("store_append")
    store_random_speedup = speedup("store_random")
    dictionary_append_speedup = speedup("dictionary_append")

    table_rows = []
    for engine in ENGINES:
        for metric, label in (
            ("store_append", "store: append-ordered serials"),
            ("store_random", "store: random-position serials"),
            ("dictionary_append", "dictionary: append + chain + signed root"),
        ):
            timing = rows[engine][metric]
            table_rows.append(
                [label, engine, f"{timing.ms_per_update:.3f}", f"{timing.updates_per_second:,.1f}"]
            )
    table = format_table(
        ["workload", "engine", "ms / update", "updates / s"],
        table_rows,
        title=f"Single-serial updates over a {SINGLE_UPDATE_DICTIONARY_SIZE:,}-entry dictionary",
    )
    extra = "\n".join(
        [
            "",
            f"incremental speedup (store, append workload): {store_append_speedup:,.1f}x",
            f"incremental speedup (store, random workload): {store_random_speedup:,.1f}x",
            f"incremental speedup (end-to-end, append):     {dictionary_append_speedup:,.1f}x",
        ]
    )
    write_result("dictionary_update_single_serial", table + extra)

    assert store_append_speedup >= REQUIRED_SINGLE_UPDATE_SPEEDUP
    assert dictionary_append_speedup >= REQUIRED_SINGLE_UPDATE_SPEEDUP
    # Random-position inserts re-pair the dirty suffix (the tree shape is
    # positional), so the win is bounded — but caching the leaf hashes must
    # still beat a full rebuild.
    assert store_random_speedup > 1.5


def test_dictionary_update_scaling_sweep(benchmark):
    """10k–1M scaling sweep over every engine, emitted as a JSON artifact.

    Dictionary-level points cover all engines at 10k/100k; store-level 10⁶
    points compare the ``incremental`` and ``compact`` engines head to head
    (batch append, single append, random-position singles, bytes/leaf).
    ``RITM_BENCH_FULL=1`` adds the 1M dictionary points and a 10⁷-leaf
    store point for ``compact``.
    """
    sizes = [10_000, 100_000]
    store_points = [
        (STORE_POINT_ENTRIES, "incremental"),
        (STORE_POINT_ENTRIES, "compact"),
    ]
    if os.environ.get("RITM_BENCH_FULL"):
        sizes.append(1_000_000)
        store_points.append((10_000_000, "compact"))

    sweep = benchmark.pedantic(
        lambda: sweep_dictionary_update(
            sizes, engines=ENGINES, single_updates=4, store_points=store_points
        ),
        rounds=1,
        iterations=1,
    )
    write_json_result("dictionary_update_scaling", sweep)

    table = format_table(
        ["entries", "engine", "batch CA ins ms", "batch RA upd ms", "1-serial append ms", "1-serial random ms"],
        [
            [
                f"{point['existing_entries']:,}",
                point["engine"],
                point["ca_insert_ms"],
                point["ra_update_ms"],
                point["single_append_ms"],
                point["single_random_ms"],
            ]
            for point in sweep["points"]
        ],
        title="Dictionary-update scaling sweep (store engines)",
    )
    store_table = format_table(
        ["leaves", "engine", "build s", "batch app /s", "1-append /s", "1-random /s", "B/leaf"],
        [
            [
                f"{point['existing_entries']:,}",
                point["engine"],
                f"{point['build_s']:.2f}",
                f"{point['batch_append_per_s']:,.0f}",
                f"{point['single_append_per_s']:,.0f}",
                f"{point['single_random_per_s']:.2f}",
                f"{point['bytes_per_leaf']:.1f}" if "bytes_per_leaf" in point else "-",
            ]
            for point in sweep["store_points"]
        ],
        title="Store-level scaling points (raw Merkle store, no chain/signing)",
    )
    speedup_lines = [
        (
            f"{entry['existing_entries']:,} leaves: compact vs incremental — "
            f"build {entry['compact_build_speedup']:.2f}x, "
            f"batch append {entry['compact_batch_append_speedup']:.2f}x, "
            f"single append {entry['compact_single_append_speedup']:.2f}x, "
            f"single random {entry['compact_single_random_speedup']:.2f}x"
        )
        for entry in sweep["store_speedups"]
    ]
    write_result(
        "dictionary_update_scaling",
        "\n\n".join([table, store_table] + speedup_lines),
    )

    by_size = {entry["existing_entries"]: entry for entry in sweep["speedups"]}
    assert by_size[100_000]["single_append_speedup"] >= REQUIRED_SINGLE_UPDATE_SPEEDUP
    # The advantage must grow with N (naive is Θ(N) per update, incremental
    # is O(log N) on the append path).
    assert (
        by_size[100_000]["single_append_speedup"]
        > by_size[10_000]["single_append_speedup"]
    )

    by_leaves = {
        entry["existing_entries"]: entry for entry in sweep["store_speedups"]
    }
    store_speedups = by_leaves[STORE_POINT_ENTRIES]
    assert store_speedups["compact_batch_append_speedup"] >= REQUIRED_COMPACT_BATCH_SPEEDUP
    assert store_speedups["compact_single_random_speedup"] >= REQUIRED_COMPACT_RANDOM_SPEEDUP
    compact_point = next(
        point
        for point in sweep["store_points"]
        if point["engine"] == "compact"
        and point["existing_entries"] == STORE_POINT_ENTRIES
    )
    # The flat layout's advertised footprint: ~47 B/leaf measured (3 B key +
    # 4 B value + ~40 B of hash planes), versus hundreds for object lists.
    assert compact_point["bytes_per_leaf"] < 60
