"""§VII-D dictionary-update timing: CA insert / RA update of 1,000 revocations.

The paper reports ~3 ms (CA insert) and ~3 ms (RA update+verify) for a batch
of 1,000 new revocations.  The pure-Python tree rebuild is slower; the
benchmark records both numbers and checks that batched updates stay
interactive (well under a second) and that update verification costs the
same order of magnitude as the insert.
"""

from repro.analysis.reporting import format_table
from repro.analysis.timing import time_dictionary_update

from conftest import write_result


def test_dictionary_update_1000(benchmark):
    timing = benchmark.pedantic(
        lambda: time_dictionary_update(batch_size=1_000, existing_entries=20_000),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["operation", "batch", "measured ms", "paper avg ms"],
        [
            ["CA insert (build + sign root)", timing.batch_size, f"{timing.ca_insert_ms:.2f}", "2.93"],
            ["RA update (apply + verify root)", timing.batch_size, f"{timing.ra_update_ms:.2f}", "2.84"],
        ],
        title="Dictionary update timing (1,000 new revocations over a 20,000-entry dictionary)",
    )
    write_result("dictionary_update", table)

    assert timing.ca_insert_ms < 5_000
    assert timing.ra_update_ms < 5_000
    # The RA's verification-heavy update is within an order of magnitude of
    # the CA's insert, as in the paper (2.93 ms vs 2.84 ms).
    assert timing.ra_update_ms < 10 * timing.ca_insert_ms
