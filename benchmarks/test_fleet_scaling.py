"""Fleet-scaling benchmark: wall-clock and event throughput vs fleet size.

Runs the ``thundering-herd`` scenario at 1, 10, and 50 RAs with the client
load scaled to 2,000 handshakes per RA — so the 50-RA point is the ISSUE's
50-RA / 100k-client configuration — and records wall-clock seconds and
scheduler events per second for each point in
``benchmarks/results/fleet_scaling.json`` (plus a rendered ``.txt`` table).

The headline assertion is **sublinear scaling**: the fitted exponent
``log(wall_50 / wall_1) / log(50)`` must stay below 0.85, i.e. fifty RAs
must cost clearly less than fifty 1-RA runs because the CA's issuance work,
the Merkle rebuilds, and the engine bootstrap amortise across the fleet.
"""

from __future__ import annotations

import math
import time

from bench_harness import write_json_result, write_result

from repro.analysis.reporting import format_table
from repro.scenarios import get, run_scenario

#: (fleet size, total client handshakes) — 2,000 handshakes per RA.
POINTS = ((1, 2_000), (10, 20_000), (50, 100_000))

#: Upper bound on the fitted wall-clock scaling exponent (1.0 == linear).
SUBLINEAR_EXPONENT_BOUND = 0.85


def _variant(fleet_size: int, handshakes: int):
    """The thundering-herd config resized to ``fleet_size`` RAs."""
    config = get("thundering-herd")
    if fleet_size < len(config.agents):
        # A single declared agent, no expansion: the serial baseline.
        return config.with_overrides(
            agents=config.agents[:fleet_size],
            fleet_size=0,
            client_handshakes=handshakes,
        )
    return config.with_overrides(fleet_size=fleet_size, client_handshakes=handshakes)


def test_fleet_scaling_is_sublinear():
    """Measure the 1/10/50-RA points and pin the scaling exponent."""
    samples = []
    for fleet_size, handshakes in POINTS:
        config = _variant(fleet_size, handshakes)
        started = time.perf_counter()
        report = run_scenario(config)
        wall_seconds = time.perf_counter() - started
        assert report.all_checks_passed, [c.name for c in report.failed_checks()]
        fleet = report.metrics["fleet"]
        assert fleet["fleet_size"] == fleet_size
        assert fleet["handshakes_served"] == handshakes
        samples.append(
            {
                "fleet_size": fleet_size,
                "client_handshakes": handshakes,
                "wall_clock_seconds": round(wall_seconds, 4),
                "scheduler_events_processed": fleet["scheduler_events_processed"],
                "events_per_second": round(
                    fleet["scheduler_events_processed"] / wall_seconds, 1
                ),
                "overlap_factor": fleet["overlap_factor"],
                "peak_concurrent_pulls": fleet["peak_concurrent_pulls"],
            }
        )

    first, last = samples[0], samples[-1]
    ratio = last["wall_clock_seconds"] / first["wall_clock_seconds"]
    exponent = math.log(ratio) / math.log(last["fleet_size"] / first["fleet_size"])
    payload = {
        "scenario": "thundering-herd",
        "handshakes_per_ra": 2_000,
        "samples": samples,
        "wall_clock_ratio_50x": round(ratio, 3),
        "scaling_exponent": round(exponent, 4),
        "sublinear_bound": SUBLINEAR_EXPONENT_BOUND,
    }
    write_json_result("fleet_scaling", payload)

    rows = [
        (
            s["fleet_size"],
            s["client_handshakes"],
            f"{s['wall_clock_seconds']:.2f} s",
            f"{s['events_per_second']:.0f}",
            s["peak_concurrent_pulls"],
        )
        for s in samples
    ]
    text = format_table(
        ["RAs", "handshakes", "wall clock", "events/s", "peak pulls"],
        rows,
        title="thundering-herd fleet scaling (2,000 handshakes per RA)",
    )
    text += (
        f"\n50x fleet costs {ratio:.1f}x wall clock "
        f"(exponent {exponent:.3f}, bound {SUBLINEAR_EXPONENT_BOUND})"
    )
    write_result("fleet_scaling", text)

    assert exponent < SUBLINEAR_EXPONENT_BOUND, (
        f"fleet scaling went superlinear-ish: exponent {exponent:.3f} "
        f"(50 RAs cost {ratio:.1f}x one RA)"
    )
