"""Fig. 5: CDF of revocation-message download times.

Reproduces the paper's measurement: five message sizes (a freshness-only
object and 15k/30k/45k/60k revocations) uploaded to a CDN with caching
disabled, downloaded 10 times from each of 80 PlanetLab-style vantage points.
The quantity to reproduce is the shape of the CDFs and the headline claim
that 90 % of nodes fetch even the largest message in under one second.
"""

from repro.analysis.dissemination_speed import PAPER_MESSAGE_SIZES, run_figure_5
from repro.analysis.reporting import cdf_points, format_cdf_summary, format_series

from bench_harness import write_result


def test_fig5_dissemination_speed(benchmark):
    result = benchmark.pedantic(run_figure_5, rounds=1, iterations=1)

    lines = [
        "Figure 5 — CDF of download times for five revocation messages",
        f"vantage points: {result.node_count}, repetitions: {result.repetitions}, TTL=0 (no caching)",
        "",
    ]
    for count in PAPER_MESSAGE_SIZES:
        lines.append(
            f"{count:>6} revocations: message = {result.message_bytes[count]} bytes; "
            + format_cdf_summary(result.samples[count], label="download time")
        )
    lines.append("")
    for count in (0, 60_000):
        lines.append(
            format_series(
                cdf_points(result.samples[count], points=20),
                "seconds",
                "CDF",
                f"CDF points ({count} revocations)",
            )
        )
        lines.append("")
    write_result("fig5_dissemination_speed", "\n".join(lines))

    # Paper: 90% of nodes took < 1 s even for 60k revocations, uncached.
    assert result.fraction_below(60_000, 1.0) >= 0.90
    # Smaller messages download no slower than larger ones (medians).
    assert result.percentile(0, 0.5) <= result.percentile(60_000, 0.5)
