"""Durable store engine: WAL overhead, snapshot size, and recovery speed.

Three measurements behind the storage guide (``docs/STORAGE.md``):

* **WAL-append overhead** — batch-insert cost of the ``durable`` engine
  (validate → log → apply) relative to the in-memory ``incremental`` engine
  it wraps, across store sizes;
* **snapshot size** — bytes of the pinned-format snapshot per leaf count;
* **recovery vs cold resync** — at the RITM layer: an RA that warm-starts
  from a checkpoint and pulls only the outage delta, against a cold RA that
  re-downloads and re-applies the CA's whole batch history.  Bytes are the
  deterministic comparison (the §VIII CDN bill of a fleet-wide restart);
  wall-clock times are recorded alongside.

Artifacts: ``benchmarks/results/durable_recovery.json`` (machine-readable,
uploaded by CI) and ``durable_recovery.txt`` (human table).
"""

import os
import time

from repro.analysis.reporting import format_table, human_bytes
from repro.cdn import CDNNetwork, GeoLocation
from repro.cdn.geography import Region
from repro.pki import CertificationAuthority, SerialNumber
from repro.ritm import (
    RITMCertificationAuthority,
    RITMConfig,
    RevocationAgent,
    attach_agent_to_cas,
)
from repro.store import create_store
from repro.store.durable import DurableMerkleStore

from bench_harness import write_json_result, write_result

#: Store sizes swept by the engine-level measurements.
SIZES = [1_000, 5_000, 20_000]
if os.environ.get("RITM_BENCH_FULL"):
    SIZES.append(100_000)

BATCH = 500

#: RITM-level recovery shape: periods synced before the checkpoint, and
#: periods of outage whose delta the warm restart must fetch.
RECOVERY_PERIODS = 24
OUTAGE_PERIODS = 4
SERIALS_PER_PERIOD = 40


def _batches_for(total: int):
    """Append-ordered (key, value) batches of BATCH serials each."""
    batches = []
    for start in range(0, total, BATCH):
        batches.append(
            [
                (value.to_bytes(8, "big"), (value % 251).to_bytes(4, "big"))
                for value in range(start + 1, min(start + BATCH, total) + 1)
            ]
        )
    return batches


def _engine_sweep(tmp_root) -> list:
    """WAL overhead, snapshot size, and store-level reopen time per size."""
    records = []
    for size in SIZES:
        batches = _batches_for(size)

        incremental = create_store("incremental")
        started = time.perf_counter()
        for batch in batches:
            incremental.insert_batch(batch)
        incremental_seconds = time.perf_counter() - started

        directory = tmp_root / f"store-{size}"
        durable = DurableMerkleStore(directory=directory, snapshot_every=0)
        started = time.perf_counter()
        for batch in batches:
            durable.insert_batch(batch)
        durable_seconds = time.perf_counter() - started
        assert durable.root() == incremental.root()
        wal_bytes = durable.wal_size_bytes()
        durable.snapshot()
        snapshot_bytes = durable.snapshot_size_bytes()
        durable.close()

        started = time.perf_counter()
        recovered = DurableMerkleStore(directory=directory, snapshot_every=0)
        recover_seconds = time.perf_counter() - started
        assert recovered.root() == incremental.root()
        recovered.close()

        records.append(
            {
                "leaves": size,
                "incremental_seconds": round(incremental_seconds, 6),
                "durable_seconds": round(durable_seconds, 6),
                "wal_overhead_ratio": round(
                    durable_seconds / incremental_seconds, 3
                ),
                "wal_bytes": wal_bytes,
                "snapshot_bytes": snapshot_bytes,
                "snapshot_bytes_per_leaf": round(snapshot_bytes / size, 2),
                "reopen_seconds": round(recover_seconds, 6),
            }
        )
    return records


def _recovery_comparison(tmp_path) -> dict:
    """Warm checkpoint restore vs cold full resync at the RITM layer."""
    config = RITMConfig(delta_seconds=10, chain_length=256, store_engine="durable")
    authority = CertificationAuthority("Recovery CA", key_seed=b"durable-bench")
    cdn = CDNNetwork()
    ca = RITMCertificationAuthority(authority, config, cdn)
    ca.bootstrap(now=100)
    agent = RevocationAgent("steady-ra", config)
    client = attach_agent_to_cas(agent, [ca], cdn, GeoLocation(Region.EUROPE))
    client.pull(now=101)

    serial = 0
    for period in range(RECOVERY_PERIODS):
        now = 200 + period * 10
        batch = [SerialNumber(serial + offset + 1) for offset in range(SERIALS_PER_PERIOD)]
        serial += SERIALS_PER_PERIOD
        ca.revoke(batch, now=now)
        client.pull(now=now + 5)

    checkpoint_dir = tmp_path / "checkpoint"
    started = time.perf_counter()
    client.checkpoint(checkpoint_dir)
    checkpoint_seconds = time.perf_counter() - started

    for period in range(OUTAGE_PERIODS):
        now = 1000 + period * 10
        batch = [SerialNumber(serial + offset + 1) for offset in range(SERIALS_PER_PERIOD)]
        serial += SERIALS_PER_PERIOD
        ca.revoke(batch, now=now)

    cold_agent = RevocationAgent("cold-ra", config)
    cold_client = attach_agent_to_cas(cold_agent, [ca], cdn, GeoLocation(Region.EUROPE))
    started = time.perf_counter()
    cold_result = cold_client.pull(now=2000)
    cold_seconds = time.perf_counter() - started

    warm_agent = RevocationAgent("steady-ra", config)
    warm_client = attach_agent_to_cas(warm_agent, [ca], cdn, GeoLocation(Region.EUROPE))
    started = time.perf_counter()
    restored = warm_client.restore(checkpoint_dir)
    warm_result = warm_client.pull(now=2000)
    warm_seconds = time.perf_counter() - started

    assert restored == 1
    assert warm_result.serials_applied == OUTAGE_PERIODS * SERIALS_PER_PERIOD
    assert cold_result.serials_applied == serial
    assert warm_result.bytes_downloaded < cold_result.bytes_downloaded
    warm_replica = warm_agent.replica_for(ca.name)
    cold_replica = cold_agent.replica_for(ca.name)
    assert warm_replica.root() == cold_replica.root()

    record = {
        "synced_periods": RECOVERY_PERIODS,
        "outage_periods": OUTAGE_PERIODS,
        "dictionary_size": serial,
        "checkpoint_seconds": round(checkpoint_seconds, 6),
        "restored_replicas": restored,
        "warm_bytes": warm_result.bytes_downloaded,
        "cold_bytes": cold_result.bytes_downloaded,
        "bytes_saved_ratio": round(
            cold_result.bytes_downloaded / warm_result.bytes_downloaded, 2
        ),
        "warm_serials_applied": warm_result.serials_applied,
        "cold_serials_applied": cold_result.serials_applied,
        "warm_seconds": round(warm_seconds, 6),
        "cold_seconds": round(cold_seconds, 6),
        "warm_simulated_latency_seconds": round(warm_result.latency_seconds, 6),
        "cold_simulated_latency_seconds": round(cold_result.latency_seconds, 6),
    }
    for an_agent in (agent, cold_agent, warm_agent):
        an_agent.close()
    ca.close()
    return record


def test_durable_recovery(benchmark, tmp_path):
    """One artifact-producing run of all three measurements."""
    engine_records = benchmark.pedantic(
        lambda: _engine_sweep(tmp_path), rounds=1, iterations=1
    )
    recovery = _recovery_comparison(tmp_path)

    # the warm restart must also be back inside the 2Δ bound first: the
    # simulated recovery latency (RTT + transfer) is strictly smaller
    assert (
        recovery["warm_simulated_latency_seconds"]
        < recovery["cold_simulated_latency_seconds"]
    )

    payload = {"engine_sweep": engine_records, "recovery": recovery}
    write_json_result("durable_recovery", payload)

    rows = [
        [
            record["leaves"],
            f"{record['incremental_seconds']:.3f}s",
            f"{record['durable_seconds']:.3f}s",
            f"{record['wal_overhead_ratio']:.2f}x",
            human_bytes(record["wal_bytes"]),
            human_bytes(record["snapshot_bytes"]),
            f"{record['reopen_seconds'] * 1000:.1f}ms",
        ]
        for record in engine_records
    ]
    sweep_table = format_table(
        ["leaves", "incremental", "durable", "WAL overhead", "WAL", "snapshot", "reopen"],
        rows,
        title="durable engine: WAL-append overhead and snapshot size vs leaves",
    )
    recovery_table = format_table(
        ["metric", "warm (checkpoint)", "cold (full resync)"],
        [
            (
                "bytes downloaded",
                human_bytes(recovery["warm_bytes"]),
                human_bytes(recovery["cold_bytes"]),
            ),
            (
                "serials applied",
                recovery["warm_serials_applied"],
                recovery["cold_serials_applied"],
            ),
            (
                "recovery wall-clock",
                f"{recovery['warm_seconds'] * 1000:.1f}ms",
                f"{recovery['cold_seconds'] * 1000:.1f}ms",
            ),
            (
                "simulated pull latency",
                f"{recovery['warm_simulated_latency_seconds']:.3f}s",
                f"{recovery['cold_simulated_latency_seconds']:.3f}s",
            ),
        ],
        title=(
            f"RA restart after {recovery['outage_periods']}-period outage "
            f"({recovery['dictionary_size']} revocations total, "
            f"{recovery['bytes_saved_ratio']}x fewer bytes warm)"
        ),
    )
    write_result("durable_recovery", sweep_table + "\n\n" + recovery_table)
