"""§VII-D latency claim: RITM adds <1 % to a TLS connection establishment.

Benchmarks a complete RITM-supported handshake over the simulated
close-to-client path (client → gateway RA → server) and records the byte and
latency overhead the RA introduces, comparing it against the paper's 30 ms
reference handshake.
"""

from repro.cdn.geography import GeoLocation, Region
from repro.cdn.network import CDNNetwork
from repro.net.clock import SimulatedClock
from repro.analysis.reporting import format_table
from repro.ritm.agent import RevocationAgent
from repro.ritm.ca_service import RITMCertificationAuthority
from repro.ritm.config import RITMConfig
from repro.ritm.deployment import build_close_to_client_deployment
from repro.ritm.dissemination import attach_agent_to_cas
from repro.workloads.certificates import generate_corpus

from bench_harness import write_result

EPOCH = 1_400_000_000


def build_world():
    config = RITMConfig(delta_seconds=10, chain_length=64)
    corpus = generate_corpus(ca_count=1, domains_per_ca=1, use_intermediates=True, now=EPOCH)
    cdn = CDNNetwork()
    cas = []
    for authority in corpus.authorities:
        ca = RITMCertificationAuthority(authority, config, cdn)
        ca.bootstrap(now=EPOCH + 1)
        cas.append(ca)
    agent = RevocationAgent("bench-ra", config)
    attach_agent_to_cas(agent, cas, cdn, GeoLocation(Region.EUROPE)).pull(now=EPOCH + 2)
    return config, corpus, cas, agent


def test_ritm_supported_handshake(benchmark):
    config, corpus, cas, agent = build_world()

    def run_one():
        deployment = build_close_to_client_deployment(
            server_chain=corpus.chains[0],
            trust_store=corpus.trust_store,
            ca_public_keys={ca.name: ca.public_key for ca in cas},
            config=config,
            agent=agent,
            clock=SimulatedClock(EPOCH + 5),
        )
        accepted = deployment.run_handshake()
        assert accepted
        return deployment

    deployment = benchmark(run_one)

    status_bytes = deployment.client.last_status.encoded_size()
    # Packets that crossed the RA during this handshake (both directions).
    packets_in_handshake = len(deployment.engine.deliveries)
    processing = packets_in_handshake * agent.processing_delay(None)
    transmission = status_bytes / 12_500_000.0
    added_ms = (processing + transmission) * 1e3
    table = format_table(
        ["metric", "value", "paper"],
        [
            ["revocation status size", f"{status_bytes} B", "500-900 B (largest CRL)"],
            ["RA processing + extra bytes", f"{added_ms:.3f} ms", "< 0.3 ms (1% of 30 ms handshake)"],
            ["share of a 30 ms handshake", f"{added_ms / 30.0 * 100:.2f} %", "< 1 %"],
        ],
        title="RITM handshake overhead (close-to-client deployment)",
    )
    write_result("handshake_overhead", table)

    assert status_bytes < 2_000
    assert added_ms < 0.3
