"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
(§VII).  Besides the pytest-benchmark timing, each benchmark renders the
reproduced numbers as plain text and writes them to ``benchmarks/results/``
via :mod:`bench_harness` so they can be compared against the paper (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))


@pytest.fixture(scope="session")
def trace():
    """The calibrated synthetic revocation trace (shared across benchmarks)."""
    from repro.workloads.revocation_trace import generate_trace

    return generate_trace()


@pytest.fixture(scope="session")
def population():
    """The full-size synthetic city-population model (47,980 cities)."""
    from repro.workloads.population import generate_population

    return generate_population()
