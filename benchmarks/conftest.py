"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
(§VII).  Besides the pytest-benchmark timing, each benchmark renders the
reproduced numbers as plain text and writes them to ``benchmarks/results/``
so they can be compared against the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(name: str, text: str) -> str:
    """Write a rendered table/figure to benchmarks/results/<name>.txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text.rstrip() + "\n")
    return path


@pytest.fixture(scope="session")
def trace():
    """The calibrated synthetic revocation trace (shared across benchmarks)."""
    from repro.workloads.revocation_trace import generate_trace

    return generate_trace()


@pytest.fixture(scope="session")
def population():
    """The full-size synthetic city-population model (47,980 cities)."""
    from repro.workloads.population import generate_population

    return generate_population()
