"""Benchmark the scenario engine's end-to-end cost.

One smoke run of the ``quickstart`` scenario measures the fixed overhead of
the engine (build + bootstrap + pulls + handshakes); the ``flash-crowd``
smoke run measures a burst workload end to end and records the store-engine
replay comparison the scenario itself performs.  Results land in
``benchmarks/results/scenario_engine.txt``.
"""

from __future__ import annotations

from bench_harness import write_result

from repro.analysis.reporting import format_table
from repro.scenarios import get, run_scenario


def test_scenario_engine_overhead(benchmark):
    """End-to-end smoke run of the smallest scenario."""
    report = benchmark.pedantic(
        lambda: run_scenario(get("quickstart"), smoke=True), rounds=3, iterations=1
    )
    assert report.all_checks_passed


def test_flash_crowd_engine_comparison():
    """Run flash-crowd once and persist its engine-comparison artifact."""
    report = run_scenario(get("flash-crowd"), smoke=True)
    assert report.all_checks_passed
    comparison = report.extras["engine_comparison"]
    rows = []
    for engine in ("naive", "incremental", "durable"):
        entry = comparison[engine]
        rows.append((engine, entry["serials"], f"{entry['seconds'] * 1e3:.2f} ms"))
    text = format_table(
        ["engine", "serials", "replay time"],
        rows,
        title="flash-crowd burst replayed per store engine (smoke workload)",
    )
    text += f"\nroots agree: {comparison['roots_agree']}"
    write_result("scenario_engine", text)
