"""§VII-D storage overhead and revocation-status size.

Paper numbers to reproduce:

* RA storage ≈ 4 MB and in-memory dictionaries ≈ 36 MB for the full dataset
  (1,381,992 revocations); ≈ 30 MB / 260 MB for 10 million revocations;
* a revocation status (Eq. 3) for the largest CRL's dictionary is 500-900 B.
"""

from repro.analysis.overhead import status_size_for_dictionary, storage_overhead
from repro.analysis.reporting import format_table, human_bytes
from repro.workloads.revocation_trace import LARGEST_CRL_ENTRIES

from bench_harness import write_result


def test_storage_overhead(benchmark):
    estimates = benchmark.pedantic(
        lambda: (storage_overhead(1_381_992), storage_overhead(10_000_000)),
        rounds=1,
        iterations=1,
    )
    current, ten_million = estimates
    table = format_table(
        ["revocations", "storage", "memory", "paper storage", "paper memory"],
        [
            [current.revocations, human_bytes(current.storage_bytes), human_bytes(current.memory_bytes), "~4 MB", "~36 MB"],
            [ten_million.revocations, human_bytes(ten_million.storage_bytes), human_bytes(ten_million.memory_bytes), "30 MB", "260 MB"],
        ],
        title="Storage overhead at an RA (all dictionaries)",
    )
    write_result("storage_overhead", table)

    assert 3.5e6 < current.storage_bytes < 5e6
    assert 30e6 < current.memory_bytes < 45e6
    assert 28e6 < ten_million.storage_bytes < 32e6
    assert 230e6 < ten_million.memory_bytes < 300e6


def test_status_size_largest_crl(benchmark):
    """Builds the full 339,557-entry dictionary once and measures status sizes."""
    result = benchmark.pedantic(
        lambda: status_size_for_dictionary(LARGEST_CRL_ENTRIES), rounds=1, iterations=1
    )
    table = format_table(
        ["dictionary size", "absence status", "presence status", "proof depth", "paper"],
        [
            [
                result.dictionary_size,
                f"{result.absent_status_bytes} B",
                f"{result.revoked_status_bytes} B",
                result.proof_depth,
                "500-900 B",
            ]
        ],
        title="Revocation status size (Eq. 3) for the largest CRL's dictionary",
    )
    write_result("status_size", table)

    # The paper's 500-900 byte range for the largest observed CRL.
    assert 500 <= result.revoked_status_bytes <= 1_000
    assert 500 <= result.absent_status_bytes <= 1_300
    assert result.proof_depth >= 18
