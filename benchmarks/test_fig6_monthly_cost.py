"""Fig. 6: monthly CDN bill for a CA disseminating revocations via RITM.

Reproduces the paper's cost simulation for the CA owning the largest CRL,
with 10 clients per RA (≈230 million RAs world-wide) over the 19 billing
cycles from January 2014 to August 2015, for Δ ∈ {10 s, 1 min, 1 h, 1 day}.

Absolute dollar amounts depend on per-request accounting details the paper
does not specify; the reproduced claims are the orders of magnitude, the
steep decrease with Δ, and the Heartbleed bump in the April 2014 cycle.
"""

from repro.analysis.cost import CostModelConfig, simulate_costs
from repro.analysis.reporting import format_table, human_usd

from bench_harness import write_result

#: Paper's approximate per-Δ monthly cost ranges at 10 clients/RA (Fig. 6).
PAPER_RANGES_USD = {
    "10s": (54_000, 60_000),
    "1m": (9_500, 13_500),
    "1h": (1_500, 3_500),
    "1d": (250, 450),
}


def test_fig6_monthly_cost(benchmark, trace, population):
    result = benchmark.pedantic(
        lambda: simulate_costs(
            config=CostModelConfig(clients_per_ra=10), trace=trace, population=population
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for label, cycles in result.monthly.items():
        for cycle in cycles:
            rows.append(
                [
                    label,
                    cycle.cycle_index,
                    cycle.month,
                    f"{cycle.bytes_per_ra / 1024:.1f} KB",
                    human_usd(cycle.cost_usd),
                ]
            )
    table = format_table(
        ["delta", "cycle", "month", "bytes/RA", "monthly bill"],
        rows,
        title=(
            "Figure 6 — monthly bills for a CA using a CDN (10 clients per RA, "
            f"{result.total_ras:,} RAs)"
        ),
    )
    summary = format_table(
        ["delta", "average bill", "peak bill (cycle)", "paper range (avg)"],
        [
            [
                label,
                human_usd(result.average_cost(label)),
                f"{human_usd(result.peak_cycle(label).cost_usd)} ({result.peak_cycle(label).month})",
                f"${PAPER_RANGES_USD[label][0]:,} - ${PAPER_RANGES_USD[label][1]:,}",
            ]
            for label in result.monthly
        ],
        title="Summary vs. paper",
    )
    write_result("fig6_monthly_cost", table + "\n\n" + summary)

    averages = {label: result.average_cost(label) for label in result.monthly}
    # Shape: steep decrease with growing delta.
    assert averages["10s"] > 4 * averages["1m"] > 4 * averages["1h"] >= averages["1d"]
    # Order of magnitude: tens of thousands of dollars at delta = 10 s,
    # thousands or less at delta >= 1 h.
    assert 10_000 < averages["10s"] < 1_000_000
    assert averages["1h"] < 10_000
    # The Heartbleed cycle is the most expensive one for daily updates.
    assert result.peak_cycle("1d").month == "2014-04"
