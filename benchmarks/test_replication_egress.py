"""CA egress under peer anti-entropy vs the cold-sync counterfactual.

Models the region-outage recovery (docs/REPLICATION.md) at fleet sizes 1,
10, and 50: N restored RAs catch up on a 20-segment WAL backlog by syncing
peer-to-peer from an already-caught-up survivor (each newly synced RA joins
the relay pool), while the counterfactual fleet would have each RA cold-sync
the full history straight from the CA's sync endpoint.

The headline assertion: at **every** fleet size the CA-origin bytes spent on
the replicated catch-up stay strictly below ``N x cold_sync_bytes`` — the
segment stream moves the catch-up traffic onto the RA mesh, so the origin
cost of a mass restart no longer scales with the fleet.  Results land in
``benchmarks/results/replication_egress.json`` (plus a rendered ``.txt``).
"""

from __future__ import annotations

from bench_harness import write_json_result, write_result

from repro.analysis.reporting import format_table
from repro.cdn import CDNNetwork, GeoLocation
from repro.cdn.geography import Region
from repro.dictionary.sync import SyncRequest
from repro.pki import CertificationAuthority, SerialNumber
from repro.ritm import (
    RITMCertificationAuthority,
    RITMConfig,
    RevocationAgent,
    attach_agent_to_cas,
)

#: Restored-fleet sizes, matching the fleet-scaling benchmark's points.
FLEET_SIZES = (1, 10, 50)

#: The backlog the restored RAs must catch up on: 20 WAL segments of 5.
HISTORY_PERIODS = 20
PER_BATCH = 5


def _measure(fleet_size: int) -> dict:
    """Catch ``fleet_size`` restored RAs up via peer anti-entropy."""
    config = RITMConfig(delta_seconds=10, chain_length=64, store_engine="incremental")
    authority = CertificationAuthority("Egress CA", key_seed=b"replication-egress")
    cdn = CDNNetwork()
    ca = RITMCertificationAuthority(authority, config, cdn)
    ca.bootstrap(now=100)
    for period in range(HISTORY_PERIODS):
        ca.revoke(
            [
                SerialNumber(1000 + period * PER_BATCH + offset)
                for offset in range(PER_BATCH)
            ],
            now=120 + period * 10,
        )

    def attach(name, region):
        agent = RevocationAgent(name, config)
        client = attach_agent_to_cas(agent, [ca], cdn, GeoLocation(region))
        return agent, client

    # The survivor was disseminating normally before the outage; its segment
    # walk is steady-state cost, not part of the recovery bill.
    survivor, survivor_client = attach("survivor-ra", Region.UNITED_STATES)
    survivor_client.sync_via_segments(now=400)
    survivor_root = survivor.replica_for(ca.name).root()

    agents = [survivor]
    relay_pool = [survivor_client]
    restored_names = []
    peer_bytes = serials_relayed = 0
    for index in range(fleet_size):
        name = f"restored-{index:02d}"
        restored_names.append(name)
        agent, client = attach(name, Region.EUROPE)
        agents.append(agent)
        # each restored RA pulls from the pool round-robin and then relays
        result = client.sync_from_peer(relay_pool[index % len(relay_pool)], now=500)
        assert result.cold_sync_fallbacks == 0
        assert result.segments_from_peer == HISTORY_PERIODS
        assert agent.replica_for(ca.name).root() == survivor_root
        peer_bytes += result.segment_bytes_downloaded
        serials_relayed += result.serials_applied
        relay_pool.append(client)

    replication_origin_bytes = sum(
        cdn.origin_bytes_by_source.get(name, 0) for name in restored_names
    )
    request = SyncRequest(ca_name=ca.name, have_count=0)
    cold_sync_bytes_each = (
        request.encoded_size() + ca.sync_server.serve(request).encoded_size()
    )
    for agent in agents:
        agent.close()
    ca.close()
    return {
        "fleet_size": fleet_size,
        "segments_per_ra": HISTORY_PERIODS,
        "serials_per_ra": serials_relayed // fleet_size,
        "ca_origin_bytes": replication_origin_bytes,
        "peer_bytes": peer_bytes,
        "cold_sync_bytes_each": cold_sync_bytes_each,
        "cold_sync_bytes_fleet": cold_sync_bytes_each * fleet_size,
    }


def test_replication_egress_beats_cold_sync_at_every_fleet_size():
    """Pin CA egress strictly below the N-cold-syncs counterfactual."""
    samples = [_measure(fleet_size) for fleet_size in FLEET_SIZES]
    payload = {
        "history_periods": HISTORY_PERIODS,
        "serials_per_batch": PER_BATCH,
        "samples": samples,
    }
    write_json_result("replication_egress", payload)

    rows = [
        (
            s["fleet_size"],
            s["ca_origin_bytes"],
            s["cold_sync_bytes_fleet"],
            s["peer_bytes"],
        )
        for s in samples
    ]
    text = format_table(
        ["restored RAs", "CA origin B (replication)", "CA origin B (N cold syncs)", "peer B"],
        rows,
        title=(
            f"region-outage catch-up egress ({HISTORY_PERIODS} WAL segments, "
            f"{HISTORY_PERIODS * PER_BATCH} serials)"
        ),
    )
    write_result("replication_egress", text)

    for sample in samples:
        assert sample["ca_origin_bytes"] < sample["cold_sync_bytes_fleet"], (
            f"replicated catch-up cost the CA {sample['ca_origin_bytes']} B at "
            f"{sample['fleet_size']} RAs — not below the cold-sync "
            f"counterfactual {sample['cold_sync_bytes_fleet']} B"
        )
        assert sample["peer_bytes"] > 0  # the traffic moved to the RA mesh
