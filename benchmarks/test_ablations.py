"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper figures; they quantify the trade-offs the paper discusses
qualitatively:

* Δ sweep — attack window vs per-RA dissemination bandwidth (§III fn. 3, §V);
* hash truncation — 20-byte vs full 32-byte digests in the status size (§VI);
* CDN TTL — origin load with and without edge caching (§II, §VII-B);
* dictionary splitting by expiry — RA storage reduction (§VIII).
"""

from repro.analysis.overhead import figure_7, status_size_for_dictionary, storage_overhead
from repro.analysis.reporting import format_table
from repro.cdn.geography import GeoLocation, Region
from repro.cdn.network import CDNNetwork
from repro.ritm.config import PAPER_DELTA_SWEEP, RITMConfig

from bench_harness import write_result


def test_ablation_delta_attack_window_vs_bandwidth(benchmark, trace):
    """Sweep Δ: the 2Δ attack window shrinks while per-day bandwidth grows."""

    def sweep():
        rows = []
        result = figure_7(trace)
        for label, delta in PAPER_DELTA_SWEEP.items():
            config = RITMConfig.for_label(label)
            series = result.series[label]
            per_day = series.mean_bytes() * (86_400 / delta)
            rows.append((label, config.attack_window_seconds, series.mean_bytes(), per_day))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["delta", "attack window [s]", "bytes per pull", "bytes per day"],
        [[label, window, f"{pull:.0f}", f"{per_day / 1e6:.2f} MB"] for label, window, pull, per_day in rows],
        title="Ablation — delta: attack window vs per-RA dissemination bandwidth",
    )
    write_result("ablation_delta_sweep", table)

    windows = [window for _, window, _, _ in rows]
    per_day = [day for _, _, _, day in rows]
    assert windows == sorted(windows)  # larger delta, larger window
    assert per_day == sorted(per_day, reverse=True)  # larger delta, less daily traffic


def test_ablation_digest_truncation(benchmark):
    """20-byte truncated hashes (paper) vs full 32-byte SHA-256 in status size."""

    def measure():
        truncated = status_size_for_dictionary(20_000)
        # Full-width digests: rebuild the same dictionary with 32-byte hashes.
        from repro.crypto.signing import KeyPair
        from repro.dictionary.authdict import CADictionary
        from repro.pki.serial import SerialNumber
        from repro.ritm.messages import encode_status
        from repro.workloads.revocation_trace import serials_for_count

        keys = KeyPair.generate(b"ablation-digest")
        dictionary = CADictionary("Ablate-CA", keys, delta=60, chain_length=64, digest_size=32)
        values = serials_for_count(20_001, seed=9)
        dictionary.insert([SerialNumber(v) for v in values[:20_000]], now=0)
        full = len(encode_status(dictionary.prove(SerialNumber(values[-1]))))
        return truncated.absent_status_bytes, full

    truncated_bytes, full_bytes = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        ["digest size", "absence status bytes"],
        [["20 bytes (paper)", truncated_bytes], ["32 bytes", full_bytes]],
        title="Ablation — hash truncation vs revocation-status size",
    )
    write_result("ablation_digest_truncation", table)
    assert full_bytes > truncated_bytes
    # Truncation saves roughly (32-20)/32 of the hash material in the proof.
    assert (full_bytes - truncated_bytes) / full_bytes > 0.15


def test_ablation_cdn_ttl(benchmark):
    """Edge caching (TTL = Δ) slashes origin load versus the paper's TTL=0 worst case."""

    def measure():
        results = {}
        for ttl in (0.0, 60.0):
            cdn = CDNNetwork(edges_per_region=1)
            cdn.publish("/head", b"\x00" * 300, now=0.0, ttl_seconds=ttl)
            # 50 RAs in the same region poll within one delta.
            for index in range(50):
                cdn.download("/head", GeoLocation(Region.EUROPE, 0.3), now=1.0 + index * 0.1)
            results[ttl] = cdn.total_origin_bytes()
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        ["edge TTL", "bytes pulled from origin (50 RA polls)"],
        [[f"{ttl:.0f} s", volume] for ttl, volume in results.items()],
        title="Ablation — CDN caching vs origin load",
    )
    write_result("ablation_cdn_ttl", table)
    assert results[60.0] < results[0.0] / 10


def test_ablation_dictionary_splitting(benchmark):
    """§VIII: splitting dictionaries by certificate expiry lets RAs drop old entries."""

    def measure():
        whole = storage_overhead(1_381_992)
        # Assume revocations spread across 39-month validity; after splitting
        # into quarterly dictionaries, entries for expired certificates
        # (roughly half under a uniform issuance model) can be deleted.
        retained = storage_overhead(1_381_992 // 2)
        return whole, retained

    whole, retained = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        ["strategy", "entries", "storage", "memory"],
        [
            ["single append-only dictionary", whole.revocations, whole.storage_bytes, whole.memory_bytes],
            ["split by expiry (expired dropped)", retained.revocations, retained.storage_bytes, retained.memory_bytes],
        ],
        title="Ablation — ever-growing dictionary vs expiry-split dictionaries",
    )
    write_result("ablation_dictionary_splitting", table)
    assert retained.storage_bytes < whole.storage_bytes
