"""§VIII "Ever-growing dictionaries": sharded vs. unsharded RA storage.

Drives a multi-quarter clock through :class:`ShardedCADictionary` /
:class:`ShardedReplica` (one run per store engine) with certificate expiry
churn, pruning expired shards each period, and compares the replica's
storage footprint against an unsharded :class:`CADictionary` fed the same
revocations.  The quantities of interest:

* the sharded RA footprint **plateaus** (final ≈ peak) while the unsharded
  baseline grows monotonically with every revocation;
* the bytes reclaimed by pruning are **> 0** and equal on both sides of the
  protocol (the CA retires exactly the shards the RA prunes);
* per-shard proof verdicts for live serials match the unsharded oracle.

Artifacts: ``benchmarks/results/sharded_storage.json`` (machine-readable,
uploaded by CI) and ``sharded_storage.txt`` (human table).
"""

import time

import pytest

from repro.crypto.signing import KeyPair
from repro.analysis.reporting import format_table, human_bytes
from repro.dictionary.authdict import CADictionary
from repro.dictionary.sharding import ShardedCADictionary, ShardedReplica
from repro.pki.serial import SerialNumber

from bench_harness import write_json_result, write_result

WEEK = 7 * 86_400
PERIODS = 30
REVOCATIONS_PER_PERIOD = 60
SHARD_WIDTH_PERIODS = 4
CERT_LIFETIME_PERIODS = 8
EPOCH = 1_400_000_000

_RESULTS = {}


def _drive_engine(engine: str) -> dict:
    """One multi-quarter sharded run against ``engine``; returns its record."""
    keys = KeyPair.generate(f"sharded-bench-{engine}".encode())
    sharded = ShardedCADictionary(
        "Bench-CA",
        keys,
        delta=WEEK,
        chain_length=64,
        shard_seconds=SHARD_WIDTH_PERIODS * WEEK,
        engine=engine,
    )
    replica = ShardedReplica(
        "Bench-CA", keys.public, shard_seconds=SHARD_WIDTH_PERIODS * WEEK, engine=engine
    )
    baseline = CADictionary(
        "Bench-CA-unsharded", keys, delta=WEEK, chain_length=64, engine=engine
    )

    serial_counter = 0
    expiries = {}
    timeline = []
    started = time.perf_counter()
    for period in range(PERIODS):
        now = EPOCH + period * WEEK
        pairs = []
        for offset in range(REVOCATIONS_PER_PERIOD):
            serial_counter += 1
            serial = SerialNumber(serial_counter)
            expiry = now + ((offset % CERT_LIFETIME_PERIODS) + 1) * WEEK
            pairs.append((serial, expiry))
            expiries[serial_counter] = expiry
        for key, issuance in sharded.revoke(pairs, now=now):
            replica.apply_issuance(key, issuance)
        baseline.insert([serial for serial, _ in pairs], now=now)
        sharded.retire_expired(now)
        replica.prune_expired(now)
        timeline.append(
            {
                "period": period,
                "sharded_ra_bytes": replica.storage_size_bytes(),
                "unsharded_bytes": baseline.storage_size_bytes(),
                "live_shards": replica.shard_count,
            }
        )
    elapsed = time.perf_counter() - started

    end = EPOCH + PERIODS * WEEK
    live = [(value, expiry) for value, expiry in expiries.items() if expiry > end]
    mismatches = sum(
        1
        for value, expiry in live
        if replica.prove(SerialNumber(value), expiry).is_revoked
        != baseline.contains(SerialNumber(value))
    )
    return {
        "engine": engine,
        "periods": PERIODS,
        "revocations": serial_counter,
        "seconds": round(elapsed, 4),
        "timeline": timeline,
        "sharded_final_bytes": timeline[-1]["sharded_ra_bytes"],
        "sharded_peak_bytes": max(t["sharded_ra_bytes"] for t in timeline),
        "unsharded_final_bytes": timeline[-1]["unsharded_bytes"],
        "ra_reclaimed_bytes": replica.reclaimed_storage_bytes,
        "ca_reclaimed_bytes": sharded.reclaimed_storage_bytes,
        "shards_retired": sharded.retired_count,
        "live_serials_checked": len(live),
        "verdict_mismatches": mismatches,
    }


@pytest.mark.parametrize("engine", ["naive", "incremental"])
def test_sharded_storage_plateaus(benchmark, engine):
    record = benchmark.pedantic(lambda: _drive_engine(engine), rounds=1, iterations=1)
    _RESULTS[engine] = record

    assert record["shards_retired"] > 0
    assert record["ra_reclaimed_bytes"] > 0
    # The CA retires exactly the shards the RA prunes.
    assert record["ra_reclaimed_bytes"] == record["ca_reclaimed_bytes"]
    assert record["sharded_final_bytes"] < record["unsharded_final_bytes"]
    # Plateau: after the warmup (lifetime + one shard width), the footprint
    # stops growing — the peak is already reached well before the last
    # period, and the steady state stays far below the ever-growing total.
    warmup = CERT_LIFETIME_PERIODS + SHARD_WIDTH_PERIODS
    early_peak = max(
        sample["sharded_ra_bytes"] for sample in record["timeline"][: warmup + 2]
    )
    assert early_peak == record["sharded_peak_bytes"]
    assert record["sharded_peak_bytes"] < record["unsharded_final_bytes"] / 2
    assert record["verdict_mismatches"] == 0 and record["live_serials_checked"] > 0
    # Artifacts are (re)written by whichever engine run finishes last, so a
    # partial run (-k naive) still produces them and a full run has both.
    _write_artifacts()


def _write_artifacts():
    """Emit the JSON + table artifacts from the engine runs so far."""
    write_json_result("sharded_storage", _RESULTS)
    rows = [
        [
            record["engine"],
            record["revocations"],
            record["shards_retired"],
            human_bytes(record["sharded_final_bytes"]),
            human_bytes(record["unsharded_final_bytes"]),
            human_bytes(record["ra_reclaimed_bytes"]),
            f"{record['seconds']:.3f}s",
        ]
        for record in _RESULTS.values()
    ]
    table = format_table(
        [
            "engine",
            "revocations",
            "shards retired",
            "sharded RA",
            "unsharded RA",
            "reclaimed",
            "time",
        ],
        rows,
        title="§VIII expiry-sharded vs. ever-growing RA storage "
        f"({PERIODS} weekly periods, {SHARD_WIDTH_PERIODS}-week shards)",
    )
    write_result("sharded_storage", table)
