"""Importable helpers for the benchmark harness.

Benchmark modules must not import from ``conftest``: pytest imports every
``conftest.py`` in the repo under the same top-level module name, so under a
full-suite run ``import conftest`` resolves to whichever one happened to be
imported first (historically ``tests/ritm/conftest.py``), not this
directory's.  Anything benchmarks need at import time lives here instead,
under a repo-unique module name.
"""

from __future__ import annotations

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(name: str, text: str) -> str:
    """Write a rendered table/figure to benchmarks/results/<name>.txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text.rstrip() + "\n")
    return path


def write_json_result(name: str, payload: object) -> str:
    """Write a machine-readable artifact to benchmarks/results/<name>.json."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
