"""Expiry-split dictionaries ("Ever-growing dictionaries", paper §VIII).

A single append-only dictionary can never shrink, so an RA would eventually
store revocations for certificates that expired long ago.  The paper's
proposed relaxation: a CA maintains several dictionaries at once, each
dedicated to certificates that expire before a given date.  Because the CA/B
Forum caps certificate lifetimes (39 months at the time of the paper), a
revocation only ever needs to live in the shard covering its certificate's
expiry; once a shard's entire expiry window is in the past, RAs can delete
the whole shard.

This module implements that scheme on top of the ordinary
:class:`~repro.dictionary.authdict.CADictionary` / ``ReplicaDictionary``
pair:

* :class:`ShardedCADictionary` — the CA side: routes each revocation to the
  shard covering the certificate's expiry time, refreshes every live shard
  each Δ, and retires shards whose window has passed;
* :class:`ShardedReplica` — the RA side: one replica per shard, with
  ``prune_expired`` reclaiming the storage the paper's §VIII is about.

Each shard is a fully independent authenticated dictionary (own signed root,
own freshness chain), so all the security arguments of the base construction
apply unchanged per shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.crypto.signing import KeyPair, PublicKey
from repro.dictionary.authdict import CADictionary, ReplicaDictionary, RevocationIssuance
from repro.dictionary.proofs import RevocationStatus
from repro.errors import DictionaryError
from repro.pki.serial import SerialNumber

#: CA/B Forum maximum certificate lifetime at the time of the paper: 39 months.
MAX_CERTIFICATE_LIFETIME_SECONDS = 39 * 30 * 86_400
#: Default shard width: one calendar quarter of expiry dates per dictionary.
DEFAULT_SHARD_SECONDS = 90 * 86_400


def shard_name(ca_name: str, shard_index: int) -> str:
    """The per-shard dictionary name (doubles as its dissemination path key)."""
    return f"{ca_name}#expiry-{shard_index}"


@dataclass(frozen=True)
class ShardKey:
    """Identifies one expiry shard: every certificate expiring in
    ``[index * width, (index + 1) * width)`` lands in this shard."""

    index: int
    width_seconds: int

    @property
    def window_start(self) -> int:
        return self.index * self.width_seconds

    @property
    def window_end(self) -> int:
        return (self.index + 1) * self.width_seconds

    def is_expired(self, now: float) -> bool:
        """The whole shard is obsolete once every certificate in it has expired."""
        return now >= self.window_end

    @classmethod
    def for_expiry(cls, expiry: int, width_seconds: int = DEFAULT_SHARD_SECONDS) -> "ShardKey":
        if expiry < 0:
            raise DictionaryError("certificate expiry cannot be negative")
        return cls(index=expiry // width_seconds, width_seconds=width_seconds)


class ShardedCADictionary:
    """The CA side of expiry-split dictionaries."""

    def __init__(
        self,
        ca_name: str,
        keys: KeyPair,
        delta: int,
        chain_length: int = 1024,
        shard_seconds: int = DEFAULT_SHARD_SECONDS,
        digest_size: int = 20,
        engine: Optional[str] = None,
    ) -> None:
        self.ca_name = ca_name
        self._keys = keys
        self.delta = delta
        self.chain_length = chain_length
        self.shard_seconds = shard_seconds
        self._digest_size = digest_size
        self._engine = engine
        self._shards: Dict[int, CADictionary] = {}
        self._retired: List[int] = []

    # -- shard management -------------------------------------------------------

    def shard_for_expiry(self, expiry: int) -> Tuple[ShardKey, CADictionary]:
        """The (possibly newly created) shard covering ``expiry``."""
        key = ShardKey.for_expiry(expiry, self.shard_seconds)
        if key.index not in self._shards:
            self._shards[key.index] = CADictionary(
                ca_name=shard_name(self.ca_name, key.index),
                keys=self._keys,
                delta=self.delta,
                chain_length=self.chain_length,
                digest_size=self._digest_size,
                engine=self._engine,
            )
        return key, self._shards[key.index]

    def shard_keys(self) -> List[ShardKey]:
        return [ShardKey(index, self.shard_seconds) for index in sorted(self._shards)]

    def live_shards(self, now: float) -> List[Tuple[ShardKey, CADictionary]]:
        """Shards still covering unexpired certificates."""
        return [
            (key, self._shards[key.index])
            for key in self.shard_keys()
            if not key.is_expired(now)
        ]

    def retire_expired(self, now: float) -> List[ShardKey]:
        """Drop shards whose entire expiry window has passed; returns them."""
        retired = [key for key in self.shard_keys() if key.is_expired(now)]
        for key in retired:
            del self._shards[key.index]
            self._retired.append(key.index)
        return retired

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def total_revocations(self) -> int:
        return sum(shard.size for shard in self._shards.values())

    # -- CA operations ---------------------------------------------------------------

    def revoke(
        self, serials_with_expiry: Iterable[Tuple[SerialNumber, int]], now: int
    ) -> List[Tuple[ShardKey, RevocationIssuance]]:
        """Revoke certificates, routing each serial to its expiry shard.

        Returns one issuance message per touched shard (batched per shard, as
        the base dictionary's ``insert`` supports).
        """
        by_shard: Dict[int, List[SerialNumber]] = {}
        keys: Dict[int, ShardKey] = {}
        for serial, expiry in serials_with_expiry:
            key, _ = self.shard_for_expiry(expiry)
            by_shard.setdefault(key.index, []).append(serial)
            keys[key.index] = key
        issuances: List[Tuple[ShardKey, RevocationIssuance]] = []
        for index, serials in sorted(by_shard.items()):
            issuances.append((keys[index], self._shards[index].insert(serials, now)))
        return issuances

    def refresh_all(self, now: int) -> Dict[int, object]:
        """Refresh every live shard (freshness statement or re-signed root)."""
        return {
            key.index: shard.refresh(now) for key, shard in self.live_shards(now)
        }

    def prove(self, serial: SerialNumber, expiry: int, now: Optional[int] = None) -> RevocationStatus:
        """Status for ``serial`` from the shard covering its certificate's expiry."""
        key, shard = self.shard_for_expiry(expiry)
        if shard.signed_root is None:
            shard.refresh(int(now) if now is not None else 0)
        return shard.prove(serial)

    def storage_size_bytes(self) -> int:
        return sum(shard.storage_size_bytes() for shard in self._shards.values())


class ShardedReplica:
    """The RA side: one replica per shard, prunable as shards expire."""

    def __init__(
        self,
        ca_name: str,
        ca_public_key: PublicKey,
        shard_seconds: int = DEFAULT_SHARD_SECONDS,
        engine: Optional[str] = None,
    ) -> None:
        self.ca_name = ca_name
        self._ca_public_key = ca_public_key
        self.shard_seconds = shard_seconds
        self._engine = engine
        self._replicas: Dict[int, ReplicaDictionary] = {}

    def _replica_for(self, shard_index: int) -> ReplicaDictionary:
        if shard_index not in self._replicas:
            self._replicas[shard_index] = ReplicaDictionary(
                shard_name(self.ca_name, shard_index),
                self._ca_public_key,
                engine=self._engine,
            )
        return self._replicas[shard_index]

    def apply_issuance(self, key: ShardKey, issuance: RevocationIssuance) -> None:
        self._replica_for(key.index).update(issuance)

    def apply_freshness(self, shard_index: int, statement) -> None:
        self._replica_for(shard_index).apply_freshness(statement)

    def prove(self, serial: SerialNumber, expiry: int) -> RevocationStatus:
        key = ShardKey.for_expiry(expiry, self.shard_seconds)
        replica = self._replicas.get(key.index)
        if replica is None:
            raise DictionaryError(
                f"no replica for shard {key.index} of {self.ca_name!r}; sync required"
            )
        return replica.prove(serial)

    def prune_expired(self, now: float) -> int:
        """Delete replicas whose shard window has fully passed; returns entries freed."""
        freed = 0
        for index in list(self._replicas):
            if ShardKey(index, self.shard_seconds).is_expired(now):
                freed += self._replicas[index].size
                del self._replicas[index]
        return freed

    @property
    def shard_count(self) -> int:
        return len(self._replicas)

    def total_revocations(self) -> int:
        return sum(replica.size for replica in self._replicas.values())

    def storage_size_bytes(self) -> int:
        return sum(replica.storage_size_bytes() for replica in self._replicas.values())
