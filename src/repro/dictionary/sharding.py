"""Expiry-split dictionaries ("Ever-growing dictionaries", paper §VIII).

A single append-only dictionary can never shrink, so an RA would eventually
store revocations for certificates that expired long ago.  The paper's
proposed relaxation: a CA maintains several dictionaries at once, each
dedicated to certificates that expire before a given date.  Because the CA/B
Forum caps certificate lifetimes (39 months at the time of the paper), a
revocation only ever needs to live in the shard covering its certificate's
expiry; once a shard's entire expiry window is in the past, RAs can delete
the whole shard.

This module implements that scheme on top of the ordinary
:class:`~repro.dictionary.authdict.CADictionary` / ``ReplicaDictionary``
pair:

* :class:`ShardedCADictionary` — the CA side: routes each revocation to the
  shard covering the certificate's expiry time, refreshes every live shard
  each Δ, and retires shards whose window has passed;
* :class:`ShardedReplica` — the RA side: one replica per shard, with
  ``prune_expired`` reclaiming the storage the paper's §VIII is about.

Each shard is a fully independent authenticated dictionary (own signed root,
own freshness chain), so all the security arguments of the base construction
apply unchanged per shard.

Two invariants matter for the layers above (``ritm/``, ``scenarios/``,
``analysis/``):

* **the query path never mutates state** — proving a serial in a window no
  shard covers answers "absent" from a transient dictionary without
  registering a shard, so ``shard_count``/``storage_size_bytes`` are driven
  by revocations and retirement only;
* **reclaimed storage is accounted** — both sides expose
  ``reclaimed_storage_bytes`` so cost/overhead analyses can report what
  sharding saved over an ever-growing baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.crypto.signing import KeyPair, PublicKey
from repro.dictionary.authdict import CADictionary, ReplicaDictionary, RevocationIssuance
from repro.dictionary.proofs import RevocationStatus
from repro.errors import DictionaryError
from repro.pki.serial import SerialNumber

#: CA/B Forum maximum certificate lifetime at the time of the paper: 39 months.
MAX_CERTIFICATE_LIFETIME_SECONDS = 39 * 30 * 86_400
#: Default shard width: one calendar quarter of expiry dates per dictionary.
DEFAULT_SHARD_SECONDS = 90 * 86_400


def shard_name(ca_name: str, shard_index: int) -> str:
    """The per-shard dictionary name (doubles as its dissemination path key)."""
    return f"{shard_prefix(ca_name)}{shard_index}"


def shard_prefix(ca_name: str) -> str:
    """The common prefix of all of ``ca_name``'s shard names."""
    return f"{ca_name}#expiry-"


@dataclass(frozen=True)
class ShardKey:
    """Identifies one expiry shard: every certificate expiring in
    ``[index * width, (index + 1) * width)`` lands in this shard."""

    index: int
    width_seconds: int

    @property
    def window_start(self) -> int:
        """First expiry timestamp (inclusive) covered by this shard."""
        return self.index * self.width_seconds

    @property
    def window_end(self) -> int:
        """First expiry timestamp *not* covered by this shard."""
        return (self.index + 1) * self.width_seconds

    def is_expired(self, now: float) -> bool:
        """The whole shard is obsolete once every certificate in it has expired."""
        return now >= self.window_end

    @classmethod
    def for_expiry(cls, expiry: int, width_seconds: int = DEFAULT_SHARD_SECONDS) -> "ShardKey":
        """The shard key covering a certificate expiring at ``expiry``."""
        if width_seconds <= 0:
            raise DictionaryError(
                f"shard width must be a positive number of seconds, got {width_seconds}"
            )
        if expiry < 0:
            raise DictionaryError("certificate expiry cannot be negative")
        return cls(index=expiry // width_seconds, width_seconds=width_seconds)


class ShardedCADictionary:
    """The CA side of expiry-split dictionaries."""

    def __init__(
        self,
        ca_name: str,
        keys: KeyPair,
        delta: int,
        chain_length: int = 1024,
        shard_seconds: int = DEFAULT_SHARD_SECONDS,
        digest_size: int = 20,
        engine: Optional[str] = None,
    ) -> None:
        """Create an empty sharded dictionary for ``ca_name``.

        ``shard_seconds`` is the expiry-window width of each shard; every
        other parameter is passed through to the per-shard
        :class:`~repro.dictionary.authdict.CADictionary` instances.
        """
        if shard_seconds <= 0:
            raise DictionaryError(
                f"shard width must be a positive number of seconds, got {shard_seconds}"
            )
        self.ca_name = ca_name
        self._keys = keys
        self.delta = delta
        self.chain_length = chain_length
        self.shard_seconds = shard_seconds
        self._digest_size = digest_size
        self._engine = engine
        self._shards: Dict[int, CADictionary] = {}
        self._retired: List[int] = []
        #: Bytes of per-entry storage released by :meth:`retire_expired`.
        self.reclaimed_storage_bytes = 0
        #: Revocation entries dropped with their retired shards.
        self.retired_revocations = 0

    # -- shard management -------------------------------------------------------

    def _new_shard(self, shard_index: int, chain_length: Optional[int] = None) -> CADictionary:
        """A fresh (empty, unregistered) dictionary for ``shard_index``."""
        return CADictionary(
            ca_name=shard_name(self.ca_name, shard_index),
            keys=self._keys,
            delta=self.delta,
            chain_length=chain_length if chain_length is not None else self.chain_length,
            digest_size=self._digest_size,
            engine=self._engine,
        )

    def shard_for_expiry(self, expiry: int) -> Tuple[ShardKey, CADictionary]:
        """The (possibly newly created) shard covering ``expiry``.

        This is the *write-path* accessor: a missing shard is created and
        retained.  Read paths must use :meth:`shard_at` / :meth:`prove`,
        which never register new shards.
        """
        key = ShardKey.for_expiry(expiry, self.shard_seconds)
        if key.index not in self._shards:
            self._shards[key.index] = self._new_shard(key.index)
        return key, self._shards[key.index]

    def shard_at(self, shard_index: int) -> Optional[CADictionary]:
        """The retained shard with ``shard_index``, or ``None`` (no creation)."""
        return self._shards.get(shard_index)

    def shard_keys(self) -> List[ShardKey]:
        """Keys of all retained shards, in window order."""
        return [ShardKey(index, self.shard_seconds) for index in sorted(self._shards)]

    def live_shards(self, now: float) -> List[Tuple[ShardKey, CADictionary]]:
        """Shards still covering unexpired certificates."""
        return [
            (key, self._shards[key.index])
            for key in self.shard_keys()
            if not key.is_expired(now)
        ]

    def live_shard_indices(self, now: float) -> List[int]:
        """Indices of the shards still covering unexpired certificates."""
        return [key.index for key, _ in self.live_shards(now)]

    def retire_expired(self, now: float) -> List[ShardKey]:
        """Drop shards whose entire expiry window has passed; returns them.

        The per-entry storage of each dropped shard is added to
        :attr:`reclaimed_storage_bytes` — the quantity §VIII's relaxation is
        about.
        """
        retired = [key for key in self.shard_keys() if key.is_expired(now)]
        for key in retired:
            shard = self._shards[key.index]
            self.reclaimed_storage_bytes += shard.storage_size_bytes()
            self.retired_revocations += shard.size
            shard.close()  # release the retired shard's store (durable engines)
            del self._shards[key.index]
            self._retired.append(key.index)
        return retired

    def close(self) -> None:
        """Close every retained shard's backing store."""
        for shard in self._shards.values():
            shard.close()

    @property
    def shard_count(self) -> int:
        """Number of retained (non-retired) shards."""
        return len(self._shards)

    @property
    def retired_count(self) -> int:
        """Number of shards dropped by :meth:`retire_expired` so far."""
        return len(self._retired)

    def retired_indices(self) -> List[int]:
        """Indices of every shard retired so far, oldest first."""
        return list(self._retired)

    def total_revocations(self) -> int:
        """Revocation entries across all retained shards."""
        return sum(shard.size for shard in self._shards.values())

    # -- CA operations ---------------------------------------------------------------

    def validate_expiries(
        self, serials_with_expiry: Iterable[Tuple[SerialNumber, int]], now: int
    ) -> List[Tuple[SerialNumber, ShardKey]]:
        """Check every (serial, expiry) pair without touching any state.

        Rejects negative expiries, expiries beyond the CA/B Forum lifetime
        cap (``now`` + 39 months — no real certificate can expire there, so
        such a revocation would create a shard that never retires), and
        expiries whose whole shard window has already passed (the shard
        would be born retired: never listed live, never replicated by any
        RA, breaking the CA/RA lockstep-reclamation invariant), and serials
        already present (or repeated) in their target shard — so a rejected
        batch never leaves partially mutated shards behind.  The same
        serial value in *different* shards stays legal: shards are
        independent dictionaries.  Returns each serial with its resolved
        shard key.  Callers with side effects of their own (e.g. the RITM
        CA service, which records revocations in the issuance CA first) run
        this before mutating anything.
        """
        horizon = int(now) + MAX_CERTIFICATE_LIFETIME_SECONDS
        routed: List[Tuple[SerialNumber, ShardKey]] = []
        batch_seen: Dict[int, set] = {}
        for serial, expiry in serials_with_expiry:
            if expiry > horizon:
                raise DictionaryError(
                    f"certificate expiry {expiry} exceeds the maximum lifetime "
                    f"({MAX_CERTIFICATE_LIFETIME_SECONDS}s past now={int(now)})"
                )
            key = ShardKey.for_expiry(expiry, self.shard_seconds)
            if key.is_expired(now):
                raise DictionaryError(
                    f"certificate expiry {expiry} falls in shard {key.index}, "
                    f"whose whole window passed before now={int(now)}"
                )
            seen = batch_seen.setdefault(key.index, set())
            shard = self._shards.get(key.index)
            if serial.value in seen or (shard is not None and shard.contains(serial)):
                raise DictionaryError(
                    f"serial {serial} is already revoked in shard {key.index} "
                    f"of {self.ca_name!r}"
                )
            seen.add(serial.value)
            routed.append((serial, key))
        return routed

    def revoke(
        self,
        serials_with_expiry: Iterable[Tuple[SerialNumber, int]],
        now: int,
        routed: Optional[List[Tuple[SerialNumber, ShardKey]]] = None,
    ) -> List[Tuple[ShardKey, RevocationIssuance]]:
        """Revoke certificates, routing each serial to its expiry shard.

        Returns one issuance message per touched shard (batched per shard,
        as the base dictionary's ``insert`` supports).  The whole batch is
        validated (:meth:`validate_expiries`) before any shard is created,
        so a rejected batch leaves ``shard_count`` untouched; a caller that
        already ran :meth:`validate_expiries` (to order side effects of its
        own before this one) passes its result as ``routed`` to skip the
        second pass.
        """
        if routed is None:
            routed = self.validate_expiries(serials_with_expiry, now)
        by_shard: Dict[int, List[SerialNumber]] = {}
        keys: Dict[int, ShardKey] = {}
        for serial, key in routed:
            by_shard.setdefault(key.index, []).append(serial)
            keys[key.index] = key
        issuances: List[Tuple[ShardKey, RevocationIssuance]] = []
        for index, serials in sorted(by_shard.items()):
            if index not in self._shards:
                self._shards[index] = self._new_shard(index)
            issuances.append((keys[index], self._shards[index].insert(serials, now)))
        return issuances

    def refresh_all(self, now: int) -> Dict[int, object]:
        """Refresh every live shard (freshness statement or re-signed root)."""
        return {
            key.index: shard.refresh(now) for key, shard in self.live_shards(now)
        }

    def prove(self, serial: SerialNumber, expiry: int, now: Optional[int] = None) -> RevocationStatus:
        """Status for ``serial`` from the shard covering its certificate's expiry.

        Querying a window no shard covers answers "absent" from a transient
        empty dictionary — the read path never creates or retains shards, so
        ``shard_count`` and ``storage_size_bytes`` are unaffected by queries.
        Minting the absence proof (for a transient or not-yet-signed shard)
        signs a root, which needs a real timestamp: ``now`` is required in
        that case and must never default to epoch 0, which would make every
        later freshness check see thousands of elapsed Δ periods.
        """
        key = ShardKey.for_expiry(expiry, self.shard_seconds)
        shard = self._shards.get(key.index)
        if shard is None:
            # Transient, never registered — and never refreshed past its
            # first link, so a length-1 hash chain avoids paying
            # O(chain_length) hashing per uncovered-window query.
            shard = self._new_shard(key.index, chain_length=1)
        if shard.signed_root is None:
            if now is None:
                raise DictionaryError(
                    f"shard {key.index} of {self.ca_name!r} has no signed root yet; "
                    f"prove() needs a real timestamp (now=...) to mint one"
                )
            shard.refresh(int(now))
        return shard.prove(serial)

    def storage_size_bytes(self) -> int:
        """Per-entry storage across all retained shards."""
        return sum(shard.storage_size_bytes() for shard in self._shards.values())


class ShardedReplica:
    """The RA side: one replica per shard, prunable as shards expire."""

    def __init__(
        self,
        ca_name: str,
        ca_public_key: PublicKey,
        shard_seconds: int = DEFAULT_SHARD_SECONDS,
        engine: Optional[str] = None,
    ) -> None:
        """Create an empty sharded replica of ``ca_name``'s dictionaries."""
        if shard_seconds <= 0:
            raise DictionaryError(
                f"shard width must be a positive number of seconds, got {shard_seconds}"
            )
        self.ca_name = ca_name
        self._ca_public_key = ca_public_key
        self.shard_seconds = shard_seconds
        self._engine = engine
        self._replicas: Dict[int, ReplicaDictionary] = {}
        #: Bytes of per-entry storage released by :meth:`prune_expired`.
        self.reclaimed_storage_bytes = 0
        #: Revocation entries dropped with their pruned shards.
        self.pruned_revocations = 0

    def _replica_for(self, shard_index: int) -> ReplicaDictionary:
        """The (possibly newly created) replica for ``shard_index``."""
        if shard_index not in self._replicas:
            self._replicas[shard_index] = ReplicaDictionary(
                shard_name(self.ca_name, shard_index),
                self._ca_public_key,
                engine=self._engine,
            )
        return self._replicas[shard_index]

    def replica_at(self, shard_index: int) -> Optional[ReplicaDictionary]:
        """The replica holding ``shard_index``, or ``None`` (no creation)."""
        return self._replicas.get(shard_index)

    def live_indices(self) -> List[int]:
        """Indices of every shard this replica currently holds, in order."""
        return sorted(self._replicas)

    def apply_issuance(self, key: ShardKey, issuance: RevocationIssuance) -> None:
        """Apply one per-shard issuance message to the matching replica."""
        self._replica_for(key.index).update(issuance)

    def apply_freshness(self, shard_index: int, statement) -> None:
        """Apply a per-shard freshness statement."""
        self._replica_for(shard_index).apply_freshness(statement)

    def prove(self, serial: SerialNumber, expiry: int) -> RevocationStatus:
        """Status for ``serial`` from the replica of its expiry shard."""
        key = ShardKey.for_expiry(expiry, self.shard_seconds)
        replica = self._replicas.get(key.index)
        if replica is None:
            raise DictionaryError(
                f"no replica for shard {key.index} of {self.ca_name!r}; sync required"
            )
        return replica.prove(serial)

    def prune_expired(self, now: float) -> int:
        """Delete replicas whose shard window has fully passed; returns entries freed.

        The released per-entry storage accumulates in
        :attr:`reclaimed_storage_bytes`.
        """
        freed = 0
        for index in list(self._replicas):
            if ShardKey(index, self.shard_seconds).is_expired(now):
                replica = self._replicas[index]
                freed += replica.size
                self.reclaimed_storage_bytes += replica.storage_size_bytes()
                replica.close()  # release the pruned store (durable engines)
                del self._replicas[index]
        self.pruned_revocations += freed
        return freed

    def close(self) -> None:
        """Close every held shard replica's backing store."""
        for replica in self._replicas.values():
            replica.close()

    @property
    def shard_count(self) -> int:
        """Number of shard replicas currently held."""
        return len(self._replicas)

    def total_revocations(self) -> int:
        """Revocation entries across all held shard replicas."""
        return sum(replica.size for replica in self._replicas.values())

    def storage_size_bytes(self) -> int:
        """Per-entry storage across all held shard replicas."""
        return sum(replica.storage_size_bytes() for replica in self._replicas.values())
