"""Authenticated revocation dictionaries (the paper's Fig. 2 interface)."""

from repro.dictionary.authdict import (
    DEFAULT_CHAIN_LENGTH,
    CADictionary,
    ReplicaDictionary,
    RevocationIssuance,
)
from repro.dictionary.freshness import (
    FreshnessStatement,
    periods_elapsed,
    require_fresh,
    statement_is_fresh,
    statement_period,
)
from repro.dictionary.proofs import RevocationStatus
from repro.dictionary.sharding import (
    DEFAULT_SHARD_SECONDS,
    MAX_CERTIFICATE_LIFETIME_SECONDS,
    ShardKey,
    ShardedCADictionary,
    ShardedReplica,
)
from repro.dictionary.signed_root import SignedRoot
from repro.dictionary.sync import SyncRequest, SyncResponse, SyncServer, resynchronize

__all__ = [
    "CADictionary",
    "ReplicaDictionary",
    "RevocationIssuance",
    "DEFAULT_CHAIN_LENGTH",
    "SignedRoot",
    "FreshnessStatement",
    "RevocationStatus",
    "periods_elapsed",
    "statement_is_fresh",
    "statement_period",
    "require_fresh",
    "SyncRequest",
    "SyncResponse",
    "SyncServer",
    "resynchronize",
    "ShardKey",
    "ShardedCADictionary",
    "ShardedReplica",
    "DEFAULT_SHARD_SECONDS",
    "MAX_CERTIFICATE_LIFETIME_SECONDS",
]
