"""Freshness statements (Eq. 2 of the paper) and the client acceptance policy.

Every Δ seconds in which no new revocation is issued, a CA releases the next
pre-image of the hash chain whose anchor is embedded in its latest signed
root.  Holding the signed root, anyone can check that a statement is both
authentic (it links to the anchor) and recent (it links in at most
``p' + 1`` hash applications, where ``p'`` is the number of Δ periods elapsed
since the root's timestamp) — giving the effective 2Δ attack window of §V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.hashchain import statement_age, verify_freshness
from repro.dictionary.signed_root import SignedRoot
from repro.errors import StaleStatusError


@dataclass(frozen=True)
class FreshnessStatement:
    """A released hash-chain pre-image ``H^(m-p)(v)`` for one CA dictionary."""

    ca_name: str
    value: bytes
    #: The dictionary size the statement refers to; lets RAs detect that they
    #: missed a revocation-issuance message (the size advanced) even when no
    #: new root reaches them.
    dictionary_size: int = 0

    def encoded_size(self) -> int:
        return len(self.ca_name.encode("utf-8")) + len(self.value) + 4


def periods_elapsed(root_timestamp: int, now: int, delta: int) -> int:
    """``p' = floor((now - t) / Δ)`` as used in the paper's client check."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    if now < root_timestamp:
        return 0
    return (now - root_timestamp) // delta


def statement_is_fresh(
    signed_root: SignedRoot,
    statement: FreshnessStatement,
    now: int,
    delta: int,
    tolerance_periods: int = 1,
) -> bool:
    """The client acceptance check of §III step 5c.

    The statement must hash to the root's anchor within ``p'`` applications,
    or ``p' + tolerance_periods`` applications (one extra Δ of tolerance for
    the pull-based CDN, yielding the paper's 2Δ window).
    """
    elapsed = periods_elapsed(signed_root.timestamp, now, delta)
    # The statement proves the dictionary was intact at (timestamp + age*Δ);
    # the client requires that moment to be no older than tolerance periods
    # before now, i.e. age >= elapsed - tolerance.
    age = statement_age(signed_root.anchor, statement.value, signed_root.chain_length)
    if age is None:
        return False
    return age >= elapsed - tolerance_periods


def require_fresh(
    signed_root: SignedRoot,
    statement: FreshnessStatement,
    now: int,
    delta: int,
    tolerance_periods: int = 1,
) -> None:
    """Raise :class:`StaleStatusError` unless the statement passes the 2Δ check."""
    if not statement_is_fresh(signed_root, statement, now, delta, tolerance_periods):
        raise StaleStatusError(
            f"freshness statement for {signed_root.ca_name!r} is stale or unlinked "
            f"(root timestamp {signed_root.timestamp}, now {now}, delta {delta})"
        )


def statement_period(signed_root: SignedRoot, statement: FreshnessStatement) -> Optional[int]:
    """How many Δ periods after the root's signing this statement was released."""
    age = statement_age(signed_root.anchor, statement.value, signed_root.chain_length)
    return age


def authentic_statement(signed_root: SignedRoot, statement: FreshnessStatement) -> bool:
    """Does the statement link to the root's anchor at all (regardless of age)?"""
    return verify_freshness(
        signed_root.anchor,
        statement.value,
        periods_elapsed=0,
        tolerance=signed_root.chain_length,
    )
