"""Revocation status messages (Eq. 3 of the paper) and their client-side checks.

A revocation status is what an RA attaches to TLS traffic: a Merkle
presence/absence proof for the queried serial, the CA's signed root, and the
latest freshness statement.  The client accepts a certificate only if the
status carries a *valid absence proof*, the root signature verifies, and the
freshness statement is no older than 2Δ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.crypto.merkle import AbsenceProof, PresenceProof
from repro.crypto.signing import PublicKey
from repro.dictionary.freshness import FreshnessStatement, statement_is_fresh
from repro.dictionary.signed_root import SignedRoot
from repro.errors import ProofError, RevokedCertificateError, SignatureError, StaleStatusError
from repro.pki.serial import SerialNumber

MembershipProof = Union[PresenceProof, AbsenceProof]


@dataclass(frozen=True)
class RevocationStatus:
    """``proof, {root, n, H^m(v), t}_{K^-_CA}, H^(m-p)(v)`` for one serial."""

    ca_name: str
    serial: SerialNumber
    proof: MembershipProof
    signed_root: SignedRoot
    freshness: FreshnessStatement

    @property
    def is_revoked(self) -> bool:
        """True when the proof shows the serial *is* in the revocation dictionary."""
        return isinstance(self.proof, PresenceProof)

    def encoded_size(self) -> int:
        """Wire size in bytes (the paper reports 500–900 B for the largest CRL)."""
        return (
            self.proof.encoded_size()
            + self.signed_root.encoded_size()
            + self.freshness.encoded_size()
        )

    # -- verification --------------------------------------------------------

    def verify(
        self,
        ca_public_key: PublicKey,
        now: int,
        delta: int,
        tolerance_periods: int = 1,
        root_cache=None,
    ) -> None:
        """Run the full client-side check of §III step 5 (b) and (c).

        ``root_cache`` may name a
        :class:`~repro.perf.root_cache.VerifiedRootCache`; the signed root's
        Ed25519 check is then memoized per epoch (a tampered root has a
        different cache key and always takes the full verification path).
        Every other check — proof shape, root binding, freshness against
        ``now`` — runs in full on every call.

        Raises
        ------
        SignatureError
            if the signed root does not verify under ``ca_public_key``.
        ProofError
            if the Merkle proof does not verify against the signed root, or
            if the proof is for a different serial than claimed.
        StaleStatusError
            if the freshness statement is older than the acceptance window.
        RevokedCertificateError
            if everything verifies but the proof shows the serial revoked.
        """
        if root_cache is not None:
            root_cache.verify_or_raise(self.signed_root, ca_public_key)
        else:
            self.signed_root.verify_or_raise(ca_public_key)

        expected_key = self.serial.to_bytes()
        if isinstance(self.proof, PresenceProof):
            proof_key = self.proof.key
        else:
            proof_key = self.proof.key
        if proof_key != expected_key:
            raise ProofError(
                f"revocation status proof covers serial {proof_key.hex()} "
                f"but claims to be about {expected_key.hex()}"
            )
        if not self.proof.verify(self.signed_root.root):
            raise ProofError("membership proof does not verify against the signed root")

        if isinstance(self.proof, AbsenceProof) and self.proof.tree_size != self.signed_root.size:
            raise ProofError(
                "absence proof tree size does not match the signed root's dictionary size"
            )
        if isinstance(self.proof, PresenceProof) and self.proof.tree_size != self.signed_root.size:
            raise ProofError(
                "presence proof tree size does not match the signed root's dictionary size"
            )

        if not statement_is_fresh(
            self.signed_root, self.freshness, now, delta, tolerance_periods
        ):
            raise StaleStatusError(
                f"revocation status for serial {self.serial} is stale "
                f"(root signed at {self.signed_root.timestamp}, now {now})"
            )

        if self.is_revoked:
            raise RevokedCertificateError(
                f"certificate with serial {self.serial} was revoked by {self.ca_name!r}"
            )

    def is_acceptable(
        self,
        ca_public_key: PublicKey,
        now: int,
        delta: int,
        tolerance_periods: int = 1,
        root_cache=None,
    ) -> bool:
        """Boolean form of :meth:`verify` (accept = verified *and* not revoked)."""
        try:
            self.verify(ca_public_key, now, delta, tolerance_periods, root_cache)
        except (SignatureError, ProofError, StaleStatusError, RevokedCertificateError):
            return False
        return True
