"""Signed dictionary roots (Eq. 1 of the paper).

A signed root is the CA's commitment to one exact version of its revocation
dictionary: the Merkle root, the number of revocations ``n``, the hash-chain
anchor ``H^m(v)`` used for subsequent freshness statements, and the signing
timestamp, all under the CA's Ed25519 signature.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto.hashing import DEFAULT_DIGEST_SIZE
from repro.crypto.signing import SIGNATURE_SIZE, PrivateKey, PublicKey
from repro.errors import SignatureError


@dataclass(frozen=True)
class SignedRoot:
    """``{root, n, H^m(v), time()}_{K^-_CA}`` plus the chain length ``m``.

    The chain length is not strictly required for verification but lets
    replicas know how many freshness periods remain before the CA must sign a
    fresh root; it is included in the signed payload so it cannot be tampered
    with.
    """

    ca_name: str
    root: bytes
    size: int
    anchor: bytes
    timestamp: int
    chain_length: int
    signature: bytes = b""

    def payload(self) -> bytes:
        """The byte string covered by the CA's signature."""
        name = self.ca_name.encode("utf-8")
        return b"".join(
            [
                struct.pack(">H", len(name)),
                name,
                struct.pack(">H", len(self.root)),
                self.root,
                struct.pack(">QQQ", self.size, self.timestamp, self.chain_length),
                struct.pack(">H", len(self.anchor)),
                self.anchor,
            ]
        )

    def sign(self, private_key: PrivateKey) -> "SignedRoot":
        """Return a copy carrying a signature by ``private_key``."""
        return SignedRoot(
            ca_name=self.ca_name,
            root=self.root,
            size=self.size,
            anchor=self.anchor,
            timestamp=self.timestamp,
            chain_length=self.chain_length,
            signature=private_key.sign(self.payload()),
        )

    def verify(self, public_key: PublicKey) -> bool:
        """Check the CA signature."""
        if len(self.signature) != SIGNATURE_SIZE:
            return False
        return public_key.verify(self.payload(), self.signature)

    def verify_or_raise(self, public_key: PublicKey) -> None:
        if not self.verify(public_key):
            raise SignatureError(f"signed root from {self.ca_name!r} failed verification")

    def encoded_size(self) -> int:
        """Wire size in bytes, used by the communication-overhead analysis."""
        return len(self.payload()) + SIGNATURE_SIZE

    def conflicts_with(self, other: "SignedRoot") -> bool:
        """Two roots from the same CA with equal size but different roots.

        This is precisely the evidence of CA equivocation described in §V
        ("it is enough to find two different signed roots with the same
        dictionary size").
        """
        return (
            self.ca_name == other.ca_name
            and self.size == other.size
            and self.root != other.root
        )


def default_digest_size() -> int:
    """Digest size used throughout the dictionary layer."""
    return DEFAULT_DIGEST_SIZE
