"""Authenticated dictionaries: CA-side master copy and RA-side replicas.

This module implements the interface of the paper's Fig. 2:

* ``insert``  — executed by a CA revoking one or more serials; appends the
  serials (with consecutive revocation numbers), rebuilds the tree, starts a
  fresh hash chain, and returns the signed root (Eq. 1);
* ``update``  — executed by an RA on a revocation-issuance message; applies
  the same serials to its replica and accepts the change only if the
  recomputed root, size, and signature all match;
* ``refresh`` — executed by a CA at least every Δ when no revocation was
  issued; releases the next freshness statement, or signs a new root when the
  hash chain is exhausted;
* ``prove``   — executed by an RA (or CA) for a queried serial; returns the
  revocation status of Eq. 3.

Revocation numbers start at 1 and increase by one per revocation, enforcing
the append-only, totally-ordered history that makes equivocation detectable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.crypto.hashchain import HashChain
from repro.crypto.hashing import DEFAULT_DIGEST_SIZE
from repro.crypto.signing import KeyPair, PublicKey, acceptable_verifiers, verify_batch
from repro.store import create_store
from repro.dictionary.freshness import FreshnessStatement, periods_elapsed
from repro.dictionary.proofs import RevocationStatus
from repro.dictionary.signed_root import SignedRoot
from repro.errors import (
    DesynchronizedError,
    DictionaryError,
    ReplayError,
    SignatureError,
)
from repro.pki.serial import SerialNumber

#: Default hash-chain length: enough freshness statements for one day of
#: 10-second periods before a new signed root is required.
DEFAULT_CHAIN_LENGTH = 8640


def _number_to_value(number: int) -> bytes:
    """Leaf value encoding of the revocation sequence number."""
    return number.to_bytes(4, "big")


def _value_to_number(value: bytes) -> int:
    return int.from_bytes(value, "big")


@dataclass(frozen=True)
class RevocationIssuance:
    """The message a CA hands to the dissemination network when it revokes.

    Contains the newly revoked serials (in revocation order) and the new
    signed root covering the dictionary with those serials appended.
    """

    ca_name: str
    serials: Tuple[SerialNumber, ...]
    first_number: int
    signed_root: SignedRoot

    def encoded_size(self) -> int:
        serial_bytes = sum(len(serial.to_bytes()) for serial in self.serials)
        return serial_bytes + 4 + self.signed_root.encoded_size()

    def numbered_serials(self) -> List[Tuple[int, SerialNumber]]:
        return [
            (self.first_number + offset, serial)
            for offset, serial in enumerate(self.serials)
        ]


class _DictionaryCore:
    """State shared by the CA master dictionary and RA replicas.

    ``engine`` selects the :mod:`repro.store` backend per dictionary; the
    default (``None``) resolves to :data:`repro.store.DEFAULT_ENGINE`.
    """

    def __init__(
        self,
        ca_name: str,
        digest_size: int = DEFAULT_DIGEST_SIZE,
        engine: Optional[str] = None,
    ) -> None:
        self.ca_name = ca_name
        self._digest_size = digest_size
        self._tree = create_store(engine, digest_size=digest_size)
        self._numbers: Dict[int, int] = {}  # serial value -> revocation number

    @property
    def store_engine(self) -> str:
        """Registry name of the store engine backing this dictionary."""
        return self._tree.engine_name

    def close(self) -> None:
        """Release the backing store's persistent resources (if any).

        Part of the explicit lifecycle the durable engine introduced: every
        layer that owns dictionaries (:class:`~repro.ritm.agent.RevocationAgent`,
        :class:`~repro.ritm.ca_service.RITMCertificationAuthority`, the
        scenario runner) closes them when done.  Safe to call twice.
        """
        self._tree.close()

    def leaf_items(self) -> List[Tuple[bytes, bytes]]:
        """The exact ``(key, value)`` leaf set, for snapshots/checkpoints."""
        return list(self._tree.items())

    def __len__(self) -> int:
        return len(self._tree)

    @property
    def size(self) -> int:
        return len(self._tree)

    def root(self) -> bytes:
        return self._tree.root()

    def contains(self, serial: SerialNumber) -> bool:
        return serial.to_bytes() in self._tree

    def revocation_number(self, serial: SerialNumber) -> Optional[int]:
        return self._numbers.get(serial.value)

    def _append(self, serials: Sequence[SerialNumber], first_number: int) -> None:
        """Append serials with consecutive numbers in one store transaction."""
        if first_number != self.size + 1:
            raise DesynchronizedError(
                f"dictionary for {self.ca_name!r} has {self.size} revocations but the "
                f"message numbers its first serial {first_number}"
            )
        numbered: List[Tuple[int, SerialNumber]] = []
        seen = set()
        for offset, serial in enumerate(serials):
            if serial.value in self._numbers or serial.value in seen:
                raise DictionaryError(
                    f"serial {serial} is already revoked in {self.ca_name!r}'s dictionary"
                )
            seen.add(serial.value)
            numbered.append((first_number + offset, serial))
        self._tree.insert_batch(
            (serial.to_bytes(), _number_to_value(number)) for number, serial in numbered
        )
        for number, serial in numbered:
            self._numbers[serial.value] = number

    def prove_membership(self, serial: SerialNumber):
        return self._tree.prove(serial.to_bytes())

    def storage_size_bytes(self) -> int:
        """Approximate persistent storage: serial + revocation number per entry.

        This mirrors the paper's §VII-D storage estimate, which counts only
        the revocation entries (the tree itself can be rebuilt from them).
        """
        per_entry = 0
        for key in self._tree.keys():
            per_entry += len(key) + 4
        return per_entry

    def memory_size_bytes(self) -> int:
        """Approximate working-set size with the hash tree materialised."""
        entries = self.storage_size_bytes()
        # A binary tree over n leaves has ~2n digests of digest_size bytes.
        return entries + 2 * self.size * self._digest_size


class CADictionary(_DictionaryCore):
    """The master authenticated dictionary owned and signed by one CA."""

    def __init__(
        self,
        ca_name: str,
        keys: KeyPair,
        delta: int,
        chain_length: int = DEFAULT_CHAIN_LENGTH,
        digest_size: int = DEFAULT_DIGEST_SIZE,
        engine: Optional[str] = None,
    ) -> None:
        super().__init__(ca_name, digest_size, engine=engine)
        if delta <= 0:
            raise DictionaryError("delta must be a positive number of seconds")
        if chain_length < 1:
            raise DictionaryError("hash-chain length must be at least 1")
        self._keys = keys
        self.delta = delta
        self.chain_length = chain_length
        self._chain: Optional[HashChain] = None
        self._signed_root: Optional[SignedRoot] = None
        self._latest_freshness: Optional[FreshnessStatement] = None

    @property
    def public_key(self) -> PublicKey:
        return self._keys.public

    @property
    def signed_root(self) -> Optional[SignedRoot]:
        return self._signed_root

    @property
    def latest_freshness(self) -> Optional[FreshnessStatement]:
        return self._latest_freshness

    # -- Fig. 2: insert ------------------------------------------------------

    def insert(self, serials: Iterable[SerialNumber], now: int) -> RevocationIssuance:
        """Revoke ``serials`` (batch) and return the dissemination message."""
        serial_list = list(serials)
        if not serial_list:
            raise DictionaryError("insert requires at least one serial")
        first_number = self.size + 1
        self._append(serial_list, first_number)
        signed_root = self._sign_new_root(now)
        return RevocationIssuance(
            ca_name=self.ca_name,
            serials=tuple(serial_list),
            first_number=first_number,
            signed_root=signed_root,
        )

    # -- Fig. 2: refresh -----------------------------------------------------

    def refresh(self, now: int):
        """Return the periodic dissemination payload when nothing was revoked.

        Returns a :class:`FreshnessStatement` while the hash chain has unused
        links, or a fresh :class:`SignedRoot` once the chain is exhausted
        (Fig. 2, refresh step 3).
        """
        if self._signed_root is None or self._chain is None:
            # Never signed anything yet: bootstrap with a root over the
            # (possibly empty) dictionary.
            return self._sign_new_root(now)
        period = periods_elapsed(self._signed_root.timestamp, now, self.delta)
        if period >= self.chain_length:
            return self._sign_new_root(now)
        statement = FreshnessStatement(
            ca_name=self.ca_name,
            value=self._chain.statement(period),
            dictionary_size=self.size,
        )
        self._latest_freshness = statement
        return statement

    def rotate_keys(self, keys: KeyPair, now: int) -> SignedRoot:
        """Swap the signing key pair and re-sign the current content under it.

        Used by CA key rotation: the dictionary content is unchanged, but a
        fresh root (with a fresh hash chain) is signed by the incoming key so
        replicas can verify it without the outgoing key once its overlap
        window closes.
        """
        self._keys = keys
        return self._sign_new_root(now)

    # -- Fig. 2: prove -------------------------------------------------------

    def prove(self, serial: SerialNumber, now: Optional[int] = None) -> RevocationStatus:
        """Build the revocation status for ``serial`` from the master copy."""
        if self._signed_root is None:
            raise DictionaryError(
                f"{self.ca_name!r} has not signed a root yet; call refresh() or insert() first"
            )
        return RevocationStatus(
            ca_name=self.ca_name,
            serial=serial,
            proof=self.prove_membership(serial),
            signed_root=self._signed_root,
            freshness=self._current_freshness(),
        )

    # -- internals ------------------------------------------------------------

    def _sign_new_root(self, now: int) -> SignedRoot:
        self._chain = HashChain(length=self.chain_length, digest_size=self._digest_size)
        unsigned = SignedRoot(
            ca_name=self.ca_name,
            root=self.root(),
            size=self.size,
            anchor=self._chain.anchor,
            timestamp=now,
            chain_length=self.chain_length,
        )
        self._signed_root = unsigned.sign(self._keys.private)
        self._latest_freshness = FreshnessStatement(
            ca_name=self.ca_name,
            value=self._chain.anchor,
            dictionary_size=self.size,
        )
        return self._signed_root

    def _current_freshness(self) -> FreshnessStatement:
        if self._latest_freshness is None:
            raise DictionaryError("no freshness statement available yet")
        return self._latest_freshness


class ReplicaDictionary(_DictionaryCore):
    """An RA's untrusted copy of one CA's dictionary.

    The replica only accepts changes that reproduce the CA-signed root
    exactly (Fig. 2, ``update``), so a compromised RA or CDN cannot insert,
    remove, or reorder revocations without detection.
    """

    def __init__(
        self,
        ca_name: str,
        ca_public_key: PublicKey,
        digest_size: int = DEFAULT_DIGEST_SIZE,
        engine: Optional[str] = None,
    ) -> None:
        super().__init__(ca_name, digest_size, engine=engine)
        #: The CA verifier: a bare :class:`PublicKey` or a time-scoped
        #: :class:`~repro.crypto.signing.CAKeyring` (key-rotation deployments).
        self._ca_public_key = ca_public_key
        self._signed_root: Optional[SignedRoot] = None
        self._latest_freshness: Optional[FreshnessStatement] = None
        #: Hash-chain period of the current freshness statement under the
        #: current root; freshness never moves backwards (replay defense).
        self._freshness_age = 0
        #: Optional :class:`~repro.perf.root_cache.VerifiedRootCache` (duck
        #: typed: anything with ``verify_many``).  Wired by the owning
        #: :class:`~repro.ritm.agent.RevocationAgent` so every replica of
        #: one RA shares a single memo of verified roots; ``None`` keeps the
        #: replica self-contained and verification un-memoized.
        self.root_cache = None

    @property
    def ca_public_key(self) -> PublicKey:
        return self._ca_public_key

    @property
    def signed_root(self) -> Optional[SignedRoot]:
        return self._signed_root

    @property
    def latest_freshness(self) -> Optional[FreshnessStatement]:
        return self._latest_freshness

    # -- Fig. 2: update ------------------------------------------------------

    def update(self, issuance: RevocationIssuance) -> None:
        """Apply a revocation-issuance message after full verification."""
        self.update_many([issuance])

    def update_many(self, issuances: Sequence[RevocationIssuance]) -> int:
        """Apply consecutive issuance batches in *one* store transaction.

        Every message's signature and ordering is verified up front, the
        concatenated serials are merged into the store with a single batch
        insert, and the recomputed root is checked against the *final*
        CA-signed root — sound because that root commits to the entire
        merged content.  This is the path the dissemination client uses when
        a pull cycle finds several queued issuance batches.  Returns the
        number of serials applied.
        """
        if not issuances:
            return 0
        expected_first = self.size + 1
        for issuance in issuances:
            if issuance.ca_name != self.ca_name:
                raise DictionaryError(
                    f"issuance for {issuance.ca_name!r} applied to {self.ca_name!r}'s replica"
                )
            if issuance.first_number != expected_first:
                raise DesynchronizedError(
                    f"issuance batches for {self.ca_name!r} are not consecutive: expected "
                    f"first number {expected_first}, got {issuance.first_number}"
                )
            expected_first += len(issuance.serials)
        # Every queued batch's root signature is checked in one batched
        # verification (amortized doubling chain; memoized when the owning
        # agent wired a shared root cache) before anything is staged.
        self._verify_root_signatures([issuance.signed_root for issuance in issuances])
        signed_root = issuances[-1].signed_root
        if self._signed_root is not None and signed_root.timestamp < self._signed_root.timestamp:
            raise DictionaryError("revocation issuance is older than the current signed root")

        serials = [serial for issuance in issuances for serial in issuance.serials]
        self._append(serials, issuances[0].first_number)

        if self.root() != signed_root.root or self.size != signed_root.size:
            # The paper's update step 3: reject the whole change.  The staged
            # batch is rolled back, so the replica keeps serving its previous
            # verified state; the dissemination layer falls back to the sync
            # protocol to recover the honest suffix.
            self._tree.remove_batch(serial.to_bytes() for serial in serials)
            for serial in serials:
                del self._numbers[serial.value]
            raise DesynchronizedError(
                f"replica of {self.ca_name!r} rejected an issuance: locally recomputed "
                f"root does not match the CA-signed root (batch rolled back; resync "
                f"required)"
            )
        self._signed_root = signed_root
        self._latest_freshness = FreshnessStatement(
            ca_name=self.ca_name, value=signed_root.anchor, dictionary_size=self.size
        )
        self._freshness_age = 0
        return len(serials)

    def _verify_root_signatures(self, signed_roots: Sequence[SignedRoot]) -> None:
        """Batch-verify root signatures, memoized through :attr:`root_cache`."""
        if self.root_cache is not None:
            verdicts = self.root_cache.verify_many(signed_roots, self._ca_public_key)
        else:
            keys = acceptable_verifiers(self._ca_public_key)
            verdicts = verify_batch(
                [
                    (keys[0], signed_root.payload(), signed_root.signature)
                    for signed_root in signed_roots
                ]
            ) if keys else [False] * len(signed_roots)
            # Overlap fallback for keyrings: retry failures under the older
            # still-acceptable keys (mid-rotation issuance batches).
            for index, valid in enumerate(verdicts):
                if not valid:
                    verdicts[index] = any(
                        key.verify(
                            signed_roots[index].payload(), signed_roots[index].signature
                        )
                        for key in keys[1:]
                    )
        if not all(verdicts):
            raise SignatureError(
                f"revocation issuance for {self.ca_name!r} carries an invalid root signature"
            )

    def install_root(self, signed_root: SignedRoot) -> None:
        """Accept a re-signed root over unchanged content (chain exhaustion)."""
        if not self._root_signature_valid(signed_root):
            raise SignatureError("re-signed root failed verification")
        if signed_root.size != self.size or signed_root.root != self.root():
            raise DesynchronizedError(
                f"replica of {self.ca_name!r} is desynchronized: CA signed size "
                f"{signed_root.size}, replica has {self.size}"
            )
        self._signed_root = signed_root
        self._latest_freshness = FreshnessStatement(
            ca_name=self.ca_name, value=signed_root.anchor, dictionary_size=self.size
        )
        self._freshness_age = 0

    def restore_snapshot(
        self,
        items: Sequence[Tuple[bytes, bytes]],
        signed_root: SignedRoot,
        freshness: FreshnessStatement,
    ) -> None:
        """Warm-start an empty replica from checkpointed state, verifying it.

        ``items`` is the leaf dump of a previous replica of the same CA
        (:meth:`leaf_items`), ``signed_root``/``freshness`` the verified
        state it was serving.  The checkpoint is *not* trusted: the root
        signature is re-verified under the CA key, the tree is rebuilt and
        its recomputed root compared against the signed one, and the
        freshness statement must link to the root's anchor — so a corrupted
        or tampered checkpoint can never warm-start a replica into a state
        the CA did not sign.  On any mismatch the replica is rolled back to
        empty (cold sync still works) and the error propagates.
        """
        if signed_root.ca_name != self.ca_name:
            raise DictionaryError(
                f"checkpoint for {signed_root.ca_name!r} restored into "
                f"{self.ca_name!r}'s replica"
            )
        if self.size:
            raise DictionaryError(
                f"replica of {self.ca_name!r} is not empty; restore_snapshot "
                f"requires a fresh replica"
            )
        if not self._root_signature_valid(signed_root):
            raise SignatureError(
                f"checkpointed root for {self.ca_name!r} failed verification"
            )
        self._tree.insert_batch(items)
        if self.root() != signed_root.root or self.size != signed_root.size:
            self._tree.remove_batch(key for key, _ in items)
            raise DesynchronizedError(
                f"checkpointed leaves for {self.ca_name!r} do not reproduce "
                f"the signed root; checkpoint rejected"
            )
        for key, value in items:
            serial = SerialNumber.from_bytes(key)
            self._numbers[serial.value] = _value_to_number(value)
        self._signed_root = signed_root
        self._freshness_age = 0
        try:
            self.apply_freshness(freshness)
        except DictionaryError:
            # A freshness statement that does not link invalidates only the
            # *freshness* half; fall back to the root's own anchor (always
            # linkable) so the replica still warm-starts.
            self._latest_freshness = FreshnessStatement(
                ca_name=self.ca_name,
                value=signed_root.anchor,
                dictionary_size=self.size,
            )
            self._freshness_age = 0

    def _root_signature_valid(self, signed_root: SignedRoot) -> bool:
        """One root's signature check, memoized through :attr:`root_cache`."""
        if self.root_cache is not None:
            return self.root_cache.verify(signed_root, self._ca_public_key)
        return signed_root.verify(self._ca_public_key)

    def apply_freshness(self, statement: FreshnessStatement) -> None:
        """Replace the stored freshness statement after linking it to the anchor.

        Freshness is monotonic under one root: a statement for an *older*
        hash-chain period than the one currently held is a replay (a
        recorded pre-image re-presented to roll the replica's notion of
        "fresh" backwards) and raises :class:`ReplayError`.  Re-presenting
        the current period is idempotent and accepted, so CDN re-serves of
        the live object are harmless.
        """
        if statement.ca_name != self.ca_name:
            raise DictionaryError("freshness statement for a different CA")
        if self._signed_root is None:
            raise DesynchronizedError(
                f"replica of {self.ca_name!r} has no signed root yet; sync required"
            )
        from repro.crypto.hashchain import statement_age

        if statement.dictionary_size > self.size:
            raise DesynchronizedError(
                f"replica of {self.ca_name!r} has {self.size} revocations but the CA "
                f"reports {statement.dictionary_size}; sync required"
            )
        age = statement_age(
            self._signed_root.anchor, statement.value, self._signed_root.chain_length
        )
        if age is None:
            raise DictionaryError("freshness statement does not link to the current anchor")
        if age < self._freshness_age:
            raise ReplayError(
                f"freshness statement for {self.ca_name!r} replays period {age} but the "
                f"replica already holds period {self._freshness_age}"
            )
        self._latest_freshness = statement
        self._freshness_age = age

    # -- Fig. 2: prove --------------------------------------------------------

    def prove(self, serial: SerialNumber, now: Optional[int] = None) -> RevocationStatus:
        """Build the revocation status (Eq. 3) for ``serial`` from the replica."""
        if self._signed_root is None or self._latest_freshness is None:
            raise DesynchronizedError(
                f"replica of {self.ca_name!r} has no signed root / freshness statement yet"
            )
        return RevocationStatus(
            ca_name=self.ca_name,
            serial=serial,
            proof=self.prove_membership(serial),
            signed_root=self._signed_root,
            freshness=self._latest_freshness,
        )

    def is_desynchronized(self, advertised_size: int) -> bool:
        """Does the CA advertise more revocations than this replica holds?"""
        return advertised_size > self.size
