"""Replica synchronization protocol (paper §III, "Dissemination").

Every revocation-issuance message carries the dictionary size ``n``, so an RA
can detect that its replica fell behind (e.g. it missed a CDN object while
offline).  To recover, the RA tells an edge server (or the CA's distribution
point) how many *valid consecutive revocations* it has observed, and receives
every later revocation, in order, plus the current signed root.

The CA keeps the full ordered revocation history, so serving a sync request
is a slice operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dictionary.authdict import CADictionary, ReplicaDictionary, RevocationIssuance
from repro.dictionary.freshness import FreshnessStatement
from repro.dictionary.signed_root import SignedRoot
from repro.errors import DesynchronizedError
from repro.pki.serial import SerialNumber


@dataclass(frozen=True)
class SyncRequest:
    """An RA's request: "I hold ``have_count`` consecutive revocations of ``ca_name``"."""

    ca_name: str
    have_count: int

    def encoded_size(self) -> int:
        return len(self.ca_name.encode("utf-8")) + 4


@dataclass(frozen=True)
class SyncResponse:
    """The missing suffix of the revocation history plus the current root."""

    ca_name: str
    first_number: int
    serials: Tuple[SerialNumber, ...]
    signed_root: SignedRoot
    freshness: Optional[FreshnessStatement] = None

    def encoded_size(self) -> int:
        size = len(self.ca_name.encode("utf-8")) + 4 + self.signed_root.encoded_size()
        size += sum(len(serial.to_bytes()) for serial in self.serials)
        if self.freshness is not None:
            size += self.freshness.encoded_size()
        return size

    def as_issuance(self) -> RevocationIssuance:
        """Repackage the missing suffix as an ordinary issuance message."""
        return RevocationIssuance(
            ca_name=self.ca_name,
            serials=self.serials,
            first_number=self.first_number,
            signed_root=self.signed_root,
        )


class SyncServer:
    """Serves sync requests from the CA's master dictionary and history."""

    def __init__(self, dictionary: CADictionary) -> None:
        self._dictionary = dictionary
        self._history: List[SerialNumber] = []

    def record_issuance(self, issuance: RevocationIssuance) -> None:
        """Track the ordered revocation history as the CA issues revocations."""
        if issuance.first_number != len(self._history) + 1:
            raise DesynchronizedError(
                "sync server history out of order with the CA dictionary"
            )
        self._history.extend(issuance.serials)

    def history_length(self) -> int:
        return len(self._history)

    def serve(self, request: SyncRequest) -> SyncResponse:
        """Return everything the requester is missing."""
        if request.ca_name != self._dictionary.ca_name:
            raise DesynchronizedError(
                f"sync request for {request.ca_name!r} served by {self._dictionary.ca_name!r}"
            )
        if request.have_count > len(self._history):
            raise DesynchronizedError(
                "requester claims more revocations than the CA has issued"
            )
        signed_root = self._dictionary.signed_root
        if signed_root is None:
            raise DesynchronizedError("CA has not signed a root yet; nothing to sync")
        missing = tuple(self._history[request.have_count :])
        return SyncResponse(
            ca_name=request.ca_name,
            first_number=request.have_count + 1,
            serials=missing,
            signed_root=signed_root,
            freshness=self._dictionary.latest_freshness,
        )


def resynchronize(replica: ReplicaDictionary, server: SyncServer) -> int:
    """Bring ``replica`` up to date against ``server``; returns entries applied."""
    response = server.serve(SyncRequest(ca_name=replica.ca_name, have_count=replica.size))
    applied = len(response.serials)
    if response.serials:
        replica.update(response.as_issuance())
    else:
        replica.install_root(response.signed_root)
    if response.freshness is not None:
        replica.apply_freshness(response.freshness)
    return applied
