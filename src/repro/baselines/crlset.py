"""Browser-pushed revocation lists: CRLSet (Chrome) / OneCRL (Firefox).

The vendor aggregates revocations from CA CRLs, filters them down to a small
"important" subset (the paper cites 0.35 % coverage), and ships the result to
clients through the browser's software-update channel.  No extra connection
at handshake time and no privacy leak — but coverage is tiny, updates are
infrequent, and clients apply updates at irregular times (a heavy-tailed
lag), so the attack window is days to weeks and most revocations are simply
never delivered.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.baselines.base import (
    CheckContext,
    CheckResult,
    ComparisonParameters,
    GroundTruth,
    RevocationScheme,
    SchemeProperties,
)

#: Fraction of all revocations the vendor list covers (0.35 % per the paper).
DEFAULT_COVERAGE = 0.0035
#: How often the vendor cuts a new list.
DEFAULT_UPDATE_PERIOD = 86_400.0
#: Bytes per entry in the pushed set (Chrome stores truncated SPKI/serial pairs).
CRLSET_ENTRY_BYTES = 12


@dataclass
class PushedSet:
    """One vendor-published revocation set."""

    published_at: float
    serials: Tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        return 2_000 + CRLSET_ENTRY_BYTES * len(self.serials)


class CRLSetScheme(RevocationScheme):
    """Vendor-curated, software-update-distributed revocation sets."""

    name = "CRLSet"

    def __init__(
        self,
        ground_truth: GroundTruth,
        coverage: float = DEFAULT_COVERAGE,
        update_period: float = DEFAULT_UPDATE_PERIOD,
        mean_client_update_lag: float = 2 * 86_400.0,
        seed: int = 33,
    ) -> None:
        super().__init__(ground_truth)
        if not 0.0 < coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")
        self.coverage = coverage
        self.update_period = update_period
        self.mean_client_update_lag = mean_client_update_lag
        self._rng = random.Random(seed)
        self._current: Optional[PushedSet] = None
        #: Per-client: the set version they have actually applied.
        self._client_sets: Dict[str, PushedSet] = {}
        self._client_lags: Dict[str, float] = {}

    # -- vendor side --------------------------------------------------------------

    def vendor_publish_if_due(self, now: float) -> PushedSet:
        if self._current is None or now >= self._current.published_at + self.update_period:
            revoked = self.ground_truth.revoked_serials(now)
            keep = max(1, int(len(revoked) * self.coverage)) if revoked else 0
            # The vendor prioritises "important" revocations; model that as a
            # deterministic sample seeded by the publication time.
            sample_rng = random.Random((self._rng.random(), len(revoked)).__hash__())
            selected = tuple(sorted(sample_rng.sample(revoked, keep))) if keep else ()
            self._current = PushedSet(published_at=now, serials=selected)
        return self._current

    # -- client side ---------------------------------------------------------------

    def _client_lag(self, client_id: str) -> float:
        """Heavy-tailed software-update lag, fixed per client."""
        if client_id not in self._client_lags:
            if self.mean_client_update_lag <= 0:
                self._client_lags[client_id] = 0.0
            else:
                lag_rng = random.Random(client_id)
                self._client_lags[client_id] = lag_rng.expovariate(
                    1.0 / self.mean_client_update_lag
                )
        return self._client_lags[client_id]

    def check(self, context: CheckContext) -> CheckResult:
        published = self.vendor_publish_if_due(context.now)
        lag = self._client_lag(context.client_id)
        client_set = self._client_sets.get(context.client_id)
        bytes_downloaded = 0
        connections = 0
        if context.now >= published.published_at + lag and client_set is not published:
            # The client's updater finally applies the new set.
            self._client_sets[context.client_id] = published
            client_set = published
            bytes_downloaded = published.size_bytes
            connections = 1
        if client_set is None:
            return CheckResult(
                scheme=self.name,
                revoked=False,
                notes="client has never received a revocation set",
                staleness_bound_seconds=float("inf"),
            )
        revoked = context.serial.value in client_set.serials
        truly_revoked = self.ground_truth.is_revoked(context.serial, context.now)
        note = ""
        if truly_revoked and not revoked:
            note = "revocation missed: not covered by the vendor set"
        return CheckResult(
            scheme=self.name,
            revoked=revoked,
            connections_made=connections,
            bytes_downloaded=bytes_downloaded,
            latency_seconds=0.0,
            privacy_leaked_to=[],
            staleness_bound_seconds=context.now - client_set.published_at + lag,
            notes=note,
        )

    def properties(self) -> SchemeProperties:
        return SchemeProperties(
            near_instant=False,
            privacy=True,
            efficiency=False,
            transparency=False,
            no_server_changes=True,
        )

    def client_storage_entries(self, totals: ComparisonParameters) -> int:
        return totals.n_revocations  # Table IV charges the full list conceptually

    def global_storage_entries(self, totals: ComparisonParameters) -> int:
        return totals.n_revocations * (totals.n_clients + 1)

    def client_connections(self, totals: ComparisonParameters) -> int:
        return 1

    def global_connections(self, totals: ComparisonParameters) -> int:
        return totals.n_clients
