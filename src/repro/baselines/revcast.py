"""RevCast (Schulman et al., CCS 2014): revocation over FM radio broadcast.

CAs broadcast revocations over FM RDS side channels; clients with radio
receivers collect them into a locally stored CRL.  Reception is private and
push-based, but the channel is narrow — the paper cites a maximum of
421.8 bit/s — so a Heartbleed-scale burst queues up for a long time, every
client must store the full list, and clients that were not listening need a
separate catch-up infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines.base import (
    CheckContext,
    CheckResult,
    ComparisonParameters,
    GroundTruth,
    RevocationScheme,
    SchemeProperties,
)

#: Maximum broadcast bandwidth reported by the RevCast paper.
BROADCAST_BITS_PER_SECOND = 421.8
#: Bits needed on air per revocation (serial + CA id + signature amortised).
BITS_PER_REVOCATION = 280


@dataclass
class BroadcastSchedule:
    """The CA-side broadcast queue: revocations go on air in FIFO order."""

    ground_truth: GroundTruth
    bits_per_second: float = BROADCAST_BITS_PER_SECOND
    bits_per_revocation: float = BITS_PER_REVOCATION

    def airtime_for(self, queue_position: int) -> float:
        """Seconds until the ``queue_position``-th queued revocation is sent."""
        return (queue_position + 1) * self.bits_per_revocation / self.bits_per_second

    def broadcast_time(self, serial_value: int) -> Optional[float]:
        """Absolute time the revocation of ``serial_value`` finishes airing."""
        revoked_at = self.ground_truth.revoked_at.get(serial_value)
        if revoked_at is None:
            return None
        # Everything revoked at or before this serial's revocation time is in
        # the queue ahead of (or with) it; approximate FIFO position by count.
        ahead = sum(1 for time in self.ground_truth.revoked_at.values() if time < revoked_at)
        return revoked_at + self.airtime_for(ahead % 1_000_000)

    def backlog_seconds(self, burst_size: int) -> float:
        """Airtime needed to flush a burst of ``burst_size`` revocations."""
        return burst_size * self.bits_per_revocation / self.bits_per_second


class RevCastScheme(RevocationScheme):
    """Radio-broadcast revocation with client-side full lists."""

    name = "RevCast"

    def __init__(self, ground_truth: GroundTruth, listener_uptime: float = 1.0) -> None:
        """``listener_uptime`` is the fraction of time a client's receiver is
        on; clients that were off the air need the catch-up infrastructure."""
        super().__init__(ground_truth)
        self.schedule = BroadcastSchedule(ground_truth)
        self.listener_uptime = listener_uptime
        #: Per-client received-serial sets (the locally stored CRL).
        self._received: Dict[str, set] = {}

    def _sync_client(self, client_id: str, now: float) -> set:
        received = self._received.setdefault(client_id, set())
        for serial_value in self.ground_truth.revoked_at:
            on_air_at = self.schedule.broadcast_time(serial_value)
            if on_air_at is not None and on_air_at <= now:
                received.add(serial_value)
        return received

    def check(self, context: CheckContext) -> CheckResult:
        received = self._sync_client(context.client_id, context.now)
        revoked = context.serial.value in received
        truly_revoked = self.ground_truth.is_revoked(context.serial, context.now)
        on_air_at = self.schedule.broadcast_time(context.serial.value)
        note = ""
        staleness = 0.0
        if truly_revoked and not revoked and on_air_at is not None:
            note = "revocation still queued for broadcast"
            staleness = on_air_at - context.now
        return CheckResult(
            scheme=self.name,
            revoked=revoked,
            connections_made=0,
            bytes_downloaded=0,
            latency_seconds=0.0,
            privacy_leaked_to=[],
            staleness_bound_seconds=staleness,
            notes=note,
        )

    def properties(self) -> SchemeProperties:
        return SchemeProperties(
            near_instant=True,
            privacy=True,
            efficiency=False,
            transparency=False,
            no_server_changes=True,
        )

    def client_storage_entries(self, totals: ComparisonParameters) -> int:
        return totals.n_revocations

    def global_storage_entries(self, totals: ComparisonParameters) -> int:
        return totals.n_revocations * (totals.n_clients + 1)

    def client_connections(self, totals: ComparisonParameters) -> int:
        # Table IV charges RevCast one reception per revocation.
        return totals.n_revocations

    def global_connections(self, totals: ComparisonParameters) -> int:
        return totals.n_clients
