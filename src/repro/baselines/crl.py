"""Certificate Revocation Lists (RFC 5280) and delta CRLs.

The oldest revocation mechanism: the CA periodically publishes the full list
of revoked serials at a distribution point; clients download it (all of it)
during certificate validation and cache it until ``nextUpdate``.  Delta CRLs
let a client that already holds a base CRL fetch only the serials revoked
since that base was published.

Drawbacks reproduced here (see §II of the paper): full-list downloads are
large, the distribution point learns which clients are validating (a CA can
even mount a targeted-distribution-point attack), revocations become visible
only at the publication period, and availability of the distribution point is
a hard dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines.base import (
    CheckContext,
    CheckResult,
    ComparisonParameters,
    GroundTruth,
    RevocationScheme,
    SchemeProperties,
)

#: Bytes per CRL entry (serial + revocation date + extensions), matching the
#: ~22 bytes/entry implied by the paper's 339,557-entry / 7.5 MB largest CRL.
CRL_ENTRY_BYTES = 22
#: Fixed CRL envelope: signature, issuer name, validity, extensions.
CRL_OVERHEAD_BYTES = 600
#: Typical publication period (thisUpdate → nextUpdate): 24 hours.
DEFAULT_PUBLICATION_PERIOD = 86_400.0
#: Round trip to a CRL distribution point.
DISTRIBUTION_POINT_RTT = 0.12
DISTRIBUTION_POINT_BANDWIDTH = 2_000_000.0  # bytes/second


@dataclass
class PublishedCRL:
    """One published CRL snapshot."""

    this_update: float
    next_update: float
    serials: Tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        return CRL_OVERHEAD_BYTES + CRL_ENTRY_BYTES * len(self.serials)


class CRLDistributionPoint:
    """The CA-operated server that publishes (and serves) CRLs."""

    def __init__(
        self,
        ground_truth: GroundTruth,
        publication_period: float = DEFAULT_PUBLICATION_PERIOD,
        available: bool = True,
    ) -> None:
        self.ground_truth = ground_truth
        self.publication_period = publication_period
        self.available = available
        self._published: Optional[PublishedCRL] = None
        self.requests_served = 0
        self.request_log: List[Tuple[str, float]] = []

    def publish_if_due(self, now: float) -> PublishedCRL:
        if self._published is None or now >= self._published.next_update:
            self._published = PublishedCRL(
                this_update=now,
                next_update=now + self.publication_period,
                serials=tuple(self.ground_truth.revoked_serials(now)),
            )
        return self._published

    def serve(self, client_id: str, now: float) -> Optional[PublishedCRL]:
        """Serve the current CRL (or ``None`` if the point is unreachable)."""
        if not self.available:
            return None
        self.requests_served += 1
        self.request_log.append((client_id, now))
        return self.publish_if_due(now)

    def serve_delta(
        self, client_id: str, base_update: float, now: float
    ) -> Optional[Tuple[PublishedCRL, List[int]]]:
        """Serve a delta CRL relative to a base published at ``base_update``."""
        crl = self.serve(client_id, now)
        if crl is None:
            return None
        delta = [
            serial
            for serial, revoked_at in self.ground_truth.revoked_at.items()
            if base_update < revoked_at <= now
        ]
        return crl, sorted(delta)


class CRLScheme(RevocationScheme):
    """Full-CRL checking with client-side caching until ``nextUpdate``."""

    name = "CRL"

    def __init__(
        self,
        ground_truth: GroundTruth,
        publication_period: float = DEFAULT_PUBLICATION_PERIOD,
    ) -> None:
        super().__init__(ground_truth)
        self.distribution_point = CRLDistributionPoint(ground_truth, publication_period)
        #: Per-client cached CRL.
        self._client_cache: Dict[str, PublishedCRL] = {}

    def properties(self) -> SchemeProperties:
        return SchemeProperties(
            near_instant=False,
            privacy=False,
            efficiency=False,
            transparency=False,
            no_server_changes=True,
        )

    def check(self, context: CheckContext) -> CheckResult:
        cached = self._client_cache.get(context.client_id)
        connections = 0
        bytes_downloaded = 0
        latency = 0.0
        leaked: List[str] = []
        if cached is None or context.now >= cached.next_update:
            crl = self.distribution_point.serve(context.client_id, context.now)
            if crl is None:
                return CheckResult(
                    scheme=self.name,
                    revoked=None,
                    notes="CRL distribution point unavailable",
                )
            self._client_cache[context.client_id] = crl
            cached = crl
            connections = 1
            bytes_downloaded = crl.size_bytes
            latency = DISTRIBUTION_POINT_RTT + crl.size_bytes / DISTRIBUTION_POINT_BANDWIDTH
            leaked = ["CA distribution point"]
        revoked = context.serial.value in cached.serials
        return CheckResult(
            scheme=self.name,
            revoked=revoked,
            connections_made=connections,
            bytes_downloaded=bytes_downloaded,
            latency_seconds=latency,
            privacy_leaked_to=leaked,
            staleness_bound_seconds=self.distribution_point.publication_period
            + (context.now - cached.this_update),
        )

    # -- Table IV formulas ------------------------------------------------------

    def client_storage_entries(self, totals: ComparisonParameters) -> int:
        return totals.n_revocations

    def global_storage_entries(self, totals: ComparisonParameters) -> int:
        # Every client plus the CA itself stores the full list.
        return totals.n_revocations * (totals.n_clients + 1)

    def client_connections(self, totals: ComparisonParameters) -> int:
        return totals.n_cas

    def global_connections(self, totals: ComparisonParameters) -> int:
        return totals.n_clients * totals.n_cas


class DeltaCRLScheme(CRLScheme):
    """CRL checking where warm clients fetch only newly revoked serials."""

    name = "Delta-CRL"

    def check(self, context: CheckContext) -> CheckResult:
        cached = self._client_cache.get(context.client_id)
        if cached is None:
            # Cold start: behave exactly like a full CRL fetch.
            return super().check(context)
        if context.now < cached.next_update:
            return CheckResult(
                scheme=self.name,
                revoked=context.serial.value in cached.serials,
                staleness_bound_seconds=self.distribution_point.publication_period
                + (context.now - cached.this_update),
            )
        served = self.distribution_point.serve_delta(
            context.client_id, cached.this_update, context.now
        )
        if served is None:
            return CheckResult(scheme=self.name, revoked=None, notes="distribution point unavailable")
        full, delta = served
        merged = tuple(sorted(set(cached.serials) | set(delta)))
        refreshed = PublishedCRL(
            this_update=full.this_update, next_update=full.next_update, serials=merged
        )
        self._client_cache[context.client_id] = refreshed
        delta_bytes = CRL_OVERHEAD_BYTES + CRL_ENTRY_BYTES * len(delta)
        return CheckResult(
            scheme=self.name,
            revoked=context.serial.value in merged,
            connections_made=1,
            bytes_downloaded=delta_bytes,
            latency_seconds=DISTRIBUTION_POINT_RTT
            + delta_bytes / DISTRIBUTION_POINT_BANDWIDTH,
            privacy_leaked_to=["CA distribution point"],
            staleness_bound_seconds=self.distribution_point.publication_period,
        )
