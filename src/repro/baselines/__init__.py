"""Baseline revocation schemes and the Table IV comparison harness."""

from repro.baselines.base import (
    CheckContext,
    CheckResult,
    ComparisonParameters,
    GroundTruth,
    Property,
    RevocationScheme,
    SchemeProperties,
)
from repro.baselines.comparison import (
    DEFAULT_PARAMETERS,
    PAPER_FORMULAS,
    ComparisonRow,
    build_comparison_table,
    default_scheme_factories,
    evaluate_formula,
)
from repro.baselines.crl import CRLDistributionPoint, CRLScheme, DeltaCRLScheme
from repro.baselines.crlset import CRLSetScheme
from repro.baselines.logbased import (
    ClientDrivenLogScheme,
    RevocationLog,
    ServerDrivenLogScheme,
)
from repro.baselines.ocsp import OCSPResponder, OCSPScheme, OCSPStaplingScheme
from repro.baselines.revcast import BroadcastSchedule, RevCastScheme
from repro.baselines.ritm_adapter import RITMAdapterScheme
from repro.baselines.short_lived import ShortLivedCertificateScheme

__all__ = [
    "GroundTruth",
    "CheckContext",
    "CheckResult",
    "RevocationScheme",
    "SchemeProperties",
    "Property",
    "ComparisonParameters",
    "CRLScheme",
    "DeltaCRLScheme",
    "CRLDistributionPoint",
    "CRLSetScheme",
    "OCSPScheme",
    "OCSPStaplingScheme",
    "OCSPResponder",
    "ShortLivedCertificateScheme",
    "ClientDrivenLogScheme",
    "ServerDrivenLogScheme",
    "RevocationLog",
    "RevCastScheme",
    "BroadcastSchedule",
    "RITMAdapterScheme",
    "ComparisonRow",
    "build_comparison_table",
    "default_scheme_factories",
    "evaluate_formula",
    "PAPER_FORMULAS",
    "DEFAULT_PARAMETERS",
]
