"""Common interface for the revocation schemes RITM is compared against.

Table IV of the paper compares RITM with CRLs, CRLSets, OCSP, OCSP Stapling,
log-based approaches (client- and server-driven), and RevCast along two axes:

* quantitative — how much revocation state each party stores and how many
  connections are needed for a client to learn a certificate's status;
* qualitative — which desired properties each scheme violates
  (near-instant revocation **I**, privacy **P**, efficiency/scalability
  **E**, transparency/accountability **T**, and no-server-changes **S**).

Every baseline in this package is a small but *functional* implementation of
its scheme (clients really download CRLs, query responders, receive stapled
responses, ...), sharing this module's vocabulary so the comparison harness
can drive them uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.pki.serial import SerialNumber


class Property(Enum):
    """The desired properties of §II, with Table IV's letter codes."""

    NEAR_INSTANT = "I"
    PRIVACY = "P"
    EFFICIENCY = "E"
    TRANSPARENCY = "T"
    NO_SERVER_CHANGES = "S"


@dataclass(frozen=True)
class SchemeProperties:
    """Which properties a scheme provides; the rest are "violated"."""

    near_instant: bool
    privacy: bool
    efficiency: bool
    transparency: bool
    no_server_changes: bool

    def violated(self) -> Set[Property]:
        violations = set()
        if not self.near_instant:
            violations.add(Property.NEAR_INSTANT)
        if not self.privacy:
            violations.add(Property.PRIVACY)
        if not self.efficiency:
            violations.add(Property.EFFICIENCY)
        if not self.transparency:
            violations.add(Property.TRANSPARENCY)
        if not self.no_server_changes:
            violations.add(Property.NO_SERVER_CHANGES)
        return violations

    def violated_letters(self) -> str:
        # Letter order follows the paper's Table IV presentation.
        order = "IPEST"
        letters = {prop.value for prop in self.violated()}
        return ", ".join(letter for letter in order if letter in letters) or "-"


@dataclass
class GroundTruth:
    """The authoritative revocation state, shared by every scheme under test."""

    revoked_at: Dict[int, float] = field(default_factory=dict)
    ca_name: str = "CA"

    def revoke(self, serial: SerialNumber, now: float) -> None:
        self.revoked_at.setdefault(serial.value, now)

    def is_revoked(self, serial: SerialNumber, now: Optional[float] = None) -> bool:
        revoked_time = self.revoked_at.get(serial.value)
        if revoked_time is None:
            return False
        return now is None or revoked_time <= now

    def revoked_serials(self, now: Optional[float] = None) -> List[int]:
        if now is None:
            return sorted(self.revoked_at)
        return sorted(value for value, time in self.revoked_at.items() if time <= now)

    def count(self, now: Optional[float] = None) -> int:
        return len(self.revoked_serials(now))


@dataclass
class CheckContext:
    """One revocation check: a client asks about one certificate at one time."""

    client_id: str
    server_name: str
    serial: SerialNumber
    now: float


@dataclass
class CheckResult:
    """Outcome and cost of one revocation check."""

    scheme: str
    #: ``True`` revoked, ``False`` clean, ``None`` unknown (check unavailable).
    revoked: Optional[bool]
    connections_made: int = 0
    bytes_downloaded: int = 0
    latency_seconds: float = 0.0
    #: Parties that learned which server the client contacted.
    privacy_leaked_to: List[str] = field(default_factory=list)
    #: How stale the information the client acted on may be, in seconds.
    staleness_bound_seconds: float = 0.0
    notes: str = ""

    @property
    def decision_is_safe(self) -> bool:
        """Did the client end up with a definite answer?"""
        return self.revoked is not None


class RevocationScheme(ABC):
    """Interface every baseline (and the RITM adapter) implements."""

    name: str = "abstract"

    def __init__(self, ground_truth: GroundTruth) -> None:
        self.ground_truth = ground_truth

    @abstractmethod
    def properties(self) -> SchemeProperties:
        """The qualitative column of Table IV."""

    @abstractmethod
    def check(self, context: CheckContext) -> CheckResult:
        """Perform one revocation check on behalf of a client."""

    @abstractmethod
    def client_storage_entries(self, totals: "ComparisonParameters") -> int:
        """Revocation entries a single client must store."""

    @abstractmethod
    def global_storage_entries(self, totals: "ComparisonParameters") -> int:
        """Revocation entries stored across the whole system."""

    @abstractmethod
    def client_connections(self, totals: "ComparisonParameters") -> int:
        """Connections a single client needs (Table IV "Conn. (client)")."""

    @abstractmethod
    def global_connections(self, totals: "ComparisonParameters") -> int:
        """Connections needed system-wide (Table IV "Conn. (global)")."""


@dataclass(frozen=True)
class ComparisonParameters:
    """The symbolic quantities of Table IV, instantiated with numbers."""

    n_revocations: int
    n_clients: int
    n_servers: int
    n_cas: int
    n_ras: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "n_rev": self.n_revocations,
            "n_cl": self.n_clients,
            "n_s": self.n_servers,
            "n_ca": self.n_cas,
            "n_ra": self.n_ras,
        }
