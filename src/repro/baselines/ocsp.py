"""OCSP (RFC 6960) and OCSP Stapling (RFC 6961).

Plain OCSP: the client asks the CA's responder about one serial during the
handshake — an extra connection on the critical path, a responder that learns
exactly which client visits which site, and an outage of the responder that
either blocks the handshake or (with soft-fail, as browsers ship it) silently
disables revocation checking.

OCSP Stapling moves the fetch to the server: the server periodically obtains
a signed response and staples it into the handshake.  No extra client
connection and no privacy leak, but deployment requires server changes, and
the response's validity period (controlled by server configuration) sets the
attack window — a misconfigured or compromised server can serve week-old
"good" responses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.base import (
    CheckContext,
    CheckResult,
    ComparisonParameters,
    GroundTruth,
    RevocationScheme,
    SchemeProperties,
)

#: A signed OCSP response is on the order of half a kilobyte.
OCSP_RESPONSE_BYTES = 470
OCSP_REQUEST_BYTES = 110
#: Round trip to the responder (it may be under heavy load, §II).
RESPONDER_RTT = 0.10
#: Default validity of a (stapled) response: 4 days, a common production value.
DEFAULT_RESPONSE_LIFETIME = 4 * 86_400.0


@dataclass
class OCSPResponse:
    """A signed statement about one serial at one point in time."""

    serial_value: int
    revoked: bool
    produced_at: float
    next_update: float

    @property
    def size_bytes(self) -> int:
        return OCSP_RESPONSE_BYTES

    def is_valid_at(self, now: float) -> bool:
        return self.produced_at <= now <= self.next_update


class OCSPResponder:
    """The CA-operated online responder."""

    def __init__(
        self,
        ground_truth: GroundTruth,
        response_lifetime: float = DEFAULT_RESPONSE_LIFETIME,
        available: bool = True,
    ) -> None:
        self.ground_truth = ground_truth
        self.response_lifetime = response_lifetime
        self.available = available
        self.queries_served = 0
        self.query_log: List[Tuple[str, int, float]] = []

    def query(self, requester_id: str, serial_value: int, now: float) -> Optional[OCSPResponse]:
        if not self.available:
            return None
        self.queries_served += 1
        self.query_log.append((requester_id, serial_value, now))
        revoked = self.ground_truth.revoked_at.get(serial_value)
        return OCSPResponse(
            serial_value=serial_value,
            revoked=revoked is not None and revoked <= now,
            produced_at=now,
            next_update=now + self.response_lifetime,
        )


class OCSPScheme(RevocationScheme):
    """Client-queried OCSP."""

    name = "OCSP"

    def __init__(self, ground_truth: GroundTruth, soft_fail: bool = False) -> None:
        super().__init__(ground_truth)
        self.responder = OCSPResponder(ground_truth)
        self.soft_fail = soft_fail

    def properties(self) -> SchemeProperties:
        return SchemeProperties(
            near_instant=False,
            privacy=False,
            efficiency=False,
            transparency=False,
            no_server_changes=True,
        )

    def check(self, context: CheckContext) -> CheckResult:
        response = self.responder.query(context.client_id, context.serial.value, context.now)
        if response is None:
            return CheckResult(
                scheme=self.name,
                revoked=False if self.soft_fail else None,
                notes="responder unavailable"
                + (" (soft-fail: treated as good)" if self.soft_fail else ""),
            )
        return CheckResult(
            scheme=self.name,
            revoked=response.revoked,
            connections_made=1,
            bytes_downloaded=OCSP_REQUEST_BYTES + response.size_bytes,
            latency_seconds=RESPONDER_RTT,
            privacy_leaked_to=["CA OCSP responder"],
            staleness_bound_seconds=0.0,
        )

    def client_storage_entries(self, totals: ComparisonParameters) -> int:
        return 0

    def global_storage_entries(self, totals: ComparisonParameters) -> int:
        return totals.n_revocations

    def client_connections(self, totals: ComparisonParameters) -> int:
        return totals.n_servers

    def global_connections(self, totals: ComparisonParameters) -> int:
        return totals.n_clients * totals.n_servers


class OCSPStaplingScheme(RevocationScheme):
    """Server-fetched, handshake-stapled OCSP responses."""

    name = "OCSP Stapling"

    def __init__(
        self,
        ground_truth: GroundTruth,
        response_lifetime: float = DEFAULT_RESPONSE_LIFETIME,
        deployment_rate: float = 1.0,
        server_refetch_margin: float = 0.9,
    ) -> None:
        """``deployment_rate`` models partial adoption (the paper cites 3 % of
        certificates served with stapling); ``server_refetch_margin`` is the
        fraction of the response lifetime after which a well-behaved server
        refreshes its stapled response."""
        super().__init__(ground_truth)
        self.responder = OCSPResponder(ground_truth, response_lifetime)
        self.deployment_rate = deployment_rate
        self.server_refetch_margin = server_refetch_margin
        #: Per-server cached response (the staple they currently serve).
        self._staples: Dict[str, OCSPResponse] = {}

    def properties(self) -> SchemeProperties:
        return SchemeProperties(
            near_instant=False,
            privacy=True,
            efficiency=True,
            transparency=False,
            no_server_changes=False,
        )

    def server_deploys(self, server_name: str) -> bool:
        """Deterministic partial-deployment decision for one server."""
        if self.deployment_rate >= 1.0:
            return True
        bucket = hash(server_name) % 1_000
        return bucket < self.deployment_rate * 1_000

    def check(self, context: CheckContext) -> CheckResult:
        if not self.server_deploys(context.server_name):
            return CheckResult(
                scheme=self.name,
                revoked=None,
                notes="server does not staple (partial deployment)",
            )
        staple = self._staples.get(context.server_name)
        refresh_due = (
            staple is None
            or context.now
            >= staple.produced_at + self.server_refetch_margin * self.responder.response_lifetime
        )
        if refresh_due:
            refreshed = self.responder.query(
                f"server:{context.server_name}", context.serial.value, context.now
            )
            if refreshed is not None:
                self._staples[context.server_name] = refreshed
                staple = refreshed
        if staple is None or not staple.is_valid_at(context.now):
            return CheckResult(scheme=self.name, revoked=None, notes="no valid staple available")
        return CheckResult(
            scheme=self.name,
            revoked=staple.revoked,
            connections_made=0,
            bytes_downloaded=staple.size_bytes,  # carried inside the handshake
            latency_seconds=0.0,
            privacy_leaked_to=[],
            staleness_bound_seconds=context.now - staple.produced_at,
        )

    def client_storage_entries(self, totals: ComparisonParameters) -> int:
        return 0

    def global_storage_entries(self, totals: ComparisonParameters) -> int:
        # The CA's state plus one cached response per server.
        return totals.n_revocations + totals.n_servers

    def client_connections(self, totals: ComparisonParameters) -> int:
        return 0

    def global_connections(self, totals: ComparisonParameters) -> int:
        return totals.n_servers
