"""Log-based revocation schemes (Revocation Transparency, AKI, PKISN, ...).

CAs are obliged to submit revocations to public, append-only, verifiable
logs.  Two deployment styles exist (paper §II and Table IV):

* **client-driven** — clients query the log for (proofs of) revocation
  status, which costs an extra connection and reveals browsing targets to
  the log;
* **server-driven** — servers periodically fetch status proofs from the log
  and staple them into handshakes, which needs server reconfiguration.

Both inherit the log's update cadence: logs batch changes and publish a new
signed tree head every maximum-merge-delay (MMD) period, typically hours, so
the attack window is far from instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.base import (
    CheckContext,
    CheckResult,
    ComparisonParameters,
    GroundTruth,
    RevocationScheme,
    SchemeProperties,
)

#: Logs typically publish a new signed tree head every few hours.
DEFAULT_MMD_SECONDS = 4 * 3600.0
#: A log proof (inclusion/absence + signed tree head) is on the order of 1 KB.
LOG_PROOF_BYTES = 1_000
LOG_QUERY_RTT = 0.09


@dataclass
class SignedTreeHead:
    """The log's periodic commitment to its contents."""

    published_at: float
    revision: int
    serials: Tuple[int, ...]


class RevocationLog:
    """A public append-only log of revocations with a batched update cadence."""

    def __init__(self, ground_truth: GroundTruth, mmd_seconds: float = DEFAULT_MMD_SECONDS) -> None:
        self.ground_truth = ground_truth
        self.mmd_seconds = mmd_seconds
        self._head: Optional[SignedTreeHead] = None
        self.queries_served = 0
        self.query_log: List[Tuple[str, int, float]] = []

    def head_at(self, now: float) -> SignedTreeHead:
        if self._head is None or now >= self._head.published_at + self.mmd_seconds:
            revision = 0 if self._head is None else self._head.revision + 1
            self._head = SignedTreeHead(
                published_at=now,
                revision=revision,
                serials=tuple(self.ground_truth.revoked_serials(now)),
            )
        return self._head

    def prove_status(self, requester: str, serial_value: int, now: float) -> Tuple[bool, SignedTreeHead]:
        self.queries_served += 1
        self.query_log.append((requester, serial_value, now))
        head = self.head_at(now)
        return serial_value in head.serials, head


class ClientDrivenLogScheme(RevocationScheme):
    """Clients query the log during (or right after) the handshake."""

    name = "Log (client-driven)"

    def __init__(self, ground_truth: GroundTruth, mmd_seconds: float = DEFAULT_MMD_SECONDS) -> None:
        super().__init__(ground_truth)
        self.log = RevocationLog(ground_truth, mmd_seconds)

    def properties(self) -> SchemeProperties:
        return SchemeProperties(
            near_instant=False,
            privacy=False,
            efficiency=False,
            transparency=True,
            no_server_changes=True,
        )

    def check(self, context: CheckContext) -> CheckResult:
        revoked, head = self.log.prove_status(
            context.client_id, context.serial.value, context.now
        )
        return CheckResult(
            scheme=self.name,
            revoked=revoked,
            connections_made=1,
            bytes_downloaded=LOG_PROOF_BYTES,
            latency_seconds=LOG_QUERY_RTT,
            privacy_leaked_to=["revocation log"],
            staleness_bound_seconds=self.log.mmd_seconds
            + (context.now - head.published_at),
        )

    def client_storage_entries(self, totals: ComparisonParameters) -> int:
        return 0

    def global_storage_entries(self, totals: ComparisonParameters) -> int:
        return totals.n_revocations

    def client_connections(self, totals: ComparisonParameters) -> int:
        return totals.n_servers

    def global_connections(self, totals: ComparisonParameters) -> int:
        return totals.n_clients * totals.n_servers


class ServerDrivenLogScheme(RevocationScheme):
    """Servers fetch log proofs periodically and staple them to handshakes."""

    name = "Log (server-driven)"

    def __init__(
        self,
        ground_truth: GroundTruth,
        mmd_seconds: float = DEFAULT_MMD_SECONDS,
        server_fetch_period: float = 6 * 3600.0,
    ) -> None:
        super().__init__(ground_truth)
        self.log = RevocationLog(ground_truth, mmd_seconds)
        self.server_fetch_period = server_fetch_period
        self._stapled: Dict[str, Tuple[bool, float]] = {}

    def properties(self) -> SchemeProperties:
        return SchemeProperties(
            near_instant=False,
            privacy=True,
            efficiency=True,
            transparency=True,
            no_server_changes=False,
        )

    def check(self, context: CheckContext) -> CheckResult:
        stapled = self._stapled.get(context.server_name)
        if stapled is None or context.now >= stapled[1] + self.server_fetch_period:
            revoked, head = self.log.prove_status(
                f"server:{context.server_name}", context.serial.value, context.now
            )
            stapled = (revoked, context.now)
            self._stapled[context.server_name] = stapled
        revoked, fetched_at = stapled
        return CheckResult(
            scheme=self.name,
            revoked=revoked,
            connections_made=0,
            bytes_downloaded=LOG_PROOF_BYTES,
            latency_seconds=0.0,
            privacy_leaked_to=[],
            staleness_bound_seconds=(context.now - fetched_at) + self.log.mmd_seconds,
        )

    def client_storage_entries(self, totals: ComparisonParameters) -> int:
        return 0

    def global_storage_entries(self, totals: ComparisonParameters) -> int:
        return totals.n_revocations

    def client_connections(self, totals: ComparisonParameters) -> int:
        return 0

    def global_connections(self, totals: ComparisonParameters) -> int:
        return totals.n_servers
