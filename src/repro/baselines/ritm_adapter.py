"""RITM expressed through the baseline interface, for apples-to-apples comparison.

The functional RITM implementation lives in :mod:`repro.ritm`; this adapter
exposes it behind the :class:`~repro.baselines.base.RevocationScheme`
interface so the Table IV harness can evaluate every scheme — including
RITM — through one code path.  The adapter keeps one CA dictionary and one RA
replica in memory and answers checks with real proofs; the Table IV formulas
are the ones from the paper's last row.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.base import (
    CheckContext,
    CheckResult,
    ComparisonParameters,
    GroundTruth,
    RevocationScheme,
    SchemeProperties,
)
from repro.crypto.signing import KeyPair
from repro.dictionary.authdict import CADictionary, ReplicaDictionary
from repro.errors import RevokedCertificateError, StaleStatusError
from repro.pki.serial import SerialNumber


class RITMAdapterScheme(RevocationScheme):
    """RITM driven through the baseline-comparison interface."""

    name = "RITM"

    def __init__(
        self,
        ground_truth: GroundTruth,
        delta_seconds: int = 10,
        key_seed: bytes = b"ritm-adapter",
    ) -> None:
        super().__init__(ground_truth)
        self.delta_seconds = delta_seconds
        self._keys = KeyPair.generate(key_seed)
        self._dictionary = CADictionary(
            ca_name=ground_truth.ca_name,
            keys=self._keys,
            delta=delta_seconds,
            chain_length=1024,
        )
        self._replica = ReplicaDictionary(ground_truth.ca_name, self._keys.public)
        self._synced_count = 0
        self._last_refresh: Optional[float] = None

    # -- keeping the RA replica in sync with the ground truth ---------------------

    def _sync(self, now: float) -> None:
        """Apply any ground-truth revocations the dictionary does not know yet,
        then refresh the freshness statement for the current period."""
        pending = [
            SerialNumber(value)
            for value, revoked_at in sorted(
                self.ground_truth.revoked_at.items(), key=lambda item: item[1]
            )
            if revoked_at <= now and not self._dictionary.contains(SerialNumber(value))
        ]
        if pending:
            issuance = self._dictionary.insert(pending, int(now))
            self._replica.update(issuance)
        if self._dictionary.signed_root is None:
            self._dictionary.refresh(int(now))
        if self._replica.signed_root is None:
            self._replica.install_root(self._dictionary.signed_root)
        if self._last_refresh is None or now - self._last_refresh >= self.delta_seconds:
            result = self._dictionary.refresh(int(now))
            from repro.dictionary.signed_root import SignedRoot

            if isinstance(result, SignedRoot):
                self._replica.install_root(result)
            else:
                self._replica.apply_freshness(result)
            self._last_refresh = now

    # -- scheme interface ------------------------------------------------------------

    def check(self, context: CheckContext) -> CheckResult:
        self._sync(context.now)
        status = self._replica.prove(context.serial)
        try:
            status.verify(
                self._keys.public,
                now=int(context.now),
                delta=self.delta_seconds,
            )
            revoked = False
        except RevokedCertificateError:
            revoked = True
        except StaleStatusError:
            return CheckResult(scheme=self.name, revoked=None, notes="stale status")
        return CheckResult(
            scheme=self.name,
            revoked=revoked,
            connections_made=0,  # the client makes no extra connection
            bytes_downloaded=status.encoded_size(),  # piggybacked on TLS traffic
            latency_seconds=0.0,
            privacy_leaked_to=[],
            staleness_bound_seconds=2 * self.delta_seconds,
        )

    def properties(self) -> SchemeProperties:
        return SchemeProperties(
            near_instant=True,
            privacy=True,
            efficiency=True,
            transparency=True,
            no_server_changes=True,
        )

    def client_storage_entries(self, totals: ComparisonParameters) -> int:
        return 0

    def global_storage_entries(self, totals: ComparisonParameters) -> int:
        # Every RA plus the CA stores the full dictionary (Table IV last row).
        return totals.n_revocations * (totals.n_ras + 1)

    def client_connections(self, totals: ComparisonParameters) -> int:
        return 0

    def global_connections(self, totals: ComparisonParameters) -> int:
        # Each CA uploads to the dissemination network.
        return totals.n_cas
