"""Short-Lived Certificates (Rivest 1998; Topalovic et al. 2012).

SLCs sidestep revocation entirely: certificates are valid for a few days and
simply expire.  There is nothing for the client to check — but also nothing
anyone can do inside the validity window, so the attack window equals the
certificate lifetime, and every server must be reconfigured to fetch a fresh
certificate from its CA on a tight schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.baselines.base import (
    CheckContext,
    CheckResult,
    ComparisonParameters,
    GroundTruth,
    RevocationScheme,
    SchemeProperties,
)

#: Typical SLC lifetime: 4 days.
DEFAULT_LIFETIME_SECONDS = 4 * 86_400.0


@dataclass
class IssuedShortLivedCertificate:
    serial_value: int
    issued_at: float
    lifetime: float

    def expires_at(self) -> float:
        return self.issued_at + self.lifetime


class ShortLivedCertificateScheme(RevocationScheme):
    """Revocation by expiry."""

    name = "Short-Lived Certificates"

    def __init__(
        self, ground_truth: GroundTruth, lifetime_seconds: float = DEFAULT_LIFETIME_SECONDS
    ) -> None:
        super().__init__(ground_truth)
        self.lifetime_seconds = lifetime_seconds
        #: Per-server record of the currently deployed short-lived certificate.
        self._deployed: Dict[str, IssuedShortLivedCertificate] = {}
        self.reissue_count = 0

    def server_refresh(self, server_name: str, serial_value: int, now: float) -> None:
        """The server-side cron job: fetch a fresh certificate from the CA."""
        self._deployed[server_name] = IssuedShortLivedCertificate(
            serial_value=serial_value, issued_at=now, lifetime=self.lifetime_seconds
        )
        self.reissue_count += 1

    def check(self, context: CheckContext) -> CheckResult:
        deployed = self._deployed.get(context.server_name)
        if deployed is None:
            # First contact: assume the server deployed a certificate when the
            # connection's certificate was issued.
            deployed = IssuedShortLivedCertificate(
                serial_value=context.serial.value,
                issued_at=context.now,
                lifetime=self.lifetime_seconds,
            )
            self._deployed[context.server_name] = deployed

        expired = context.now > deployed.expires_at()
        revoked_in_truth = self.ground_truth.is_revoked(context.serial, context.now)
        # Inside the lifetime nothing can be revoked; the client only notices
        # once the CA stops re-issuing and the certificate expires.
        effective_revoked = expired and revoked_in_truth
        note = ""
        if revoked_in_truth and not expired:
            note = "compromise within certificate lifetime: undetectable until expiry"
        return CheckResult(
            scheme=self.name,
            revoked=effective_revoked,
            connections_made=0,
            bytes_downloaded=0,
            latency_seconds=0.0,
            privacy_leaked_to=[],
            staleness_bound_seconds=self.lifetime_seconds,
            notes=note,
        )

    def properties(self) -> SchemeProperties:
        return SchemeProperties(
            near_instant=False,
            privacy=True,
            efficiency=True,
            transparency=False,
            no_server_changes=False,
        )

    def client_storage_entries(self, totals: ComparisonParameters) -> int:
        return 0

    def global_storage_entries(self, totals: ComparisonParameters) -> int:
        return 0  # no revocation state exists anywhere

    def client_connections(self, totals: ComparisonParameters) -> int:
        return 0

    def global_connections(self, totals: ComparisonParameters) -> int:
        # Every server must contact its CA every lifetime period.
        return totals.n_servers
