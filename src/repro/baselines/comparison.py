"""The Table IV comparison harness.

Builds every scheme over a shared ground truth, evaluates the quantitative
columns (storage and connections, globally and per client) from each scheme's
formulas, records the symbolic formulas from the paper's table for
cross-checking, and collects the violated-properties column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.baselines.base import (
    ComparisonParameters,
    GroundTruth,
    RevocationScheme,
)
from repro.baselines.crl import CRLScheme
from repro.baselines.crlset import CRLSetScheme
from repro.baselines.logbased import ClientDrivenLogScheme, ServerDrivenLogScheme
from repro.baselines.ocsp import OCSPScheme, OCSPStaplingScheme
from repro.baselines.revcast import RevCastScheme
from repro.baselines.ritm_adapter import RITMAdapterScheme

#: The symbolic formulas exactly as printed in Table IV of the paper, used to
#: annotate the generated table and unit-tested against the scheme methods.
PAPER_FORMULAS: Dict[str, Dict[str, str]] = {
    "CRL": {
        "storage_global": "n_rev * (n_cl + 1)",
        "storage_client": "n_rev",
        "conn_global": "n_cl * n_ca",
        "conn_client": "n_ca",
        "violated": "I, P, E, T",
    },
    "CRLSet": {
        "storage_global": "n_rev * (n_cl + 1)",
        "storage_client": "n_rev",
        "conn_global": "n_cl",
        "conn_client": "1",
        "violated": "I, E, T",
    },
    "OCSP": {
        "storage_global": "n_rev",
        "storage_client": "0",
        "conn_global": "n_cl * n_s",
        "conn_client": "n_s",
        "violated": "I, P, E, T",
    },
    "OCSP Stapling": {
        "storage_global": "n_rev + n_s",
        "storage_client": "0",
        "conn_global": "n_s",
        "conn_client": "0",
        "violated": "I, S, T",
    },
    "Log (client-driven)": {
        "storage_global": "n_rev",
        "storage_client": "0",
        "conn_global": "n_cl * n_s",
        "conn_client": "n_s",
        "violated": "I, P, E",
    },
    "Log (server-driven)": {
        "storage_global": "n_rev",
        "storage_client": "0",
        "conn_global": "n_s",
        "conn_client": "0",
        "violated": "I, S",
    },
    "RevCast": {
        "storage_global": "n_rev * (n_cl + 1)",
        "storage_client": "n_rev",
        "conn_global": "n_cl",
        "conn_client": "n_rev",
        "violated": "E, T",
    },
    "RITM": {
        "storage_global": "n_rev * (n_ra + 1)",
        "storage_client": "0",
        "conn_global": "n_ca",
        "conn_client": "0",
        "violated": "-",
    },
}

#: Default instantiation of Table IV's symbolic quantities, respecting the
#: paper's ordering assumption n_ca ≈ n_ra ≪ n_s ≪ n_cl.
DEFAULT_PARAMETERS = ComparisonParameters(
    n_revocations=1_381_992,
    n_clients=3_000_000_000,
    n_servers=50_000_000,
    n_cas=254,
    n_ras=230_000_000,
)


@dataclass
class ComparisonRow:
    """One scheme's row of Table IV."""

    scheme: str
    storage_global: int
    storage_client: int
    conn_global: int
    conn_client: int
    violated_properties: str
    formula_storage_global: str = ""
    formula_storage_client: str = ""
    formula_conn_global: str = ""
    formula_conn_client: str = ""


SchemeFactory = Callable[[GroundTruth], RevocationScheme]


def default_scheme_factories() -> Dict[str, SchemeFactory]:
    """The Table IV line-up, in the paper's row order."""
    return {
        "CRL": lambda truth: CRLScheme(truth),
        "CRLSet": lambda truth: CRLSetScheme(truth),
        "OCSP": lambda truth: OCSPScheme(truth),
        "OCSP Stapling": lambda truth: OCSPStaplingScheme(truth),
        "Log (client-driven)": lambda truth: ClientDrivenLogScheme(truth),
        "Log (server-driven)": lambda truth: ServerDrivenLogScheme(truth),
        "RevCast": lambda truth: RevCastScheme(truth),
        "RITM": lambda truth: RITMAdapterScheme(truth),
    }


def build_comparison_table(
    parameters: ComparisonParameters = DEFAULT_PARAMETERS,
    ground_truth: Optional[GroundTruth] = None,
    factories: Optional[Dict[str, SchemeFactory]] = None,
) -> List[ComparisonRow]:
    """Evaluate Table IV for the given parameter instantiation."""
    truth = ground_truth if ground_truth is not None else GroundTruth()
    factories = factories if factories is not None else default_scheme_factories()
    rows: List[ComparisonRow] = []
    for name, factory in factories.items():
        scheme = factory(truth)
        formulas = PAPER_FORMULAS.get(name, {})
        rows.append(
            ComparisonRow(
                scheme=name,
                storage_global=scheme.global_storage_entries(parameters),
                storage_client=scheme.client_storage_entries(parameters),
                conn_global=scheme.global_connections(parameters),
                conn_client=scheme.client_connections(parameters),
                violated_properties=scheme.properties().violated_letters(),
                formula_storage_global=formulas.get("storage_global", ""),
                formula_storage_client=formulas.get("storage_client", ""),
                formula_conn_global=formulas.get("conn_global", ""),
                formula_conn_client=formulas.get("conn_client", ""),
            )
        )
    return rows


def evaluate_formula(formula: str, parameters: ComparisonParameters) -> int:
    """Evaluate one of the paper's symbolic formulas numerically."""
    if formula in ("", "-"):
        return 0
    namespace = dict(parameters.as_dict())
    return int(eval(formula, {"__builtins__": {}}, namespace))  # noqa: S307 - fixed vocabulary
