"""§VII-D overheads: communication (Fig. 7), storage, and status size.

Three quantities are reproduced here:

* **Fig. 7** — how many bytes a single RA downloads per Δ during the
  Heartbleed week (14–20 April 2014) for Δ ∈ {10 s, 1 min, 5 min, 1 h, 1 day}
  and 254 dictionaries: the per-Δ cost is one freshness statement per
  dictionary plus the serials revoked in that period;
* **storage** — what an RA stores for 1.38 M (or 10 M) revocations and how
  much memory the materialised dictionaries take;
* **sharded storage** — how the §VIII expiry-split relaxation bounds RA
  storage: the unsharded dictionary grows forever while the sharded one
  plateaus once shards start retiring, and the difference is the storage
  reclaimed;
* **status size** — the wire size of one revocation status (Eq. 3) for a
  dictionary as large as the largest CRL in the dataset (the paper reports
  500–900 bytes).
"""

from __future__ import annotations

import datetime as _dt
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.signing import KeyPair
from repro.dictionary.authdict import CADictionary
from repro.dictionary.sharding import MAX_CERTIFICATE_LIFETIME_SECONDS
from repro.pki.serial import SerialNumber
from repro.ritm.config import PAPER_DELTA_SWEEP
from repro.workloads.revocation_trace import (
    HEARTBLEED_WEEK,
    LARGEST_CRL_ENTRIES,
    NUMBER_OF_CRLS,
    SERIAL_BYTES,
    TOTAL_REVOCATIONS,
    RevocationTrace,
    generate_trace,
    serials_for_count,
)

#: Δ values shown in Fig. 7.
FIGURE7_DELTAS: Dict[str, int] = {
    "10s": PAPER_DELTA_SWEEP["10s"],
    "1m": PAPER_DELTA_SWEEP["1m"],
    "5m": PAPER_DELTA_SWEEP["5m"],
    "1h": PAPER_DELTA_SWEEP["1h"],
    "1d": PAPER_DELTA_SWEEP["1d"],
}

#: Per-dictionary freshness statement bytes (truncated hash, §VI).
FRESHNESS_BYTES = 20
#: Amortised signed-root bytes accompanying a batch of new revocations.
SIGNED_ROOT_BYTES = 180
#: Revocation-number bytes stored alongside each serial.
NUMBER_BYTES = 4


@dataclass
class Figure7Series:
    """Per-Δ download sizes over the Heartbleed week for one Δ value."""

    delta_label: str
    delta_seconds: int
    #: (bin start Unix time, bytes downloaded in that Δ) samples.
    points: List[Tuple[int, float]]

    def max_bytes(self) -> float:
        return max(value for _, value in self.points)

    def min_bytes(self) -> float:
        return min(value for _, value in self.points)

    def mean_bytes(self) -> float:
        return sum(value for _, value in self.points) / len(self.points)


@dataclass
class Figure7Result:
    series: Dict[str, Figure7Series]
    dictionaries: int

    def baseline_bytes(self) -> float:
        """The no-new-revocations floor: one freshness statement per dictionary."""
        return self.dictionaries * FRESHNESS_BYTES


def figure_7(
    trace: Optional[RevocationTrace] = None,
    deltas: Optional[Dict[str, int]] = None,
    dictionaries: int = NUMBER_OF_CRLS,
    week: Tuple[_dt.date, _dt.date] = HEARTBLEED_WEEK,
) -> Figure7Result:
    """Compute the Fig. 7 communication-overhead series."""
    trace = trace if trace is not None else generate_trace()
    deltas = deltas if deltas is not None else FIGURE7_DELTAS
    series: Dict[str, Figure7Series] = {}
    for label, delta_seconds in deltas.items():
        bins = trace.counts_per_bin(week[0], week[1], delta_seconds)
        points: List[Tuple[int, float]] = []
        for bin_start, revocation_count in bins:
            downloaded = dictionaries * FRESHNESS_BYTES
            downloaded += revocation_count * SERIAL_BYTES
            if revocation_count > 0:
                downloaded += SIGNED_ROOT_BYTES
            points.append((bin_start, float(downloaded)))
        series[label] = Figure7Series(
            delta_label=label, delta_seconds=delta_seconds, points=points
        )
    return Figure7Result(series=series, dictionaries=dictionaries)


# -- storage (§VII-D "Storage") --------------------------------------------------------


@dataclass
class StorageEstimate:
    revocations: int
    storage_bytes: int
    memory_bytes: int


def storage_overhead(
    revocations: int = TOTAL_REVOCATIONS,
    serial_bytes: int = SERIAL_BYTES,
    digest_size: int = 20,
) -> StorageEstimate:
    """RA storage/memory for ``revocations`` entries, following §VII-D's model.

    Persistent storage holds the revocation entries themselves (the tree is
    reconstructible); building the dictionaries in memory additionally holds
    the revocation numbers and one digest per leaf.
    """
    storage = revocations * serial_bytes
    memory = revocations * (serial_bytes + NUMBER_BYTES + digest_size)
    return StorageEstimate(revocations=revocations, storage_bytes=storage, memory_bytes=memory)


# -- sharded storage (§VIII "Ever-growing dictionaries") -------------------------------------


def live_shard_count(
    shard_width_seconds: int,
    max_lifetime_seconds: int = MAX_CERTIFICATE_LIFETIME_SECONDS,
) -> int:
    """Upper bound on simultaneously live expiry shards.

    A revocation issued now targets an expiry at most ``max_lifetime``
    ahead, so at most ``ceil(lifetime / width)`` full windows plus the
    currently passing one can hold live certificates.  This is also how
    many head objects a sharded RA polls per Δ (see
    :class:`repro.analysis.cost.CostModelConfig.shards_per_dictionary`).
    """
    if shard_width_seconds <= 0:
        raise ValueError("shard width must be positive")
    return math.ceil(max_lifetime_seconds / shard_width_seconds) + 1


@dataclass
class ShardedStorageResult:
    """Storage-over-time comparison: unsharded baseline vs. expiry shards."""

    #: Daily samples of the ever-growing unsharded dictionary, in bytes.
    unsharded_bytes: List[int]
    #: Daily samples of the sharded RA footprint (pruned shards excluded).
    sharded_bytes: List[int]
    #: Bytes reclaimed by shard retirement over the whole horizon.
    reclaimed_bytes: int
    #: Steady-state (peak) sharded footprint, in bytes.
    plateau_bytes: int

    def final_savings_bytes(self) -> int:
        """Unsharded minus sharded footprint at the end of the horizon."""
        return self.unsharded_bytes[-1] - self.sharded_bytes[-1]


def sharded_storage_overhead(
    revocations_per_day: int = 2_500,
    days: int = 720,
    certificate_lifetime_days: int = 90,
    shard_width_days: int = 30,
    serial_bytes: int = SERIAL_BYTES,
) -> ShardedStorageResult:
    """Model §VIII storage reclamation over a multi-quarter horizon.

    Each day's revocations target certificates expiring
    ``certificate_lifetime_days`` later, landing in the expiry shard whose
    ``shard_width_days``-wide window covers that date; the shard (and its
    entries) is dropped the day its window fully passes.  The unsharded
    baseline keeps every entry forever.
    """
    if min(revocations_per_day, days, certificate_lifetime_days, shard_width_days) <= 0:
        raise ValueError("all sharded-storage model parameters must be positive")
    day_bytes = revocations_per_day * (serial_bytes + NUMBER_BYTES)
    #: Day each batch's shard retires: end of the window covering its expiry.
    retire_day = [
        ((day + certificate_lifetime_days) // shard_width_days + 1) * shard_width_days
        for day in range(days)
    ]
    unsharded: List[int] = []
    sharded: List[int] = []
    for today in range(days):
        unsharded.append((today + 1) * day_bytes)
        live = sum(
            1 for day in range(today + 1) if retire_day[day] > today
        )
        sharded.append(live * day_bytes)
    return ShardedStorageResult(
        unsharded_bytes=unsharded,
        sharded_bytes=sharded,
        reclaimed_bytes=unsharded[-1] - sharded[-1],
        plateau_bytes=max(sharded),
    )


# -- revocation status size (§VII-D "Communication") -----------------------------------------


@dataclass
class StatusSizeResult:
    dictionary_size: int
    absent_status_bytes: int
    revoked_status_bytes: int
    proof_depth: int


def status_size_for_dictionary(
    dictionary_size: int = 50_000, delta_seconds: int = 60, seed: int = 9
) -> StatusSizeResult:
    """Measure the encoded size of a revocation status for a dictionary of
    ``dictionary_size`` entries (the paper quotes 500–900 B for the largest
    CRL's dictionary).

    Building the full 339k-entry dictionary takes a few seconds of hashing;
    benchmarks that need the exact largest-CRL figure pass
    ``dictionary_size=LARGEST_CRL_ENTRIES``.
    """
    keys = KeyPair.generate(f"status-size-{dictionary_size}".encode())
    dictionary = CADictionary(
        ca_name="Size-CA", keys=keys, delta=delta_seconds, chain_length=64
    )
    serial_values = serials_for_count(dictionary_size + 1, seed=seed)
    revoked = [SerialNumber(value) for value in serial_values[:dictionary_size]]
    absent_serial = SerialNumber(serial_values[-1])
    dictionary.insert(revoked, now=0)

    absent_status = dictionary.prove(absent_serial)
    revoked_status = dictionary.prove(revoked[len(revoked) // 2])
    from repro.ritm.messages import encode_status

    absent_bytes = len(encode_status(absent_status))
    revoked_bytes = len(encode_status(revoked_status))
    depth = 0
    if hasattr(revoked_status.proof, "path"):
        depth = len(revoked_status.proof.path)
    return StatusSizeResult(
        dictionary_size=dictionary_size,
        absent_status_bytes=absent_bytes,
        revoked_status_bytes=revoked_bytes,
        proof_depth=depth,
    )


def largest_crl_status_size() -> StatusSizeResult:
    """Status size for the paper's largest-CRL dictionary (339,557 entries)."""
    return status_size_for_dictionary(LARGEST_CRL_ENTRIES)
