"""Fig. 6 and Table II: what a CA pays the CDN to disseminate revocations.

The cost model follows §VII-C of the paper:

* the CA under study is the one with the largest CRL found in the dataset
  (339,557 entries, 7.5 MB) — its revocation activity over time is the
  corresponding share of the global trace;
* RAs are distributed around the world proportionally to city population
  (one RA per ``clients_per_ra`` people), which maps them onto CloudFront's
  pricing regions;
* every RA polls the CA's dictionary head every Δ (downloading the freshness
  statement) and additionally downloads the serials newly revoked in that
  period;
* the CDN bills the CA per GB served per region (tiered list prices), for
  each monthly billing cycle between January 2014 and August 2015.

Absolute dollar figures depend on the exact accounting of per-request
overhead (the paper does not specify it); the reproduced quantities to
compare are the *shape*: costs fall steeply as Δ grows, scale inversely with
clients-per-RA, and show a visible Heartbleed bump in the April 2014 cycle.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdn.geography import Region
from repro.cdn.pricing import BillingCycleUsage, PricingModel
from repro.ritm.config import PAPER_DELTA_SWEEP
from repro.workloads.population import PopulationModel, generate_population
from repro.workloads.revocation_trace import (
    LARGEST_CRL_ENTRIES,
    SERIAL_BYTES,
    TOTAL_REVOCATIONS,
    RevocationTrace,
    generate_trace,
)

#: Billing horizon of Fig. 6: 1 January 2014 to 1 August 2015 (19 cycles).
BILLING_START = _dt.date(2014, 1, 1)
BILLING_END = _dt.date(2015, 8, 1)

#: Δ values shown in Fig. 6.
FIGURE6_DELTAS: Dict[str, int] = {
    "10s": PAPER_DELTA_SWEEP["10s"],
    "1m": PAPER_DELTA_SWEEP["1m"],
    "1h": PAPER_DELTA_SWEEP["1h"],
    "1d": PAPER_DELTA_SWEEP["1d"],
}

#: Clients-per-RA densities of Table II.
TABLE2_CLIENTS_PER_RA = (30, 250, 1_000)

#: Bytes an RA downloads per poll when nothing changed: the freshness
#: statement (a truncated hash) for the single CA under study.
FRESHNESS_BYTES_PER_POLL = 20
#: Amortised signed-root bytes added to polls that do carry new revocations.
SIGNED_ROOT_BYTES = 180


@dataclass
class CostModelConfig:
    """Tunable knobs of the cost model (defaults follow the paper)."""

    clients_per_ra: int = 10
    freshness_bytes_per_poll: int = FRESHNESS_BYTES_PER_POLL
    serial_bytes: int = SERIAL_BYTES
    signed_root_bytes: int = SIGNED_ROOT_BYTES
    #: Per-request HTTP/TCP overhead billed as data transfer (0 = paper-style
    #: pure-payload accounting).
    per_request_overhead_bytes: int = 0
    include_request_fees: bool = False
    ca_share_of_trace: float = LARGEST_CRL_ENTRIES / TOTAL_REVOCATIONS
    #: Expiry shards per CA dictionary (§VIII): a sharded RA polls one head
    #: (freshness statement) per live shard each Δ, so freshness traffic
    #: scales with this factor while the reclaimed storage is accounted in
    #: :func:`repro.analysis.overhead.sharded_storage_overhead`.  1 = the
    #: paper's single ever-growing dictionary.  Size it with
    #: :func:`repro.analysis.overhead.live_shard_count`.
    shards_per_dictionary: int = 1

    def __post_init__(self) -> None:
        if self.shards_per_dictionary < 1:
            raise ValueError("shards_per_dictionary must be at least 1")


@dataclass
class MonthlyCost:
    """One billing cycle for one Δ."""

    cycle_index: int
    month: str
    delta_label: str
    bytes_per_ra: float
    total_bytes: float
    cost_usd: float


@dataclass
class CostSimulationResult:
    """Fig. 6: per-cycle costs for each Δ."""

    monthly: Dict[str, List[MonthlyCost]]
    ras_by_region: Dict[Region, int]
    total_ras: int
    clients_per_ra: int

    def average_cost(self, delta_label: str) -> float:
        cycles = self.monthly[delta_label]
        return sum(cycle.cost_usd for cycle in cycles) / len(cycles)

    def peak_cycle(self, delta_label: str) -> MonthlyCost:
        return max(self.monthly[delta_label], key=lambda cycle: cycle.cost_usd)


def _months_between(start: _dt.date, end: _dt.date) -> List[Tuple[_dt.date, _dt.date]]:
    """Month windows [first day, first day of next month) between start and end."""
    months: List[Tuple[_dt.date, _dt.date]] = []
    cursor = _dt.date(start.year, start.month, 1)
    while cursor < end:
        if cursor.month == 12:
            nxt = _dt.date(cursor.year + 1, 1, 1)
        else:
            nxt = _dt.date(cursor.year, cursor.month + 1, 1)
        months.append((cursor, min(nxt, end)))
        cursor = nxt
    return months


def _monthly_revocations(
    trace: RevocationTrace, window: Tuple[_dt.date, _dt.date], share: float
) -> int:
    start, end = window
    total = sum(
        entry.count
        for entry in trace.daily
        if start <= entry.day < end
    )
    return int(round(total * share))


def simulate_costs(
    config: Optional[CostModelConfig] = None,
    deltas: Optional[Dict[str, int]] = None,
    trace: Optional[RevocationTrace] = None,
    population: Optional[PopulationModel] = None,
    pricing: Optional[PricingModel] = None,
    billing_start: _dt.date = BILLING_START,
    billing_end: _dt.date = BILLING_END,
) -> CostSimulationResult:
    """Run the Fig. 6 cost simulation."""
    config = config if config is not None else CostModelConfig()
    deltas = deltas if deltas is not None else FIGURE6_DELTAS
    trace = trace if trace is not None else generate_trace()
    population = population if population is not None else generate_population()
    pricing = pricing if pricing is not None else PricingModel(
        include_request_fees=config.include_request_fees
    )

    ras_by_region = population.ras_by_region(config.clients_per_ra)
    total_ras = sum(ras_by_region.values())
    months = _months_between(billing_start, billing_end)

    results: Dict[str, List[MonthlyCost]] = {label: [] for label in deltas}
    for label, delta_seconds in deltas.items():
        for cycle_index, window in enumerate(months):
            days_in_cycle = (window[1] - window[0]).days
            polls = days_in_cycle * 86_400 / delta_seconds
            revocations = _monthly_revocations(trace, window, config.ca_share_of_trace)
            # Every RA downloads: one freshness statement per poll, the new
            # serials once, and a signed root alongside each batch of new
            # revocations (at most one batch per poll, at least one per day
            # with activity).
            batches = min(polls, max(revocations, 0))
            batches = min(batches, days_in_cycle * 86_400 / delta_seconds)
            # A sharded RA fetches the shard index plus one head object per
            # live shard each poll, so the freshness payload, per-request
            # overhead, and request fees all scale with the shard count
            # (the index fetch is charged like one more head object).
            requests_per_poll = config.shards_per_dictionary + (
                1 if config.shards_per_dictionary > 1 else 0
            )
            bytes_per_ra = (
                polls
                * requests_per_poll
                * (
                    config.freshness_bytes_per_poll
                    + config.per_request_overhead_bytes
                )
                + revocations * config.serial_bytes
                + (config.signed_root_bytes * min(days_in_cycle, batches))
            )
            usage = BillingCycleUsage()
            for region, ra_count in ras_by_region.items():
                usage.add(
                    region,
                    int(bytes_per_ra * ra_count),
                    requests=int(polls * requests_per_poll * ra_count)
                    if config.include_request_fees
                    else 0,
                )
            cost = pricing.monthly_bill(usage)
            results[label].append(
                MonthlyCost(
                    cycle_index=cycle_index,
                    month=window[0].strftime("%Y-%m"),
                    delta_label=label,
                    bytes_per_ra=bytes_per_ra,
                    total_bytes=bytes_per_ra * total_ras,
                    cost_usd=cost,
                )
            )
    return CostSimulationResult(
        monthly=results,
        ras_by_region=ras_by_region,
        total_ras=total_ras,
        clients_per_ra=config.clients_per_ra,
    )


@dataclass
class Table2Cell:
    clients_per_ra: int
    delta_label: str
    average_cost_usd: float


def table_2(
    clients_per_ra_values: Sequence[int] = TABLE2_CLIENTS_PER_RA,
    deltas: Optional[Dict[str, int]] = None,
    trace: Optional[RevocationTrace] = None,
    population: Optional[PopulationModel] = None,
) -> List[Table2Cell]:
    """Average monthly cost as a function of Δ and clients-per-RA (Table II)."""
    deltas = deltas if deltas is not None else FIGURE6_DELTAS
    trace = trace if trace is not None else generate_trace()
    population = population if population is not None else generate_population()
    cells: List[Table2Cell] = []
    for clients_per_ra in clients_per_ra_values:
        result = simulate_costs(
            config=CostModelConfig(clients_per_ra=clients_per_ra),
            deltas=deltas,
            trace=trace,
            population=population,
        )
        for label in deltas:
            cells.append(
                Table2Cell(
                    clients_per_ra=clients_per_ra,
                    delta_label=label,
                    average_cost_usd=result.average_cost(label),
                )
            )
    return cells
