"""Plain-text rendering of the reproduction's tables and figures.

Everything the benchmarks produce is rendered as monospace text: tables with
aligned columns for the paper's tables, and simple series/CDF listings for
its figures.  Keeping the rendering in one place makes the benchmark output
uniform and easy to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render rows as an aligned ASCII table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in materialised:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_series(
    points: Sequence[Tuple[object, object]],
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
    max_points: int = 40,
) -> str:
    """Render an (x, y) series, downsampling long series for readability."""
    lines: List[str] = []
    if title:
        lines.append(title)
    step = max(1, len(points) // max_points)
    sampled = list(points[::step])
    if points and sampled[-1] != points[-1]:
        sampled.append(points[-1])
    lines.append(f"{x_label:>24} | {y_label}")
    for x_value, y_value in sampled:
        lines.append(f"{str(x_value):>24} | {y_value}")
    return "\n".join(lines)


def format_cdf_summary(
    samples: Sequence[float], label: str, thresholds: Sequence[float] = (0.5, 1.0, 2.0)
) -> str:
    """Summarise a latency CDF: percentiles plus fraction-below thresholds."""
    if not samples:
        return f"{label}: no samples"
    ordered = sorted(samples)

    def percentile(fraction: float) -> float:
        index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
        return ordered[index]

    parts = [
        f"{label}: n={len(ordered)}",
        f"p50={percentile(0.50):.3f}s",
        f"p90={percentile(0.90):.3f}s",
        f"p99={percentile(0.99):.3f}s",
    ]
    for threshold in thresholds:
        below = sum(1 for sample in ordered if sample <= threshold) / len(ordered)
        parts.append(f"<= {threshold:.1f}s: {below * 100:.1f}%")
    return "  ".join(parts)


def cdf_points(samples: Sequence[float], points: int = 50) -> List[Tuple[float, float]]:
    """Reduce samples to ``points`` evenly spaced CDF points (value, fraction)."""
    if not samples:
        return []
    ordered = sorted(samples)
    result: List[Tuple[float, float]] = []
    for index in range(points):
        fraction = (index + 1) / points
        value = ordered[min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))]
        result.append((value, fraction))
    return result


def human_bytes(count: float) -> str:
    """1532 → '1.5 KB' etc."""
    units = ["B", "KB", "MB", "GB", "TB", "PB"]
    value = float(count)
    for unit in units:
        if abs(value) < 1024.0 or unit == units[-1]:
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} PB"


def human_usd(amount: float) -> str:
    if amount >= 1_000:
        return f"${amount / 1_000:.3f}k"
    return f"${amount:.2f}"
