"""Table III: processing-time microbenchmarks, plus dictionary-update timing.

The paper times five operations (500 repetitions each, reporting max/min/avg
in microseconds):

* RA — TLS detection (DPI fast path);
* RA — certificate parsing (a three-certificate chain, the common case);
* RA — proof construction;
* Client — proof validation;
* Client — signature + freshness validation;

and separately the time for a CA to ``insert`` and an RA to ``update`` a
batch of 1,000 new revocations.

Absolute numbers from this pure-Python implementation are much larger than
the paper's C-speed figures (particularly the Ed25519 verification); what is
expected to reproduce is the *ordering* of costs and the conclusion that the
per-connection overhead is a negligible fraction of a TLS handshake.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.crypto.signing import KeyPair
from repro.dictionary.authdict import CADictionary, ReplicaDictionary
from repro.dictionary.freshness import statement_is_fresh
from repro.pki.serial import SerialNumber
from repro.ritm.dpi import DPIEngine
from repro.tls.connection import ServerConnectionConfig, TLSServerConnection
from repro.tls.messages import ClientHello
from repro.tls.records import ContentType, TLSRecord
from repro.tls.extensions import ritm_support_extension
from repro.workloads.certificates import generate_corpus
from repro.workloads.revocation_trace import serials_for_count

#: Repetitions used by the paper.
PAPER_REPETITIONS = 500


@dataclass
class TimingRow:
    """One row of Table III."""

    entity: str
    operation: str
    max_us: float
    min_us: float
    avg_us: float
    repetitions: int


@dataclass
class Table3Result:
    rows: List[TimingRow]

    def row(self, operation: str) -> TimingRow:
        for row in self.rows:
            if row.operation == operation:
                return row
        raise KeyError(operation)

    def client_total_avg_us(self) -> float:
        """The client-side per-connection total (proof + signature/freshness)."""
        return (
            self.row("Proof validation").avg_us
            + self.row("Sig. and freshness valid.").avg_us
        )

    def ra_handshake_avg_us(self) -> float:
        return (
            self.row("Certificates parsing (DPI)").avg_us
            + self.row("Proof construction").avg_us
        )


def _time_operation(operation: Callable[[], object], repetitions: int) -> TimingRow:
    durations: List[float] = []
    for _ in range(repetitions):
        start = time.perf_counter()
        operation()
        durations.append((time.perf_counter() - start) * 1e6)
    return TimingRow(
        entity="",
        operation="",
        max_us=max(durations),
        min_us=min(durations),
        avg_us=sum(durations) / len(durations),
        repetitions=repetitions,
    )


def _with_labels(row: TimingRow, entity: str, operation: str) -> TimingRow:
    return TimingRow(
        entity=entity,
        operation=operation,
        max_us=row.max_us,
        min_us=row.min_us,
        avg_us=row.avg_us,
        repetitions=row.repetitions,
    )


def run_table_3(
    repetitions: int = PAPER_REPETITIONS,
    dictionary_size: int = 20_000,
    signature_repetitions: Optional[int] = None,
    engine: Optional[str] = None,
) -> Table3Result:
    """Measure every Table III row.

    ``dictionary_size`` controls the dictionary the proofs are built against
    (proof cost grows logarithmically, so 20k entries already exercises a
    realistic depth).  ``signature_repetitions`` can be lowered because the
    pure-Python Ed25519 verification is orders of magnitude slower than the
    other operations.  ``engine`` selects the store backend the proofs are
    served from (see :data:`repro.store.ENGINES`).
    """
    if signature_repetitions is None:
        signature_repetitions = max(10, repetitions // 25)

    # --- fixtures -------------------------------------------------------------
    corpus = generate_corpus(ca_count=1, domains_per_ca=1, use_intermediates=True)
    chain = corpus.chains[0]
    dpi = DPIEngine()

    hello_record = TLSRecord(
        ContentType.HANDSHAKE,
        ClientHello(extensions=(ritm_support_extension(),)).to_bytes(),
    )
    server = TLSServerConnection(ServerConnectionConfig(chain=chain))
    server_flight = server.process_record(hello_record, now=1_400_000_000)[0]
    server_payload = server_flight.to_bytes()

    keys = KeyPair.generate(b"table3")
    dictionary = CADictionary(
        ca_name="Timing-CA", keys=keys, delta=10, chain_length=128, engine=engine
    )
    serial_values = serials_for_count(dictionary_size + 1, seed=3)
    dictionary.insert([SerialNumber(value) for value in serial_values[:dictionary_size]], now=0)
    absent_serial = SerialNumber(serial_values[-1])
    status = dictionary.prove(absent_serial)
    signed_root = dictionary.signed_root
    freshness = dictionary.latest_freshness

    rows: List[TimingRow] = []

    rows.append(
        _with_labels(
            _time_operation(lambda: dpi.is_tls(server_payload), repetitions),
            "RA",
            "TLS detection (DPI)",
        )
    )
    rows.append(
        _with_labels(
            _time_operation(lambda: dpi.inspect(server_payload), repetitions),
            "RA",
            "Certificates parsing (DPI)",
        )
    )
    rows.append(
        _with_labels(
            _time_operation(lambda: dictionary.prove(absent_serial), repetitions),
            "RA",
            "Proof construction",
        )
    )
    rows.append(
        _with_labels(
            _time_operation(lambda: status.proof.verify(signed_root.root), repetitions),
            "Client",
            "Proof validation",
        )
    )
    rows.append(
        _with_labels(
            _time_operation(
                lambda: (
                    signed_root.verify(keys.public),
                    statement_is_fresh(signed_root, freshness, now=5, delta=10),
                ),
                signature_repetitions,
            ),
            "Client",
            "Sig. and freshness valid.",
        )
    )
    return Table3Result(rows=rows)


# -- dictionary update timing (§VII-D "Computation", first paragraph) ---------------------


@dataclass
class DictionaryUpdateTiming:
    batch_size: int
    ca_insert_ms: float
    ra_update_ms: float
    engine: str = "naive"


def time_dictionary_update(
    batch_size: int = 1_000,
    existing_entries: int = 10_000,
    seed: int = 17,
    engine: Optional[str] = None,
) -> DictionaryUpdateTiming:
    """Time a CA ``insert`` and an RA ``update`` of ``batch_size`` revocations."""
    keys = KeyPair.generate(b"dict-update")
    dictionary = CADictionary(
        ca_name="Update-CA", keys=keys, delta=10, chain_length=64, engine=engine
    )
    replica = ReplicaDictionary("Update-CA", keys.public, engine=engine)

    serial_values = serials_for_count(existing_entries + batch_size, seed=seed)
    existing = [SerialNumber(value) for value in serial_values[:existing_entries]]
    batch = [SerialNumber(value) for value in serial_values[existing_entries:]]
    if existing:
        bootstrap = dictionary.insert(existing, now=0)
        replica.update(bootstrap)

    start = time.perf_counter()
    issuance = dictionary.insert(batch, now=1)
    ca_insert_ms = (time.perf_counter() - start) * 1e3

    start = time.perf_counter()
    replica.update(issuance)
    ra_update_ms = (time.perf_counter() - start) * 1e3

    return DictionaryUpdateTiming(
        batch_size=batch_size,
        ca_insert_ms=ca_insert_ms,
        ra_update_ms=ra_update_ms,
        engine=dictionary.store_engine,
    )


# -- single-serial update timing (the engine comparison the store refactor is for) --


@dataclass
class SingleUpdateTiming:
    """Throughput of one-serial-at-a-time updates against a large dictionary.

    ``workload`` is ``"append"`` (serials sorting after every stored key —
    sequentially allocated serials, the incremental engine's O(log N) fast
    path) or ``"random"`` (serials landing at uniform positions, where the
    positional tree shape forces a suffix rehash).  ``level`` records whether
    the measurement includes the CA's signing duty (``"dictionary"``) or
    isolates the store engine (``"store"``).
    """

    engine: str
    existing_entries: int
    updates: int
    workload: str
    level: str
    total_ms: float

    @property
    def ms_per_update(self) -> float:
        return self.total_ms / self.updates if self.updates else 0.0

    @property
    def updates_per_second(self) -> float:
        return 1e3 / self.ms_per_update if self.ms_per_update else float("inf")


#: Existing entries are drawn below this bound so "append" serials can be
#: allocated above it while staying within the 3-byte serial space.
_APPEND_SERIAL_BASE = 2**23


def _serial_space(existing_entries: int) -> Tuple[int, int]:
    """Serial space ``(append base, byte width)`` sized to the population.

    Up to ~2M entries the paper's 3-byte serials leave room for appends
    above :data:`_APPEND_SERIAL_BASE` (keeping historical measurements
    comparable); the 10M-leaf scaling points need a 4-byte space.
    """
    if existing_entries * 4 <= _APPEND_SERIAL_BASE:
        return _APPEND_SERIAL_BASE, 3
    return 2**31, 4


def _existing_serial_values(
    existing_entries: int, seed: int, base: int = _APPEND_SERIAL_BASE
) -> List[int]:
    rng = random.Random(seed)
    return rng.sample(range(1, base), existing_entries)


def _update_serial_values(
    existing: Sequence[int],
    updates: int,
    workload: str,
    seed: int,
    base: int = _APPEND_SERIAL_BASE,
) -> List[int]:
    if workload == "append":
        return [base + 1 + offset for offset in range(updates)]
    if workload != "random":
        raise ValueError(f"unknown workload {workload!r}; expected 'append' or 'random'")
    rng = random.Random(seed + 1)
    taken = set(existing)
    values: List[int] = []
    while len(values) < updates:
        candidate = rng.randrange(1, base)
        if candidate not in taken:
            taken.add(candidate)
            values.append(candidate)
    return values


def time_store_single_updates(
    engine: Optional[str] = None,
    existing_entries: int = 100_000,
    updates: int = 6,
    workload: str = "append",
    seed: int = 29,
) -> SingleUpdateTiming:
    """Store-level single-leaf updates: insert one serial, recompute the root.

    Isolates the engine cost (no signing, no hash chain) — this is the
    number that shows the naive engine's Θ(N)-per-update rebuild against the
    incremental engine's cached levels.
    """
    from repro.store import create_store

    store = create_store(engine)
    existing = _existing_serial_values(existing_entries, seed)
    store.insert_batch(
        (SerialNumber(value).to_bytes(), b"\x00\x00\x00\x01") for value in existing
    )
    store.root()  # settle any lazily deferred rebuild before timing
    new_values = _update_serial_values(existing, updates, workload, seed)
    start = time.perf_counter()
    for value in new_values:
        store.insert(SerialNumber(value).to_bytes(), b"\x00\x00\x00\x01")
        store.root()
    total_ms = (time.perf_counter() - start) * 1e3
    return SingleUpdateTiming(
        engine=store.engine_name,
        existing_entries=existing_entries,
        updates=updates,
        workload=workload,
        level="store",
        total_ms=total_ms,
    )


def time_dictionary_single_updates(
    engine: Optional[str] = None,
    existing_entries: int = 100_000,
    updates: int = 6,
    workload: str = "append",
    seed: int = 29,
    chain_length: int = 64,
) -> SingleUpdateTiming:
    """End-to-end single-serial revocations: tree update + hash chain + signed root."""
    keys = KeyPair.generate(b"single-update")
    dictionary = CADictionary(
        ca_name="Single-CA", keys=keys, delta=10, chain_length=chain_length, engine=engine
    )
    existing = _existing_serial_values(existing_entries, seed)
    dictionary.insert([SerialNumber(value) for value in existing], now=0)
    new_values = _update_serial_values(existing, updates, workload, seed)
    start = time.perf_counter()
    for offset, value in enumerate(new_values):
        dictionary.insert([SerialNumber(value)], now=offset + 1)
    total_ms = (time.perf_counter() - start) * 1e3
    return SingleUpdateTiming(
        engine=dictionary.store_engine,
        existing_entries=existing_entries,
        updates=updates,
        workload=workload,
        level="dictionary",
        total_ms=total_ms,
    )


def time_store_scaling_point(
    engine: Optional[str] = None,
    existing_entries: int = 1_000_000,
    updates: int = 4,
    batch_size: int = 1_000,
    seed: int = 29,
) -> Dict[str, object]:
    """Store-level scaling point for web-scale dictionaries (no signing layer).

    One store instance per call: a bulk build, single-serial appends, one
    append-ordered batch (sequentially allocated serials, the common CA
    issuance pattern), and random-position single serials — each followed by
    a ``root()`` so lazily settling engines pay their hashing inside the
    timed window.  Uses a serial space wide enough for the population
    (4-byte keys beyond what 3-byte serials can hold) and reports flat-buffer
    memory accounting when the engine exposes it.
    """
    from repro.store import create_store

    base, width = _serial_space(existing_entries)
    existing = _existing_serial_values(existing_entries, seed, base=base)
    value = b"\x00\x00\x00\x01"
    store = create_store(engine)

    start = time.perf_counter()
    store.insert_batch((serial.to_bytes(width, "big"), value) for serial in existing)
    store.root()
    build_s = time.perf_counter() - start

    # Untimed warmup append: the first post-build mutation pays a one-off
    # arena/level reallocation in every engine; keep it out of the averages.
    # The warmup serial must be the LOWEST post-build serial — everything
    # timed below sorts after it, so the timed workloads stay true appends.
    store.insert((base + 1).to_bytes(width, "big"), value)
    store.root()

    appends = [base + 2 + offset for offset in range(updates)]
    start = time.perf_counter()
    for serial in appends:
        store.insert(serial.to_bytes(width, "big"), value)
        store.root()
    append_ms = (time.perf_counter() - start) * 1e3 / updates

    # Best-of-3 consecutive append batches: one-shot batch timings swing
    # several-fold with allocator/GC state, and the minimum is the standard
    # robust estimator for "the cost the code actually imposes".
    batch_trials = []
    next_serial = base + 2 + updates
    for _ in range(3):
        batch = [
            ((next_serial + offset).to_bytes(width, "big"), value)
            for offset in range(batch_size)
        ]
        next_serial += batch_size
        start = time.perf_counter()
        store.insert_batch(batch)
        store.root()
        batch_trials.append((time.perf_counter() - start) * 1e3)
    batch_append_ms = min(batch_trials)

    randoms = _update_serial_values(existing, updates, "random", seed, base=base)
    start = time.perf_counter()
    for serial in randoms:
        store.insert(serial.to_bytes(width, "big"), value)
        store.root()
    random_ms = (time.perf_counter() - start) * 1e3 / updates

    point: Dict[str, object] = {
        "existing_entries": existing_entries,
        "engine": store.engine_name,
        "level": "store",
        "serial_width": width,
        "build_s": round(build_s, 3),
        "single_append_ms": round(append_ms, 4),
        "single_append_per_s": round(1e3 / append_ms, 1) if append_ms else float("inf"),
        "batch_append_ms": round(batch_append_ms, 3),
        "batch_append_per_s": round(batch_size * 1e3 / batch_append_ms, 1)
        if batch_append_ms
        else float("inf"),
        "single_random_ms": round(random_ms, 4),
        "single_random_per_s": round(1e3 / random_ms, 1) if random_ms else float("inf"),
    }
    memory_usage = getattr(store, "memory_usage", None)
    if memory_usage is not None:
        usage = memory_usage()
        point["bytes_per_leaf"] = round(usage["total_bytes"] / max(len(store), 1), 1)
    store.close()
    return point


def sweep_dictionary_update(
    sizes: Iterable[int],
    engines: Sequence[str] = ("naive", "incremental"),
    batch_size: int = 1_000,
    single_updates: int = 6,
    seed: int = 17,
    store_points: Sequence[Tuple[int, str]] = (),
) -> Dict[str, object]:
    """Scaling sweep over dictionary sizes × store engines.

    For every size and engine, measures the 1,000-serial batch path (CA
    insert + RA update) and the single-serial append/random paths, and
    derives the incremental-vs-naive (and, when present, the
    compact-vs-incremental) speedups.  ``store_points`` adds store-level
    ``(size, engine)`` measurements via :func:`time_store_scaling_point` for
    populations too large to be interesting end-to-end; compact-vs-
    incremental store speedups are derived per shared size.  Returns a
    JSON-serialisable document (the benchmark writes it to
    ``benchmarks/results/``).
    """
    points: List[Dict[str, object]] = []
    for size in sizes:
        for engine in engines:
            batch = time_dictionary_update(
                batch_size=batch_size, existing_entries=size, seed=seed, engine=engine
            )
            append = time_store_single_updates(
                engine=engine, existing_entries=size, updates=single_updates
            )
            random_pos = time_store_single_updates(
                engine=engine,
                existing_entries=size,
                updates=single_updates,
                workload="random",
            )
            points.append(
                {
                    "existing_entries": size,
                    "engine": batch.engine,
                    "batch_size": batch_size,
                    "ca_insert_ms": round(batch.ca_insert_ms, 3),
                    "ra_update_ms": round(batch.ra_update_ms, 3),
                    "single_append_ms": round(append.ms_per_update, 4),
                    "single_append_per_s": round(append.updates_per_second, 1),
                    "single_random_ms": round(random_pos.ms_per_update, 4),
                    "single_random_per_s": round(random_pos.updates_per_second, 1),
                }
            )
    speedups: List[Dict[str, object]] = []
    by_key = {(p["existing_entries"], p["engine"]): p for p in points}
    for size in {p["existing_entries"] for p in points}:
        naive = by_key.get((size, "naive"))
        incremental = by_key.get((size, "incremental"))
        if naive is None or incremental is None:
            continue
        entry: Dict[str, object] = {
            "existing_entries": size,
            "single_append_speedup": round(
                naive["single_append_ms"] / incremental["single_append_ms"], 1
            )
            if incremental["single_append_ms"]
            else float("inf"),
            "single_random_speedup": round(
                naive["single_random_ms"] / incremental["single_random_ms"], 1
            )
            if incremental["single_random_ms"]
            else float("inf"),
            "batch_ca_insert_speedup": round(
                naive["ca_insert_ms"] / incremental["ca_insert_ms"], 1
            )
            if incremental["ca_insert_ms"]
            else float("inf"),
        }
        compact = by_key.get((size, "compact"))
        if compact is not None:
            entry["compact_single_random_speedup"] = (
                round(incremental["single_random_ms"] / compact["single_random_ms"], 2)
                if compact["single_random_ms"]
                else float("inf")
            )
            entry["compact_batch_ca_insert_speedup"] = (
                round(incremental["ca_insert_ms"] / compact["ca_insert_ms"], 2)
                if compact["ca_insert_ms"]
                else float("inf")
            )
        speedups.append(entry)
    speedups.sort(key=lambda entry: entry["existing_entries"])

    store_point_rows: List[Dict[str, object]] = []
    for store_size, store_engine in store_points:
        store_point_rows.append(
            time_store_scaling_point(
                engine=store_engine,
                existing_entries=store_size,
                updates=single_updates,
                batch_size=batch_size,
                seed=seed,
            )
        )
    store_speedups: List[Dict[str, object]] = []
    by_store = {(p["existing_entries"], p["engine"]): p for p in store_point_rows}
    for size in sorted({store_size for store_size, _ in store_points}):
        incremental_point = by_store.get((size, "incremental"))
        compact_point = by_store.get((size, "compact"))
        if incremental_point is None or compact_point is None:
            continue
        store_speedups.append(
            {
                "existing_entries": size,
                "compact_build_speedup": round(
                    incremental_point["build_s"] / compact_point["build_s"], 2
                )
                if compact_point["build_s"]
                else float("inf"),
                "compact_single_append_speedup": round(
                    incremental_point["single_append_ms"]
                    / compact_point["single_append_ms"],
                    2,
                )
                if compact_point["single_append_ms"]
                else float("inf"),
                "compact_batch_append_speedup": round(
                    incremental_point["batch_append_ms"]
                    / compact_point["batch_append_ms"],
                    2,
                )
                if compact_point["batch_append_ms"]
                else float("inf"),
                "compact_single_random_speedup": round(
                    incremental_point["single_random_ms"]
                    / compact_point["single_random_ms"],
                    2,
                )
                if compact_point["single_random_ms"]
                else float("inf"),
            }
        )
    return {
        "batch_size": batch_size,
        "single_updates": single_updates,
        "points": points,
        "speedups": speedups,
        "store_points": store_point_rows,
        "store_speedups": store_speedups,
    }


@dataclass
class ThroughputEstimate:
    """§VII-D's derived throughput claims."""

    non_tls_packets_per_second: float
    handshakes_per_second: float
    client_validations_per_second: float


def throughput_from_table3(table3: Table3Result) -> ThroughputEstimate:
    """Convert the Table III averages into the paper's packets/handshakes/sec."""
    detection = table3.row("TLS detection (DPI)").avg_us
    handshake = table3.ra_handshake_avg_us()
    client = table3.client_total_avg_us()
    return ThroughputEstimate(
        non_tls_packets_per_second=1e6 / detection if detection else float("inf"),
        handshakes_per_second=1e6 / handshake if handshake else float("inf"),
        client_validations_per_second=1e6 / client if client else float("inf"),
    )
