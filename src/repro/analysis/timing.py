"""Table III: processing-time microbenchmarks, plus dictionary-update timing.

The paper times five operations (500 repetitions each, reporting max/min/avg
in microseconds):

* RA — TLS detection (DPI fast path);
* RA — certificate parsing (a three-certificate chain, the common case);
* RA — proof construction;
* Client — proof validation;
* Client — signature + freshness validation;

and separately the time for a CA to ``insert`` and an RA to ``update`` a
batch of 1,000 new revocations.

Absolute numbers from this pure-Python implementation are much larger than
the paper's C-speed figures (particularly the Ed25519 verification); what is
expected to reproduce is the *ordering* of costs and the conclusion that the
per-connection overhead is a negligible fraction of a TLS handshake.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.crypto.signing import KeyPair
from repro.dictionary.authdict import CADictionary, ReplicaDictionary
from repro.dictionary.freshness import statement_is_fresh
from repro.pki.serial import SerialNumber
from repro.ritm.dpi import DPIEngine
from repro.tls.connection import ServerConnectionConfig, TLSServerConnection
from repro.tls.messages import ClientHello
from repro.tls.records import ContentType, TLSRecord
from repro.tls.extensions import ritm_support_extension
from repro.workloads.certificates import generate_corpus
from repro.workloads.revocation_trace import serials_for_count

#: Repetitions used by the paper.
PAPER_REPETITIONS = 500


@dataclass
class TimingRow:
    """One row of Table III."""

    entity: str
    operation: str
    max_us: float
    min_us: float
    avg_us: float
    repetitions: int


@dataclass
class Table3Result:
    rows: List[TimingRow]

    def row(self, operation: str) -> TimingRow:
        for row in self.rows:
            if row.operation == operation:
                return row
        raise KeyError(operation)

    def client_total_avg_us(self) -> float:
        """The client-side per-connection total (proof + signature/freshness)."""
        return (
            self.row("Proof validation").avg_us
            + self.row("Sig. and freshness valid.").avg_us
        )

    def ra_handshake_avg_us(self) -> float:
        return (
            self.row("Certificates parsing (DPI)").avg_us
            + self.row("Proof construction").avg_us
        )


def _time_operation(operation: Callable[[], object], repetitions: int) -> TimingRow:
    durations: List[float] = []
    for _ in range(repetitions):
        start = time.perf_counter()
        operation()
        durations.append((time.perf_counter() - start) * 1e6)
    return TimingRow(
        entity="",
        operation="",
        max_us=max(durations),
        min_us=min(durations),
        avg_us=sum(durations) / len(durations),
        repetitions=repetitions,
    )


def _with_labels(row: TimingRow, entity: str, operation: str) -> TimingRow:
    return TimingRow(
        entity=entity,
        operation=operation,
        max_us=row.max_us,
        min_us=row.min_us,
        avg_us=row.avg_us,
        repetitions=row.repetitions,
    )


def run_table_3(
    repetitions: int = PAPER_REPETITIONS,
    dictionary_size: int = 20_000,
    signature_repetitions: Optional[int] = None,
) -> Table3Result:
    """Measure every Table III row.

    ``dictionary_size`` controls the dictionary the proofs are built against
    (proof cost grows logarithmically, so 20k entries already exercises a
    realistic depth).  ``signature_repetitions`` can be lowered because the
    pure-Python Ed25519 verification is orders of magnitude slower than the
    other operations.
    """
    if signature_repetitions is None:
        signature_repetitions = max(10, repetitions // 25)

    # --- fixtures -------------------------------------------------------------
    corpus = generate_corpus(ca_count=1, domains_per_ca=1, use_intermediates=True)
    chain = corpus.chains[0]
    dpi = DPIEngine()

    hello_record = TLSRecord(
        ContentType.HANDSHAKE,
        ClientHello(extensions=(ritm_support_extension(),)).to_bytes(),
    )
    server = TLSServerConnection(ServerConnectionConfig(chain=chain))
    server_flight = server.process_record(hello_record, now=1_400_000_000)[0]
    server_payload = server_flight.to_bytes()

    keys = KeyPair.generate(b"table3")
    dictionary = CADictionary(ca_name="Timing-CA", keys=keys, delta=10, chain_length=128)
    serial_values = serials_for_count(dictionary_size + 1, seed=3)
    dictionary.insert([SerialNumber(value) for value in serial_values[:dictionary_size]], now=0)
    absent_serial = SerialNumber(serial_values[-1])
    status = dictionary.prove(absent_serial)
    signed_root = dictionary.signed_root
    freshness = dictionary.latest_freshness

    rows: List[TimingRow] = []

    rows.append(
        _with_labels(
            _time_operation(lambda: dpi.is_tls(server_payload), repetitions),
            "RA",
            "TLS detection (DPI)",
        )
    )
    rows.append(
        _with_labels(
            _time_operation(lambda: dpi.inspect(server_payload), repetitions),
            "RA",
            "Certificates parsing (DPI)",
        )
    )
    rows.append(
        _with_labels(
            _time_operation(lambda: dictionary.prove(absent_serial), repetitions),
            "RA",
            "Proof construction",
        )
    )
    rows.append(
        _with_labels(
            _time_operation(lambda: status.proof.verify(signed_root.root), repetitions),
            "Client",
            "Proof validation",
        )
    )
    rows.append(
        _with_labels(
            _time_operation(
                lambda: (
                    signed_root.verify(keys.public),
                    statement_is_fresh(signed_root, freshness, now=5, delta=10),
                ),
                signature_repetitions,
            ),
            "Client",
            "Sig. and freshness valid.",
        )
    )
    return Table3Result(rows=rows)


# -- dictionary update timing (§VII-D "Computation", first paragraph) ---------------------


@dataclass
class DictionaryUpdateTiming:
    batch_size: int
    ca_insert_ms: float
    ra_update_ms: float


def time_dictionary_update(
    batch_size: int = 1_000, existing_entries: int = 10_000, seed: int = 17
) -> DictionaryUpdateTiming:
    """Time a CA ``insert`` and an RA ``update`` of ``batch_size`` revocations."""
    keys = KeyPair.generate(b"dict-update")
    dictionary = CADictionary(ca_name="Update-CA", keys=keys, delta=10, chain_length=64)
    replica = ReplicaDictionary("Update-CA", keys.public)

    serial_values = serials_for_count(existing_entries + batch_size, seed=seed)
    existing = [SerialNumber(value) for value in serial_values[:existing_entries]]
    batch = [SerialNumber(value) for value in serial_values[existing_entries:]]
    if existing:
        bootstrap = dictionary.insert(existing, now=0)
        replica.update(bootstrap)

    start = time.perf_counter()
    issuance = dictionary.insert(batch, now=1)
    ca_insert_ms = (time.perf_counter() - start) * 1e3

    start = time.perf_counter()
    replica.update(issuance)
    ra_update_ms = (time.perf_counter() - start) * 1e3

    return DictionaryUpdateTiming(
        batch_size=batch_size, ca_insert_ms=ca_insert_ms, ra_update_ms=ra_update_ms
    )


@dataclass
class ThroughputEstimate:
    """§VII-D's derived throughput claims."""

    non_tls_packets_per_second: float
    handshakes_per_second: float
    client_validations_per_second: float


def throughput_from_table3(table3: Table3Result) -> ThroughputEstimate:
    """Convert the Table III averages into the paper's packets/handshakes/sec."""
    detection = table3.row("TLS detection (DPI)").avg_us
    handshake = table3.ra_handshake_avg_us()
    client = table3.client_total_avg_us()
    return ThroughputEstimate(
        non_tls_packets_per_second=1e6 / detection if detection else float("inf"),
        handshakes_per_second=1e6 / handshake if handshake else float("inf"),
        client_validations_per_second=1e6 / client if client else float("inf"),
    )
