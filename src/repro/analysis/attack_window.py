"""Fleet-scale simulation: empirical attack-window measurement (§V).

The paper argues that RITM's effective attack window is 2Δ: a CA publishes
within Δ of revoking, RAs pull within another Δ, and clients refuse stale
statuses.  That argument is analytical; this module measures it empirically
by running an event-driven fleet:

* one RITM CA refreshing/publishing on its Δ schedule;
* a configurable number of RAs scattered across CDN regions, each pulling on
  its own Δ-periodic schedule with an independent phase offset (the paper's
  point that CA and RA schedules need not be aligned);
* a stream of client connections (one per RA per Δ) probing a certificate
  that gets revoked mid-simulation.

For every RA the simulation records when the revocation became *enforceable*
at that RA (the first moment a client connecting through it would be refused)
and reports the distribution of ``enforceable_time - revocation_time``, which
the 2Δ bound must dominate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cdn.geography import GeoLocation, Region
from repro.cdn.network import CDNNetwork
from repro.crypto.signing import KeyPair
from repro.net.simulator import EventScheduler
from repro.pki.ca import CertificationAuthority
from repro.ritm.agent import RevocationAgent
from repro.ritm.ca_service import RITMCertificationAuthority
from repro.ritm.config import RITMConfig
from repro.ritm.dissemination import RADisseminationClient, attach_agent_to_cas
from repro.errors import RevokedCertificateError, StaleStatusError


@dataclass
class FleetAgent:
    """One RA in the fleet with its dissemination client and pull phase."""

    agent: RevocationAgent
    dissemination: RADisseminationClient
    phase_offset: float
    enforceable_at: Optional[float] = None


@dataclass
class AttackWindowResult:
    """Propagation lags (seconds) from revocation to enforceability, per RA."""

    delta_seconds: int
    revocation_time: float
    lags: List[float]

    def max_lag(self) -> float:
        return max(self.lags)

    def mean_lag(self) -> float:
        return sum(self.lags) / len(self.lags)

    def fraction_within(self, bound_seconds: float) -> float:
        return sum(1 for lag in self.lags if lag <= bound_seconds) / len(self.lags)

    def within_two_delta(self) -> bool:
        """The paper's claim: every RA enforces the revocation within 2Δ."""
        return self.max_lag() <= 2 * self.delta_seconds


def run_attack_window_simulation(
    delta_seconds: int = 10,
    ra_count: int = 40,
    revocation_after_periods: int = 3,
    horizon_periods: int = 10,
    seed: int = 77,
) -> AttackWindowResult:
    """Run the fleet simulation and measure revocation propagation lags."""
    rng = random.Random(seed)
    config = RITMConfig(delta_seconds=delta_seconds, chain_length=4 * horizon_periods + 16)

    authority = CertificationAuthority("Fleet-CA", key_seed=b"fleet-ca")
    victim_keys = KeyPair.generate(b"fleet-victim")
    chain = authority.issue_chain_for("victim.example", victim_keys.public, now=0)
    serial = chain.leaf.serial

    cdn = CDNNetwork(edges_per_region=1)
    ritm_ca = RITMCertificationAuthority(authority, config, cdn)
    ritm_ca.bootstrap(now=0)

    regions = list(Region)
    fleet: List[FleetAgent] = []
    for index in range(ra_count):
        agent = RevocationAgent(f"fleet-ra-{index}", config)
        location = GeoLocation(region=rng.choice(regions), distance_factor=rng.random())
        dissemination = attach_agent_to_cas(agent, [ritm_ca], cdn, location)
        fleet.append(
            FleetAgent(
                agent=agent,
                dissemination=dissemination,
                phase_offset=rng.uniform(0, delta_seconds),
            )
        )

    scheduler = EventScheduler()
    revocation_time = float(revocation_after_periods * delta_seconds)
    state: Dict[str, float] = {}

    # CA duty: refresh (or publish the revocation) every Δ.
    def ca_tick(now: float) -> None:
        if now >= revocation_time and "revoked" not in state:
            ritm_ca.revoke([serial], now=now)
            state["revoked"] = now
        else:
            ritm_ca.refresh(now=now)

    scheduler.schedule_periodic(delta_seconds, ca_tick, start=0.0)

    # RA duty: pull every Δ (own phase), then check enforceability by proving.
    def make_ra_tick(member: FleetAgent):
        def ra_tick(now: float) -> None:
            member.dissemination.pull(now=now)
            if member.enforceable_at is not None or "revoked" not in state:
                return
            replica = member.agent.replica_for(authority.name)
            status = replica.prove(serial)
            try:
                status.verify(
                    ritm_ca.public_key,
                    now=int(now),
                    delta=delta_seconds,
                    tolerance_periods=config.freshness_tolerance_periods,
                )
            except RevokedCertificateError:
                member.enforceable_at = now
            except StaleStatusError:
                # A stale status also means the client refuses the connection,
                # which closes the attack window just the same.
                member.enforceable_at = now

        return ra_tick

    for member in fleet:
        scheduler.schedule_periodic(
            delta_seconds, make_ra_tick(member), start=member.phase_offset
        )

    scheduler.run_until(float(horizon_periods * delta_seconds))

    actual_revocation_time = state.get("revoked", revocation_time)
    lags = [
        (member.enforceable_at - actual_revocation_time)
        for member in fleet
        if member.enforceable_at is not None
    ]
    if len(lags) != len(fleet):
        missing = len(fleet) - len(lags)
        raise RuntimeError(
            f"{missing} RAs never observed the revocation within the simulation horizon"
        )
    return AttackWindowResult(
        delta_seconds=delta_seconds,
        revocation_time=actual_revocation_time,
        lags=lags,
    )
