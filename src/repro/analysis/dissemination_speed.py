"""Fig. 5: CDF of revocation-message download times across vantage points.

The paper uploads five revocation messages (a bare freshness statement and
messages carrying 15k, 30k, 45k, and 60k revocations) to Amazon CloudFront
with caching disabled (TTL = 0), then downloads each ten times from 80
PlanetLab nodes and plots the download-time CDFs.  The headline result: even
for the largest message and in the worst (uncached) case, 90 % of nodes
finish in under one second.

This harness reproduces the experiment against the CDN model: it builds
revocation messages of the same five sizes from a real CA dictionary, uploads
them to the simulated CDN, and "downloads" them from the synthetic PlanetLab
vantage points with per-repetition network jitter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdn.network import CDNNetwork
from repro.crypto.signing import KeyPair
from repro.dictionary.authdict import CADictionary
from repro.pki.serial import SerialNumber
from repro.ritm.messages import encode_issuance
from repro.workloads.planetlab import (
    PLANETLAB_NODE_COUNT,
    REPETITIONS_PER_NODE,
    VantagePoint,
    generate_vantage_points,
)
from repro.workloads.revocation_trace import serials_for_count

#: The five message sizes measured in the paper.
PAPER_MESSAGE_SIZES = (0, 15_000, 30_000, 45_000, 60_000)


@dataclass
class Figure5Result:
    """Download-time samples per message size, plus the built message sizes."""

    samples: Dict[int, List[float]]
    message_bytes: Dict[int, int]
    node_count: int
    repetitions: int

    def fraction_below(self, revocation_count: int, threshold_seconds: float) -> float:
        values = self.samples[revocation_count]
        if not values:
            return 0.0
        return sum(1 for value in values if value <= threshold_seconds) / len(values)

    def percentile(self, revocation_count: int, fraction: float) -> float:
        values = sorted(self.samples[revocation_count])
        index = min(len(values) - 1, int(round(fraction * (len(values) - 1))))
        return values[index]


def build_revocation_message(revocation_count: int, delta_seconds: int = 60) -> bytes:
    """Build a revocation-issuance message carrying ``revocation_count`` serials.

    A count of zero produces the freshness-statement-only object (the paper's
    "0 revocations" line).
    """
    keys = KeyPair.generate(f"fig5-{revocation_count}".encode())
    dictionary = CADictionary(
        ca_name="Fig5-CA", keys=keys, delta=delta_seconds, chain_length=64
    )
    if revocation_count == 0:
        dictionary.refresh(0)
        from repro.ritm.messages import encode_head, DictionaryHead

        return encode_head(
            DictionaryHead(
                ca_name="Fig5-CA",
                size=0,
                signed_root=dictionary.signed_root,
                freshness=dictionary.latest_freshness,
            )
        )
    serials = [SerialNumber(value) for value in serials_for_count(revocation_count, seed=revocation_count)]
    issuance = dictionary.insert(serials, now=0)
    return encode_issuance(issuance)


def run_figure_5(
    message_sizes: Sequence[int] = PAPER_MESSAGE_SIZES,
    vantage_points: Optional[List[VantagePoint]] = None,
    repetitions: int = REPETITIONS_PER_NODE,
    jitter_sigma: float = 0.35,
    seed: int = 55,
    cdn: Optional[CDNNetwork] = None,
) -> Figure5Result:
    """Run the Fig. 5 measurement against the CDN model.

    ``jitter_sigma`` is the log-normal sigma applied per repetition to model
    transient network variation (queueing, loss recovery, shared PlanetLab
    hosts); the paper's spread between repetitions motivates it.
    """
    vantage_points = (
        vantage_points if vantage_points is not None else generate_vantage_points()
    )
    cdn = cdn if cdn is not None else CDNNetwork(edges_per_region=2)
    rng = random.Random(seed)

    message_bytes: Dict[int, int] = {}
    for count in message_sizes:
        content = build_revocation_message(count)
        message_bytes[count] = len(content)
        # TTL = 0: every request goes back to the origin (the paper's worst case).
        cdn.publish(f"/fig5/{count}", content, now=0.0, ttl_seconds=0.0)

    samples: Dict[int, List[float]] = {count: [] for count in message_sizes}
    now = 1.0
    for count in message_sizes:
        for node in vantage_points:
            for _ in range(repetitions):
                download = cdn.download(f"/fig5/{count}", node.location, now)
                jitter = rng.lognormvariate(0.0, jitter_sigma)
                samples[count].append(download.latency_seconds * jitter)
                now += 1.0
    return Figure5Result(
        samples=samples,
        message_bytes=message_bytes,
        node_count=len(vantage_points),
        repetitions=repetitions,
    )
