"""Fig. 4: the revocation-rate time series and its Heartbleed close-up.

The top panel of Fig. 4 shows the number of revocations issued per month
between January 2014 and June 2015; the bottom panel zooms into 16–17 April
2014 (the highest observed rates, right after the Heartbleed disclosure)
at sub-day resolution.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.workloads.revocation_trace import (
    HEARTBLEED_BURST_PEAK,
    TRACE_END,
    TRACE_START,
    RevocationTrace,
    generate_trace,
)


@dataclass
class Figure4Result:
    """The two panels of Fig. 4 plus the headline statistics."""

    monthly_counts: List[Tuple[str, int]]
    heartbleed_focus: List[Tuple[int, int]]
    focus_bin_seconds: int
    total_revocations: int
    peak_day: _dt.date
    peak_day_count: int

    def peak_month(self) -> Tuple[str, int]:
        return max(self.monthly_counts, key=lambda item: item[1])

    def baseline_month(self) -> Tuple[str, int]:
        """The quietest full month, as a proxy for the pre-Heartbleed baseline."""
        return min(self.monthly_counts, key=lambda item: item[1])

    def peak_to_baseline_ratio(self) -> float:
        peak = self.peak_month()[1]
        baseline = self.baseline_month()[1]
        return peak / baseline if baseline else float("inf")


def figure_4(
    trace: Optional[RevocationTrace] = None,
    focus_bin_seconds: int = 6 * 3600,
) -> Figure4Result:
    """Compute both panels of Fig. 4 from a (synthetic) revocation trace."""
    trace = trace if trace is not None else generate_trace()
    monthly = [
        (month, count)
        for month, count in trace.monthly_counts()
        if TRACE_START.strftime("%Y-%m") <= month <= TRACE_END.strftime("%Y-%m")
    ]
    focus_start = HEARTBLEED_BURST_PEAK
    focus_end = HEARTBLEED_BURST_PEAK + _dt.timedelta(days=1)
    focus = trace.counts_per_bin(focus_start, focus_end, focus_bin_seconds)
    peak = trace.peak_day()
    total_in_window = sum(
        entry.count for entry in trace.between(TRACE_START, TRACE_END)
    )
    return Figure4Result(
        monthly_counts=monthly,
        heartbleed_focus=focus,
        focus_bin_seconds=focus_bin_seconds,
        total_revocations=total_in_window,
        peak_day=peak.day,
        peak_day_count=peak.count,
    )
