"""Single source of truth for the library version."""

__version__ = "1.0.0"
