"""RITM: Revocation in the Middle — a full Python reproduction.

The package is organised as the paper's system is:

* :mod:`repro.crypto`      — hash chains, Merkle proof objects, Ed25519;
* :mod:`repro.store`       — pluggable authenticated-store engines (naive
  full-rebuild oracle, incremental cached-level engine) behind one interface;
* :mod:`repro.pki`         — certificates, CAs, chains, standard validation;
* :mod:`repro.dictionary`  — authenticated revocation dictionaries (Fig. 2);
* :mod:`repro.tls`         — record layer, handshake, sessions, endpoints;
* :mod:`repro.net`         — simulated clock, packets, paths, middleboxes;
* :mod:`repro.cdn`         — origin, edge servers, geography, pricing;
* :mod:`repro.ritm`        — Revocation Agents, RITM clients/servers/CAs,
  dissemination, consistency checking, deployment models (the paper's core);
* :mod:`repro.baselines`   — CRL, CRLSet, OCSP (+stapling), short-lived
  certificates, log-based schemes, RevCast, and the Table IV comparison;
* :mod:`repro.workloads`   — synthetic revocation traces, certificate
  corpora, city populations, PlanetLab-style vantage points;
* :mod:`repro.analysis`    — the experiment harnesses behind every table and
  figure of §VII.
"""

from repro.version import __version__

__all__ = ["__version__"]
