"""Pure-Python Ed25519 (RFC 8032) signatures.

The paper (§VI) signs dictionary roots with Ed25519 to keep the signed root
small: 32-byte public keys and 64-byte signatures.  No third-party crypto
library is assumed to be available, so this module implements the scheme from
scratch on top of Python integers.  It follows the structure of the original
reference implementation by Bernstein et al. (public domain), modernised for
Python 3 and extended with input validation.

The implementation favours clarity over speed — signing and verifying take on
the order of ten milliseconds each — which is acceptable because RITM signs a
root at most once per Δ and clients cache the verified root for the lifetime
of the freshness chain.  For the latency-critical per-connection operations
the paper (and this reproduction) relies on hash-only proofs.
"""

from __future__ import annotations

import hashlib
import os
from typing import List, Sequence, Tuple

from repro.errors import CryptoError, SignatureError

# --------------------------------------------------------------------------
# Curve parameters (edwards25519)
# --------------------------------------------------------------------------

#: Field prime 2^255 - 19.
P = 2**255 - 19
#: Group order.
L = 2**252 + 27742317777372353535851937790883648493
#: Curve constant d = -121665/121666 mod p.
D = -121665 * pow(121666, P - 2, P) % P
#: sqrt(-1) mod p, used during point decompression.
SQRT_M1 = pow(2, (P - 1) // 4, P)

#: Size in bytes of public keys and of each signature half.
KEY_SIZE = 32
SIGNATURE_SIZE = 64

_Point = Tuple[int, int, int, int]  # extended homogeneous coordinates (X, Y, Z, T)


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _sha512_int(data: bytes) -> int:
    return int.from_bytes(_sha512(data), "little")


# --------------------------------------------------------------------------
# Point arithmetic in extended homogeneous coordinates
# --------------------------------------------------------------------------


def _point_add(p: _Point, q: _Point) -> _Point:
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % P
    b = (y1 + x1) * (y2 + x2) % P
    c = 2 * t1 * t2 * D % P
    d = 2 * z1 * z2 % P
    e, f, g, h = b - a, d - c, d + c, b + a
    return (e * f % P, g * h % P, f * g % P, e * h % P)


def _point_double(p: _Point) -> _Point:
    # Doubling is a special case of addition on this curve; reuse it for
    # simplicity (the curve is complete, so addition works for P == Q).
    return _point_add(p, p)


def _scalar_mult(scalar: int, point: _Point) -> _Point:
    """Double-and-add scalar multiplication (not constant time)."""
    result: _Point = (0, 1, 1, 0)  # neutral element
    addend = point
    while scalar:
        if scalar & 1:
            result = _point_add(result, addend)
        addend = _point_double(addend)
        scalar >>= 1
    return result


def _recover_x(y: int, sign: int) -> int:
    if y >= P:
        raise CryptoError("point decompression failed: y out of range")
    x2 = (y * y - 1) * pow(D * y * y + 1, P - 2, P) % P
    if x2 == 0:
        if sign:
            raise CryptoError("point decompression failed: invalid sign bit")
        return 0
    x = pow(x2, (P + 3) // 8, P)
    if (x * x - x2) % P != 0:
        x = x * SQRT_M1 % P
    if (x * x - x2) % P != 0:
        raise CryptoError("point decompression failed: not a square")
    if x & 1 != sign:
        x = P - x
    return x


# Base point B.
_BASE_Y = 4 * pow(5, P - 2, P) % P
_BASE_X = _recover_x(_BASE_Y, 0)
BASE_POINT: _Point = (_BASE_X, _BASE_Y, 1, _BASE_X * _BASE_Y % P)


def _point_compress(p: _Point) -> bytes:
    x, y, z, _ = p
    zinv = pow(z, P - 2, P)
    x, y = x * zinv % P, y * zinv % P
    return int.to_bytes(y | ((x & 1) << 255), KEY_SIZE, "little")


def _point_decompress(data: bytes) -> _Point:
    if len(data) != KEY_SIZE:
        raise CryptoError(f"compressed point must be {KEY_SIZE} bytes")
    y = int.from_bytes(data, "little")
    sign = y >> 255
    y &= (1 << 255) - 1
    x = _recover_x(y, sign)
    return (x, y, 1, x * y % P)


def _point_equal(p: _Point, q: _Point) -> bool:
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    return (x1 * z2 - x2 * z1) % P == 0 and (y1 * z2 - y2 * z1) % P == 0


# --------------------------------------------------------------------------
# Key generation / signing / verification
# --------------------------------------------------------------------------


def _secret_expand(secret: bytes) -> Tuple[int, bytes]:
    if len(secret) != KEY_SIZE:
        raise CryptoError(f"secret key seed must be {KEY_SIZE} bytes")
    h = _sha512(secret)
    a = int.from_bytes(h[:32], "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a, h[32:]


def publickey(secret: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte secret seed."""
    a, _ = _secret_expand(secret)
    return _point_compress(_scalar_mult(a, BASE_POINT))


def sign(secret: bytes, message: bytes) -> bytes:
    """Produce a 64-byte Ed25519 signature of ``message``."""
    a, prefix = _secret_expand(secret)
    public = _point_compress(_scalar_mult(a, BASE_POINT))
    r = _sha512_int(prefix + message) % L
    r_point = _point_compress(_scalar_mult(r, BASE_POINT))
    h = _sha512_int(r_point + public + message) % L
    s = (r + h * a) % L
    return r_point + int.to_bytes(s, 32, "little")


def _mul_by_cofactor(point: _Point) -> _Point:
    """``[8] point`` (three doublings)."""
    return _point_double(_point_double(_point_double(point)))


def _is_small_order(point: _Point) -> bool:
    """Whether ``point`` lies in the 8-torsion subgroup (``[8]P`` = identity)."""
    return _point_equal(_mul_by_cofactor(point), (0, 1, 1, 0))


def verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """Return ``True`` iff ``signature`` is a valid signature of ``message``.

    Uses the *cofactored* group equation ``[8][s]B == [8]R + [8][h]A`` that
    RFC 8032 §5.1.7 specifies (the cofactorless variant is only permitted
    as an alternative), after rejecting small-order ``A`` and ``R``.
    Cofactored verification is what makes batch verification
    (:func:`verify_batch`) agree with this function *exactly*: both ignore
    the same 8-torsion component, so an adversarially mangled signature can
    never be accepted by one path and rejected by the other.
    """
    if len(public) != KEY_SIZE:
        raise SignatureError(f"public key must be {KEY_SIZE} bytes")
    if len(signature) != SIGNATURE_SIZE:
        raise SignatureError(f"signature must be {SIGNATURE_SIZE} bytes")
    try:
        a_point = _point_decompress(public)
        r_point = _point_decompress(signature[:32])
    except CryptoError:
        return False
    if _is_small_order(a_point) or _is_small_order(r_point):
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= L:
        return False
    h = _sha512_int(signature[:32] + public + message) % L
    sb = _scalar_mult(s, BASE_POINT)
    rha = _point_add(r_point, _scalar_mult(h, a_point))
    return _point_equal(_mul_by_cofactor(sb), _mul_by_cofactor(rha))


# --------------------------------------------------------------------------
# Batch verification
# --------------------------------------------------------------------------

_NEUTRAL: _Point = (0, 1, 1, 0)

#: Bits of the random blinding coefficients; a batch containing an invalid
#: signature passes the combined check with probability ~2^-128.
_BLINDING_BITS = 128


def _multi_scalar_mult(pairs: Sequence[Tuple[int, _Point]]) -> _Point:
    """Straus interleaved multi-scalar multiplication: sum of scalar·point.

    All scalars share one doubling chain (one doubling per bit position for
    the whole sum instead of per term), which is where batch verification
    gets its speedup over verifying signatures one at a time.
    """
    max_bits = max((scalar.bit_length() for scalar, _ in pairs), default=0)
    result = _NEUTRAL
    for bit in range(max_bits - 1, -1, -1):
        result = _point_double(result)
        for scalar, point in pairs:
            if (scalar >> bit) & 1:
                result = _point_add(result, point)
    return result


def verify_batch(items: Sequence[Tuple[bytes, bytes, bytes]]) -> bool:
    """Check many ``(public, message, signature)`` triples in one equation.

    Uses the standard random-linear-combination batch equation: with random
    blinding scalars ``z_i``,

        ``[8][Σ z_i·s_i] B  ==  [8](Σ [z_i] R_i + Σ [z_i·h_i] A_i)``

    holds exactly whenever every individual cofactored equation (the one
    :func:`verify` checks) holds, and fails with overwhelming probability
    (≥ 1−2⁻¹²⁸) when any does not.  Multiplying the combined result by the
    cofactor — and rejecting small-order ``A_i``/``R_i`` up front, exactly
    as :func:`verify` does — is what keeps the two paths in exact
    agreement: an 8-torsion defect that a *cofactorless* serial check would
    reject only cancels out of a blinded sum with probability ~1/8 per
    attempt, which would let a batch accept signatures the serial path
    rejects.  With both paths cofactored there is no such gap.

    Returns ``True`` iff the whole batch verifies; ``False`` demands a
    serial fallback to identify the culprit (see
    :func:`repro.crypto.signing.verify_batch`).  Malformed keys, points, or
    out-of-range scalars simply return ``False`` rather than raising, since
    a batch is an all-or-nothing check.
    """
    if not items:
        return True
    lhs_scalar = 0
    terms: List[Tuple[int, _Point]] = []
    for public, message, signature in items:
        if len(public) != KEY_SIZE or len(signature) != SIGNATURE_SIZE:
            return False
        try:
            a_point = _point_decompress(public)
            r_point = _point_decompress(signature[:32])
        except CryptoError:
            return False
        if _is_small_order(a_point) or _is_small_order(r_point):
            return False
        s = int.from_bytes(signature[32:], "little")
        if s >= L:
            return False
        h = _sha512_int(signature[:32] + public + message) % L
        z = int.from_bytes(os.urandom(_BLINDING_BITS // 8), "little") | (
            1 << (_BLINDING_BITS - 1)
        )
        lhs_scalar = (lhs_scalar + z * s) % L
        terms.append((z, r_point))
        terms.append((z * h % L, a_point))
    # Move the base-point term to the right-hand side so the whole equation
    # becomes one multi-scalar multiplication that must land on the neutral
    # element (after clearing the cofactor):
    # [8](Σ z_i R_i + Σ z_i h_i A_i + [L - Σ z_i s_i] B) == 0.
    terms.append(((L - lhs_scalar) % L, BASE_POINT))
    return _point_equal(_mul_by_cofactor(_multi_scalar_mult(terms)), _NEUTRAL)
