"""Sorted Merkle hash tree with presence and absence proofs.

This is the structure underlying RITM's authenticated dictionaries (paper
§II, §III).  Leaves are ``(key, value)`` pairs kept in lexicographic order of
their keys; in RITM the key is a certificate serial number and the value is
the revocation's sequence number within the CA's dictionary.

Because the leaves are sorted, the tree can prove two kinds of statements
about a queried key:

* *presence*: the key is in the tree — an ordinary audit path from the leaf
  to the root;
* *absence*: the key is not in the tree — audit paths for the two adjacent
  leaves that would surround the key, showing they sit at consecutive leaf
  positions and that the queried key falls strictly between them (with the
  obvious one-sided variants when the key would sort before the first or
  after the last leaf, and a trivial variant for the empty tree).

Proof sizes are logarithmic in the number of leaves, which is what gives RITM
its 500–900-byte revocation statuses even for the largest CRL in the paper's
dataset.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.crypto.hashing import DEFAULT_DIGEST_SIZE, hash_leaf, hash_node
from repro.errors import ProofError

#: Sentinel digest for the empty tree: the hash of an empty leaf namespace.
def empty_root(digest_size: int = DEFAULT_DIGEST_SIZE) -> bytes:
    """Root digest of a tree with no leaves."""
    return hash_leaf(b"", digest_size)


def _encode_leaf(key: bytes, value: bytes) -> bytes:
    """Length-prefixed leaf encoding (prevents key/value boundary ambiguity)."""
    return len(key).to_bytes(2, "big") + key + value


@dataclass(frozen=True)
class AuditStep:
    """One step of an audit path: a sibling digest and its side."""

    sibling: bytes
    sibling_is_left: bool


@dataclass(frozen=True)
class PresenceProof:
    """Proof that ``(key, value)`` is the leaf at ``leaf_index`` of the tree."""

    key: bytes
    value: bytes
    leaf_index: int
    tree_size: int
    path: Tuple[AuditStep, ...]

    def root(self, digest_size: int = DEFAULT_DIGEST_SIZE) -> bytes:
        """Recompute the root implied by this proof."""
        digest = hash_leaf(_encode_leaf(self.key, self.value), digest_size)
        for step in self.path:
            if step.sibling_is_left:
                digest = hash_node(step.sibling, digest, digest_size)
            else:
                digest = hash_node(digest, step.sibling, digest_size)
        return digest

    def verify(self, expected_root: bytes, digest_size: int = DEFAULT_DIGEST_SIZE) -> bool:
        """Check the proof against ``expected_root``.

        Besides recomputing the root, the verifier checks that the *shape* of
        the audit path (number of steps and the side of each sibling) is the
        one implied by ``leaf_index`` and ``tree_size``.  This binds the
        claimed leaf position to the root, which the absence proof's
        adjacency check depends on.
        """
        if self.leaf_index < 0 or self.leaf_index >= self.tree_size:
            return False
        if [s.sibling_is_left for s in self.path] != _expected_sides(
            self.leaf_index, self.tree_size
        ):
            return False
        return self.root(digest_size) == expected_root

    def encoded_size(self, digest_size: int = DEFAULT_DIGEST_SIZE) -> int:
        """Approximate wire size in bytes (used by the overhead analysis)."""
        # key + value + two 4-byte integers + one digest and one side bit per step
        return len(self.key) + len(self.value) + 8 + len(self.path) * (digest_size + 1)


def _expected_sides(leaf_index: int, tree_size: int) -> List[bool]:
    """Sibling sides an honest audit path must have for this position/size."""
    sides: List[bool] = []
    node_index, level_size = leaf_index, tree_size
    while level_size > 1:
        sibling_index = node_index ^ 1
        if sibling_index < level_size:
            sides.append(sibling_index < node_index)
        node_index //= 2
        level_size = (level_size + 1) // 2
    return sides


@dataclass(frozen=True)
class AbsenceProof:
    """Proof that ``key`` is not present in the tree.

    ``left`` is the presence proof of the greatest leaf smaller than ``key``
    (``None`` if the key would sort before every leaf) and ``right`` the
    smallest leaf greater than ``key`` (``None`` if it would sort after every
    leaf).  For an empty tree both are ``None`` and ``tree_size`` is zero.
    """

    key: bytes
    tree_size: int
    left: Optional[PresenceProof] = None
    right: Optional[PresenceProof] = None

    def verify(self, expected_root: bytes, digest_size: int = DEFAULT_DIGEST_SIZE) -> bool:
        """Check adjacency, ordering, and both audit paths against the root."""
        if self.tree_size == 0:
            return self.left is None and self.right is None and (
                expected_root == empty_root(digest_size)
            )
        if self.left is None and self.right is None:
            return False
        if self.left is not None:
            if not self.left.verify(expected_root, digest_size):
                return False
            if not self.left.key < self.key:
                return False
            if self.left.tree_size != self.tree_size:
                return False
        if self.right is not None:
            if not self.right.verify(expected_root, digest_size):
                return False
            if not self.key < self.right.key:
                return False
            if self.right.tree_size != self.tree_size:
                return False
        if self.left is not None and self.right is not None:
            # The two leaves must be adjacent: nothing can hide between them.
            if self.right.leaf_index != self.left.leaf_index + 1:
                return False
        elif self.left is None:
            # Key sorts before every leaf: the right neighbour must be leaf 0.
            if self.right.leaf_index != 0:
                return False
        else:
            # Key sorts after every leaf: the left neighbour must be the last leaf.
            if self.left.leaf_index != self.tree_size - 1:
                return False
        return True

    def encoded_size(self, digest_size: int = DEFAULT_DIGEST_SIZE) -> int:
        size = len(self.key) + 4
        if self.left is not None:
            size += self.left.encoded_size(digest_size)
        if self.right is not None:
            size += self.right.encoded_size(digest_size)
        return size


MembershipProof = Union[PresenceProof, AbsenceProof]


class SortedMerkleTree:
    """A Merkle tree over key-sorted leaves supporting incremental appends.

    The tree keeps its leaves in a sorted list; the hash levels are rebuilt
    lazily the first time the root (or a proof) is requested after a
    modification, so batched inserts pay for a single rebuild.
    """

    def __init__(self, digest_size: int = DEFAULT_DIGEST_SIZE) -> None:
        self._digest_size = digest_size
        self._keys: List[bytes] = []
        self._values: List[bytes] = []
        self._levels: List[List[bytes]] = []
        self._dirty = True

    # -- mutation ----------------------------------------------------------

    def insert(self, key: bytes, value: bytes) -> int:
        """Insert a leaf, keeping keys sorted and unique.

        Returns the leaf index at which the key now resides.  Raises
        :class:`ProofError` if the key is already present (RITM dictionaries
        never revoke the same serial twice).
        """
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            raise ProofError(f"duplicate key {key.hex()} inserted into sorted tree")
        self._keys.insert(index, key)
        self._values.insert(index, value)
        self._dirty = True
        return index

    def insert_batch(self, items: Iterable[Tuple[bytes, bytes]]) -> None:
        """Insert many leaves; the hash levels are rebuilt only once."""
        for key, value in items:
            self.insert(key, value)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: bytes) -> bool:
        return self._find(key) is not None

    def keys(self) -> Sequence[bytes]:
        return tuple(self._keys)

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value stored under ``key``, or ``None``."""
        index = self._find(key)
        return None if index is None else self._values[index]

    def root(self) -> bytes:
        """Current root digest (empty-tree sentinel if there are no leaves)."""
        self._rebuild_if_needed()
        if not self._keys:
            return empty_root(self._digest_size)
        return self._levels[-1][0]

    def prove_presence(self, key: bytes) -> PresenceProof:
        """Build a presence proof; raises :class:`ProofError` if absent."""
        index = self._find(key)
        if index is None:
            raise ProofError(f"key {key.hex()} is not in the tree")
        return self._presence_proof_at(index)

    def prove_absence(self, key: bytes) -> AbsenceProof:
        """Build an absence proof; raises :class:`ProofError` if present."""
        if self._find(key) is not None:
            raise ProofError(f"key {key.hex()} is present; cannot prove absence")
        size = len(self._keys)
        if size == 0:
            return AbsenceProof(key=key, tree_size=0)
        index = bisect.bisect_left(self._keys, key)
        left = self._presence_proof_at(index - 1) if index > 0 else None
        right = self._presence_proof_at(index) if index < size else None
        return AbsenceProof(key=key, tree_size=size, left=left, right=right)

    def prove(self, key: bytes) -> MembershipProof:
        """Return a presence proof if the key is stored, else an absence proof."""
        if key in self:
            return self.prove_presence(key)
        return self.prove_absence(key)

    # -- internals ----------------------------------------------------------

    def _find(self, key: bytes) -> Optional[int]:
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return index
        return None

    def _rebuild_if_needed(self) -> None:
        if not self._dirty:
            return
        if not self._keys:
            self._levels = []
            self._dirty = False
            return
        level = [
            hash_leaf(_encode_leaf(key, value), self._digest_size)
            for key, value in zip(self._keys, self._values)
        ]
        levels = [level]
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(hash_node(level[i], level[i + 1], self._digest_size))
            if len(level) % 2 == 1:
                # Odd node is promoted unchanged to the next level.
                nxt.append(level[-1])
            level = nxt
            levels.append(level)
        self._levels = levels
        self._dirty = False

    def _presence_proof_at(self, index: int) -> PresenceProof:
        self._rebuild_if_needed()
        path: List[AuditStep] = []
        node_index = index
        for level in self._levels[:-1]:
            sibling_index = node_index ^ 1
            if sibling_index < len(level):
                path.append(
                    AuditStep(
                        sibling=level[sibling_index],
                        sibling_is_left=sibling_index < node_index,
                    )
                )
            # When the node is the promoted odd node it has no sibling at this
            # level; it simply carries up, so no audit step is emitted.
            node_index //= 2
        return PresenceProof(
            key=self._keys[index],
            value=self._values[index],
            leaf_index=index,
            tree_size=len(self._keys),
            path=tuple(path),
        )
