"""Sorted-Merkle-tree proof objects: presence and absence proofs.

This is the proof format underlying RITM's authenticated dictionaries (paper
§II, §III).  Leaves are ``(key, value)`` pairs kept in lexicographic order of
their keys; in RITM the key is a certificate serial number and the value is
the revocation's sequence number within the CA's dictionary.

The *construction* of trees and proofs lives behind the pluggable store
engines of :mod:`repro.store` (``NaiveMerkleStore``, ``IncrementalMerkleStore``,
...); this module defines what verifiers see: the leaf encoding, the audit
path shape, and the proof dataclasses.  ``SortedMerkleTree`` remains
importable from here as an alias of the naive engine.

Because the leaves are sorted, the tree can prove two kinds of statements
about a queried key:

* *presence*: the key is in the tree — an ordinary audit path from the leaf
  to the root;
* *absence*: the key is not in the tree — audit paths for the two adjacent
  leaves that would surround the key, showing they sit at consecutive leaf
  positions and that the queried key falls strictly between them (with the
  obvious one-sided variants when the key would sort before the first or
  after the last leaf, and a trivial variant for the empty tree).

Proof sizes are logarithmic in the number of leaves, which is what gives RITM
its 500–900-byte revocation statuses even for the largest CRL in the paper's
dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.crypto.hashing import DEFAULT_DIGEST_SIZE, hash_leaf, hash_node


#: Sentinel digest for the empty tree: the hash of an empty leaf namespace.
def empty_root(digest_size: int = DEFAULT_DIGEST_SIZE) -> bytes:
    """Root digest of a tree with no leaves."""
    return hash_leaf(b"", digest_size)


def encode_leaf(key: bytes, value: bytes) -> bytes:
    """Length-prefixed leaf encoding (prevents key/value boundary ambiguity)."""
    return len(key).to_bytes(2, "big") + key + value


@dataclass(frozen=True)
class AuditStep:
    """One step of an audit path: a sibling digest and its side."""

    sibling: bytes
    sibling_is_left: bool


@dataclass(frozen=True)
class PresenceProof:
    """Proof that ``(key, value)`` is the leaf at ``leaf_index`` of the tree."""

    key: bytes
    value: bytes
    leaf_index: int
    tree_size: int
    path: Tuple[AuditStep, ...]

    def root(self, digest_size: int = DEFAULT_DIGEST_SIZE) -> bytes:
        """Recompute the root implied by this proof."""
        digest = hash_leaf(encode_leaf(self.key, self.value), digest_size)
        for step in self.path:
            if step.sibling_is_left:
                digest = hash_node(step.sibling, digest, digest_size)
            else:
                digest = hash_node(digest, step.sibling, digest_size)
        return digest

    def verify(self, expected_root: bytes, digest_size: int = DEFAULT_DIGEST_SIZE) -> bool:
        """Check the proof against ``expected_root``.

        Besides recomputing the root, the verifier checks that the *shape* of
        the audit path (number of steps and the side of each sibling) is the
        one implied by ``leaf_index`` and ``tree_size``.  This binds the
        claimed leaf position to the root, which the absence proof's
        adjacency check depends on.
        """
        if self.leaf_index < 0 or self.leaf_index >= self.tree_size:
            return False
        if [s.sibling_is_left for s in self.path] != _expected_sides(
            self.leaf_index, self.tree_size
        ):
            return False
        return self.root(digest_size) == expected_root

    def encoded_size(self, digest_size: int = DEFAULT_DIGEST_SIZE) -> int:
        """Approximate wire size in bytes (used by the overhead analysis)."""
        # key + value + two 4-byte integers + one digest and one side bit per step
        return len(self.key) + len(self.value) + 8 + len(self.path) * (digest_size + 1)


def _expected_sides(leaf_index: int, tree_size: int) -> List[bool]:
    """Sibling sides an honest audit path must have for this position/size."""
    sides: List[bool] = []
    node_index, level_size = leaf_index, tree_size
    while level_size > 1:
        sibling_index = node_index ^ 1
        if sibling_index < level_size:
            sides.append(sibling_index < node_index)
        node_index //= 2
        level_size = (level_size + 1) // 2
    return sides


@dataclass(frozen=True)
class AbsenceProof:
    """Proof that ``key`` is not present in the tree.

    ``left`` is the presence proof of the greatest leaf smaller than ``key``
    (``None`` if the key would sort before every leaf) and ``right`` the
    smallest leaf greater than ``key`` (``None`` if it would sort after every
    leaf).  For an empty tree both are ``None`` and ``tree_size`` is zero.
    """

    key: bytes
    tree_size: int
    left: Optional[PresenceProof] = None
    right: Optional[PresenceProof] = None

    def verify(self, expected_root: bytes, digest_size: int = DEFAULT_DIGEST_SIZE) -> bool:
        """Check adjacency, ordering, and both audit paths against the root."""
        if self.tree_size == 0:
            return self.left is None and self.right is None and (
                expected_root == empty_root(digest_size)
            )
        if self.left is None and self.right is None:
            return False
        if self.left is not None:
            if not self.left.verify(expected_root, digest_size):
                return False
            if not self.left.key < self.key:
                return False
            if self.left.tree_size != self.tree_size:
                return False
        if self.right is not None:
            if not self.right.verify(expected_root, digest_size):
                return False
            if not self.key < self.right.key:
                return False
            if self.right.tree_size != self.tree_size:
                return False
        if self.left is not None and self.right is not None:
            # The two leaves must be adjacent: nothing can hide between them.
            if self.right.leaf_index != self.left.leaf_index + 1:
                return False
        elif self.left is None:
            # Key sorts before every leaf: the right neighbour must be leaf 0.
            if self.right.leaf_index != 0:
                return False
        else:
            # Key sorts after every leaf: the left neighbour must be the last leaf.
            if self.left.leaf_index != self.tree_size - 1:
                return False
        return True

    def encoded_size(self, digest_size: int = DEFAULT_DIGEST_SIZE) -> int:
        size = len(self.key) + 4
        if self.left is not None:
            size += self.left.encoded_size(digest_size)
        if self.right is not None:
            size += self.right.encoded_size(digest_size)
        return size


MembershipProof = Union[PresenceProof, AbsenceProof]


def __getattr__(name: str):
    """Lazily resolve ``SortedMerkleTree`` to the naive store engine.

    The tree implementation moved to :mod:`repro.store`; importing it here
    lazily keeps ``from repro.crypto.merkle import SortedMerkleTree`` working
    without a circular import at module load time.
    """
    if name == "SortedMerkleTree":
        from repro.store.naive import NaiveMerkleStore

        return NaiveMerkleStore
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AuditStep",
    "PresenceProof",
    "AbsenceProof",
    "MembershipProof",
    "SortedMerkleTree",
    "empty_root",
    "encode_leaf",
]
