"""Cryptographic substrate: hashing, hash chains, Merkle trees, Ed25519.

Everything RITM signs or proves rests on this package.  The public surface is
re-exported here so the rest of the library imports from ``repro.crypto``
rather than from individual modules.
"""

from repro.crypto.hashchain import HashChain, chain_apply, statement_age, verify_freshness
from repro.crypto.hashing import (
    DEFAULT_DIGEST_SIZE,
    FULL_DIGEST_SIZE,
    hash_chain_link,
    hash_data,
    hash_leaf,
    hash_node,
    sha256,
)
from repro.crypto.merkle import (
    AbsenceProof,
    AuditStep,
    MembershipProof,
    PresenceProof,
    SortedMerkleTree,
    empty_root,
    encode_leaf,
)
from repro.crypto.signing import (
    DEFAULT_BATCH_WIDTH,
    PUBLIC_KEY_SIZE,
    SIGNATURE_SIZE,
    KeyPair,
    PrivateKey,
    PublicKey,
    verify_batch,
)

__all__ = [
    "DEFAULT_DIGEST_SIZE",
    "FULL_DIGEST_SIZE",
    "hash_data",
    "hash_leaf",
    "hash_node",
    "hash_chain_link",
    "sha256",
    "HashChain",
    "chain_apply",
    "verify_freshness",
    "statement_age",
    "SortedMerkleTree",
    "PresenceProof",
    "AbsenceProof",
    "AuditStep",
    "MembershipProof",
    "empty_root",
    "encode_leaf",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "SIGNATURE_SIZE",
    "PUBLIC_KEY_SIZE",
    "DEFAULT_BATCH_WIDTH",
    "verify_batch",
]
