"""Key-pair abstraction over the raw Ed25519 functions.

RITM's trust model has exactly one class of signer — certification
authorities — but several verifiers (RAs, clients, edge servers).  This module
wraps :mod:`repro.crypto.ed25519` in small value objects so that the rest of
the code never handles raw byte seeds directly, and so an alternative
signature scheme could be swapped in for experiments.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto import ed25519
from repro.errors import SignatureError

#: Signature size in bytes (used by the overhead model, paper §VI: 64 bytes).
SIGNATURE_SIZE = ed25519.SIGNATURE_SIZE
PUBLIC_KEY_SIZE = ed25519.KEY_SIZE

#: Default number of signatures combined into one batch equation.  Wider
#: batches amortize the shared doubling chain further but pay a full serial
#: re-verification of the whole chunk when a single member is invalid; 16 is
#: a good trade-off for dissemination pulls (see docs/PERFORMANCE.md).
DEFAULT_BATCH_WIDTH = 16


@dataclass(frozen=True)
class PublicKey:
    """An Ed25519 verification key."""

    key_bytes: bytes

    def __post_init__(self) -> None:
        if len(self.key_bytes) != PUBLIC_KEY_SIZE:
            raise SignatureError(
                f"public key must be {PUBLIC_KEY_SIZE} bytes, got {len(self.key_bytes)}"
            )

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Return ``True`` iff ``signature`` signs ``message`` under this key."""
        return ed25519.verify(self.key_bytes, message, signature)

    def verify_or_raise(self, message: bytes, signature: bytes) -> None:
        """Like :meth:`verify` but raises :class:`SignatureError` on failure."""
        if not self.verify(message, signature):
            raise SignatureError("signature verification failed")

    def fingerprint(self) -> str:
        """Short hex identifier, convenient for logs and dictionaries."""
        return self.key_bytes.hex()[:16]


@dataclass(frozen=True)
class PrivateKey:
    """An Ed25519 signing key (seed form)."""

    seed: bytes

    def __post_init__(self) -> None:
        if len(self.seed) != PUBLIC_KEY_SIZE:
            raise SignatureError(f"seed must be {PUBLIC_KEY_SIZE} bytes")

    @classmethod
    def generate(cls, rng_seed: bytes | None = None) -> "PrivateKey":
        """Generate a fresh key, or derive one deterministically from ``rng_seed``.

        Deterministic derivation is used by tests and by the workload
        generators so that experiments are reproducible run to run.
        """
        if rng_seed is None:
            return cls(os.urandom(PUBLIC_KEY_SIZE))
        import hashlib

        return cls(hashlib.sha256(b"repro-key:" + rng_seed).digest())

    def public_key(self) -> PublicKey:
        return PublicKey(ed25519.publickey(self.seed))

    def sign(self, message: bytes) -> bytes:
        """Sign ``message``, returning the 64-byte signature."""
        return ed25519.sign(self.seed, message)


def verify_batch(
    items: Sequence[Tuple[PublicKey, bytes, bytes]],
    batch_width: int = DEFAULT_BATCH_WIDTH,
) -> List[bool]:
    """Per-item validity of many ``(public key, message, signature)`` triples.

    Semantically identical to ``[key.verify(msg, sig) for key, msg, sig in
    items]`` (malformed signature lengths count as invalid instead of
    raising), but chunks of up to ``batch_width`` signatures share one
    random-linear-combination equation
    (:func:`repro.crypto.ed25519.verify_batch`), amortizing the doubling
    chain that dominates pure-Python verification.  A chunk whose combined
    equation fails falls back to verifying its members one by one, so the
    returned verdicts always match serial verification exactly.
    """
    if batch_width < 1:
        raise SignatureError("batch_width must be at least 1")
    results: List[bool] = []
    for start in range(0, len(items), batch_width):
        chunk = items[start : start + batch_width]
        triples = [
            (public_key.key_bytes, message, signature)
            for public_key, message, signature in chunk
        ]
        if len(chunk) > 1 and ed25519.verify_batch(triples):
            results.extend([True] * len(chunk))
            continue
        for public, message, signature in triples:
            try:
                results.append(ed25519.verify(public, message, signature))
            except SignatureError:
                results.append(False)
    return results


@dataclass(frozen=True)
class KeyPair:
    """Convenience bundle of a private key and its public counterpart."""

    private: PrivateKey
    public: PublicKey

    @classmethod
    def generate(cls, rng_seed: bytes | None = None) -> "KeyPair":
        private = PrivateKey.generate(rng_seed)
        return cls(private=private, public=private.public_key())

    def sign(self, message: bytes) -> bytes:
        return self.private.sign(message)

    def verify(self, message: bytes, signature: bytes) -> bool:
        return self.public.verify(message, signature)
