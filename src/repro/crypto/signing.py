"""Key-pair abstraction over the raw Ed25519 functions.

RITM's trust model has exactly one class of signer — certification
authorities — but several verifiers (RAs, clients, edge servers).  This module
wraps :mod:`repro.crypto.ed25519` in small value objects so that the rest of
the code never handles raw byte seeds directly, and so an alternative
signature scheme could be swapped in for experiments.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.crypto import ed25519
from repro.errors import SignatureError

#: Signature size in bytes (used by the overhead model, paper §VI: 64 bytes).
SIGNATURE_SIZE = ed25519.SIGNATURE_SIZE
PUBLIC_KEY_SIZE = ed25519.KEY_SIZE

#: Default number of signatures combined into one batch equation.  Wider
#: batches amortize the shared doubling chain further but pay a full serial
#: re-verification of the whole chunk when a single member is invalid; 16 is
#: a good trade-off for dissemination pulls (see docs/PERFORMANCE.md).
DEFAULT_BATCH_WIDTH = 16

#: Optional executor that :func:`verify_batch` farms chunks out to.  ``None``
#: (the default) keeps verification in-process and single-threaded; the fleet
#: engine installs a process pool here when a scenario opts into
#: ``parallelism="process"``.  The executor only needs ``map``.
_BATCH_EXECUTOR = None


def set_batch_executor(executor) -> None:
    """Install (or with ``None`` remove) the chunk executor for :func:`verify_batch`.

    The executor must expose ``map(fn, iterable)``; both
    :class:`concurrent.futures.ThreadPoolExecutor` and
    :class:`~concurrent.futures.ProcessPoolExecutor` qualify.  Verdicts are
    identical with or without an executor — only wall-clock changes — because
    chunk results are concatenated in submission order.
    """
    global _BATCH_EXECUTOR
    _BATCH_EXECUTOR = executor


@dataclass(frozen=True)
class PublicKey:
    """An Ed25519 verification key."""

    key_bytes: bytes

    def __post_init__(self) -> None:
        if len(self.key_bytes) != PUBLIC_KEY_SIZE:
            raise SignatureError(
                f"public key must be {PUBLIC_KEY_SIZE} bytes, got {len(self.key_bytes)}"
            )

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Return ``True`` iff ``signature`` signs ``message`` under this key."""
        return ed25519.verify(self.key_bytes, message, signature)

    def verify_or_raise(self, message: bytes, signature: bytes) -> None:
        """Like :meth:`verify` but raises :class:`SignatureError` on failure."""
        if not self.verify(message, signature):
            raise SignatureError("signature verification failed")

    def fingerprint(self) -> str:
        """Short hex identifier, convenient for logs and dictionaries."""
        return self.key_bytes.hex()[:16]


@dataclass(frozen=True)
class PrivateKey:
    """An Ed25519 signing key (seed form)."""

    seed: bytes

    def __post_init__(self) -> None:
        if len(self.seed) != PUBLIC_KEY_SIZE:
            raise SignatureError(f"seed must be {PUBLIC_KEY_SIZE} bytes")

    @classmethod
    def generate(cls, rng_seed: bytes | None = None) -> "PrivateKey":
        """Generate a fresh key, or derive one deterministically from ``rng_seed``.

        Deterministic derivation is used by tests and by the workload
        generators so that experiments are reproducible run to run.
        """
        if rng_seed is None:
            return cls(os.urandom(PUBLIC_KEY_SIZE))
        import hashlib

        return cls(hashlib.sha256(b"repro-key:" + rng_seed).digest())

    def public_key(self) -> PublicKey:
        return PublicKey(ed25519.publickey(self.seed))

    def sign(self, message: bytes) -> bytes:
        """Sign ``message``, returning the 64-byte signature."""
        return ed25519.sign(self.seed, message)


def verify_batch(
    items: Sequence[Tuple[PublicKey, bytes, bytes]],
    batch_width: int = DEFAULT_BATCH_WIDTH,
) -> List[bool]:
    """Per-item validity of many ``(public key, message, signature)`` triples.

    Semantically identical to ``[key.verify(msg, sig) for key, msg, sig in
    items]`` (malformed signature lengths count as invalid instead of
    raising), but chunks of up to ``batch_width`` signatures share one
    random-linear-combination equation
    (:func:`repro.crypto.ed25519.verify_batch`), amortizing the doubling
    chain that dominates pure-Python verification.  A chunk whose combined
    equation fails falls back to verifying its members one by one, so the
    returned verdicts always match serial verification exactly.
    """
    if batch_width < 1:
        raise SignatureError("batch_width must be at least 1")
    chunks = [
        [
            (public_key.key_bytes, message, signature)
            for public_key, message, signature in items[start : start + batch_width]
        ]
        for start in range(0, len(items), batch_width)
    ]
    if _BATCH_EXECUTOR is not None and len(chunks) > 1:
        results: List[bool] = []
        for verdicts in _BATCH_EXECUTOR.map(_verify_chunk, chunks):
            results.extend(verdicts)
        return results
    results = []
    for chunk in chunks:
        results.extend(_verify_chunk(chunk))
    return results


def _verify_chunk(triples: Sequence[Tuple[bytes, bytes, bytes]]) -> List[bool]:
    """Verify one chunk of raw ``(key, message, signature)`` byte triples.

    Top-level (hence picklable) so a :class:`ProcessPoolExecutor` can run
    chunks in worker processes.  The combined batch equation is tried first;
    a failing chunk falls back to per-member serial verification so verdicts
    always match serial verification exactly.
    """
    triples = list(triples)
    if len(triples) > 1 and ed25519.verify_batch(triples):
        return [True] * len(triples)
    verdicts: List[bool] = []
    for public, message, signature in triples:
        try:
            verdicts.append(ed25519.verify(public, message, signature))
        except SignatureError:
            verdicts.append(False)
    return verdicts


@dataclass(frozen=True)
class KeyPair:
    """Convenience bundle of a private key and its public counterpart."""

    private: PrivateKey
    public: PublicKey

    @classmethod
    def generate(cls, rng_seed: bytes | None = None) -> "KeyPair":
        private = PrivateKey.generate(rng_seed)
        return cls(private=private, public=private.public_key())

    def sign(self, message: bytes) -> bytes:
        return self.private.sign(message)

    def verify(self, message: bytes, signature: bytes) -> bool:
        return self.public.verify(message, signature)


@dataclass(frozen=True)
class KeyRecord:
    """One CA verification key together with its validity window.

    A key is *acceptable* at time ``t`` iff it has been activated
    (``activated_at <= t``) and either is still the active key
    (``retired_at is None``) or ``t`` falls inside its overlap window
    (``t <= retired_at + overlap_seconds``).  The overlap window is the
    grace period during which roots signed by a just-retired key still
    verify, so RAs that have not yet pulled the rotation announcement do
    not hard-fail mid-epoch.
    """

    public_key: PublicKey
    key_epoch: int
    activated_at: int
    retired_at: Optional[int] = None
    overlap_seconds: int = 0

    def acceptable_at(self, now: int) -> bool:
        """Is this key valid for verification at time ``now``?"""
        if now < self.activated_at:
            return False
        if self.retired_at is None:
            return True
        return now <= self.retired_at + self.overlap_seconds


class CAKeyring:
    """Time-scoped set of one CA's verification keys across rotations.

    The keyring replaces a bare :class:`PublicKey` wherever a CA signature
    is checked: it quacks like one (``verify``/``verify_or_raise``/
    ``fingerprint``/``key_bytes``) but additionally exposes
    :meth:`acceptable_keys`, which verifiers (including the memoizing
    :class:`~repro.perf.root_cache.VerifiedRootCache`) use to restrict
    acceptance to keys whose activation/overlap window covers the
    keyring's clock.  The clock only moves forward (:meth:`advance`), so a
    retired key's acceptance ends exactly once and never comes back.
    """

    def __init__(self, now: int = 0) -> None:
        self._records: List[KeyRecord] = []
        self._now = now

    @classmethod
    def single(cls, public_key: PublicKey, activated_at: int = 0) -> "CAKeyring":
        """A keyring holding one immortal key — the no-rotation baseline."""
        keyring = cls(now=activated_at)
        keyring.add_key(public_key, activated_at=activated_at)
        return keyring

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Tuple[KeyRecord, ...]:
        """All key records, oldest first (for checkpointing and audit)."""
        return tuple(self._records)

    @property
    def clock(self) -> int:
        """The keyring's monotonic notion of the current time."""
        return self._now

    @property
    def active(self) -> PublicKey:
        """The newest (currently signing) key."""
        if not self._records:
            raise SignatureError("keyring holds no keys")
        return self._records[-1].public_key

    @property
    def genesis(self) -> PublicKey:
        """The first key ever enrolled — the keyring's trust anchor."""
        if not self._records:
            raise SignatureError("keyring holds no keys")
        return self._records[0].public_key

    @property
    def key_epoch(self) -> int:
        """Epoch number of the active key (0 for the genesis key)."""
        return len(self._records) - 1

    @property
    def key_bytes(self) -> bytes:
        """Active key bytes — lets the keyring stand in for a PublicKey."""
        return self.active.key_bytes

    def fingerprint(self) -> str:
        """Short hex identifier of the active key."""
        return self.active.fingerprint()

    def advance(self, now: int) -> None:
        """Move the keyring clock forward (it never moves back)."""
        if now > self._now:
            self._now = now

    def add_key(
        self,
        public_key: PublicKey,
        activated_at: int,
        overlap_seconds: int = 0,
    ) -> KeyRecord:
        """Enroll a new active key, retiring the previous one at ``activated_at``.

        ``overlap_seconds`` is the grace window granted to the key being
        retired.  Re-enrolling the current active key is a no-op (idempotent
        announcement replay).
        """
        if self._records:
            current = self._records[-1]
            if current.public_key.key_bytes == public_key.key_bytes:
                return current
            if activated_at < current.activated_at:
                raise SignatureError(
                    "key rotation announcement activates a key before the current one"
                )
            self._records[-1] = replace(
                current, retired_at=activated_at, overlap_seconds=overlap_seconds
            )
        record = KeyRecord(
            public_key=public_key,
            key_epoch=len(self._records),
            activated_at=activated_at,
        )
        self._records.append(record)
        self.advance(activated_at)
        return record

    def acceptable_keys(self, now: Optional[int] = None) -> List[PublicKey]:
        """Keys valid for verification at ``now`` (default: the clock), newest first."""
        moment = self._now if now is None else now
        return [
            record.public_key
            for record in reversed(self._records)
            if record.acceptable_at(moment)
        ]

    def verify(self, message: bytes, signature: bytes, now: Optional[int] = None) -> bool:
        """True iff any currently-acceptable key verifies the signature."""
        return any(
            key.verify(message, signature) for key in self.acceptable_keys(now)
        )

    def verify_or_raise(self, message: bytes, signature: bytes) -> None:
        """Like :meth:`verify` but raises :class:`SignatureError` on failure."""
        if not self.verify(message, signature):
            raise SignatureError("signature verifies under no acceptable key")


def acceptable_verifiers(verifier, now: Optional[int] = None) -> List[PublicKey]:
    """Normalize a :class:`PublicKey` or :class:`CAKeyring` to a key list.

    Verification helpers accept either a bare key (the immortal-key
    baseline) or a keyring; this collapses both cases into "the keys
    acceptable right now, newest first" so callers need no isinstance
    checks.
    """
    if hasattr(verifier, "acceptable_keys"):
        return verifier.acceptable_keys(now)
    return [verifier]
