"""Hash chains and freshness statements (paper §II, §III, Fig. 2).

A CA that signs a dictionary root also commits to the anchor ``H^m(v)`` of a
hash chain of length ``m`` built from a random seed ``v``.  Each subsequent
period Δ in which no new revocation is issued, the CA releases the next
pre-image ``H^(m-p)(v)`` as a *freshness statement*: a short, unforgeable
proof that the CA still considers the signed root current ``p`` periods after
it was signed.

Anyone holding the anchor can verify a freshness statement by re-hashing it
``p`` times (or ``p + 1`` times — the client tolerates one period of clock
skew, paper §III step 5c) and comparing against the anchor.  Nobody but the
CA can produce the next statement, because doing so would require inverting
the hash function.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.hashing import DEFAULT_DIGEST_SIZE, hash_chain_link
from repro.errors import HashChainError


def chain_apply(value: bytes, times: int, digest_size: int = DEFAULT_DIGEST_SIZE) -> bytes:
    """Apply the chain hash ``times`` times to ``value`` (``H^times(value)``)."""
    if times < 0:
        raise ValueError("cannot apply a hash chain a negative number of times")
    current = value
    for _ in range(times):
        current = hash_chain_link(current, digest_size)
    return current


@dataclass
class HashChain:
    """A CA-side hash chain of length ``m`` anchored at ``H^m(seed)``.

    Parameters
    ----------
    length:
        The chain length ``m``: the number of freshness statements that can be
        released before a new signed root (and new chain) is required.
    seed:
        The random value ``v``.  Generated with :func:`os.urandom` if omitted.
    digest_size:
        Size of each chain link in bytes.
    """

    length: int
    seed: bytes = field(default_factory=lambda: os.urandom(32))
    digest_size: int = DEFAULT_DIGEST_SIZE

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("hash chain length must be at least 1")
        # Pre-compute every link once; the chain is short (m is typically the
        # number of Δ periods the CA expects between revocations) and CAs
        # release links in reverse order, so caching them avoids O(m^2) work.
        links = [self.seed]
        for _ in range(self.length):
            links.append(hash_chain_link(links[-1], self.digest_size))
        self._links = links

    @property
    def anchor(self) -> bytes:
        """The public anchor ``H^m(v)`` embedded in the signed root."""
        return self._links[self.length]

    def statement(self, period: int) -> bytes:
        """Return the freshness statement ``H^(m-period)(v)`` for period ``period``.

        ``period`` 0 is the anchor itself (the moment the root was signed);
        the last releasable statement is ``period == length`` (the seed).
        """
        if not 0 <= period <= self.length:
            raise HashChainError(
                f"period {period} outside the chain's range [0, {self.length}]"
            )
        return self._links[self.length - period]

    def remaining(self, period: int) -> int:
        """Number of further statements available after ``period``."""
        return max(0, self.length - period)


def verify_freshness(
    anchor: bytes,
    statement: bytes,
    periods_elapsed: int,
    tolerance: int = 1,
    digest_size: int = DEFAULT_DIGEST_SIZE,
) -> bool:
    """Verify a freshness statement against its anchor.

    Implements the client check of paper §III step 5c: the statement is
    accepted if hashing it ``periods_elapsed`` times — or any count up to
    ``periods_elapsed + tolerance`` times — yields the anchor.  The paper uses
    ``tolerance = 1`` (accept ``p'`` or ``p' + 1``), which corresponds to the
    2Δ acceptance window.
    """
    if periods_elapsed < 0:
        return False
    current = chain_apply(statement, periods_elapsed, digest_size)
    for _ in range(tolerance + 1):
        if current == anchor:
            return True
        current = hash_chain_link(current, digest_size)
    return False


def statement_age(
    anchor: bytes,
    statement: bytes,
    max_periods: int,
    digest_size: int = DEFAULT_DIGEST_SIZE,
) -> Optional[int]:
    """Return how many periods old ``statement`` is, or ``None`` if unlinked.

    Used by RAs when comparing freshness statements received from peers: the
    statement linked to the anchor by the *fewest* hash applications is the
    most recent one.
    """
    current = statement
    for age in range(max_periods + 1):
        if current == anchor:
            return age
        current = hash_chain_link(current, digest_size)
    return None
