"""Hash primitives used throughout RITM.

The paper (§VI) uses SHA-256 truncated to its first 20 bytes for every hash
in the system: hash-chain links, Merkle-tree nodes, and leaf digests.  This
module centralises that choice so the truncation length can be varied for the
ablation benches (20-byte vs. full 32-byte output).

Domain separation
-----------------
Merkle leaves and interior nodes are hashed with distinct one-byte prefixes
(``0x00`` for leaves, ``0x01`` for interior nodes) so that a leaf digest can
never be confused with an interior digest — the standard defence against
second-preimage tree-grafting attacks (RFC 6962 uses the same trick).
Hash-chain links use prefix ``0x02``.
"""

from __future__ import annotations

import hashlib

#: Number of bytes kept from the SHA-256 output (paper §VI: "we truncated its
#: output to the first 20 bytes").
DEFAULT_DIGEST_SIZE = 20

#: Full SHA-256 output size, used by the ablation benchmarks.
FULL_DIGEST_SIZE = 32

#: Domain-separation prefixes (public so flat-buffer engines can inline the
#: hashing loop without re-declaring them; the values are pinned by the proof
#: format and must never change).
LEAF_PREFIX = b"\x00"
NODE_PREFIX = b"\x01"
CHAIN_PREFIX = b"\x02"

_LEAF_PREFIX = LEAF_PREFIX
_NODE_PREFIX = NODE_PREFIX
_CHAIN_PREFIX = CHAIN_PREFIX


def sha256(data: bytes) -> bytes:
    """Return the full 32-byte SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def hash_data(data: bytes, digest_size: int = DEFAULT_DIGEST_SIZE) -> bytes:
    """Hash arbitrary data, truncating to ``digest_size`` bytes.

    This is the paper's ``H(.)`` function.
    """
    _check_digest_size(digest_size)
    return sha256(data)[:digest_size]


def hash_leaf(data: bytes, digest_size: int = DEFAULT_DIGEST_SIZE) -> bytes:
    """Hash a Merkle-tree leaf with leaf domain separation."""
    _check_digest_size(digest_size)
    return sha256(_LEAF_PREFIX + data)[:digest_size]


def hash_node(left: bytes, right: bytes, digest_size: int = DEFAULT_DIGEST_SIZE) -> bytes:
    """Hash two child digests into an interior Merkle node."""
    _check_digest_size(digest_size)
    return sha256(_NODE_PREFIX + left + right)[:digest_size]


def hash_chain_link(value: bytes, digest_size: int = DEFAULT_DIGEST_SIZE) -> bytes:
    """Apply one hash-chain step (the ``H`` in ``H^m(v)``)."""
    _check_digest_size(digest_size)
    return sha256(_CHAIN_PREFIX + value)[:digest_size]


def _check_digest_size(digest_size: int) -> None:
    if not 1 <= digest_size <= FULL_DIGEST_SIZE:
        raise ValueError(
            f"digest_size must be between 1 and {FULL_DIGEST_SIZE}, got {digest_size}"
        )
