"""CDN billing model (Amazon CloudFront-style regional, tiered pricing).

The CA is the content provider: it pays for the traffic RAs pull from edge
servers, priced per GB with regional rates and volume tiers, plus a small
per-request fee.  This reproduces the cost model behind Fig. 6 and Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.cdn.geography import FIRST_TIER_PRICE_PER_GB, PRICE_TIERS_GB, Region

GB = 1024.0**3

#: CloudFront-style HTTPS request fee (USD per 10,000 requests), by region group.
REQUEST_FEE_PER_10K: Dict[Region, float] = {
    Region.UNITED_STATES: 0.0100,
    Region.EUROPE: 0.0120,
    Region.HONG_KONG_SINGAPORE: 0.0120,
    Region.JAPAN: 0.0125,
    Region.SOUTH_AMERICA: 0.0220,
    Region.AUSTRALIA: 0.0125,
    Region.INDIA: 0.0160,
}


@dataclass
class RegionalUsage:
    """Traffic pulled from edges in one region during one billing cycle."""

    bytes_served: int = 0
    requests: int = 0

    def add(self, bytes_served: int, requests: int = 1) -> None:
        self.bytes_served += bytes_served
        self.requests += requests


@dataclass
class BillingCycleUsage:
    """Usage across all regions for one billing cycle (one month)."""

    per_region: Dict[Region, RegionalUsage] = field(default_factory=dict)

    def add(self, region: Region, bytes_served: int, requests: int = 1) -> None:
        self.per_region.setdefault(region, RegionalUsage()).add(bytes_served, requests)

    def total_bytes(self) -> int:
        return sum(usage.bytes_served for usage in self.per_region.values())

    def total_requests(self) -> int:
        return sum(usage.requests for usage in self.per_region.values())


class PricingModel:
    """Computes the monthly bill from per-region usage."""

    def __init__(
        self,
        first_tier_price_per_gb: Mapping[Region, float] | None = None,
        include_request_fees: bool = True,
        negotiated_discount: float = 0.0,
    ) -> None:
        """``negotiated_discount`` models the paper's remark that a CA
        negotiating with the CDN would pay less than list price (0.0–1.0)."""
        if not 0.0 <= negotiated_discount < 1.0:
            raise ValueError("negotiated_discount must be in [0, 1)")
        self._prices = dict(
            FIRST_TIER_PRICE_PER_GB if first_tier_price_per_gb is None else first_tier_price_per_gb
        )
        self.include_request_fees = include_request_fees
        self.negotiated_discount = negotiated_discount

    def transfer_cost(self, region: Region, bytes_served: int) -> float:
        """Tiered per-GB cost for one region's monthly traffic."""
        gb = bytes_served / GB
        base_price = self._prices[region]
        cost = 0.0
        consumed = 0.0
        for tier_limit, multiplier in PRICE_TIERS_GB:
            if gb <= consumed:
                break
            in_tier = min(gb, tier_limit) - consumed
            if in_tier <= 0:
                consumed = tier_limit
                continue
            cost += in_tier * base_price * multiplier
            consumed = min(gb, tier_limit)
            if consumed >= gb:
                break
        return cost

    def request_cost(self, region: Region, requests: int) -> float:
        if not self.include_request_fees:
            return 0.0
        return requests / 10_000.0 * REQUEST_FEE_PER_10K[region]

    def monthly_bill(self, usage: BillingCycleUsage) -> float:
        """Total USD the CA owes for one billing cycle."""
        total = 0.0
        for region, regional in usage.per_region.items():
            total += self.transfer_cost(region, regional.bytes_served)
            total += self.request_cost(region, regional.requests)
        return total * (1.0 - self.negotiated_discount)
