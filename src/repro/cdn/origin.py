"""The CDN origin (distribution point).

CAs upload revocation-issuance messages and freshness statements to the
distribution point; edge servers pull from it on cache misses.  The origin
verifies the CA's signature before accepting an issuance (§III: "The
distribution point verifies this message and initiates the dissemination
process"), tracks ingress/egress byte counts for the cost model, and assigns
monotonically increasing version numbers so edge servers can serve
"the latest object" semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import CDNError


@dataclass
class StoredObject:
    """One published object at the origin."""

    path: str
    content: bytes
    version: int
    published_at: float
    ttl_seconds: float

    @property
    def size(self) -> int:
        return len(self.content)


class DistributionPoint:
    """Origin server holding the authoritative copy of every published object."""

    def __init__(self, name: str = "origin") -> None:
        self.name = name
        self._objects: Dict[str, StoredObject] = {}
        self._version_counter = 0
        self.bytes_ingress = 0
        self.bytes_egress = 0
        self._validators: Dict[str, Callable[[bytes], bool]] = {}

    def register_validator(self, path_prefix: str, validator: Callable[[bytes], bool]) -> None:
        """Attach a verification callback for uploads under ``path_prefix``."""
        self._validators[path_prefix] = validator

    def publish(
        self, path: str, content: bytes, now: float, ttl_seconds: float = 0.0
    ) -> StoredObject:
        """Store (or replace) an object; runs any registered validator first."""
        for prefix, validator in self._validators.items():
            if path.startswith(prefix) and not validator(content):
                raise CDNError(f"origin rejected upload to {path!r}: validation failed")
        self._version_counter += 1
        stored = StoredObject(
            path=path,
            content=content,
            version=self._version_counter,
            published_at=now,
            ttl_seconds=ttl_seconds,
        )
        self._objects[path] = stored
        self.bytes_ingress += len(content)
        return stored

    def fetch(self, path: str) -> StoredObject:
        """Origin-side fetch (edge servers call this on cache misses)."""
        if path not in self._objects:
            raise CDNError(f"origin has no object at {path!r}")
        stored = self._objects[path]
        self.bytes_egress += stored.size
        return stored

    def exists(self, path: str) -> bool:
        return path in self._objects

    def paths(self) -> List[str]:
        return sorted(self._objects)

    def latest_version(self) -> int:
        return self._version_counter
