"""CDN edge servers with TTL + LRU caching.

Edge servers replicate origin content on demand (the pull model of §II) and
cache it for the origin-specified TTL.  The paper's Fig. 5 measurement turns
caching *off* (TTL = 0) to measure the worst case; the ablation benches keep
it on to show the effect on origin load.

The edge's object cache is part of the hot-path verification engine
(docs/PERFORMANCE.md): the objects it holds — head, issuance, and shard
index objects — are exactly the proof-bearing material every RA pulls each
Δ, so during a flash crowd of pulls the edge is the first cache layer the
read path hits.  The cache is a bounded LRU
(:class:`~repro.perf.cache.LRUCache`) with the engine's uniform
hit/miss/eviction/invalidation counters, so scenario reports and benchmarks
can aggregate edge behaviour next to the RA-side caches.

Each edge belongs to a pricing region and records the bytes it serves, which
is exactly what the CDN bills the CA for (§VII-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cdn.geography import Region
from repro.cdn.origin import DistributionPoint, StoredObject
from repro.net.link import Link
from repro.perf import CacheStats, LRUCache

#: Default bound on cached objects per edge.  RITM's working set is small
#: (one head per dictionary plus recent issuance batches), so the bound only
#: matters when a misbehaving origin publishes unbounded object names.
DEFAULT_MAX_OBJECTS = 65_536


@dataclass
class CachedObject:
    """An object replica held by an edge server."""

    stored: StoredObject
    fetched_at: float

    def is_fresh(self, now: float) -> bool:
        """Whether the origin-assigned TTL still covers this copy at ``now``."""
        if self.stored.ttl_seconds <= 0:
            return False
        return now - self.fetched_at < self.stored.ttl_seconds


@dataclass
class EdgeFetchResult:
    """Outcome of serving one request at an edge server."""

    content: bytes
    version: int
    cache_hit: bool
    origin_bytes: int
    origin_latency: float
    served_bytes: int


class EdgeServer:
    """One CDN point of presence."""

    def __init__(
        self,
        name: str,
        region: Region,
        origin: DistributionPoint,
        origin_link: Optional[Link] = None,
        max_objects: Optional[int] = DEFAULT_MAX_OBJECTS,
    ) -> None:
        self.name = name
        self.region = region
        self.origin = origin
        #: Edge↔origin links are fast, well-provisioned backbone paths.
        self.origin_link = origin_link if origin_link is not None else Link(
            latency_seconds=0.030, bandwidth_bytes_per_second=50_000_000.0, name="edge-origin"
        )
        self._cache = LRUCache(maxsize=max_objects)
        self.bytes_served = 0
        self.bytes_from_origin = 0
        self.requests_served = 0

    @property
    def cache_stats(self) -> CacheStats:
        """Freshness-aware cache counters in the engine's uniform shape."""
        return self._cache.stats

    @property
    def cache_hits(self) -> int:
        """Requests answered from a fresh cached copy."""
        return self._cache.stats.hits

    def serve(self, path: str, now: float) -> EdgeFetchResult:
        """Serve ``path`` to a client, pulling from the origin when needed."""
        self.requests_served += 1
        # A TTL-expired entry is a miss, not a hit: the freshness-aware
        # lookup drops the dead copy (counted as an invalidation).
        cached = self._cache.get(path, is_valid=lambda entry: entry.is_fresh(now))
        if cached is not None:
            self.bytes_served += cached.stored.size
            return EdgeFetchResult(
                content=cached.stored.content,
                version=cached.stored.version,
                cache_hit=True,
                origin_bytes=0,
                origin_latency=0.0,
                served_bytes=cached.stored.size,
            )
        stored = self.origin.fetch(path)
        self._cache.put(path, CachedObject(stored=stored, fetched_at=now))
        self.bytes_from_origin += stored.size
        self.bytes_served += stored.size
        origin_latency = self.origin_link.round_trip_time(
            request_bytes=len(path), response_bytes=stored.size
        )
        return EdgeFetchResult(
            content=stored.content,
            version=stored.version,
            cache_hit=False,
            origin_bytes=stored.size,
            origin_latency=origin_latency,
            served_bytes=stored.size,
        )

    def plant_object(
        self, path: str, content: bytes, now: float, ttl_seconds: float
    ) -> None:
        """Inject a forged object into this edge's cache (attack modelling).

        Models a compromised point of presence (or a CA colluding with one
        region's edges, §V "Misbehaving CA"): clients resolving to this edge
        are served ``content`` for ``ttl_seconds`` while every other edge and
        the origin keep the honest copy.  The planted copy advertises a
        version past anything the origin has issued so it masquerades as the
        newest publication.  Used by the adversarial scenario injectors in
        :mod:`repro.scenarios.faults`; the origin is never touched.
        """
        stored = StoredObject(
            path=path,
            content=content,
            version=self.origin.latest_version() + 1_000_000,
            published_at=now,
            ttl_seconds=ttl_seconds,
        )
        self._cache.put(path, CachedObject(stored=stored, fetched_at=now))

    def peek_version(self, path: str, now: float) -> Optional[int]:
        """Version of the cached copy if fresh, else ``None`` (forces a pull).

        A peek neither touches the LRU order nor the hit/miss counters —
        it is a freshness probe, not a served request.
        """
        cached = self._cache.peek(path)
        if cached is not None and cached.is_fresh(now):
            return cached.stored.version
        return None

    def invalidate(self, path: Optional[str] = None) -> None:
        """Drop one path (or the whole cache) — models origin-driven purges."""
        if path is None:
            self._cache.clear()
        else:
            self._cache.discard(path)

    def cached_object_count(self) -> int:
        """Objects currently held (fresh or TTL-expired-but-unreclaimed)."""
        return len(self._cache)

    def cache_hit_ratio(self) -> float:
        """Fresh hits as a fraction of requests served."""
        if self.requests_served == 0:
            return 0.0
        return self.cache_hits / self.requests_served
