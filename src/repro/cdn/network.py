"""The CDN fabric: an origin plus regional edge servers, with client-side timing.

This is the dissemination network of §III: CAs publish to the origin, RAs
pull from the edge server closest to them.  Besides moving bytes, the fabric
computes the client-observed download latency (edge RTT + transfer time +
origin fetch on a cache miss) — the quantity measured in Fig. 5 — and
accumulates per-region usage for the pricing model of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cdn.edge import EdgeFetchResult, EdgeServer
from repro.cdn.geography import (
    GeoLocation,
    Region,
    all_regions,
    nearest_regions,
    region_distance,
)
from repro.cdn.origin import DistributionPoint
from repro.cdn.pricing import BillingCycleUsage
from repro.errors import CDNError


@dataclass
class DownloadResult:
    """A client-observed download: the content and where the time went."""

    content: bytes
    version: int
    latency_seconds: float
    edge_name: str
    cache_hit: bool
    bytes_on_wire: int


class CDNNetwork:
    """Origin + edge servers + per-region usage accounting."""

    def __init__(
        self,
        origin: Optional[DistributionPoint] = None,
        edges_per_region: int = 1,
        regions: Optional[List[Region]] = None,
    ) -> None:
        self.origin = origin if origin is not None else DistributionPoint()
        self._edges: Dict[Region, List[EdgeServer]] = {}
        self.usage = BillingCycleUsage()
        #: Regions whose edge presence is currently down (region failover).
        self._failed_regions: set = set()
        #: Origin (CA) egress attributed per caller-supplied source label —
        #: the accounting behind the "replication beats N cold syncs" verdict.
        self.origin_bytes_by_source: Dict[str, int] = {}
        for region in regions if regions is not None else list(all_regions()):
            self._edges[region] = [
                EdgeServer(f"edge-{region.name.lower()}-{index}", region, self.origin)
                for index in range(edges_per_region)
            ]

    # -- publication --------------------------------------------------------

    def publish(self, path: str, content: bytes, now: float, ttl_seconds: float = 0.0):
        """CA-side upload to the distribution point."""
        return self.origin.publish(path, content, now, ttl_seconds)

    def invalidate(self, path: Optional[str] = None) -> None:
        for edges in self._edges.values():
            for edge in edges:
                edge.invalidate(path)

    # -- topology -----------------------------------------------------------

    def regions(self) -> List[Region]:
        return list(self._edges)

    def edges_in(self, region: Region) -> List[EdgeServer]:
        if region not in self._edges:
            raise CDNError(f"the CDN has no presence in {region.value}")
        return self._edges[region]

    def fail_region(self, region: Region) -> None:
        """Take a region's edge presence down (region-outage modelling).

        Clients in the region transparently fail over: DNS resolution via
        :meth:`edge_for` re-routes them to the nearest healthy region, at
        the cost of the extra inter-region RTT.
        """
        self._failed_regions.add(region)

    def restore_region(self, region: Region) -> None:
        """Bring a failed region's edge presence back."""
        self._failed_regions.discard(region)

    def failed_regions(self) -> List[Region]:
        """Regions currently failed, in deterministic (enum) order."""
        return [region for region in self._edges if region in self._failed_regions]

    def _routed_region(self, region: Region) -> Region:
        """The region a client actually reaches: its own, or failover."""
        if region in self._edges and region not in self._failed_regions:
            return region
        healthy = [r for r in self._edges if r not in self._failed_regions]
        if not healthy:
            raise CDNError("every CDN region is failed; nothing to fail over to")
        return nearest_regions(region, healthy)[0]

    def edge_for(self, location: GeoLocation, index_hint: int = 0) -> EdgeServer:
        """The edge server a client at ``location`` resolves to (via DNS).

        When the client's own region is failed, resolution falls back to
        the nearest healthy region (by the coarse inter-region RTT proxy).
        """
        edges = self.edges_in(self._routed_region(location.region))
        return edges[index_hint % len(edges)]

    def all_edges(self) -> List[EdgeServer]:
        return [edge for edges in self._edges.values() for edge in edges]

    # -- client-side fetch -----------------------------------------------------

    def download(
        self,
        path: str,
        location: GeoLocation,
        now: float,
        edge_index_hint: int = 0,
        request_bytes: int = 200,
        source: str = "",
    ) -> DownloadResult:
        """Fetch ``path`` as a client at ``location`` would, with timing.

        The latency model is one RTT to the edge for the HTTP GET, the body
        transfer at the client's downstream bandwidth, and — on a cache miss —
        the edge's round trip to the origin.  A failed-over client (its own
        region down) additionally pays the inter-region RTT to the edge it
        was re-routed to.  ``source`` (optional) attributes any origin bytes
        this fetch caused to a caller-chosen label in
        :attr:`origin_bytes_by_source`.
        """
        edge = self.edge_for(location, edge_index_hint)
        result: EdgeFetchResult = edge.serve(path, now)

        rtt = location.rtt_to_edge()
        bandwidth = location.bandwidth_to_edge()
        latency = rtt  # request + first-byte
        latency += region_distance(location.region, edge.region)  # failover detour
        latency += result.origin_latency  # zero on a cache hit
        latency += len(result.content) / bandwidth

        self.usage.add(edge.region, result.served_bytes + request_bytes, requests=1)
        if source:
            self.origin_bytes_by_source[source] = (
                self.origin_bytes_by_source.get(source, 0) + result.origin_bytes
            )
        return DownloadResult(
            content=result.content,
            version=result.version,
            latency_seconds=latency,
            edge_name=edge.name,
            cache_hit=result.cache_hit,
            bytes_on_wire=result.served_bytes + request_bytes,
        )

    # -- accounting -------------------------------------------------------------

    def reset_usage(self) -> BillingCycleUsage:
        """Return the accumulated usage and start a fresh billing cycle."""
        usage, self.usage = self.usage, BillingCycleUsage()
        return usage

    def total_bytes_served(self) -> int:
        return sum(edge.bytes_served for edge in self.all_edges())

    def total_origin_bytes(self) -> int:
        return sum(edge.bytes_from_origin for edge in self.all_edges())
