"""CDN substrate: origin, edge servers, fabric, geography, pricing."""

from repro.cdn.edge import EdgeFetchResult, EdgeServer
from repro.cdn.geography import (
    EDGE_RTT_SECONDS,
    FIRST_TIER_PRICE_PER_GB,
    POPULATION_SHARE,
    GeoLocation,
    Region,
    all_regions,
)
from repro.cdn.network import CDNNetwork, DownloadResult
from repro.cdn.origin import DistributionPoint, StoredObject
from repro.cdn.pricing import GB, BillingCycleUsage, PricingModel, RegionalUsage

__all__ = [
    "Region",
    "GeoLocation",
    "all_regions",
    "POPULATION_SHARE",
    "FIRST_TIER_PRICE_PER_GB",
    "EDGE_RTT_SECONDS",
    "DistributionPoint",
    "StoredObject",
    "EdgeServer",
    "EdgeFetchResult",
    "CDNNetwork",
    "DownloadResult",
    "PricingModel",
    "BillingCycleUsage",
    "RegionalUsage",
    "GB",
]
