"""Geographic regions used by the CDN model.

Amazon CloudFront (the example CDN of §VII-B/C) prices data transfer per
*edge-location region*.  The paper estimates the number of RAs per region
from city-population data and bills the CA for the traffic those RAs pull.
This module defines the regions, their 2015-era list prices, and typical
wide-area round-trip latencies from a client in the region to its closest
edge server — the ingredients of both the cost model (Fig. 6, Table II) and
the download-time CDF (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple


class Region(Enum):
    """CloudFront pricing regions (2015 price list granularity)."""

    UNITED_STATES = "United States"
    EUROPE = "Europe"
    HONG_KONG_SINGAPORE = "Hong Kong, Philippines, S. Korea, Singapore & Taiwan"
    JAPAN = "Japan"
    SOUTH_AMERICA = "South America"
    AUSTRALIA = "Australia"
    INDIA = "India"


#: Per-GB price (USD) for the first pricing tier, per region (2015 list prices).
FIRST_TIER_PRICE_PER_GB: Dict[Region, float] = {
    Region.UNITED_STATES: 0.085,
    Region.EUROPE: 0.085,
    Region.HONG_KONG_SINGAPORE: 0.140,
    Region.JAPAN: 0.140,
    Region.SOUTH_AMERICA: 0.250,
    Region.AUSTRALIA: 0.140,
    Region.INDIA: 0.170,
}

#: Tier boundaries in GB/month and the multiplicative discount relative to the
#: first tier (CloudFront's published tiers: 10 TB, 40 TB, 100 TB, 350 TB, ...).
PRICE_TIERS_GB: Tuple[Tuple[float, float], ...] = (
    (10_240.0, 1.00),
    (40_960.0, 0.94),
    (102_400.0, 0.88),
    (358_400.0, 0.82),
    (float("inf"), 0.76),
)

#: Approximate share of the world's (urban) population per region, used when a
#: synthetic population is partitioned into regions.
POPULATION_SHARE: Dict[Region, float] = {
    Region.UNITED_STATES: 0.18,
    Region.EUROPE: 0.25,
    Region.HONG_KONG_SINGAPORE: 0.17,
    Region.JAPAN: 0.06,
    Region.SOUTH_AMERICA: 0.14,
    Region.AUSTRALIA: 0.02,
    Region.INDIA: 0.18,
}

#: (median RTT seconds, spread) from a vantage point in the region to its
#: closest CloudFront edge, used by the PlanetLab latency model.
EDGE_RTT_SECONDS: Dict[Region, Tuple[float, float]] = {
    Region.UNITED_STATES: (0.020, 0.015),
    Region.EUROPE: (0.025, 0.015),
    Region.HONG_KONG_SINGAPORE: (0.045, 0.030),
    Region.JAPAN: (0.035, 0.020),
    Region.SOUTH_AMERICA: (0.080, 0.050),
    Region.AUSTRALIA: (0.070, 0.040),
    Region.INDIA: (0.090, 0.060),
}

#: (median, spread) of last-mile downstream bandwidth in bytes/second.
EDGE_BANDWIDTH_BYTES: Dict[Region, Tuple[float, float]] = {
    Region.UNITED_STATES: (6.0e6, 3.0e6),
    Region.EUROPE: (6.0e6, 3.0e6),
    Region.HONG_KONG_SINGAPORE: (5.0e6, 2.5e6),
    Region.JAPAN: (7.0e6, 3.0e6),
    Region.SOUTH_AMERICA: (2.0e6, 1.0e6),
    Region.AUSTRALIA: (3.0e6, 1.5e6),
    Region.INDIA: (1.5e6, 1.0e6),
}


@dataclass(frozen=True)
class GeoLocation:
    """A coarse location: a region plus a within-region distance factor.

    ``distance_factor`` scales the regional RTT: 0 means "right next to the
    edge server", 1 means "at the far end of the region".
    """

    region: Region
    distance_factor: float = 0.5

    def rtt_to_edge(self) -> float:
        median, spread = EDGE_RTT_SECONDS[self.region]
        return max(0.001, median + (self.distance_factor - 0.5) * 2 * spread)

    def bandwidth_to_edge(self) -> float:
        median, spread = EDGE_BANDWIDTH_BYTES[self.region]
        return max(100_000.0, median - (self.distance_factor - 0.5) * 2 * spread)


def all_regions() -> Tuple[Region, ...]:
    return tuple(Region)


def region_distance(a: Region, b: Region) -> float:
    """Coarse inter-region RTT proxy used for peer and failover ranking.

    0 within one region; across regions, the sum of both regions' median
    edge RTTs (each leg has to reach the wide-area backbone).  Deliberately
    crude — it only needs to *order* regions consistently so same-region
    peers always beat cross-region ones and failover routing is stable.
    """
    if a is b:
        return 0.0
    return EDGE_RTT_SECONDS[a][0] + EDGE_RTT_SECONDS[b][0]


def nearest_regions(origin: Region, candidates) -> Tuple[Region, ...]:
    """Rank ``candidates`` nearest-first from ``origin``, ties by enum name."""
    return tuple(
        sorted(candidates, key=lambda region: (region_distance(origin, region), region.name))
    )
