"""The ``python -m repro`` command line: list, describe, and run scenarios.

Verbs:

* ``list`` — one table row per registered scenario;
* ``describe NAME`` — full description plus the resolved configuration;
* ``run NAME [NAME ...] [--smoke] [--out DIR] [--delta N] [--engine E]
  [--parallelism M]`` — execute scenarios and (optionally) write JSON +
  Markdown reports.

The exit code is 0 when every executed scenario passed all its checks and
1 otherwise, so CI can run scenarios directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.reporting import format_table, human_bytes
from repro.errors import ConfigurationError
from repro.scenarios import registry
from repro.scenarios.config import PARALLELISM_MODES
from repro.scenarios.runner import run_scenario
from repro.store import ENGINES


def _build_parser() -> argparse.ArgumentParser:
    """The argparse tree for all verbs."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run RITM reproduction scenarios (see docs/SCENARIOS.md).",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    sub.add_parser("list", help="list registered scenarios")

    describe = sub.add_parser("describe", help="show one scenario in full")
    describe.add_argument("name", help="scenario name (see `list`)")

    run = sub.add_parser("run", help="run one or more scenarios")
    run.add_argument("names", nargs="+", help="scenario names (see `list`)")
    run.add_argument(
        "--smoke", action="store_true", help="use each scenario's scaled-down smoke variant"
    )
    run.add_argument("--out", type=Path, default=None, metavar="DIR",
                     help="write <name>.json and <name>.md reports under DIR")
    run.add_argument("--delta", type=int, default=None, metavar="SECONDS",
                     help="override the dissemination period Δ")
    run.add_argument(
        "--engine",
        default=None,
        metavar="NAME",
        choices=sorted(ENGINES),
        help=(
            "override the authenticated-store engine; one of: "
            + ", ".join(sorted(ENGINES))
        ),
    )
    run.add_argument(
        "--parallelism",
        default=None,
        metavar="MODE",
        choices=PARALLELISM_MODES,
        help=(
            "override the run's worker-pool mode (verdicts are unchanged; "
            "only wall-clock differs); one of: " + ", ".join(PARALLELISM_MODES)
        ),
    )
    return parser


def _cmd_list() -> int:
    """Print the scenario table."""
    rows = []
    for config in registry.all_scenarios():
        rows.append(
            (
                config.name,
                f"{config.delta_seconds}s",
                config.workload.kind,
                len(config.agents),
                len(config.faults),
                ",".join(config.tags),
            )
        )
    print(format_table(["scenario", "delta", "workload", "RAs", "faults", "tags"], rows))
    print(f"\n{len(rows)} scenarios registered. "
          "`python -m repro describe <name>` for details.")
    return 0


def _cmd_describe(name: str) -> int:
    """Print one scenario's title, description, and configuration."""
    config = registry.get(name)
    print(f"{config.name} — {config.title}\n")
    print(config.description)
    rows = [
        ("delta_seconds", config.delta_seconds),
        ("duration_periods", config.duration_periods or "(from trace window)"),
        ("store_engine", config.store_engine),
        ("workload", config.workload.kind),
        ("agents", ", ".join(f"{a.name}@{a.region}" for a in config.agents)),
        ("faults", ", ".join(f"{f.kind}@{f.at_period}" for f in config.faults) or "none"),
        ("victim_host", config.victim_host or "none"),
        ("long_lived_session", config.long_lived_session),
        ("gossip_audit", config.gossip_audit),
        ("compare_engines", ", ".join(config.compare_engines) or "none"),
        ("baseline", config.baseline or "none"),
        (
            "sharded",
            f"width {config.shard_width_periods} periods, "
            f"lifetime {config.cert_lifetime_periods} periods, "
            f"prune every {config.prune_every_periods}"
            if config.sharded
            else False,
        ),
        ("attack_window_bound", f"{config.attack_window_seconds()}s"),
        ("tags", ", ".join(config.tags)),
    ]
    print()
    print(format_table(["parameter", "value"], [(k, str(v)) for k, v in rows]))
    return 0


def _cmd_run(
    names: List[str],
    smoke: bool,
    out: Optional[Path],
    delta: Optional[int],
    engine: Optional[str],
    parallelism: Optional[str],
) -> int:
    """Run scenarios, print summaries, optionally write report files."""
    exit_code = 0
    for name in names:
        config = registry.get(name)
        if smoke:
            config = config.smoke()
        overrides = {}
        if delta is not None:
            overrides["delta_seconds"] = delta
        if engine is not None:
            overrides["store_engine"] = engine
        if parallelism is not None:
            overrides["parallelism"] = parallelism
        if overrides:
            config = config.with_overrides(**overrides)

        print(f"== {config.name}: {config.title}")
        report = run_scenario(config)
        dissemination = report.metrics["dissemination"]
        print(
            f"   {dissemination['pulls']} pulls, "
            f"{human_bytes(dissemination['bytes_downloaded'])} downloaded, "
            f"{dissemination['serials_applied']} serials applied, "
            f"{dissemination['resyncs']} resync(s)"
        )
        for check in report.checks:
            mark = "PASS" if check.passed else "FAIL"
            detail = f" — {check.detail}" if check.detail else ""
            print(f"   [{mark}] {check.name}{detail}")
        if out is not None:
            json_path, md_path = report.write(out)
            print(f"   wrote {json_path} and {md_path}")
        if not report.all_checks_passed:
            exit_code = 1
        print()
    return exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.verb == "list":
            return _cmd_list()
        if args.verb == "describe":
            return _cmd_describe(args.name)
        return _cmd_run(
            args.names, args.smoke, args.out, args.delta, args.engine, args.parallelism
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
