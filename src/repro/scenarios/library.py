"""The built-in scenario library.

Seventeen scenarios ship with the engine.  Four re-express the original
``examples/`` scripts (``quickstart``, ``heartbleed``, ``iot-long-lived``,
``ca-audit-gossip``); five are new workloads the declarative engine makes
cheap (``flash-crowd`` with a store-engine comparison, ``degraded-ra``
probing the attack window under missed pulls, ``tampered-cdn`` combining
a forged batch with a CA outage, ``sharded-longrun`` driving the §VIII
expiry-split deployment mode through a multi-quarter clock advance, and
``ra-crash-recovery`` comparing a durable RA's warm restart against a cold
full resync on the write-ahead-logged store engine); three form the
adversarial control-plane matrix of docs/THREATS.md (``replayed-head``
re-presenting captured signed state, ``rotated-ca-key`` driving scheduled
key rotation plus a retired-key forgery, and ``equivocating-ca`` planting a
split-world view at one region's CDN edges for the gossip ring to catch);
three exercise the fleet engine's concurrency model
(``thundering-herd`` slamming an expanded jittered fleet plus client load
into one mass-revocation period, ``staggered-pulls`` spreading the fleet's
pull offsets across the period to flatten the CDN peak, and
``slow-ra-holb`` pinning one RA behind a stalled uplink to show the event
loop has no head-of-line blocking); and ``region-outage`` kills a whole
region mid-run — CDN edges and RAs alike — to prove the WAL-segment
replication stream and RA→RA anti-entropy recover the fleet without a
cold-sync storm at the CA origin (docs/REPLICATION.md).  Finally, ``soak``
streams a million-client Zipf/diurnal handshake trace through the fleet for
thirty simulated days on the durable-compact engine with steady-state
segment streaming, pinning differential verdicts against an in-memory
oracle and the generator's bounded-memory contract (docs/WORKLOADS.md).

Each scenario is a plain :class:`~repro.scenarios.config.ScenarioConfig`;
adding a new one is a ~30-line :func:`~repro.scenarios.registry.register`
call (see ``docs/SCENARIOS.md``).
"""

from __future__ import annotations

from repro.scenarios.config import (
    AgentSpec,
    ClientStreamSpec,
    FaultSpec,
    RevocationEvent,
    ScenarioConfig,
    WorkloadSpec,
)
from repro.scenarios.registry import register

QUICKSTART = register(
    ScenarioConfig(
        name="quickstart",
        title="Quickstart: revoke-and-reject in one Δ",
        summary=(
            "A complete CA → CDN → RA pipeline: the opening handshake is "
            "accepted, the server certificate is revoked mid-run, and the "
            "next handshake is rejected with a verifiable proof."
        ),
        description=(
            "Builds the paper's Fig. 1/Fig. 3 pipeline with one gateway RA. "
            "The CA bootstraps an empty dictionary, the RA pulls it, and a "
            "client handshake through the RA succeeds with a compact absence "
            "proof attached. At period 2 the CA revokes the server's serial; "
            "the RA picks the batch up on its next pull and the closing "
            "handshake is refused with reason certificate-revoked."
        ),
        delta_seconds=10,
        duration_periods=4,
        agents=(AgentSpec("gateway-ra", "EUROPE"),),
        workload=WorkloadSpec(
            kind="scripted",
            events=(RevocationEvent(at_period=2, revoke_victim=True, reason="key compromise"),),
        ),
        victim_host="shop.example",
        tags=("example", "handshake"),
    )
)

HEARTBLEED = register(
    ScenarioConfig(
        name="heartbleed",
        title="Heartbleed-scale mass revocation",
        summary=(
            "Replays the burst week (14-20 April 2014) of the calibrated "
            "revocation trace through a real CA + CDN + RA pipeline and "
            "measures dissemination volume and worst-case provability lag."
        ),
        description=(
            "The paper motivates RITM with catastrophic events such as "
            "Heartbleed (§I, §VII-A). Every Δ the CA batches the revocations "
            "issued in that period and publishes the batch plus a fresh head "
            "object; an ISP RA pulls every Δ and applies the updates. The "
            "report records how many revocations flowed, how many bytes the "
            "RA downloaded, and the worst time from 'CA revokes' to 'RA can "
            "prove it' — the dissemination lag that bounds the 2Δ attack "
            "window. ca_share is the fraction of the global burst handled by "
            "the CA under study (0.25 reproduces the paper's largest CA)."
        ),
        delta_seconds=3600,
        agents=(AgentSpec("isp-ra", "UNITED_STATES"),),
        workload=WorkloadSpec(
            kind="trace",
            trace_start="2014-04-14",
            trace_end="2014-04-20",
            ca_share=0.05,
        ),
        smoke_overrides={
            "delta_seconds": 21600,
            "workload": {"ca_share": 0.01},
        },
        tags=("example", "trace", "mass-revocation"),
    )
)

IOT_LONG_LIVED = register(
    ScenarioConfig(
        name="iot-long-lived",
        title="IoT long-lived connection: mid-session revocation",
        summary=(
            "Keeps a TLS session open for hours, revokes the server's "
            "certificate mid-session, and shows the client tearing the "
            "session down within 2Δ — versus the 4-day exposure of OCSP "
            "Stapling on the same timeline."
        ),
        description=(
            "The paper stresses that a revocation system must notify clients "
            "during established connections (§II, §V): an IoT device or VPN "
            "endpoint that keeps a session open for hours would otherwise "
            "keep talking to a revoked server. The RA piggybacks a fresh "
            "status on server traffic every Δ; the client enforces the 2Δ "
            "freshness window. The baseline section replays the same "
            "timeline against OCSP Stapling with a 4-day response lifetime."
        ),
        delta_seconds=30,
        duration_periods=240,
        agents=(AgentSpec("home-gateway-ra", "EUROPE"),),
        workload=WorkloadSpec(
            kind="scripted",
            events=(
                RevocationEvent(
                    at_period=40, revoke_victim=True, reason="device key extracted"
                ),
            ),
        ),
        victim_host="telemetry.iot.example",
        long_lived_session=True,
        baseline="ocsp-stapling",
        smoke_overrides={
            "duration_periods": 12,
            "workload": {
                "events": (
                    RevocationEvent(
                        at_period=4, revoke_victim=True, reason="device key extracted"
                    ),
                )
            },
        },
        tags=("example", "long-lived", "baseline"),
    )
)

CA_AUDIT_GOSSIP = register(
    ScenarioConfig(
        name="ca-audit-gossip",
        title="CA accountability: catching an equivocating CA",
        summary=(
            "A CA serves an honest dictionary to one RA and a doctored copy "
            "(the victim's revocation silently replaced by a decoy) to "
            "another; one gossip round produces portable cryptographic "
            "evidence of the equivocation."
        ),
        description=(
            "RITM keeps CAs accountable (§III 'Consistency Checking', §V "
            "'Misbehaving CA'): a CA that shows different dictionaries to "
            "different parts of the system must sign two conflicting roots "
            "of the same size. The audit phase revokes the victim honestly "
            "for the first RA, hands the second RA a forged issuance with a "
            "parallel signed root, and runs a gossip exchange between their "
            "consistency checkers. The resulting misbehavior report verifies "
            "under the CA's own public key."
        ),
        delta_seconds=10,
        duration_periods=2,
        agents=(
            AgentSpec("isp-ra", "EUROPE"),
            AgentSpec("campus-ra", "UNITED_STATES"),
        ),
        workload=WorkloadSpec(kind="scripted"),
        victim_host="bank.example",
        gossip_audit=True,
        tags=("example", "accountability", "gossip"),
    )
)

FLASH_CROWD = register(
    ScenarioConfig(
        name="flash-crowd",
        title="Flash-crowd revocation burst with store-engine comparison",
        summary=(
            "A sudden revocation burst (a compromised intermediate, a "
            "botched firmware batch) hits the CA; the same batch stream is "
            "replayed against every store engine to compare update cost and "
            "confirm byte-identical roots."
        ),
        description=(
            "Steady background revocations are interrupted by a burst three "
            "orders of magnitude larger in a single Δ. The main run uses the "
            "configured engine; afterwards the recorded batch stream is "
            "replayed against each engine in compare_engines, timing the "
            "insert+root cycle and asserting that all engines commit to the "
            "same root (the repro.store contract)."
        ),
        delta_seconds=60,
        duration_periods=8,
        agents=(
            AgentSpec("metro-ra", "EUROPE"),
            AgentSpec("exchange-ra", "JAPAN"),
        ),
        workload=WorkloadSpec(
            kind="scripted",
            events=(
                RevocationEvent(at_period=0, count=50, reason="background"),
                RevocationEvent(at_period=1, count=50, reason="background"),
                RevocationEvent(at_period=2, count=50, reason="background"),
                RevocationEvent(at_period=3, count=10_000, reason="flash crowd"),
                RevocationEvent(at_period=4, count=500, reason="aftershock"),
                RevocationEvent(at_period=6, count=50, reason="background"),
            ),
        ),
        compare_engines=("naive", "incremental", "durable"),
        smoke_overrides={
            "workload": {
                "events": (
                    RevocationEvent(at_period=0, count=20, reason="background"),
                    RevocationEvent(at_period=3, count=800, reason="flash crowd"),
                    RevocationEvent(at_period=4, count=50, reason="aftershock"),
                )
            },
        },
        tags=("burst", "engines"),
    )
)

DEGRADED_RA = register(
    ScenarioConfig(
        name="degraded-ra",
        title="Degraded RA: missed pulls stretch the attack window",
        summary=(
            "One RA restarts and misses six consecutive pulls while "
            "revocations keep flowing; its worst-case provability lag blows "
            "through the 2Δ bound while a healthy RA stays inside it."
        ),
        description=(
            "The 2Δ attack window (§V) assumes RAs actually pull every Δ. "
            "This scenario runs two RAs against a steady revocation stream "
            "and injects an ra-restart fault into one of them. The healthy "
            "RA's worst lag stays within the bound; the degraded RA's lag "
            "grows with the outage, quantifying the exposure a monitoring "
            "system must alarm on, and converges again after recovery."
        ),
        delta_seconds=60,
        duration_periods=16,
        agents=(
            AgentSpec("healthy-ra", "EUROPE"),
            AgentSpec("flaky-ra", "UNITED_STATES"),
        ),
        workload=WorkloadSpec(
            kind="scripted",
            events=tuple(
                RevocationEvent(at_period=period, count=20, reason="steady stream")
                for period in range(16)
            ),
        ),
        faults=(FaultSpec(kind="ra-restart", at_period=4, duration_periods=6, agent="flaky-ra"),),
        smoke_overrides={
            "duration_periods": 10,
            "workload": {
                "events": tuple(
                    RevocationEvent(at_period=period, count=10, reason="steady stream")
                    for period in range(10)
                )
            },
            "faults": (
                FaultSpec(kind="ra-restart", at_period=2, duration_periods=4, agent="flaky-ra"),
            ),
        },
        tags=("fault", "attack-window"),
    )
)

TAMPERED_CDN = register(
    ScenarioConfig(
        name="tampered-cdn",
        title="Hostile distribution: tampered batch + CA outage",
        summary=(
            "A batch on the CDN is forged (a decoy serial substituted under "
            "the honest signed root) and later the CA goes dark for two "
            "periods; the RA detects the tampering, resyncs, and converges "
            "once the backlog flushes."
        ),
        description=(
            "RITM's dissemination network is untrusted: edge caches can be "
            "compromised and origins can serve stale or forged objects. The "
            "RA verifies every batch against the CA-signed root, rolls back "
            "a tampered merge, and recovers the honest suffix through the "
            "sync protocol. A CA outage then queues revocations, which flush "
            "in one batch on recovery — the report's timeline shows both "
            "fault windows and the resync count."
        ),
        delta_seconds=30,
        duration_periods=10,
        agents=(AgentSpec("border-ra", "EUROPE"),),
        workload=WorkloadSpec(
            kind="scripted",
            events=(
                RevocationEvent(at_period=1, count=25, reason="routine"),
                RevocationEvent(at_period=2, count=25, reason="routine"),
                RevocationEvent(at_period=5, count=25, reason="issued during outage"),
                RevocationEvent(at_period=7, count=25, reason="routine"),
            ),
        ),
        faults=(
            FaultSpec(kind="tampered-batch", at_period=2),
            FaultSpec(kind="ca-outage", at_period=5, duration_periods=2),
        ),
        tags=("fault", "tamper", "outage"),
    )
)

RA_CRASH_RECOVERY = register(
    ScenarioConfig(
        name="ra-crash-recovery",
        title="RA crash recovery: durable warm restart vs cold resync",
        summary=(
            "Two RAs on the write-ahead-logged durable store engine crash "
            "in the same window; the one with an on-disk checkpoint "
            "warm-starts and fetches only the delta since its last applied "
            "epoch, while the cold one re-downloads the CA's whole batch "
            "history — and the warm RA is provably back inside the 2Δ "
            "bound first."
        ),
        description=(
            "RITM assumes RAs are long-lived middleboxes, but processes "
            "die: at the ROADMAP's millions-of-users scale a fleet-wide "
            "restart that cold-resyncs every replica from the CA is a "
            "resync storm the CDN bill and the attack window both pay for. "
            "This scenario drives a steady revocation stream against two "
            "RAs backed by the durable store engine (WAL + snapshots, "
            "docs/STORAGE.md). Both crash at the same period and stay down "
            "for the same window. durable-ra checkpoints its replicas, "
            "signed heads, and applied-batch cursors to disk and restores "
            "them on restart, so its recovery pull fetches only the "
            "batches issued while it was down; coldstart-ra loses its "
            "memory and re-fetches the entire batch history. The report "
            "compares recovery bytes and the time each RA re-entered the "
            "2Δ provability bound, and differentially checks every "
            "recovered verdict against an in-memory oracle dictionary."
        ),
        delta_seconds=30,
        duration_periods=16,
        agents=(
            AgentSpec("coldstart-ra", "UNITED_STATES"),
            AgentSpec("durable-ra", "EUROPE"),
        ),
        workload=WorkloadSpec(
            kind="scripted",
            events=tuple(
                RevocationEvent(at_period=period, count=40, reason="steady stream")
                for period in range(16)
            ),
        ),
        faults=(
            FaultSpec(
                kind="ra-restart",
                at_period=10,
                duration_periods=3,
                agent="durable-ra",
                crash=True,
                durable=True,
            ),
            FaultSpec(
                kind="ra-restart",
                at_period=10,
                duration_periods=3,
                agent="coldstart-ra",
                crash=True,
            ),
        ),
        store_engine="durable",
        smoke_overrides={
            "duration_periods": 10,
            "workload": {
                "events": tuple(
                    RevocationEvent(at_period=period, count=15, reason="steady stream")
                    for period in range(10)
                )
            },
            "faults": (
                FaultSpec(
                    kind="ra-restart",
                    at_period=6,
                    duration_periods=2,
                    agent="durable-ra",
                    crash=True,
                    durable=True,
                ),
                FaultSpec(
                    kind="ra-restart",
                    at_period=6,
                    duration_periods=2,
                    agent="coldstart-ra",
                    crash=True,
                ),
            ),
        },
        tags=("fault", "durability", "storage"),
    )
)

SHARDED_LONGRUN = register(
    ScenarioConfig(
        name="sharded-longrun",
        title="Ever-growing dictionaries: expiry shards bound RA storage",
        summary=(
            "A multi-quarter run with steady revocations and certificate "
            "expiry churn: the CA routes revocations into expiry shards, RAs "
            "delete whole shards as their windows pass, and RA storage "
            "plateaus while an unsharded oracle dictionary grows forever."
        ),
        description=(
            "The paper's §VIII relaxation for ever-growing dictionaries: a "
            "CA maintains one dictionary per expiry window, so an RA can "
            "reclaim a whole shard once every certificate in it has expired. "
            "The clock advances one week per Δ for 40 weeks; each revoked "
            "certificate expires 1-10 weeks later, shards are 6 weeks wide, "
            "and both sides prune every period. The runner feeds the same "
            "revocations to an unsharded oracle and checks that (a) RA "
            "storage is actually reclaimed, (b) every live serial gets the "
            "same proof verdict from the sharded replica as from the oracle, "
            "(c) proving a serial in a never-revoked window does not mutate "
            "shard state, and (d) the sharded RA footprint ends below the "
            "monotonically growing baseline."
        ),
        delta_seconds=7 * 86_400,
        duration_periods=40,
        agents=(AgentSpec("backbone-ra", "EUROPE"),),
        workload=WorkloadSpec(
            kind="scripted",
            events=tuple(
                RevocationEvent(at_period=period, count=25, reason="steady issuance")
                for period in range(40)
            ),
        ),
        sharded=True,
        shard_width_periods=6,
        cert_lifetime_periods=10,
        prune_every_periods=1,
        smoke_overrides={
            "duration_periods": 12,
            "shard_width_periods": 3,
            "cert_lifetime_periods": 4,
            "workload": {
                "events": tuple(
                    RevocationEvent(at_period=period, count=8, reason="steady issuance")
                    for period in range(12)
                )
            },
        },
        tags=("sharding", "storage", "longrun"),
    )
)

REPLAYED_HEAD = register(
    ScenarioConfig(
        name="replayed-head",
        title="Replay attack: a stale signed head re-presented on the CDN",
        summary=(
            "A compromised distribution point re-serves a head object "
            "captured periods earlier; the RA's replay window rejects the "
            "stale publication sequence outright and its replica is "
            "bit-for-bit untouched, then converges again on the next honest "
            "publication."
        ),
        description=(
            "The paper's §V replay attack: everything the CA publishes is "
            "signed, so the only thing a hostile CDN can do without forging "
            "signatures is re-present *old* signed state and freeze clients "
            "in the past. Every head carries a monotonic publication "
            "sequence; the RA keeps a per-CA cursor and treats anything more "
            "than replay_window publications behind it as an attack "
            "(ReplayError), not benign staleness. The injector captures the "
            "run's first head publication and republishes those exact bytes "
            "over the current head at period 5. The report pins three "
            "verdicts: the replay was rejected, the replica's size and root "
            "were not mutated by the rejected pull, and the fleet converged "
            "on the honest dictionary by the end of the run."
        ),
        delta_seconds=10,
        duration_periods=8,
        agents=(AgentSpec("border-ra", "EUROPE"),),
        workload=WorkloadSpec(
            kind="scripted",
            events=(
                RevocationEvent(at_period=0, count=10, reason="routine"),
                RevocationEvent(at_period=1, count=10, reason="routine"),
                RevocationEvent(at_period=2, count=10, reason="routine"),
                RevocationEvent(at_period=3, count=10, reason="routine"),
                RevocationEvent(at_period=6, count=10, reason="routine"),
            ),
        ),
        faults=(FaultSpec(kind="replayed-head", at_period=5),),
        tags=("fault", "adversarial", "replay"),
    )
)

ROTATED_CA_KEY = register(
    ScenarioConfig(
        name="rotated-ca-key",
        title="CA key rotation: scheduled epochs, overlap windows, and a "
        "retired-key forgery",
        summary=(
            "The CA rotates its dictionary-signing key every three periods; "
            "RAs learn each rotation from the signed announcement chain "
            "without missing a pull, a retired epoch's root verifies only "
            "inside its overlap window (cached and uncached alike), and a "
            "head forged with an extracted retired key is rejected."
        ),
        description=(
            "A single immortal signing key makes one key compromise fatal "
            "forever, so the CA rotates on a schedule: each rotation "
            "re-signs the dictionary under a fresh key and extends a "
            "key-announcement chain anchored at the genesis key, and the "
            "outgoing key stays acceptable for one overlap period so "
            "in-flight pulls and checkpoint restores keep verifying. RAs "
            "that hit an unverifiable head fetch the chain, validate it "
            "link by link, and retry once. The runner probes each retired "
            "epoch's root through the verified-root cache and against the "
            "raw keyring both inside and after the overlap window, and at "
            "period 5 an attacker who extracted the retired epoch-0 key "
            "republishes the current head re-signed under it — the "
            "time-scoped keyring refuses the signature and the fleet "
            "recovers on the next honest publication. The victim handshake "
            "closes the loop: revocation proofs still verify end-to-end "
            "three key epochs away from the genesis key."
        ),
        delta_seconds=10,
        duration_periods=12,
        agents=(AgentSpec("metro-ra", "EUROPE"),),
        workload=WorkloadSpec(
            kind="scripted",
            events=(
                RevocationEvent(at_period=1, count=8, reason="routine"),
                RevocationEvent(at_period=5, count=8, reason="routine"),
                RevocationEvent(
                    at_period=9, revoke_victim=True, reason="key compromise"
                ),
            ),
        ),
        victim_host="rotating.example",
        key_rotation_periods=3,
        key_overlap_periods=1,
        faults=(FaultSpec(kind="retired-key-forgery", at_period=5),),
        tags=("fault", "adversarial", "rotation"),
    )
)

EQUIVOCATING_CA = register(
    ScenarioConfig(
        name="equivocating-ca",
        title="Split-world equivocation caught by the always-on gossip ring",
        summary=(
            "A CA plants a fully self-consistent forged dictionary — same "
            "size, genuine signature, one revocation silently replaced — at "
            "one region's CDN edges; the targeted RA adopts it without a "
            "single verification error, and the same period's cross-RA "
            "gossip round produces signed, portable misbehavior evidence."
        ),
        description=(
            "The §V misbehaving-CA attack the local checks cannot stop: the "
            "forged universe is internally consistent (a shadow dictionary "
            "rebuilt from the honest batches with the victim serial swapped "
            "for a decoy, signed by the CA's real key, with its own valid "
            "freshness chain), so the targeted RA applies it cleanly and is "
            "blind to the hidden revocation. Unlike the staged ca-audit-"
            "gossip example, the forgery here travels through the real "
            "dissemination path — planted at the targeted region's edge "
            "caches while the origin and every other region stay honest — "
            "and detection is the always-on consistency layer, not a "
            "post-run audit: every period each adjacent pair of RAs "
            "exchanges observed roots, and two same-size roots with "
            "different hashes are cryptographic proof of equivocation. The "
            "report pins that detection lands in the same period the "
            "forgery was planted and that the evidence verifies under the "
            "CA's own keyring."
        ),
        delta_seconds=10,
        duration_periods=2,
        agents=(
            AgentSpec("honest-ra", "EUROPE"),
            AgentSpec("branch-ra", "JAPAN"),
        ),
        workload=WorkloadSpec(
            kind="scripted",
            events=(
                RevocationEvent(at_period=0, count=4, reason="routine"),
                RevocationEvent(at_period=1, count=1, reason="ca key abuse"),
            ),
        ),
        faults=(FaultSpec(kind="equivocating-ca", at_period=1, agent="branch-ra"),),
        tags=("fault", "adversarial", "accountability", "gossip"),
    )
)

THUNDERING_HERD = register(
    ScenarioConfig(
        name="thundering-herd",
        title="Thundering herd: a jittered fleet absorbs a mass-revocation burst",
        summary=(
            "Twelve RAs across three regions pull a mass-revocation burst "
            "over WAN uplinks within a fraction of a second of each other "
            "while serving thousands of client status handshakes; the "
            "report pins that pulls genuinely overlapped and the whole "
            "fleet still converged inside the 2Δ bound."
        ),
        description=(
            "The fleet-engine stress case the serial runner could not "
            "express: a CA publishes a large batch and every RA in an "
            "expanded fleet races to fetch it at bin+Δ plus an independent "
            "seeded jitter draw, so the CDN sees a thundering herd rather "
            "than a lockstep queue. Mid-period, a client-load actor posts "
            "handshake batches into each RA's mailbox; RAs serve them "
            "against the pre-pull replica state (sampling Ed25519 root "
            "re-verification through the batch-verify path, where "
            "parallelism=process fans out to worker processes). The fleet "
            "block of the report records peak concurrent pulls, the "
            "overlap factor, and mailbox high-watermarks."
        ),
        delta_seconds=15,
        duration_periods=6,
        agents=(
            AgentSpec("edge-us", "UNITED_STATES"),
            AgentSpec("edge-eu", "EUROPE"),
            AgentSpec("edge-ap", "JAPAN"),
        ),
        workload=WorkloadSpec(
            kind="scripted",
            events=(
                RevocationEvent(at_period=0, count=60, reason="warmup"),
                RevocationEvent(at_period=1, count=2400, reason="mass compromise"),
                RevocationEvent(at_period=2, count=400, reason="aftershock"),
                RevocationEvent(at_period=4, count=40, reason="routine"),
            ),
        ),
        fleet_size=12,
        pull_jitter_seconds=0.25,
        link_profile="wan",
        client_handshakes=18_000,
        smoke_overrides={
            "fleet_size": 6,
            "client_handshakes": 3_000,
            "workload": {
                "events": (
                    RevocationEvent(at_period=0, count=30, reason="warmup"),
                    RevocationEvent(at_period=1, count=600, reason="mass compromise"),
                    RevocationEvent(at_period=2, count=100, reason="aftershock"),
                    RevocationEvent(at_period=4, count=20, reason="routine"),
                )
            },
        },
        tags=("fleet", "concurrency", "mass-revocation"),
    )
)

SOAK = register(
    ScenarioConfig(
        name="soak",
        title="Soak: a million streamed clients over thirty simulated days",
        summary=(
            "A six-RA fleet on the durable-compact engine serves a "
            "million-client Zipf/diurnal handshake stream for 30 simulated "
            "days of steady revocation churn, with RA pulls riding the WAL "
            "segment-replication transport; the report pins differential "
            "verdicts against an in-memory oracle, the generator's "
            "bounded-memory contract, and that every shipped subsystem was "
            "genuinely exercised."
        ),
        description=(
            "The ROADMAP's million-user north star as one long-run "
            "scenario. A streaming workload generator (docs/WORKLOADS.md) "
            "models one million clients visiting Zipf-distributed sites on "
            "a diurnal traffic curve; the client-load actor posts cursors "
            "into that trace, so each RA regenerates its slice in "
            "O(batch_size) memory — the fleet never materializes its "
            "client population. The CA revokes certificates every 3-hour Δ "
            "period (plus a mid-run mass-revocation burst) on the "
            "durable-compact store engine, and every RA pull streams "
            "verified WAL segments instead of bespoke batch objects. A "
            "per-period observer emits a memory/throughput timeline, and "
            "the closing study sweeps every revoked serial across every "
            "replica against an in-memory oracle. CI smoke-runs a "
            "scaled-down copy and re-asserts the pinned verdicts from the "
            "report artifact."
        ),
        delta_seconds=10_800,
        duration_periods=240,
        agents=(
            AgentSpec("soak-us", "UNITED_STATES"),
            AgentSpec("soak-eu", "EUROPE"),
            AgentSpec("soak-ap", "JAPAN"),
        ),
        workload=WorkloadSpec(
            kind="scripted",
            events=tuple(
                RevocationEvent(at_period=p, count=20, reason="steady churn")
                for p in range(240)
            )
            + (
                RevocationEvent(
                    at_period=120, count=2_000, reason="mass compromise"
                ),
            ),
        ),
        store_engine="durable-compact",
        segment_streaming=True,
        fleet_size=6,
        client_stream=ClientStreamSpec(
            clients=1_000_000,
            sites=40_000,
            events_total=150_000,
            zipf_exponent=1.1,
            diurnal_amplitude=0.7,
            batch_size=8192,
        ),
        smoke_overrides={
            "duration_periods": 24,
            "fleet_size": 3,
            "client_stream": {
                "clients": 150_000,
                "sites": 2_500,
                "events_total": 2_400,
                "batch_size": 512,
            },
            "workload": {
                "events": tuple(
                    RevocationEvent(at_period=p, count=10, reason="steady churn")
                    for p in range(24)
                )
                + (
                    RevocationEvent(
                        at_period=12, count=200, reason="mass compromise"
                    ),
                ),
            },
        },
        tags=("fleet", "soak", "streaming", "workloads"),
    )
)

STAGGERED_PULLS = register(
    ScenarioConfig(
        name="staggered-pulls",
        title="Staggered pulls: spreading the fleet flattens the CDN peak",
        summary=(
            "Eight RAs pull with a 2-second per-agent stagger instead of "
            "all at bin+Δ; the report pins that the peak pull concurrency "
            "drops below the fleet size while every agent's provability "
            "lag stays inside the 2Δ bound."
        ),
        description=(
            "The operational counterpart to thundering-herd: an operator "
            "who controls the fleet's pull offsets can trade a bounded "
            "extra per-agent lag (agent i pulls at bin+Δ+2i seconds) for a "
            "flat CDN load curve. The stagger rides the same event "
            "scheduler as everything else — pulls are genuinely distinct "
            "events, not a serialised loop — and the config validation "
            "guarantees the worst stagger offset still lands inside the "
            "period, so the 2Δ freshness contract is preserved by "
            "construction."
        ),
        delta_seconds=30,
        duration_periods=5,
        agents=(
            AgentSpec("pop-east", "UNITED_STATES"),
            AgentSpec("pop-west", "EUROPE"),
        ),
        workload=WorkloadSpec(
            kind="scripted",
            events=(
                RevocationEvent(at_period=0, count=50, reason="routine"),
                RevocationEvent(at_period=1, count=800, reason="batch compromise"),
                RevocationEvent(at_period=3, count=120, reason="routine"),
            ),
        ),
        fleet_size=8,
        pull_stagger_seconds=2.0,
        link_profile="metro",
        smoke_overrides={
            "duration_periods": 4,
            "workload": {
                "events": (
                    RevocationEvent(at_period=0, count=20, reason="routine"),
                    RevocationEvent(at_period=1, count=200, reason="batch compromise"),
                    RevocationEvent(at_period=3, count=40, reason="routine"),
                )
            },
        },
        tags=("fleet", "concurrency", "operations"),
    )
)

REGION_OUTAGE = register(
    ScenarioConfig(
        name="region-outage",
        title="Region outage: WAL-segment replication and RA→RA anti-entropy",
        summary=(
            "An entire region — CDN edges and both of its RAs — goes dark "
            "for four periods while revocations keep flowing; surviving "
            "regions absorb the failed-over traffic inside the 2Δ bound, "
            "and the restored RAs catch up peer-to-peer from archived WAL "
            "segments instead of cold-syncing from the CA origin."
        ),
        description=(
            "The replication story of docs/REPLICATION.md end to end: every "
            "RA runs in segment-streaming mode, so each pull ships the CA's "
            "signed, sequence-numbered WAL segments and leaves a verified "
            "segment archive behind. At the fault period the European "
            "region fails wholesale — its CDN presence is withdrawn (DNS "
            "fails surviving traffic over to the nearest healthy region) "
            "and every RA in the region crashes with its checkpoint on "
            "disk. Survivors keep pulling through neighbour edges and stay "
            "inside the 2Δ provability bound. When the region returns, "
            "each restored RA warm-starts from its checkpoint, ranks the "
            "survivors by regional proximity, and replays the missed "
            "segments from its nearest peer's archive — the CA origin "
            "never serves a full cold sync. The report differentially "
            "checks every restored verdict against an in-memory oracle and "
            "pins the CA-egress saving against the N-cold-syncs "
            "counterfactual."
        ),
        delta_seconds=30,
        duration_periods=16,
        agents=(
            AgentSpec("eu-frankfurt-ra", "EUROPE"),
            AgentSpec("eu-dublin-ra", "EUROPE"),
            AgentSpec("us-east-ra", "UNITED_STATES"),
            AgentSpec("ap-tokyo-ra", "JAPAN"),
        ),
        workload=WorkloadSpec(
            kind="scripted",
            events=tuple(
                RevocationEvent(at_period=period, count=30, reason="steady stream")
                for period in range(16)
            ),
        ),
        faults=(
            FaultSpec(
                kind="region-outage",
                at_period=6,
                duration_periods=4,
                region="EUROPE",
            ),
        ),
        store_engine="durable",
        smoke_overrides={
            "duration_periods": 10,
            "workload": {
                "events": tuple(
                    RevocationEvent(at_period=period, count=12, reason="steady stream")
                    for period in range(10)
                )
            },
            "faults": (
                FaultSpec(
                    kind="region-outage",
                    at_period=4,
                    duration_periods=3,
                    region="EUROPE",
                ),
            ),
        },
        tags=("fault", "replication", "fleet", "storage"),
    )
)

SLOW_RA_HOLB = register(
    ScenarioConfig(
        name="slow-ra-holb",
        title="Slow RA: a stalled uplink cannot head-of-line-block the fleet",
        summary=(
            "Three healthy RAs share the period with one RA behind a "
            "pathological 25-second uplink; the report pins that the "
            "healthy agents stay inside the 2Δ bound while the stalled "
            "agent alone blows past it."
        ),
        description=(
            "In a lockstep loop one slow puller delays everyone behind it; "
            "on the event scheduler each RA's pull is its own event, so a "
            "stalled uplink only stretches that agent's own "
            "availability time. The stalled link profile (25 s one-way at "
            "256 kbit/s) pushes one round trip past a full Δ period: the "
            "slow RA's dissemination lag lands far outside the 2Δ bound "
            "while the metro-linked rest of the fleet converges as usual — "
            "per-agent isolation the attack-window metrics make explicit."
        ),
        delta_seconds=20,
        duration_periods=5,
        agents=(
            AgentSpec("core-ra", "UNITED_STATES"),
            AgentSpec("metro-ra", "EUROPE"),
            AgentSpec("branch-ra", "JAPAN"),
            AgentSpec("slow-ra", "AUSTRALIA"),
        ),
        workload=WorkloadSpec(
            kind="scripted",
            events=(
                RevocationEvent(at_period=0, count=40, reason="routine"),
                RevocationEvent(at_period=1, count=300, reason="incident"),
                RevocationEvent(at_period=3, count=60, reason="routine"),
            ),
        ),
        link_profile="metro",
        link_overrides={"slow-ra": "stalled"},
        smoke_overrides={
            "duration_periods": 4,
        },
        tags=("fleet", "concurrency", "degraded"),
    )
)
