"""The fleet engine: one discrete-event loop per scenario run.

:class:`FleetEngine` replaces the serial runner's lockstep period loop.
It builds the deployment (CA, CDN, fleet, victim) exactly as before, then
hands control to a :class:`repro.net.EventScheduler`: a
:class:`~repro.scenarios.engine.actors.CADirector` fires at every bin
start, each :class:`~repro.scenarios.engine.actors.RAActor` fires at its
own (possibly staggered/jittered) pull time, and the optional
:class:`~repro.scenarios.engine.actors.ClientLoadActor` posts handshake
batches mid-period.  Period-scoped study hooks run as ordered observers:
``after_ca_duty`` immediately after the CA's publication step,
``after_pulls`` when the period's last agent finishes its turn (tracked by
a completion counter, so stagger and jitter cannot reorder them relative
to the pulls they must follow).

With every concurrency knob at its default the event order is exactly the
serial loop's order — same-time events fire in scheduling order, and the
chaining discipline keeps period ``p``'s pulls ahead of period ``p+1``'s
CA duty — so all pre-engine scenarios keep byte-identical reports.
"""

from __future__ import annotations

import random
import shutil
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.cdn import CDNNetwork, GeoLocation
from repro.crypto import KeyPair
from repro.dictionary.authdict import CADictionary
from repro.errors import ConfigurationError
from repro.net import EventScheduler
from repro.net.clock import SimulatedClock
from repro.pki import CertificationAuthority
from repro.ritm import (
    RITMCertificationAuthority,
    RITMConfig,
    RevocationAgent,
    attach_agent_to_cas,
)
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.engine import studies
from repro.scenarios.engine.actors import CADirector, ClientLoadActor, RAActor
from repro.scenarios.engine.checks import build_checks
from repro.scenarios.engine.links import link_for_agent
from repro.scenarios.engine.mailbox import Mailbox
from repro.scenarios.engine.metrics import collect_metrics, config_dict
from repro.scenarios.engine.observers import (
    EngineObserver,
    FaultInjector,
    GossipRing,
    HeadArchiver,
    PeriodContext,
    ReplayIntegrityProbe,
    ReplaySnapshotter,
    RotationProber,
    RotationRecorder,
    SessionKeeper,
    ShardedStorageRecorder,
    SoakRecorder,
)
from repro.scenarios.engine.parallel import ParallelContext
from repro.scenarios.engine.state import AgentRuntime, RunState, VictimRuntime
from repro.scenarios.faults import DECOY_SERIAL
from repro.scenarios.report import ScenarioReport
from repro.workloads import generate_trace, serials_for_count
from repro.workloads.streaming import StreamConfig, StreamingWorkload


def build_timeline(
    cfg: ScenarioConfig,
) -> Tuple[List[Tuple[int, float]], List[Tuple[int, bool, str]]]:
    """The run's schedule: (period, start time) pairs and per-period work.

    Each per-period work item is a ``(serial count, revoke-victim flag,
    reason)`` triple.  Trace workloads derive both lists from the
    calibrated trace; scripted workloads derive them from the config.
    """
    if cfg.workload.kind == "trace":
        start, end = cfg.workload.trace_window()
        bins = generate_trace().counts_per_bin(start, end, cfg.delta_seconds)
        if not bins:
            raise ConfigurationError("the trace window produced no periods")
        periods = [
            (index, float(bin_start)) for index, (bin_start, _) in enumerate(bins)
        ]
        counts = [
            (int(count * cfg.workload.ca_share), False, "trace")
            for _, count in bins
        ]
        return periods, counts
    periods = [
        (period, float(cfg.epoch + period * cfg.delta_seconds))
        for period in range(cfg.duration_periods)
    ]
    counts: List[Tuple[int, bool, str]] = [(0, False, "")] * len(periods)
    for event in cfg.workload.events:
        count, victim_flag, reason = counts[event.at_period]
        counts[event.at_period] = (
            count + event.count,
            victim_flag or event.revoke_victim,
            event.reason if event.reason != "unspecified" else reason,
        )
    return periods, counts


def serial_pool(
    cfg: ScenarioConfig,
    counts: List[Tuple[int, bool, str]],
    victim: Optional[VictimRuntime],
) -> Iterator[int]:
    """A deterministic iterator of serials, skipping the victim's."""
    total = sum(count for count, _, _ in counts)
    pool = serials_for_count(total + 8, seed=cfg.workload.serial_seed)
    victim_value = victim.serial.value if victim is not None else None
    forbidden = {victim_value, DECOY_SERIAL}
    return iter(value for value in pool if value not in forbidden)


class FleetEngine:
    """Executes one scenario configuration on the event scheduler."""

    def __init__(self, config: ScenarioConfig) -> None:
        """Bind the engine to a validated scenario config."""
        self.config = config
        self.state: Optional[RunState] = None
        self.scheduler: Optional[EventScheduler] = None
        self.parallel: Optional[ParallelContext] = None
        self.observers: List[EngineObserver] = []
        #: Open periods by index; the director creates an entry at each bin
        #: start, :meth:`pull_finished` closes it out.
        self.period_contexts: Dict[int, PeriodContext] = {}
        #: Running total of handshakes served, driving the sampled root
        #: re-verification (every ``verify_every``-th handshake).
        self.handshake_counter = 0
        load_total = config.client_handshakes or (
            config.client_stream.events_total if config.client_stream else 0
        )
        self.verify_every = max(1, load_total // 400) if load_total else 0
        self._issued_set: Set[int] = set()
        self._issued_synced = 0

    # -- run orchestration -----------------------------------------------------------

    def run(self) -> ScenarioReport:
        """Execute the scenario and return its structured report."""
        cfg = self.config
        periods, counts = build_timeline(cfg)
        duration = len(periods)
        ritm_config = self._build_ritm_config(duration)
        setup_time = periods[0][1] - 2

        authority = CertificationAuthority(cfg.ca_name, key_seed=cfg.name.encode())
        cdn = CDNNetwork()
        ca = RITMCertificationAuthority(authority, ritm_config, cdn)
        ca.bootstrap(now=setup_time)

        state = RunState(
            config=cfg,
            ritm_config=ritm_config,
            authority=authority,
            ca=ca,
            cdn=cdn,
            periods=periods,
            counts=counts,
        )
        state.oracle = self._build_oracle(duration)
        if cfg.client_stream is not None:
            spec = cfg.client_stream
            state.client_stream = StreamingWorkload(
                StreamConfig(
                    clients=spec.clients,
                    sites=spec.sites,
                    events_total=spec.events_total,
                    duration_seconds=duration * cfg.delta_seconds,
                    start_time=periods[0][1],
                    zipf_exponent=spec.zipf_exponent,
                    diurnal_amplitude=spec.diurnal_amplitude,
                    batch_size=spec.batch_size,
                    seed=spec.seed,
                )
            )
        self.state = state

        # A region-outage run streams WAL segments fleet-wide: every RA's
        # normal pulls then build the segment cursors and archives that
        # peer anti-entropy serves from after the outage.  A scenario can
        # also opt in directly (the soak scenario's steady-state transport).
        streaming = (
            any(fault.kind == "region-outage" for fault in cfg.faults)
            or cfg.segment_streaming
        )
        for index, spec in enumerate(cfg.effective_agents()):
            agent = RevocationAgent(spec.name, ritm_config)
            location = GeoLocation(spec.geo_region())
            client = attach_agent_to_cas(agent, [ca], cdn, location)
            client.segment_streaming = streaming
            client.pull(now=setup_time + 1)
            state.runtimes.append(
                AgentRuntime(
                    spec_name=spec.name,
                    agent=agent,
                    client=client,
                    location=location,
                    fleet_index=index,
                    link=link_for_agent(cfg, spec.name, index),
                    mailbox=Mailbox(spec.name),
                )
            )

        with ParallelContext(cfg.parallelism) as parallel:
            self.parallel = parallel
            try:
                state.victim = studies.setup_victim(state, setup_time + 1)
                state.serial_pool = serial_pool(cfg, counts, state.victim)
                self._run_event_loop(setup_time)
                return self._assemble_report(duration)
            finally:
                self._cleanup(parallel)

    def _build_ritm_config(self, duration: int) -> RITMConfig:
        """The RITM deployment config derived from the scenario config."""
        cfg = self.config
        ritm_kwargs: Dict[str, object] = {}
        if cfg.sharded:
            ritm_kwargs = {
                "sharded": True,
                "shard_width_seconds": cfg.shard_width_periods * cfg.delta_seconds,
                "prune_every_periods": cfg.prune_every_periods,
            }
        if cfg.key_rotation_periods:
            ritm_kwargs["key_rotation_periods"] = cfg.key_rotation_periods
            ritm_kwargs["key_overlap_periods"] = cfg.key_overlap_periods
        return RITMConfig(
            delta_seconds=cfg.delta_seconds,
            chain_length=cfg.effective_chain_length(duration),
            store_engine=cfg.store_engine,
            **ritm_kwargs,
        )

    def _build_oracle(self, duration: int) -> Optional[CADictionary]:
        """The differential oracle for the sharded and crash-recovery studies."""
        cfg = self.config
        if cfg.sharded:
            return CADictionary(
                ca_name=f"{cfg.ca_name} (unsharded oracle)",
                keys=KeyPair.generate(f"{cfg.name}-oracle".encode()),
                delta=cfg.delta_seconds,
                chain_length=cfg.effective_chain_length(duration),
                engine=cfg.store_engine,
            )
        if (
            any(fault.crash or fault.kind == "region-outage" for fault in cfg.faults)
            or cfg.client_stream is not None
        ):
            # Crash-recovery, region-outage, and soak studies: an
            # always-in-memory oracle fed the same revocations, so replica
            # verdicts can be differentially checked after the run.
            return CADictionary(
                ca_name=cfg.ca_name,
                keys=KeyPair.generate(f"{cfg.name}-oracle".encode()),
                delta=cfg.delta_seconds,
                chain_length=cfg.effective_chain_length(duration),
                engine="incremental",
            )
        return None

    def _run_event_loop(self, setup_time: float) -> None:
        """Register actors and observers, then drain the scheduler."""
        cfg, state = self.config, self.state
        self.scheduler = EventScheduler(SimulatedClock(setup_time + 1))
        gossip_rng = random.Random(f"{cfg.name}:{cfg.rng_seed}:gossip")
        self.observers = [
            RotationRecorder(),
            HeadArchiver(),
            FaultInjector(),
            ReplaySnapshotter(),
            ReplayIntegrityProbe(),
            GossipRing(gossip_rng),
            RotationProber(),
            ShardedStorageRecorder(),
            SessionKeeper(),
        ]
        if cfg.client_stream is not None:
            # Appended last so legacy observer ordering is untouched.
            self.observers.append(SoakRecorder())
        # Registration order is the same-time tiebreaker: the director's
        # first firing precedes the fleet's first pulls, and the fleet is
        # seeded in declaration order.
        CADirector(self).start()
        for runtime in state.runtimes:
            RAActor(self, runtime).start()
        if cfg.client_handshakes or cfg.client_stream is not None:
            ClientLoadActor(self).start()
        self.scheduler.run_all()
        state.scheduler_events_processed = self.scheduler.processed_events

    # -- actor callbacks -------------------------------------------------------------

    def open_period(self, period: int, bin_start: float) -> PeriodContext:
        """Create (and register) the shared context for one Δ period."""
        state = self.state
        ctx = PeriodContext(
            period=period,
            bin_start=bin_start,
            pull_time=bin_start + state.config.delta_seconds,
            workload=state.counts[period],
            outage=state.active_fault("ca-outage", period),
            prev_epoch=state.ca.key_epoch,
            prev_root=(
                state.ca.dictionary.signed_root if not state.config.sharded else None
            ),
        )
        self.period_contexts[period] = ctx
        return ctx

    def pull_finished(self, period: int) -> None:
        """Count one agent's completed turn; run ``after_pulls`` on the last.

        Completion counting (rather than a scheduled barrier event) keeps
        the period hooks correct under stagger and jitter: they run inline
        in whichever agent's callback finishes the period, still at the
        period semantics the serial loop had.
        """
        ctx = self.period_contexts[period]
        ctx.pulls_finished += 1
        if ctx.pulls_finished == len(self.state.runtimes):
            for observer in self.observers:
                observer.after_pulls(ctx, self.state)

    def issued_values(self) -> Set[int]:
        """Every issued serial value so far (for absent-probe sampling)."""
        numbered = self.state.numbered
        while self._issued_synced < len(numbered):
            self._issued_set.add(numbered[self._issued_synced][1].value)
            self._issued_synced += 1
        return self._issued_set

    # -- post-run assembly -----------------------------------------------------------

    def _assemble_report(self, duration: int) -> ScenarioReport:
        """Run the closing study phases and build the report."""
        cfg, state = self.config, self.state
        end_time = state.periods[-1][1] + cfg.delta_seconds
        extras: Dict[str, object] = {}
        if cfg.gossip_audit:
            # The audit phase revokes the victim, so it must precede the
            # closing handshake for the rejection check to be meaningful.
            extras["gossip_audit"] = studies.gossip_audit(state, end_time + 1)
        if state.victim is not None:
            studies.final_handshake(state, end_time + 3)
        if cfg.compare_engines:
            extras["engine_comparison"] = studies.compare_engines(state)
        if cfg.baseline and state.victim is not None and state.victim.revoked_at is not None:
            extras["baseline"] = studies.baseline_comparison(state)
        if state.victim is not None:
            extras["victim"] = state.victim.as_dict()
        if cfg.sharded:
            extras["sharded_storage"] = studies.sharded_extras(state, end_time)
        if any(fault.crash for fault in cfg.faults):
            extras["crash_recovery"] = studies.crash_recovery_extras(state)
        if any(fault.kind == "region-outage" for fault in cfg.faults):
            extras["replication"] = studies.region_outage_extras(state)
        if any(fault.kind == "equivocating-ca" for fault in cfg.faults):
            extras["equivocation"] = studies.equivocation_extras(state)
        if cfg.key_rotation_periods:
            extras["key_rotation"] = studies.key_rotation_extras(state)
        if cfg.client_stream is not None:
            extras["soak"] = studies.soak_extras(state)

        return ScenarioReport(
            scenario=cfg.name,
            title=cfg.title,
            summary=cfg.summary,
            config=config_dict(state, duration),
            metrics=collect_metrics(state),
            events=state.events,
            checks=build_checks(state, extras),
            extras=extras,
        )

    def _cleanup(self, parallel: ParallelContext) -> None:
        """Close every store and drop checkpoint scratch directories.

        The durable engine holds open WAL handles (and temp directories
        when no explicit path was configured); a scenario run must not leak
        them even when a study phase raises.  Agent closes are blocking
        file I/O, so they ride the I/O pool when one is configured.
        """
        state = self.state
        if state is None:
            return
        parallel.run_io([runtime.agent.close for runtime in state.runtimes])
        state.ca.close()
        if state.oracle is not None:
            state.oracle.close()
        for directory in state.checkpoint_dirs:
            shutil.rmtree(directory, ignore_errors=True)
