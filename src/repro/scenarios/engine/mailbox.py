"""Per-agent mailboxes: how the fleet's actors talk to each other.

The CA director posts a ``head-published`` message to every RA's mailbox
when it publishes, and the client-load actor posts ``client-batch``
messages mid-period.  An RA drains its mailbox when its pull event fires —
so an RA that misses pulls (restart fault, crash) visibly accumulates a
backlog, which the report surfaces as ``metrics.fleet.mailbox_depth_max``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class Message:
    """One mailbox entry: a kind, the simulated post time, and a payload."""

    kind: str
    posted_at: float
    payload: Dict[str, object] = field(default_factory=dict)


class Mailbox:
    """An unbounded FIFO queue with high-watermark depth accounting."""

    def __init__(self, owner: str) -> None:
        """Create the mailbox for the agent named ``owner``."""
        self.owner = owner
        self._queue: List[Message] = []
        self.max_depth = 0

    def post(self, message: Message) -> None:
        """Append a message and update the depth high-watermark."""
        self._queue.append(message)
        self.max_depth = max(self.max_depth, len(self._queue))

    def drain(self) -> List[Message]:
        """Remove and return every queued message, oldest first."""
        messages = self._queue
        self._queue = []
        return messages

    def depth(self) -> int:
        """The number of currently queued messages."""
        return len(self._queue)
