"""The discrete-event fleet engine behind every scenario run.

This package is the event-driven successor of the serial ``_run_period``
loop that used to live in ``repro.scenarios.runner``.  The moving parts:

* :mod:`~repro.scenarios.engine.state` — the mutable :class:`RunState` all
  actors and observers share, plus the per-agent and victim runtimes;
* :mod:`~repro.scenarios.engine.mailbox` — per-agent mailboxes (head
  announcements, client handshake batches) with depth accounting;
* :mod:`~repro.scenarios.engine.actors` — the CA director, RA pull actors,
  and the client-load actor, each scheduling itself on a shared
  :class:`repro.net.EventScheduler`;
* :mod:`~repro.scenarios.engine.observers` — study phases and fault
  injection as ordered engine hooks instead of inline branches;
* :mod:`~repro.scenarios.engine.links` — per-RA uplink shapes drawn from
  :class:`repro.net.Link` profiles;
* :mod:`~repro.scenarios.engine.parallel` — opt-in process/thread pools for
  Ed25519 batch verification and durable-WAL I/O;
* :mod:`~repro.scenarios.engine.core` — the :class:`FleetEngine`
  orchestrator; :mod:`~repro.scenarios.engine.runner` — the public
  :class:`ScenarioRunner` facade.

With every concurrency knob at its default the engine reproduces the
serial runner's reports verdict-for-verdict; the knobs
(``fleet_size``, ``pull_stagger_seconds``, ``pull_jitter_seconds``,
``link_profile``, ``parallelism``, ``client_handshakes``) unlock the
contention scenarios described in docs/SCENARIOS.md.
"""

from repro.scenarios.engine.core import FleetEngine
from repro.scenarios.engine.runner import ScenarioRunner, run_scenario

__all__ = ["FleetEngine", "ScenarioRunner", "run_scenario"]
