"""Opt-in executors for the run's embarrassingly parallel work.

Two work classes genuinely parallelize inside a scenario run:

* **Ed25519 batch verification** — pure-Python verification costs
  milliseconds per signature; chunks of independent ``(key, message,
  signature)`` triples can verify in worker *processes* (the GIL makes
  threads useless for this CPU-bound work).  The context installs its
  executor into :func:`repro.crypto.signing.set_batch_executor` for the
  duration of the run.
* **Durable-WAL I/O** — closing/checkpointing many agents' durable stores
  is blocking file I/O, which *threads* overlap fine.

``parallelism="serial"`` (the default) creates no pools at all, so every
existing scenario's wall-clock profile and verdicts are untouched.  The
verdict stream is identical in every mode — executors only change
wall-clock — which the parallelism-equivalence test pins.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

from repro.crypto import signing

#: Worker counts kept deliberately small: scenario runs are short-lived and
#: pool startup (especially process fork) must not dominate them.
_PROCESS_WORKERS = 4
_IO_WORKERS = 4


class ParallelContext:
    """The run-scoped executor pair behind the ``parallelism`` config knob.

    Use as a context manager around the whole run; ``__exit__`` always
    uninstalls the signing executor and shuts the pools down, so a crashed
    study phase cannot leak worker processes into the next scenario.
    """

    def __init__(self, mode: str) -> None:
        """Prepare (but do not yet start) executors for ``mode``."""
        self.mode = mode
        self._signing_pool = None
        self._io_pool: Optional[ThreadPoolExecutor] = None

    def __enter__(self) -> "ParallelContext":
        """Start the pools for the chosen mode and install the signing executor."""
        if self.mode == "thread":
            self._signing_pool = ThreadPoolExecutor(max_workers=_IO_WORKERS)
            self._io_pool = self._signing_pool
        elif self.mode == "process":
            self._signing_pool = ProcessPoolExecutor(max_workers=_PROCESS_WORKERS)
            self._io_pool = ThreadPoolExecutor(max_workers=_IO_WORKERS)
        if self._signing_pool is not None:
            signing.set_batch_executor(self._signing_pool)
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Uninstall the signing executor and shut both pools down."""
        signing.set_batch_executor(None)
        if self._signing_pool is not None:
            self._signing_pool.shutdown(wait=True)
        if self._io_pool is not None and self._io_pool is not self._signing_pool:
            self._io_pool.shutdown(wait=True)
        self._signing_pool = None
        self._io_pool = None

    def run_io(self, thunks: Sequence[Callable[[], object]]) -> List[object]:
        """Run blocking-I/O thunks, overlapped on the thread pool when one exists.

        Results come back in submission order either way, so callers see the
        same behaviour serial and parallel.
        """
        if self._io_pool is None:
            return [thunk() for thunk in thunks]
        futures = [self._io_pool.submit(thunk) for thunk in thunks]
        return [future.result() for future in futures]
