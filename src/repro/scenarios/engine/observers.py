"""Engine observers: study phases and fault injection as ordered hooks.

The serial runner interleaved fault injection, adversarial probes, gossip,
and session upkeep inline in its period loop.  The engine expresses each as
an observer with two hook points:

* :meth:`EngineObserver.after_ca_duty` — fires right after the CA's
  publication step of a period, before any RA pulls (rotation recording,
  head archiving, the four fault injectors, replica snapshots);
* :meth:`EngineObserver.after_pulls` — fires once every RA has taken its
  turn for the period (replay integrity comparison, the gossip ring,
  rotation probes, sharded storage sampling, long-lived session upkeep).

Observers are registered in a fixed order matching the serial loop, so the
event timeline and every derived verdict stay pinned.
"""

from __future__ import annotations

import random
import resource
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.dictionary.signed_root import SignedRoot
from repro.ritm import GossipExchange
from repro.ritm.ca_service import head_path
from repro.scenarios.config import FaultSpec
from repro.scenarios.engine.state import RunState
from repro.scenarios.faults import (
    equivocate_at_edges,
    forge_head_with_retired_key,
    replay_captured_head,
    tamper_latest_batch,
)


@dataclass
class PeriodContext:
    """Everything the observers need to know about one Δ period."""

    period: int
    bin_start: float
    #: The nominal pull time (``bin_start + Δ``); staggered/jittered agents
    #: pull later, but period-scoped hooks key off the nominal time so the
    #: serial runner's numbers are reproduced exactly.
    pull_time: float
    workload: Tuple[int, bool, str]
    outage: Optional[FaultSpec] = None
    prev_epoch: int = 0
    prev_root: Optional[SignedRoot] = None
    replay_active: bool = False
    forgery: Optional[FaultSpec] = None
    #: Replica snapshots taken before the pulls of a replay window.
    snapshots: Dict[str, Tuple[int, bytes]] = field(default_factory=dict)
    #: How many agents have completed their turn this period.
    pulls_finished: int = 0


class EngineObserver:
    """Base class: both hooks default to doing nothing."""

    def after_ca_duty(self, ctx: PeriodContext, state: RunState) -> None:
        """Hook fired after the CA's publication step, before any pull."""

    def after_pulls(self, ctx: PeriodContext, state: RunState) -> None:
        """Hook fired once every agent finished its turn for the period."""


class RotationRecorder(EngineObserver):
    """Log CA key rotations and remember the retired epoch's root.

    The pre-rotation signed root — the last statement the outgoing key ever
    signed — is what the overlap probes re-verify later: it must stay
    acceptable until the overlap window closes and not a second longer
    (:class:`RotationProber`).
    """

    def after_ca_duty(self, ctx: PeriodContext, state: RunState) -> None:
        """Record a rotation when the CA's key epoch advanced this period."""
        if state.ca.key_epoch <= ctx.prev_epoch:
            return
        overlap = state.ritm_config.key_overlap_seconds
        state.rotations.append(
            {
                "period": ctx.period,
                "epoch": state.ca.key_epoch,
                "rotated_at": ctx.bin_start,
                "overlap_until": ctx.bin_start + overlap,
                "retired_root": ctx.prev_root,
                "probed_inside": False,
                "probed_after": False,
            }
        )
        state.event(
            ctx.period,
            "key-rotation",
            f"CA advanced to signing-key epoch {state.ca.key_epoch} "
            f"(outgoing key acceptable for {overlap:.0f}s more)",
        )


class HeadArchiver(EngineObserver):
    """Keep the raw bytes of every head publication for the replay fault."""

    def after_ca_duty(self, ctx: PeriodContext, state: RunState) -> None:
        """Archive the current head object when a replay fault is configured."""
        if not any(f.kind == "replayed-head" for f in state.config.faults):
            return
        path = head_path(state.ca.name)
        if state.cdn.origin.exists(path):
            state.head_archive.append(state.cdn.origin.fetch(path).content)


class FaultInjector(EngineObserver):
    """Inject the CDN/CA faults scheduled for this period.

    Order matters and matches the serial loop: tampered batch, replayed
    head, retired-key forgery, then the equivocation plant.
    """

    def after_ca_duty(self, ctx: PeriodContext, state: RunState) -> None:
        """Run every fault injector whose window opens this period."""
        period, bin_start = ctx.period, ctx.bin_start
        tamper = state.active_fault("tampered-batch", period)
        if tamper is not None and period == tamper.at_period:
            detail = tamper_latest_batch(state.ca, state.cdn, bin_start)
            state.event(
                period, "tampered-batch", detail or "no published batch to tamper with"
            )

        replay = state.active_fault("replayed-head", period)
        ctx.replay_active = (
            replay is not None and period == replay.at_period and bool(state.head_archive)
        )
        if replay is not None and period == replay.at_period:
            if state.head_archive:
                detail = replay_captured_head(
                    state.ca.name, state.cdn, state.head_archive[0], bin_start
                )
                state.event(period, "replayed-head", detail)
            else:
                state.event(period, "replayed-head", "no archived head to replay")

        forgery = state.active_fault("retired-key-forgery", period)
        ctx.forgery = forgery
        if forgery is not None and period == forgery.at_period:
            detail = forge_head_with_retired_key(state.ca, state.cdn, bin_start)
            if detail is not None:
                state.forgery_attempts += 1
            state.event(
                period, "retired-key-forgery", detail or "no retired key available yet"
            )

        equivocation = state.active_fault("equivocating-ca", period)
        if equivocation is not None and period == equivocation.at_period:
            self._plant_equivocation(ctx, state, equivocation)

        # Region outage: fail the region's CDN presence when the window
        # opens and restore it when the window closes.  Both transitions
        # happen at CA-duty time — before any pull of the period — so the
        # first post-outage pulls already see the restored edges.
        for fault in state.config.faults:
            if fault.kind != "region-outage":
                continue
            region = fault.geo_region()
            if period == fault.at_period:
                state.cdn.fail_region(region)
                state.event(
                    period,
                    "region-failed",
                    f"region {region.value} down: edges offline, "
                    f"traffic fails over to neighbours",
                )
            elif period == fault.at_period + fault.duration_periods:
                state.cdn.restore_region(region)
                state.event(
                    period,
                    "region-restored",
                    f"region {region.value} back: edges cold, RAs restart",
                )

    @staticmethod
    def _plant_equivocation(
        ctx: PeriodContext, state: RunState, fault: FaultSpec
    ) -> None:
        """Stage the equivocating-CA fault against the targeted agent's region."""
        target_name = fault.agent or state.runtimes[-1].spec_name
        target = next(r for r in state.runtimes if r.spec_name == target_name)
        planted = equivocate_at_edges(
            state.ca,
            state.cdn,
            target.location.region,
            state.batches,
            ctx.bin_start,
            ttl_seconds=2 * state.config.delta_seconds,
        )
        if planted is None:
            state.event(
                ctx.period, "equivocating-ca", "nothing revoked yet — no forgery planted"
            )
            return
        state.hidden_serial = planted["hidden_serial"]
        state.equivocation = {
            "period": ctx.period,
            "targeted_agent": target_name,
            "hidden_serial": str(planted["hidden_serial"]),
            "conflicting_size": planted["conflicting_size"],
            "forged_root": planted["forged_root"][:16],
        }
        state.event(ctx.period, "equivocating-ca", planted["detail"])


class ReplaySnapshotter(EngineObserver):
    """Snapshot every replica before the pulls of a replay window.

    The zero-mutation property (a rejected replay leaves size and root
    untouched) is checked directly by :class:`ReplayIntegrityProbe`, not
    inferred from error counts.
    """

    def after_ca_duty(self, ctx: PeriodContext, state: RunState) -> None:
        """Record ``(size, root)`` per replica when a replay is staged."""
        if not ctx.replay_active or state.config.sharded:
            return
        for runtime in state.runtimes:
            replica = runtime.agent.replica_for(state.ca.name)
            if replica is not None and replica.signed_root is not None:
                ctx.snapshots[runtime.spec_name] = (
                    replica.size,
                    replica.signed_root.root,
                )


class ReplayIntegrityProbe(EngineObserver):
    """Compare post-pull replicas against the pre-pull replay snapshots."""

    def after_pulls(self, ctx: PeriodContext, state: RunState) -> None:
        """Count probed replicas and any that mutated across the replay."""
        if not ctx.replay_active or state.config.sharded:
            return
        for runtime in state.runtimes:
            before = ctx.snapshots.get(runtime.spec_name)
            replica = runtime.agent.replica_for(state.ca.name)
            if before is None or replica is None or replica.signed_root is None:
                continue
            state.replay_probes += 1
            if (replica.size, replica.signed_root.root) != before:
                state.replay_mutations += 1


class GossipRing(EngineObserver):
    """One round per period of the always-on cross-RA gossip ring (§V).

    Every period each adjacent pair of agents (closed into a ring when the
    fleet has more than two) exchanges observed roots; any conflict — same
    CA, same size, different root — yields signed misbehavior reports
    within the same period it was planted.  With three or more pairs the
    ring's starting pair rotates via the run's seeded RNG, so expanded
    fleets don't always gossip in declaration order (exchange outcomes are
    order-independent; only event attribution order varies).
    """

    def __init__(self, rng: random.Random) -> None:
        """Bind the ring to the run's seeded gossip RNG."""
        self._rng = rng

    def after_pulls(self, ctx: PeriodContext, state: RunState) -> None:
        """Run one ring round and record any misbehavior reports."""
        runtimes = state.runtimes
        if len(runtimes) < 2 or state.config.sharded:
            return
        pairs = list(zip(runtimes, runtimes[1:]))
        if len(runtimes) > 2:
            pairs.append((runtimes[-1], runtimes[0]))
        if len(pairs) > 1:
            rotation = self._rng.randrange(len(pairs))
            pairs = pairs[rotation:] + pairs[:rotation]
        exchange = GossipExchange()
        new_reports = []
        for left, right in pairs:
            new_reports.extend(
                exchange.exchange(left.agent.consistency, right.agent.consistency)
            )
        if not new_reports:
            return
        if state.first_detection_period is None:
            state.first_detection_period = ctx.period
        state.misbehavior_reports.extend(new_reports)
        state.event(
            ctx.period,
            "misbehavior-detected",
            f"gossip round produced {len(new_reports)} misbehavior report(s)",
        )


class RotationProber(EngineObserver):
    """Differentially re-verify retired epochs' roots, cached vs uncached.

    For each recorded rotation the retired root is verified twice — once
    through the first agent's :class:`~repro.perf.root_cache.VerifiedRootCache`
    and once directly against the keyring's currently-acceptable keys — at
    most once inside the overlap window and once after it closes.  The
    derived checks assert accept-inside / reject-after and that the cached
    verdict never diverges from the uncached one.
    """

    def after_pulls(self, ctx: PeriodContext, state: RunState) -> None:
        """Probe each rotation record once per overlap phase."""
        if not state.config.key_rotation_periods or state.config.sharded:
            return
        runtime = state.runtimes[0]
        keyring = runtime.agent.keyring_for(state.ca.name)
        if keyring is None:
            return
        for record in state.rotations:
            root = record["retired_root"]
            if root is None:
                continue
            inside = ctx.pull_time <= record["overlap_until"]
            probed_key = "probed_inside" if inside else "probed_after"
            if record[probed_key]:
                continue
            record[probed_key] = True
            cached = runtime.agent.root_cache.verify(root, keyring)
            uncached = any(
                key.verify(root.payload(), root.signature)
                for key in keyring.acceptable_keys()
            )
            state.rotation_probes.append(
                {
                    "period": ctx.period,
                    "epoch": record["epoch"],
                    "inside_overlap": inside,
                    "cached_verdict": cached,
                    "uncached_verdict": uncached,
                }
            )


class ShardedStorageRecorder(EngineObserver):
    """Append one sample per period to the sharded-vs-baseline storage timeline."""

    def after_pulls(self, ctx: PeriodContext, state: RunState) -> None:
        """Sample CA/RA/baseline storage at the period's pull time."""
        if not state.config.sharded:
            return
        runtime = state.runtimes[0]
        replicas = runtime.agent.shard_replicas(state.ca.name)
        state.storage_timeline.append(
            {
                "period": ctx.period,
                "time": ctx.pull_time,
                "ca_storage_bytes": state.ca.storage_size_bytes(),
                "ca_shard_count": state.ca.shards.shard_count,
                "ra_storage_bytes": sum(
                    replica.storage_size_bytes() for replica in replicas.values()
                ),
                "ra_shard_count": len(replicas),
                "baseline_storage_bytes": state.oracle.storage_size_bytes(),
            }
        )


class SoakRecorder(EngineObserver):
    """Append one memory/throughput sample per period of a soak run.

    Registered only for ``client_stream`` scenarios.  Each sample mixes
    deterministic counters (handshakes served, revocations, CA/RA storage,
    the stream generator's own byte accounting) with informational process
    measurements (wall-clock seconds, ``ru_maxrss``).  Verdict checks must
    only consume the deterministic fields; the process fields exist for the
    exported timeline artifact CI uploads.
    """

    def __init__(self) -> None:
        """Start the wall clock lazily on the first period sample."""
        self._wall_start: Optional[float] = None

    def after_pulls(self, ctx: PeriodContext, state: RunState) -> None:
        """Sample counters, storage, and memory at the period's pull time."""
        if state.client_stream is None:
            return
        if self._wall_start is None:
            self._wall_start = time.perf_counter()
        stream = state.client_stream
        replica_bytes = 0
        for runtime in state.runtimes:
            replica = runtime.agent.replica_for(state.ca.name)
            if replica is not None:
                replica_bytes += replica.storage_size_bytes()
        state.soak_timeline.append(
            {
                "period": ctx.period,
                "time": ctx.pull_time,
                "handshakes_served": state.handshakes_served,
                "revocations_issued": state.revocations_issued,
                "ca_storage_bytes": state.ca.storage_size_bytes(),
                "ra_storage_bytes": replica_bytes,
                "stream_peak_batch_bytes": stream.peak_batch_bytes,
                "stream_footprint_bytes": stream.footprint_bytes(),
                "wall_seconds": round(time.perf_counter() - self._wall_start, 6),
                "max_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            }
        )


class SessionKeeper(EngineObserver):
    """Deliver server traffic on the long-lived session and enforce 2Δ."""

    def after_pulls(self, ctx: PeriodContext, state: RunState) -> None:
        """Advance the victim's session clock and enforce freshness."""
        victim = state.victim
        if victim is None or victim.deployment is None:
            return
        if victim.detected_at is not None:
            return
        deployment, clock = victim.deployment, victim.clock
        clock.advance(ctx.pull_time - clock.now())
        deployment.deliver_from_server(b"keepalive")
        client = deployment.client
        if client.is_connection_usable:
            client.enforce_freshness(clock.now())
        if not client.is_connection_usable:
            victim.detected_at = clock.now()
            reason = client.rejection.value if client.rejection else "unknown"
            detail = f"session torn down: {reason}"
            if victim.revoked_at is not None:
                detail += (
                    f" ({victim.detected_at - victim.revoked_at:.0f}s after revocation)"
                )
            state.event(ctx.period, "session-teardown", detail)
