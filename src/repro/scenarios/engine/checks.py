"""Pass/fail check builders for the fleet engine's reports.

The generic and fault/study-specific checks are direct ports of the
serial runner's ``_build_checks`` family over
:class:`~repro.scenarios.engine.state.RunState`, keeping every existing
scenario's verdict stream pinned.  On top of those, :func:`fleet_checks`
derives contention assertions from the concurrency knobs themselves —
client-load service, stagger flattening, head-of-line isolation under a
stalled uplink, thundering-herd overlap — so the three new scenarios get
their verdicts without bespoke per-scenario code.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ritm.client import RejectionReason
from repro.scenarios.config import FaultSpec
from repro.scenarios.engine import studies
from repro.scenarios.engine.links import profile_name_for_agent
from repro.scenarios.engine.metrics import peak_concurrency
from repro.scenarios.engine.state import RunState
from repro.scenarios.report import ScenarioCheck


def build_checks(state: RunState, extras: Dict[str, object]) -> List[ScenarioCheck]:
    """The generic and fault/study-specific pass/fail assertions."""
    cfg, ca, victim, runtimes = state.config, state.ca, state.victim, state.runtimes
    checks: List[ScenarioCheck] = []
    pulls = sum(len(r.pull_results()) for r in runtimes)
    bytes_downloaded = sum(r.total_bytes_downloaded() for r in runtimes)
    checks.append(
        ScenarioCheck(
            "dissemination-active",
            pulls > 0 and bytes_downloaded > 0,
            f"{pulls} pulls, {bytes_downloaded} bytes",
        )
    )
    equivocation_targets = {
        fault.agent or runtimes[-1].spec_name
        for fault in cfg.faults
        if fault.kind == "equivocating-ca"
    }
    converged_agents = [
        r
        for r in runtimes
        if not (cfg.gossip_audit and r is runtimes[-1])
        and r.spec_name not in equivocation_targets
    ]
    if cfg.sharded:
        converged = all(
            studies.shard_replicas_converged(state, r) for r in converged_agents
        )
    else:
        converged = all(
            (r.agent.replica_for(ca.name).size if r.agent.replica_for(ca.name) else 0)
            == ca.dictionary.size
            for r in converged_agents
        )
    checks.append(
        ScenarioCheck(
            "replicas-converged",
            converged,
            f"CA size {ca.total_revocations()}",
        )
    )
    if cfg.sharded and "sharded_storage" in extras:
        checks.extend(sharded_checks(extras["sharded_storage"]))
    if victim is not None:
        checks.append(
            ScenarioCheck(
                "initial-handshake-accepted",
                victim.initial_accepted,
                f"status {victim.status_size_bytes} B",
            )
        )
        if victim.revoked_at is not None:
            checks.append(
                ScenarioCheck(
                    "revoked-handshake-rejected",
                    not victim.final_accepted
                    and victim.final_rejection
                    == RejectionReason.CERTIFICATE_REVOKED.value,
                    victim.final_rejection,
                )
            )
    if cfg.long_lived_session and victim is not None:
        bound = cfg.attack_window_seconds()
        detected = victim.detected_at is not None and victim.revoked_at is not None
        lag = (victim.detected_at - victim.revoked_at) if detected else float("inf")
        checks.append(
            ScenarioCheck(
                "mid-session-detection-within-bound",
                detected and lag <= bound,
                f"lag {lag:.0f}s vs bound {bound}s" if detected else "not detected",
            )
        )
    if any(fault.kind == "tampered-batch" for fault in cfg.faults):
        resyncs = sum(
            sum(pull.resyncs for pull in r.pull_results()) for r in runtimes
        )
        checks.append(
            ScenarioCheck(
                "tamper-detected-and-recovered",
                resyncs >= 1 and converged,
                f"{resyncs} resync(s)",
            )
        )
    if any(fault.kind == "replayed-head" for fault in cfg.faults):
        replays = sum(
            sum(pull.replays_rejected for pull in r.pull_results())
            for r in runtimes
        )
        checks.append(
            ScenarioCheck(
                "replayed-head-rejected",
                replays >= 1,
                f"{replays} replayed publication(s) rejected",
            )
        )
        checks.append(
            ScenarioCheck(
                "replica-unmutated-by-replay",
                state.replay_probes > 0 and state.replay_mutations == 0,
                f"{state.replay_probes} replica snapshot(s) across the replay "
                f"window, {state.replay_mutations} mutated",
            )
        )
    if any(fault.kind == "retired-key-forgery" for fault in cfg.faults):
        checks.append(
            ScenarioCheck(
                "retired-key-forgery-rejected",
                state.forgery_attempts >= 1
                and state.forgery_errors >= 1
                and converged,
                f"{state.forgery_attempts} forged head(s) published, "
                f"{state.forgery_errors} pull error(s), replicas recovered",
            )
        )
    if "key_rotation" in extras:
        checks.extend(rotation_checks(extras["key_rotation"]))
    if "equivocation" in extras:
        fault = next(f for f in cfg.faults if f.kind == "equivocating-ca")
        checks.extend(equivocation_checks(extras["equivocation"], fault))
    restart_faults = [f for f in cfg.faults if f.kind == "ra-restart"]
    if restart_faults:
        targets = sorted(
            {f.agent or runtimes[-1].spec_name for f in restart_faults}
        )
        degraded = [r for r in runtimes if r.spec_name in targets]
        healthy = [r for r in runtimes if r.spec_name not in targets]
        bound = cfg.attack_window_seconds()
        checks.append(
            ScenarioCheck(
                "missed-pulls-extend-attack-window",
                all(r.max_lag_seconds > bound for r in degraded),
                ", ".join(
                    f"{r.spec_name} worst lag {r.max_lag_seconds:.0f}s"
                    for r in degraded
                )
                + f" vs bound {bound}s",
            )
        )
        if healthy:
            worst_healthy = max(r.max_lag_seconds for r in healthy)
            checks.append(
                ScenarioCheck(
                    "healthy-agents-within-bound",
                    worst_healthy <= bound,
                    f"worst healthy lag {worst_healthy:.1f}s",
                )
            )
    if "crash_recovery" in extras:
        checks.extend(crash_checks(extras["crash_recovery"]))
    if "soak" in extras:
        checks.extend(soak_checks(extras["soak"]))
    if "replication" in extras:
        checks.extend(
            region_outage_checks(extras["replication"], cfg.attack_window_seconds())
        )
    if cfg.gossip_audit and "gossip_audit" in extras:
        audit = extras["gossip_audit"]
        checks.append(
            ScenarioCheck(
                "equivocation-evidence-valid",
                bool(audit["evidence_valid_under_ca_key"]),
                f"{audit['misbehavior_reports']} report(s)",
            )
        )
        checks.append(
            ScenarioCheck(
                "targeted-ra-blind-before-gossip",
                not audit["targeted_believes_victim_revoked"],
                f"targeted agent {audit['targeted_agent']}",
            )
        )
    if cfg.compare_engines and "engine_comparison" in extras:
        checks.append(
            ScenarioCheck(
                "engines-agree-on-root",
                bool(extras["engine_comparison"]["roots_agree"]),
                ", ".join(cfg.compare_engines),
            )
        )
    checks.extend(fleet_checks(state))
    return checks


def fleet_checks(state: RunState) -> List[ScenarioCheck]:
    """Contention assertions derived from the concurrency knobs.

    Each group only fires when its knob is set, so the pre-engine
    scenarios (all knobs at defaults) gain no new checks.
    """
    cfg = state.config
    checks: List[ScenarioCheck] = []
    bound = cfg.attack_window_seconds()
    peak = peak_concurrency(state.pull_intervals)

    if cfg.client_handshakes:
        checks.append(
            ScenarioCheck(
                "client-load-served",
                state.handshakes_served == cfg.client_handshakes,
                f"{state.handshakes_served}/{cfg.client_handshakes} handshakes "
                f"served, {state.handshake_roots_verified} sampled root(s) "
                f"re-verified",
            )
        )
    if cfg.client_stream is not None:
        total = cfg.client_stream.events_total
        checks.append(
            ScenarioCheck(
                "client-load-served",
                state.handshakes_served == total,
                f"{state.handshakes_served}/{total} streamed handshakes "
                f"served, {state.handshake_roots_verified} sampled root(s) "
                f"re-verified",
            )
        )

    if cfg.pull_stagger_seconds:
        checks.append(
            ScenarioCheck(
                "stagger-flattens-pull-peak",
                0 < peak < len(state.runtimes),
                f"peak {peak} concurrent pull(s) across "
                f"{len(state.runtimes)} staggered agents",
            )
        )
        checks.append(
            ScenarioCheck(
                "staggered-fleet-within-bound",
                all(r.max_lag_seconds <= bound for r in state.runtimes),
                f"worst lag "
                f"{max((r.max_lag_seconds for r in state.runtimes), default=0.0):.1f}s "
                f"vs bound {bound}s",
            )
        )

    stalled = [
        r
        for index, r in enumerate(state.runtimes)
        if profile_name_for_agent(cfg, r.spec_name, index) == "stalled"
    ]
    if stalled:
        healthy = [r for r in state.runtimes if r not in stalled]
        worst_healthy = max((r.max_lag_seconds for r in healthy), default=0.0)
        checks.append(
            ScenarioCheck(
                "fleet-unblocked-by-slow-ra",
                bool(healthy) and worst_healthy <= bound,
                f"worst healthy lag {worst_healthy:.1f}s vs bound {bound}s "
                f"despite {len(stalled)} stalled agent(s)",
            )
        )
        checks.append(
            ScenarioCheck(
                "slow-ra-out-of-bound",
                all(r.max_lag_seconds > bound for r in stalled),
                ", ".join(
                    f"{r.spec_name} lag {r.max_lag_seconds:.1f}s" for r in stalled
                )
                + f" vs bound {bound}s",
            )
        )

    if cfg.fleet_size and cfg.pull_jitter_seconds and not cfg.pull_stagger_seconds:
        checks.append(
            ScenarioCheck(
                "thundering-herd-overlap",
                peak >= 2,
                f"peak {peak} concurrent pull(s) across "
                f"{len(state.runtimes)} agents",
            )
        )
        checks.append(
            ScenarioCheck(
                "fleet-converged-within-bound",
                all(r.max_lag_seconds <= bound for r in state.runtimes),
                f"worst lag "
                f"{max((r.max_lag_seconds for r in state.runtimes), default=0.0):.1f}s "
                f"vs bound {bound}s",
            )
        )
    return checks


def crash_checks(study: Dict[str, object]) -> List[ScenarioCheck]:
    """Pass/fail assertions derived from the crash-recovery study."""
    checks = [
        ScenarioCheck(
            "crash-verdicts-match-inmemory-oracle",
            study["verdict_mismatches"] == 0 and study["verdicts_checked"] > 0,
            f"{study['verdicts_checked']} verdict(s), "
            f"{study['verdict_mismatches']} mismatch(es)",
        )
    ]
    durable_agents = [
        a for a in study["agents"].values() if a.get("mode") == "durable"
    ]
    if durable_agents:
        checks.append(
            ScenarioCheck(
                "durable-restart-used-checkpoint",
                all(a.get("restored_replicas", 0) >= 1 for a in durable_agents),
                f"{len(durable_agents)} durable agent(s) warm-started",
            )
        )
    comparison = study.get("comparison")
    if comparison is not None:
        checks.append(
            ScenarioCheck(
                "warm-restart-beats-cold-resync",
                comparison["warm_bytes"] < comparison["cold_bytes"]
                and comparison["warm_back_in_bound_at"]
                < comparison["cold_back_in_bound_at"],
                f"warm {comparison['warm_bytes']} B back in bound at "
                f"{comparison['warm_back_in_bound_at']:.3f}s vs cold "
                f"{comparison['cold_bytes']} B at "
                f"{comparison['cold_back_in_bound_at']:.3f}s",
            )
        )
    return checks


def soak_checks(study: Dict[str, object]) -> List[ScenarioCheck]:
    """Pass/fail assertions derived from the soak study (docs/WORKLOADS.md)."""
    memory = study["memory"]
    subsystems = study["subsystems"]
    exercised = (
        bool(subsystems["durable_wal"])
        and bool(subsystems["segment_streaming"])
        and subsystems["segments_applied"] > 0
        and subsystems["proof_cache_hits"] > 0
        and subsystems["root_cache_lookups"] > 0
        and subsystems["handshakes_served"] == study["events_total"]
        and subsystems["handshake_roots_verified"] > 0
        and subsystems["revocations_issued"] > 0
        and subsystems["resyncs"] == 0
    )
    return [
        ScenarioCheck(
            "soak-verdicts-match-oracle",
            study["verdict_mismatches"] == 0 and study["verdicts_checked"] > 0,
            f"{study['verdicts_checked']} verdict(s) across the fleet, "
            f"{study['verdict_mismatches']} mismatch(es)",
        ),
        ScenarioCheck(
            "memory-bounded",
            bool(memory["bounded"]),
            f"peak batch {memory['peak_batch_bytes']} B within "
            f"{memory['batch_budget_bytes']} B; generator footprint "
            f"{memory['footprint_bytes']} B within "
            f"{memory['footprint_budget_bytes']} B for "
            f"{memory['clients']} clients",
        ),
        ScenarioCheck(
            "all-subsystems-exercised",
            exercised,
            f"{subsystems['store_engine']} engine, "
            f"{subsystems['segments_applied']} WAL segment(s) applied, "
            f"{subsystems['proof_cache_hits']} proof-cache hit(s), "
            f"{subsystems['root_cache_lookups']} root-cache lookup(s), "
            f"{subsystems['handshakes_served']} handshake(s), "
            f"{subsystems['revocations_issued']} revocation(s), "
            f"{subsystems['resyncs']} resync(s)",
        ),
    ]


def region_outage_checks(
    study: Dict[str, object], bound: float
) -> List[ScenarioCheck]:
    """Pass/fail assertions derived from the region-outage study."""
    survivors = study["survivors"]
    restored = study["restored_agents"]
    worst_survivor = max(
        (agent["max_lag_seconds"] for agent in survivors.values()), default=0.0
    )
    return [
        ScenarioCheck(
            "peers-absorb-within-2delta",
            bool(survivors) and worst_survivor <= bound,
            f"worst surviving-RA lag {worst_survivor:.1f}s vs bound {bound}s "
            f"through the {study['failed_region']} outage",
        ),
        ScenarioCheck(
            "ca-egress-less-than-N-cold-syncs",
            bool(restored)
            and study["recovery_origin_bytes"] < study["cold_sync_bytes_fleet"],
            f"recovery cost the CA origin {study['recovery_origin_bytes']} B vs "
            f"{study['cold_sync_bytes_fleet']} B for {len(restored)} cold sync(s)",
        ),
        ScenarioCheck(
            "restored-ra-syncs-from-peer",
            bool(restored)
            and all(
                agent.get("segments_from_peer", 0) >= 1
                and agent.get("cold_sync_fallbacks", 0) == 0
                for agent in restored.values()
            ),
            ", ".join(
                f"{name}: {agent.get('segments_from_peer', 0)} segment(s) "
                f"from {agent.get('peer', '?')}"
                for name, agent in restored.items()
            )
            or "no agent restored",
        ),
        ScenarioCheck(
            "verdicts-match-unsharded-oracle",
            study["verdict_mismatches"] == 0 and study["verdicts_checked"] > 0,
            f"{study['verdicts_checked']} verdict(s), "
            f"{study['verdict_mismatches']} mismatch(es)",
        ),
    ]


def rotation_checks(study: Dict[str, object]) -> List[ScenarioCheck]:
    """Pass/fail assertions derived from the key-rotation study."""
    probes = study["probes"]
    inside = [p for p in probes if p["inside_overlap"]]
    after = [p for p in probes if not p["inside_overlap"]]
    epochs = study["agent_key_epochs"].values()
    return [
        ScenarioCheck(
            "key-rotation-learned",
            study["ca_key_epoch"] >= 1
            and study["announcements_learned"] >= 1
            and all(epoch == study["ca_key_epoch"] for epoch in epochs),
            f"CA at epoch {study['ca_key_epoch']}, "
            f"{study['announcements_learned']} announcement(s) learned, "
            f"agent epochs {sorted(epochs)}",
        ),
        ScenarioCheck(
            "retired-key-valid-inside-overlap",
            bool(inside)
            and all(p["cached_verdict"] and p["uncached_verdict"] for p in inside),
            f"{len(inside)} in-overlap probe(s) accepted",
        ),
        ScenarioCheck(
            "retired-key-rejected-after-overlap",
            bool(after)
            and all(
                not p["cached_verdict"] and not p["uncached_verdict"] for p in after
            ),
            f"{len(after)} post-overlap probe(s) rejected",
        ),
        ScenarioCheck(
            "cached-matches-uncached-across-rotation",
            bool(probes)
            and all(p["cached_verdict"] == p["uncached_verdict"] for p in probes),
            f"{len(probes)} probe(s), cache and direct verification agree",
        ),
    ]


def equivocation_checks(
    study: Dict[str, object], fault: FaultSpec
) -> List[ScenarioCheck]:
    """Pass/fail assertions derived from the equivocation study."""
    return [
        ScenarioCheck(
            "equivocation-detected-within-one-round",
            study["detected_period"] == fault.at_period,
            f"planted at period {fault.at_period}, gossip detected it at "
            f"period {study['detected_period']}",
        ),
        ScenarioCheck(
            "equivocation-evidence-valid",
            study["misbehavior_reports"] >= 1
            and bool(study["evidence_valid_under_ca_keyring"])
            and bool(study["reporter_signatures_valid"]),
            f"{study['misbehavior_reports']} signed report(s)",
        ),
        ScenarioCheck(
            "targeted-ra-blind-before-gossip",
            bool(study["targeted_blind"]),
            f"targeted agent {study.get('targeted_agent')} missing serial "
            f"{study.get('hidden_serial')}",
        ),
    ]


def sharded_checks(study: Dict[str, object]) -> List[ScenarioCheck]:
    """Pass/fail assertions derived from the §VIII study results."""
    return [
        ScenarioCheck(
            "ra-storage-reclaimed",
            bool(study["ra_reclaimed_bytes"]) and study["ca_shards_retired"] > 0,
            f"{study['ra_reclaimed_bytes']} B freed across "
            f"{study['ca_shards_retired']} retired shard(s)",
        ),
        ScenarioCheck(
            "verdicts-match-unsharded-oracle",
            study["verdict_mismatches"] == 0 and study["live_serials_checked"] > 0,
            f"{study['live_serials_checked']} live + "
            f"{study['absent_serials_checked']} absent serials, "
            f"{study['verdict_mismatches']} mismatch(es)",
        ),
        ScenarioCheck(
            "read-path-pure-on-unknown-window",
            bool(study["read_path_pure"]),
            "prove() on an uncovered expiry window left shard_count "
            "and storage unchanged",
        ),
        ScenarioCheck(
            "sharded-storage-plateaus",
            bool(study["baseline_monotonic"])
            and study["sharded_final_bytes"] < study["baseline_final_bytes"],
            f"sharded RA ends at {study['sharded_final_bytes']} B vs "
            f"ever-growing baseline {study['baseline_final_bytes']} B",
        ),
    ]
