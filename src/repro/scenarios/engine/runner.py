"""The public entry points to the fleet engine.

:class:`ScenarioRunner` keeps the name and surface the rest of the repo
(CLI, examples, benchmarks, tests) has always used; it now delegates to
:class:`~repro.scenarios.engine.core.FleetEngine` instead of running the
retired lockstep period loop.
"""

from __future__ import annotations

from repro.scenarios.config import ScenarioConfig
from repro.scenarios.engine.core import FleetEngine
from repro.scenarios.report import ScenarioReport


class ScenarioRunner:
    """Executes one scenario configuration and assembles its report."""

    def __init__(self, config: ScenarioConfig) -> None:
        """Bind the runner to a validated scenario config."""
        self.config = config

    def run(self) -> ScenarioReport:
        """Execute the scenario on the fleet engine and return its report."""
        return FleetEngine(self.config).run()


def run_scenario(config: ScenarioConfig, smoke: bool = False) -> ScenarioReport:
    """Run ``config`` (optionally its smoke variant) and return the report."""
    if smoke:
        config = config.smoke()
    return ScenarioRunner(config).run()
