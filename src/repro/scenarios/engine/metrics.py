"""Report metrics and config assembly for the fleet engine.

Ports of the serial runner's ``_collect_metrics``/``_hot_path_metrics``/
``_config_dict`` over :class:`~repro.scenarios.engine.state.RunState`, plus
the new ``metrics.fleet`` block every report now carries: fleet size,
parallelism mode, scheduler throughput, mailbox high-watermarks, and the
pull-overlap measures (overlap factor and peak concurrency) computed by a
sweep over the recorded pull intervals.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.perf import CacheStats
from repro.scenarios.engine.state import RunState
from repro.scenarios.report import FLEET_METRIC_KEYS  # noqa: F401  (re-export)


def overlap_factor(intervals: Sequence[Tuple[float, float]]) -> float:
    """Total pull time divided by the union of the pull intervals.

    1.0 means the fleet's pulls never overlapped (pure serialisation);
    larger values mean genuine concurrency — e.g. 3.0 means that on
    average three pulls were in flight over the busy span.  Zero-length
    unions (no pulls, or all instantaneous) report 0.0.
    """
    if not intervals:
        return 0.0
    total = sum(end - start for start, end in intervals)
    union = 0.0
    cursor = None
    for start, end in sorted(intervals):
        if cursor is None or start > cursor:
            union += end - start
            cursor = end
        elif end > cursor:
            union += end - cursor
            cursor = end
    return total / union if union > 0.0 else 0.0


def peak_concurrency(intervals: Sequence[Tuple[float, float]]) -> int:
    """The maximum number of pulls simultaneously in flight (sweep line)."""
    points: List[Tuple[float, int]] = []
    for start, end in intervals:
        if end > start:
            points.append((start, 1))
            points.append((end, -1))
    # Ends sort before starts at the same instant, so back-to-back pulls
    # do not count as overlapping.
    points.sort(key=lambda point: (point[0], point[1]))
    peak = current = 0
    for _, delta in points:
        current += delta
        peak = max(peak, current)
    return peak


def fleet_metrics(state: RunState) -> Dict[str, object]:
    """The ``metrics.fleet`` block: engine and contention accounting."""
    per_agent_depth = {
        runtime.spec_name: runtime.mailbox.max_depth for runtime in state.runtimes
    }
    return {
        "fleet_size": len(state.runtimes),
        "parallelism": state.config.parallelism,
        "scheduler_events_processed": state.scheduler_events_processed,
        "mailbox_depth_max": max(per_agent_depth.values(), default=0),
        "per_agent_mailbox_depth": per_agent_depth,
        "overlap_factor": round(overlap_factor(state.pull_intervals), 4),
        "peak_concurrent_pulls": peak_concurrency(state.pull_intervals),
        "handshakes_served": state.handshakes_served,
    }


def hot_path_metrics(state: RunState) -> Dict[str, object]:
    """Aggregate the verification-engine cache counters across the fleet.

    One section per cache layer (see docs/PERFORMANCE.md): the agents'
    Merkle proof caches, their verified-root caches, and the CDN edges'
    object caches — each in the uniform :class:`CacheStats` shape.
    """
    sections = {
        "proof_cache": [r.agent.proof_cache.stats for r in state.runtimes],
        "root_cache": [r.agent.root_cache.stats for r in state.runtimes],
        "edge_object_cache": [e.cache_stats for e in state.cdn.all_edges()],
    }
    metrics: Dict[str, object] = {}
    for name, stats_list in sections.items():
        total = CacheStats()
        for stats in stats_list:
            total.hits += stats.hits
            total.misses += stats.misses
            total.evictions += stats.evictions
            total.invalidations += stats.invalidations
        metrics[name] = total.as_dict()
    return metrics


def collect_metrics(state: RunState) -> Dict[str, object]:
    """Aggregate dissemination, dictionary, hot-path, attack-window, and
    fleet metrics."""
    ca = state.ca
    pulls = bytes_downloaded = freshness = issuances = serials = resyncs = errors = 0
    root_cache_hits = root_signatures_verified = 0
    stale_heads = replays = rotations_learned = 0
    segments_applied = segments_from_peer = segment_bytes = 0
    peer_syncs = cold_fallbacks = segments_rejected = 0
    latencies: List[float] = []
    per_agent: Dict[str, Dict[str, object]] = {}
    for runtime in state.runtimes:
        history = runtime.pull_results()
        pulls += len(history)
        bytes_downloaded += runtime.total_bytes_downloaded()
        latencies.extend(pull.latency_seconds for pull in history)
        freshness += sum(pull.freshness_applied for pull in history)
        issuances += sum(pull.issuances_applied for pull in history)
        serials += sum(pull.serials_applied for pull in history)
        resyncs += sum(pull.resyncs for pull in history)
        errors += sum(len(pull.errors) for pull in history)
        root_cache_hits += sum(pull.root_cache_hits for pull in history)
        root_signatures_verified += sum(
            pull.root_signatures_verified for pull in history
        )
        stale_heads += sum(pull.stale_heads_ignored for pull in history)
        replays += sum(pull.replays_rejected for pull in history)
        rotations_learned += sum(pull.key_rotations_applied for pull in history)
        segments_applied += sum(pull.segments_applied for pull in history)
        segments_from_peer += sum(pull.segments_from_peer for pull in history)
        segment_bytes += sum(pull.segment_bytes_downloaded for pull in history)
        peer_syncs += sum(pull.peer_syncs for pull in history)
        cold_fallbacks += sum(pull.cold_sync_fallbacks for pull in history)
        segments_rejected += sum(pull.segments_rejected for pull in history)
        if state.config.sharded:
            replicas = runtime.agent.shard_replicas(ca.name)
            per_agent[runtime.spec_name] = {
                "size": sum(replica.size for replica in replicas.values()),
                "storage_bytes": sum(
                    replica.storage_size_bytes() for replica in replicas.values()
                ),
                "shard_count": len(replicas),
                "missed_pulls": runtime.missed_pulls,
                "max_lag_seconds": round(runtime.max_lag_seconds, 3),
            }
        else:
            replica = runtime.agent.replica_for(ca.name)
            per_agent[runtime.spec_name] = {
                "size": replica.size if replica else 0,
                "storage_bytes": replica.storage_size_bytes() if replica else 0,
                "missed_pulls": runtime.missed_pulls,
                "max_lag_seconds": round(runtime.max_lag_seconds, 3),
            }
    return {
        "dissemination": {
            "pulls": pulls,
            "bytes_downloaded": bytes_downloaded,
            "average_pull_latency_seconds": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "freshness_applied": freshness,
            "issuances_applied": issuances,
            "serials_applied": serials,
            "resyncs": resyncs,
            "errors": errors,
            "root_cache_hits": root_cache_hits,
            "root_signatures_verified": root_signatures_verified,
            "stale_heads_ignored": stale_heads,
            "replays_rejected": replays,
            "key_rotations_applied": rotations_learned,
        },
        "hot_path": hot_path_metrics(state),
        "dictionary": {
            "ca_size": ca.total_revocations(),
            "revocations_issued": state.revocations_issued,
            "issuance_batches": ca.issuance_count(),
        },
        **(
            {
                "sharding": {
                    "ca_shard_count": ca.shards.shard_count,
                    "ca_shards_retired": ca.shards.retired_count,
                    "ca_reclaimed_bytes": ca.shards.reclaimed_storage_bytes,
                    "ra_shards_pruned": sum(
                        r.agent.stats.shard_replicas_pruned for r in state.runtimes
                    ),
                    "ra_pruned_entries": sum(
                        r.agent.pruned_revocations for r in state.runtimes
                    ),
                    "ra_reclaimed_bytes": sum(
                        r.agent.reclaimed_storage_bytes for r in state.runtimes
                    ),
                }
            }
            if state.config.sharded
            else {}
        ),
        **(
            {
                "replication": {
                    "segments_published": ca.replication.segments_published,
                    "segments_applied": segments_applied,
                    "segments_from_peer": segments_from_peer,
                    "segment_bytes_downloaded": segment_bytes,
                    "peer_syncs": peer_syncs,
                    "cold_sync_fallbacks": cold_fallbacks,
                    "segments_rejected": segments_rejected,
                }
            }
            if (
                any(f.kind == "region-outage" for f in state.config.faults)
                or state.config.segment_streaming
            )
            else {}
        ),
        "attack_window": {
            "bound_seconds": state.config.attack_window_seconds(),
            "max_lag_seconds": round(
                max((r.max_lag_seconds for r in state.runtimes), default=0.0), 3
            ),
            "per_agent": {
                runtime.spec_name: round(runtime.max_lag_seconds, 3)
                for runtime in state.runtimes
            },
        },
        "agents": per_agent,
        "fleet": fleet_metrics(state),
    }


def config_dict(state: RunState, duration: int) -> Dict[str, object]:
    """The config section of the report.

    The long-standing keys are byte-pinned for the twelve pre-engine
    scenarios; a ``fleet`` sub-dict is appended only when at least one
    concurrency knob departs from its default, so legacy reports are
    untouched while the contention scenarios document their shape.
    """
    cfg = state.config
    base: Dict[str, object] = {
        "delta_seconds": cfg.delta_seconds,
        "duration_periods": duration,
        "store_engine": cfg.store_engine,
        "agents": [f"{a.name}@{a.region}" for a in cfg.agents],
        "faults": [
            f"{f.kind}@{f.at_period}+{f.duration_periods}"
            + (f"({f.region})" if f.region else "")
            for f in cfg.faults
        ],
        "workload": cfg.workload.kind,
        "victim_host": cfg.victim_host,
        "attack_window_bound_seconds": cfg.attack_window_seconds(),
        "sharded": cfg.sharded,
        **(
            {
                "shard_width_periods": cfg.shard_width_periods,
                "cert_lifetime_periods": cfg.cert_lifetime_periods,
                "prune_every_periods": cfg.prune_every_periods,
            }
            if cfg.sharded
            else {}
        ),
        **(
            {
                "key_rotation_periods": cfg.key_rotation_periods,
                "key_overlap_periods": cfg.key_overlap_periods,
            }
            if cfg.key_rotation_periods
            else {}
        ),
        "tags": list(cfg.tags),
    }
    if cfg.segment_streaming:
        base["segment_streaming"] = True
    fleet_active = bool(
        cfg.fleet_size
        or cfg.pull_stagger_seconds
        or cfg.pull_jitter_seconds
        or cfg.link_profile
        or cfg.link_overrides
        or cfg.client_handshakes
        or cfg.client_stream is not None
        or cfg.parallelism != "serial"
    )
    if fleet_active:
        base["fleet"] = {
            "fleet_size": len(state.runtimes),
            "pull_stagger_seconds": cfg.pull_stagger_seconds,
            "pull_jitter_seconds": cfg.pull_jitter_seconds,
            "link_profile": cfg.link_profile,
            "link_overrides": dict(cfg.link_overrides),
            "rng_seed": cfg.rng_seed,
            "parallelism": cfg.parallelism,
            "client_handshakes": cfg.client_handshakes,
        }
        if cfg.client_stream is not None:
            spec = cfg.client_stream
            base["fleet"]["client_stream"] = {
                "clients": spec.clients,
                "sites": spec.sites,
                "events_total": spec.events_total,
                "zipf_exponent": spec.zipf_exponent,
                "diurnal_amplitude": spec.diurnal_amplitude,
                "batch_size": spec.batch_size,
                "seed": spec.seed,
            }
    return base
